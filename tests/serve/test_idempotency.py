"""Idempotent request IDs: client retries can never double-score.

A client that loses a connection mid-response cannot know whether the
server executed its in-flight requests, so a blind resend risks
scoring (and billing, and counting) the same work twice.  The ``req``
wire field plus the server-level :class:`IdempotencyIndex` close that
hole: a retried request that already landed is *replayed* from the
index (flagged ``duplicate: true``), and only successful responses
are remembered — failures are forgotten so retries re-execute.
"""

from __future__ import annotations

import pytest

from repro.resilience.faults import FaultPlan
from repro.serve import AlignmentServer, AlignmentService
from repro.serve.client import ServeClient, fresh_request_ids
from repro.serve.errors import ServeProtocolError
from repro.serve.server import IdempotencyIndex

PAIRS = [("ACGTACGT", "ACGTTGCA"), ("GATTACA", "GATTACA"),
         ("AAAACCCC", "AAAATCCC")]


@pytest.fixture
def served():
    service = AlignmentService(workers=1, max_wait_ms=1.0)
    try:
        service.start()
        server = AlignmentServer(service, host="127.0.0.1", port=0)
    except OSError as exc:  # pragma: no cover - sandboxed environments
        service.stop()
        pytest.skip(f"cannot bind localhost sockets here: {exc}")
    with server:
        host, port = server.address
        yield host, port, server
    service.stop()


def test_fresh_request_ids_are_unique():
    ids = fresh_request_ids(100)
    assert len(set(ids)) == 100
    assert all(isinstance(i, str) and i for i in ids)


def test_resend_on_new_connection_replays(served):
    """The retry-after-truncation shape: same IDs, fresh socket."""
    host, port, server = served
    ids = fresh_request_ids(len(PAIRS))
    with ServeClient(host, port) as client:
        first = client.align_many(PAIRS, request_ids=ids)
    with ServeClient(host, port) as client:
        second = client.align_many(PAIRS, request_ids=ids)
    assert [r["score"] for r in first] == [r["score"] for r in second]
    assert not any(r.get("duplicate") for r in first)
    assert all(r["duplicate"] for r in second)
    assert server.idempotency.duplicates == len(PAIRS)


def test_fresh_ids_execute_fresh(served):
    host, port, server = served
    with ServeClient(host, port) as client:
        a = client.align_many(PAIRS)
        b = client.align_many(PAIRS)
    assert not any(r.get("duplicate") for r in a + b)
    assert server.idempotency.duplicates == 0


def test_truncated_frame_retry_is_safe_end_to_end(served):
    """Inject the actual failure the index exists for: the server
    truncates a response frame mid-line, the client reconnects and
    resends the same IDs, and the batch completes with every executed
    request deduplicated."""
    host, port, server = served
    ids = fresh_request_ids(len(PAIRS))
    with FaultPlan.single("serve.sock.truncate", times=1):
        with ServeClient(host, port) as client:
            with pytest.raises(ServeProtocolError):
                client.align_many(PAIRS, request_ids=ids)
        with ServeClient(host, port) as client:
            retried = client.align_many(PAIRS, request_ids=ids)
    assert all(r["ok"] for r in retried)
    # Every request the server completed before/despite the cut frame
    # was answered from the index on the retry.
    assert sum(1 for r in retried if r.get("duplicate")) == \
        server.idempotency.duplicates
    assert server.idempotency.duplicates >= 1


def test_mismatched_request_id_count_raises(served):
    host, port, _ = served
    with ServeClient(host, port) as client:
        with pytest.raises(ValueError, match="request_ids"):
            client.align_many(PAIRS, request_ids=["a", "b"])


class TestIdempotencyIndex:
    def test_done_then_lookup(self):
        idx = IdempotencyIndex(capacity=4)
        assert idx.lookup("r1") is None
        idx.complete("r1", {"ok": True, "score": 7})
        kind, payload = idx.lookup("r1")
        assert kind == "done"
        assert payload["score"] == 7
        assert idx.duplicates == 1

    def test_forget_makes_retries_re_execute(self):
        idx = IdempotencyIndex(capacity=4)
        idx.complete("r1", {"ok": True, "score": 7})
        idx.forget("r1")
        assert idx.lookup("r1") is None

    def test_eviction_loses_dedup_never_correctness(self):
        idx = IdempotencyIndex(capacity=2)
        for i in range(5):
            idx.complete(f"r{i}", {"ok": True, "score": i})
        # Oldest entries evicted: a retry re-executes (correct, just
        # not deduplicated); newest still replay.
        assert idx.lookup("r0") is None
        assert idx.lookup("r4")[1]["score"] == 4

    def test_zero_capacity_disables(self):
        idx = IdempotencyIndex(capacity=0)
        idx.complete("r1", {"ok": True, "score": 7})
        assert idx.lookup("r1") is None
