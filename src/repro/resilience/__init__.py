"""repro.resilience — deterministic fault injection + graceful recovery.

Two halves of one discipline:

* **Break it on purpose** — :mod:`repro.resilience.faults` arms named
  fault sites threaded through the shard workers, the serve socket
  path, the JIT C backend, and the GPU simulator with a seeded,
  perfectly reproducible :class:`FaultPlan`.
* **Survive it** — :class:`RetryPolicy` (exponential backoff, full
  jitter, deadline-aware), :class:`CircuitBreaker` (per engine),
  :class:`EngineFallbackChain` (compiled-c → compiled-numpy →
  interpreted bpbc → numpy SWA, each gated by a known-answer
  self-test), and the partial-result recovery of
  :mod:`repro.resilience.recovery` that rescues failed shards instead
  of aborting batches.

The invariant everything here defends: recovered results are
**bit-identical** to a fault-free run, or a **typed error names the
affected pairs** — never a silent wrong score.  ``tests/chaos/``
sweeps every fault site under seeded plans to pin that down.

The heavyweight members (the fallback chain and recovery, which pull
in the scoring engines) load lazily, so hosts that only need a fault
site check — e.g. :mod:`repro.gpusim.memory` — import nothing beyond
the stdlib-only :mod:`~repro.resilience.faults`.
"""

from __future__ import annotations

from .breaker import CircuitBreaker
from .errors import (BulkRecoveryError, FallbackExhaustedError,
                     ResilienceError, SelfTestError)
from .faults import (SITES, FaultPlan, FaultRule, InjectedFault,
                     active_plan, deactivate, fault_point, known_sites,
                     should_inject)
from .retry import RetriesExhausted, RetryPolicy

__all__ = [
    "SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "deactivate",
    "fault_point",
    "known_sites",
    "should_inject",
    "RetryPolicy",
    "RetriesExhausted",
    "CircuitBreaker",
    "ResilienceError",
    "SelfTestError",
    "FallbackExhaustedError",
    "BulkRecoveryError",
    # lazy (see __getattr__):
    "EngineFallbackChain",
    "RESILIENCE_ENGINES",
    "DEFAULT_CHAIN",
    "default_chain",
    "recover_failures",
    "shard_scores_with_recovery",
    "RecoveryReport",
]

_LAZY = {
    "EngineFallbackChain": "fallback",
    "RESILIENCE_ENGINES": "fallback",
    "DEFAULT_CHAIN": "fallback",
    "default_chain": "fallback",
    "recover_failures": "recovery",
    "shard_scores_with_recovery": "recovery",
    "RecoveryReport": "recovery",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
