"""Top-level analysis drivers: what ``python -m repro analyze`` runs.

:func:`shipped_kernel_plans` builds a small, deterministic launch for
every kernel the library ships (wavefront SW, its shuffle variant, the
string matcher, and both transpose kernels), sized so a traced run
completes in well under a second.  :func:`analyze_kernels` puts each
plan through both the static lint (:mod:`repro.analyze.lint`) and a
traced launch under the race detector (:mod:`repro.analyze.races`);
:func:`analyze_netlists` runs the netlist verifier
(:mod:`repro.analyze.netcheck`); :func:`analyze_all` merges those with
the cross-layer contract lints (:mod:`repro.analyze.contracts`).  The
exhaustive equivalence/width prover (:mod:`repro.analyze.prove`) is
deliberately *not* part of :func:`analyze_all` — it takes several
seconds and has its own CLI flag (``--prove``) and CI job.

All shipped artifacts are expected to analyse clean — the test suite
pins that as a regression gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from ..core.bitops import word_dtype
from ..gpusim.device import DeviceSpec, GTX_TITAN_X
from ..gpusim.memory import GlobalMemory
from ..kernels.match_kernel import string_match_kernel
from ..kernels.sw_kernel import (shared_words_needed, sw_wavefront_kernel,
                                 sw_wavefront_kernel_shfl)
from ..kernels.transpose_kernel import b2w_kernel, w2b_kernel
from ..swa.scoring import DEFAULT_SCHEME
from .contracts import analyze_contracts
from .lint import KernelLintError, lint_kernel
from .netcheck import (check_compiled_cells, check_protein_cells,
                       check_sw_cell_counts)
from .races import trace_launch
from .report import Diagnostic, Report, Severity

__all__ = ["KernelLaunchPlan", "shipped_kernel_plans",
           "analyze_kernels", "analyze_netlists", "analyze_all"]


@dataclass
class KernelLaunchPlan:
    """One ready-to-trace kernel launch."""

    name: str
    kernel: Callable[..., Iterator[Any]]
    grid_dim: int
    block_dim: int
    gmem: GlobalMemory
    args: tuple[Any, ...] = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    shared_words: int = 0
    device: DeviceSpec = GTX_TITAN_X


def shipped_kernel_plans(word_bits: int = 32) -> list[KernelLaunchPlan]:
    """Deterministic small launches for every shipped kernel."""
    dt = word_dtype(word_bits)
    scheme = DEFAULT_SCHEME
    m, n, groups = 5, 9, 2
    s = scheme.score_bits(m, n)
    plans: list[KernelLaunchPlan] = []

    def sw_gmem() -> GlobalMemory:
        g = GlobalMemory()
        g.alloc("xh", (groups, m), dt)
        g.alloc("xl", (groups, m), dt)
        g.alloc("yh", (groups, n), dt)
        g.alloc("yl", (groups, n), dt)
        g.alloc("out", (groups, s), dt)
        return g

    sw_args = ("xh", "xl", "yh", "yl", "out", m, n, s, scheme, word_bits)
    plans.append(KernelLaunchPlan(
        name="sw_wavefront_kernel", kernel=sw_wavefront_kernel,
        grid_dim=groups, block_dim=m, gmem=sw_gmem(), args=sw_args,
        shared_words=shared_words_needed(m, s)))
    plans.append(KernelLaunchPlan(
        name="sw_wavefront_kernel_shfl", kernel=sw_wavefront_kernel_shfl,
        grid_dim=groups, block_dim=m, gmem=sw_gmem(), args=sw_args))

    match_gmem = GlobalMemory()
    match_gmem.alloc("xh", (groups, m), dt)
    match_gmem.alloc("xl", (groups, m), dt)
    match_gmem.alloc("yh", (groups, n), dt)
    match_gmem.alloc("yl", (groups, n), dt)
    match_gmem.alloc("out", (groups, n - m + 1), dt)
    plans.append(KernelLaunchPlan(
        name="string_match_kernel", kernel=string_match_kernel,
        grid_dim=groups, block_dim=n - m + 1, gmem=match_gmem,
        args=("xh", "xl", "yh", "yl", "out", m, n, word_bits)))

    positions = 4
    w2b_gmem = GlobalMemory()
    w2b_gmem.alloc("src", (groups * word_bits, positions), dt)
    w2b_gmem.alloc("dst_h", (positions, groups), dt)
    w2b_gmem.alloc("dst_l", (positions, groups), dt)
    plans.append(KernelLaunchPlan(
        name="w2b_kernel", kernel=w2b_kernel, grid_dim=1,
        block_dim=positions * groups, gmem=w2b_gmem,
        args=("src", "dst_h", "dst_l", positions, groups, word_bits)))

    b2w_gmem = GlobalMemory()
    b2w_gmem.alloc("src", (s, groups), dt)
    b2w_gmem.alloc("dst", (groups * word_bits,), dt)
    plans.append(KernelLaunchPlan(
        name="b2w_kernel", kernel=b2w_kernel, grid_dim=1,
        block_dim=groups, gmem=b2w_gmem,
        args=("src", "dst", s, groups, word_bits)))
    return plans


def analyze_plan(plan: KernelLaunchPlan) -> Report:
    """Lint one plan's kernel, then trace its launch for races."""
    rep = Report()
    try:
        findings = lint_kernel(plan.kernel, name=plan.name)
    except KernelLintError as exc:
        rep.add(Diagnostic(
            rule="lint.unanalysable", severity=Severity.WARNING,
            subject=plan.name, message=str(exc)))
    else:
        rep.extend(findings)
        if not findings:
            rep.add(Diagnostic(
                rule="lint.clean", severity=Severity.NOTE,
                subject=plan.name, message="static lint found no "
                "barrier-divergence, shuffle, or stripe hazards"))
    rep.extend(trace_launch(
        plan.kernel, plan.grid_dim, plan.block_dim, plan.gmem,
        *plan.args, name=plan.name, shared_words=plan.shared_words,
        device=plan.device, **plan.kwargs))
    if rep.ok:
        rep.add(Diagnostic(
            rule="race.clean", severity=Severity.NOTE, subject=plan.name,
            message=f"traced launch ({plan.grid_dim}x{plan.block_dim} "
                    "threads) reported no races"))
    return rep


def analyze_kernels(
        plans: Sequence[KernelLaunchPlan] | None = None) -> Report:
    """Lint + race-trace every plan (default: all shipped kernels)."""
    rep = Report()
    for plan in (shipped_kernel_plans() if plans is None else plans):
        rep.extend(analyze_plan(plan))
    return rep


def analyze_netlists(s_values: Sequence[int] = (4, 8, 16)) -> Report:
    """Verify SW-cell netlists and their :mod:`repro.jit` compilations.

    Runs the paper op-count/differential check over the synthesised
    netlists, the compiled-cell check (generated-source syntax,
    op-count bound, and differential evaluation) over the same widths,
    and the protein substitution-cell check (mux-tree op-count pins
    plus differential and engine-vs-scalar-Gotoh evaluation) over the
    shipped matrices.
    """
    rep = check_sw_cell_counts(s_values=s_values)
    rep.extend(check_compiled_cells(s_values=s_values))
    rep.extend(check_protein_cells())
    return rep


def analyze_all() -> Report:
    """Every fast analysis pass over every shipped artifact.

    Kernels (lint + race trace), netlists (op counts + differential),
    and the cross-layer contract lints.  The exhaustive prover runs
    separately via ``analyze --prove`` / :func:`analyze_prove`.
    """
    rep = analyze_kernels()
    rep.extend(analyze_netlists())
    rep.extend(analyze_contracts())
    return rep
