"""Bit-sliced substitution-matrix lookup: the protein ``matching_B``.

The DNA gate :func:`repro.core.circuits.matching_b` scores a pair by
equality; protein search needs ``H_diag + M[x][y]`` for an arbitrary
integer matrix ``M``.  This module builds that as a pure AND/OR/XOR/NOT
circuit over character bit planes — a mux tree over the encoded
residue pair:

1. **Decode** — one equality term per used residue code on each side:
   ``xeq[a] = AND of eps literals`` (``x[i]`` or ``~x[i]``).
2. **Select** — the matrix is biased to non-negative weights
   ``wb = M + bias`` (``bias = max(0, -min M)``); bit ``h`` of the
   selected weight is the OR over rows ``a`` of
   ``xeq[a] AND (OR of yeq[b] for columns b with bit h set)``.
3. **Arithmetic** — ``max(0, C + M[x][y])`` is computed exactly as
   ``ssub(add(C, wb), bias)`` at an extended width ``s_ext`` (no
   overflow), then truncated to the low ``s`` planes.

Truncation soundness: in engine use every DP value satisfies
``C + M[x][y] <= max(M) * min(m, n) < 2**s`` (that is how
``ProteinScheme.score_bits`` sizes ``s``), so the dropped planes are
zero.  On arbitrary cell inputs the circuit computes
``max(0, C + M[x][y]) mod 2**s`` — what the differential checks pin.

Codes ``>= A`` (the sentinel pad codes) match no decode row, select
weight ``0``, and therefore score ``-bias`` — the minimum of the
matrix, i.e. pads can never improve a score; exactly the property the
serve packer and shard binning rely on.

Every synthesis exists three ways, all pinned against each other by
:mod:`repro.analyze.netcheck` and the protein differential fuzz suite:
the straight-line interpreted circuit here, the gate netlist
(:func:`repro.core.netlist.build_subst_sw_cell_netlist` family), and
the analytic op-count accessors (:func:`subst_matching_ops_exact`
family) mirroring the ``46s - 16 + 2e`` formulas of the DNA cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from .bitops import BitOpsError, OpCounter, word_dtype
from .circuits import (
    add_b,
    add_b_ops,
    clamp_penalty,
    max_b,
    max_b_ops,
    splat_constant,
    ssub_b,
    ssub_b_ops,
)

__all__ = [
    "SubstStructure",
    "subst_structure",
    "weights_key",
    "subst_matching_b",
    "subst_sw_cell",
    "gotoh_cell_b",
    "subst_matching_ops_exact",
    "subst_sw_cell_ops_exact",
    "subst_gotoh_cell_ops_exact",
    "selected_weight_table",
    "subst_matching_reference",
    "subst_sw_cell_reference",
]

Planes = Sequence[np.ndarray]

#: Hashable weight table: tuple of tuple of int, row = x code.
WeightsKey = tuple[tuple[int, ...], ...]


def weights_key(weights) -> WeightsKey:
    """Normalise any square int table to the hashable tuple form."""
    key = tuple(tuple(int(v) for v in row) for row in np.asarray(weights))
    k = len(key)
    if k == 0 or any(len(row) != k for row in key):
        raise BitOpsError("weight table must be square and non-empty")
    return key


@dataclass(frozen=True)
class SubstStructure:
    """The canonical synthesis plan of one weight table.

    All three realisations of the lookup circuit — the straight-line
    interpreted version, the netlist synthesiser and the op-count
    accessor — iterate this structure in the same order, which is what
    makes the exact-count pin meaningful.
    """

    size: int                 #: alphabet size A (codes 0..A-1 decoded)
    bias: int                 #: max(0, -min(weights))
    max_biased: int           #: max(weights) + bias
    wbits: int                #: planes of the biased weight
    used_rows: tuple[int, ...]    #: x codes with any non-zero biased row
    used_cols: tuple[int, ...]    #: y codes feeding any selected bit
    #: rows_by_bit[h] = ((row a, (cols with bit h set, ...)), ...)
    rows_by_bit: tuple[tuple[tuple[int, tuple[int, ...]], ...], ...]
    x_not_bits: tuple[int, ...]   #: x planes whose complement is needed
    y_not_bits: tuple[int, ...]   #: y planes whose complement is needed
    eps: int                  #: character planes per side

    def s_ext(self, s: int) -> int:
        """Width at which ``C + wb`` cannot overflow."""
        return max(((1 << s) - 1 + self.max_biased).bit_length(), s, 1)


@lru_cache(maxsize=64)
def _structure_cached(key: WeightsKey, eps: int) -> SubstStructure:
    size = len(key)
    if size > (1 << eps):
        raise BitOpsError(
            f"{size} codes do not fit in {eps} character planes"
        )
    lo = min(min(row) for row in key)
    hi = max(max(row) for row in key)
    bias = max(0, -lo)
    max_biased = hi + bias
    wbits = max(1, max_biased.bit_length())
    wb = [[v + bias for v in row] for row in key]
    used_rows = tuple(a for a in range(size) if any(wb[a]))
    used_cols = tuple(b for b in range(size)
                      if any(wb[a][b] for a in range(size)))
    rows_by_bit = tuple(
        tuple((a, tuple(b for b in range(size) if (wb[a][b] >> h) & 1))
              for a in used_rows
              if any((wb[a][b] >> h) & 1 for b in range(size)))
        for h in range(wbits)
    )
    x_not_bits = tuple(i for i in range(eps)
                       if any(not (a >> i) & 1 for a in used_rows))
    y_not_bits = tuple(i for i in range(eps)
                       if any(not (b >> i) & 1 for b in used_cols))
    return SubstStructure(size=size, bias=bias, max_biased=max_biased,
                          wbits=wbits, used_rows=used_rows,
                          used_cols=used_cols, rows_by_bit=rows_by_bit,
                          x_not_bits=x_not_bits, y_not_bits=y_not_bits,
                          eps=eps)


def subst_structure(weights, eps: int) -> SubstStructure:
    """The (memoised) synthesis structure of one weight table."""
    return _structure_cached(weights_key(weights), int(eps))


def _count(counter: OpCounter | None, n: int, kind: str) -> None:
    if counter is not None:
        counter.add(n, kind=kind)


def _decode(planes: Planes, not_bits, codes, eps: int, counter) -> dict:
    """Equality planes ``dec[a]`` for every code in ``codes``."""
    notp = {}
    for i in not_bits:
        notp[i] = ~planes[i]
        _count(counter, 1, "decode")
    dec = {}
    for a in codes:
        acc = None
        for i in range(eps):
            lit = planes[i] if (a >> i) & 1 else notp[i]
            if acc is None:
                acc = lit
            else:
                acc = acc & lit
                _count(counter, 1, "decode")
        dec[a] = acc
    return dec


def subst_matching_b(C: Planes, x: Planes, y: Planes, weights,
                     word_bits: int,
                     counter: OpCounter | None = None) -> list[np.ndarray]:
    """Per-lane ``max(0, C + M[x][y])`` — the substitution mux tree.

    ``C`` is ``s`` score planes; ``x``/``y`` are ``eps`` character
    planes.  Straight-line circuit; the analytic count is
    :func:`subst_matching_ops_exact` and the gate netlist
    :func:`repro.core.netlist.build_subst_matching_netlist`.
    """
    s = len(C)
    eps = len(x)
    if eps == 0 or len(y) != eps:
        raise BitOpsError(
            f"character width mismatch: {eps} vs {len(y)} planes"
        )
    st = subst_structure(weights, eps)
    dt = word_dtype(word_bits)
    zero = dt.type(0)
    xdec = _decode(x, st.x_not_bits, st.used_rows, eps, counter)
    ydec = _decode(y, st.y_not_bits, st.used_cols, eps, counter)
    wsel: list = []
    for h in range(st.wbits):
        acc = None
        for a, cols in st.rows_by_bit[h]:
            ym = None
            for b in cols:
                if ym is None:
                    ym = ydec[b]
                else:
                    ym = ym | ydec[b]
                    _count(counter, 1, "select")
            term = xdec[a] & ym
            _count(counter, 1, "select")
            if acc is None:
                acc = term
            else:
                acc = acc | term
                _count(counter, 1, "select")
        wsel.append(acc if acc is not None else zero)
    s_ext = st.s_ext(s)
    C_ext = list(C) + [zero] * (s_ext - s)
    w_ext = wsel + [zero] * (s_ext - st.wbits)
    total = add_b(C_ext, w_ext, counter)
    res = ssub_b(total,
                 splat_constant(clamp_penalty(st.bias, s_ext), s_ext,
                                word_bits),
                 counter)
    return res[:s]


def subst_sw_cell(A: Planes, B: Planes, C: Planes, x: Planes, y: Planes,
                  gap: int, weights, word_bits: int,
                  counter: OpCounter | None = None) -> list[np.ndarray]:
    """Linear-gap SW cell with a substitution matrix:
    ``max(0, A - gap, B - gap, C + M[x][y])``."""
    T = max_b(A, B, counter)
    s = len(T)
    U = ssub_b(T, splat_constant(clamp_penalty(gap, s), s, word_bits),
               counter)
    T2 = subst_matching_b(C, x, y, weights, word_bits, counter)
    return max_b(T2, U, counter)


def gotoh_cell_b(h_left: Planes, e_left: Planes, h_up: Planes,
                 f_up: Planes, h_diag: Planes, x: Planes, y: Planes,
                 gap_open: int, gap_extend: int, word_bits: int,
                 weights=None, c1: int | None = None,
                 c2: int | None = None,
                 counter: OpCounter | None = None,
                 ) -> tuple[list, list, list]:
    """One affine (Gotoh) cell over bit planes; returns ``(H, E, F)``.

    The diagonal term uses the substitution mux tree when ``weights``
    is given and the paper's equality gate with ``c1``/``c2``
    otherwise (see :mod:`repro.core.affine_bpbc` for the recurrence
    and the zero-clamping argument).
    """
    from .circuits import matching_b

    s = len(h_left)
    go = splat_constant(clamp_penalty(gap_open, s), s, word_bits)
    ge = splat_constant(clamp_penalty(gap_extend, s), s, word_bits)
    E = max_b(ssub_b(h_left, go, counter), ssub_b(e_left, ge, counter),
              counter)
    F = max_b(ssub_b(h_up, go, counter), ssub_b(f_up, ge, counter),
              counter)
    if weights is not None:
        diag = subst_matching_b(h_diag, x, y, weights, word_bits, counter)
    else:
        diag = matching_b(h_diag, x, y, int(c1), int(c2), word_bits,
                          counter)
    H = max_b(max_b(E, F, counter), diag, counter)
    return H, E, F


# ---------------------------------------------------------------------------
# Exact op-count accessors (mirroring sw_cell_ops_exact and
# gotoh_cell_ops_exact; asserted against both the interpreted circuit's
# measured count and the simplify=False netlist's logic_gate_count).
# ---------------------------------------------------------------------------

def subst_matching_ops_exact(weights, s: int, eps: int) -> int:
    """Exact op count of :func:`subst_matching_b` for one table."""
    st = subst_structure(weights, eps)
    n = len(st.x_not_bits) + len(st.y_not_bits)
    n += (len(st.used_rows) + len(st.used_cols)) * (eps - 1)
    for rows in st.rows_by_bit:
        for _a, cols in rows:
            n += (len(cols) - 1) + 1
        if rows:
            n += len(rows) - 1
    s_ext = st.s_ext(s)
    return n + add_b_ops(s_ext) + ssub_b_ops(s_ext)


def subst_sw_cell_ops_exact(weights, s: int, eps: int) -> int:
    """Exact op count of :func:`subst_sw_cell` (the protein analogue of
    the paper's ``46s - 16 + 2e``)."""
    return (2 * max_b_ops(s) + ssub_b_ops(s)
            + subst_matching_ops_exact(weights, s, eps))


def subst_gotoh_cell_ops_exact(weights, s: int, eps: int) -> int:
    """Exact op count of the protein Gotoh cell: four saturating
    subtractions, four maxima and the substitution mux tree."""
    return (4 * ssub_b_ops(s) + 4 * max_b_ops(s)
            + subst_matching_ops_exact(weights, s, eps))


# ---------------------------------------------------------------------------
# Reference semantics for the equivalence prover (repro.analyze.prove).
# ---------------------------------------------------------------------------

def selected_weight_table(weights, eps: int) -> np.ndarray:
    """The biased weight the mux tree selects, for every ``(x, y)``
    code pair including pads: a ``(2**eps, 2**eps)`` int64 table with
    ``key[x][y] + bias`` inside the matrix and 0 outside.

    This is the mux tree's contract stated as data: a row with an
    all-zero biased weight never enters ``used_rows`` (and likewise
    columns), so those selections — and every pad code — yield 0,
    which is exactly what the table records.
    """
    st = subst_structure(weights, eps)
    key = weights_key(weights)
    n = 1 << eps
    table = np.zeros((n, n), dtype=np.int64)
    for a in range(st.size):
        for b in range(st.size):
            table[a, b] = key[a][b] + st.bias
    return table


def subst_matching_reference(C, x, y, weights, eps: int,
                             s: int) -> np.ndarray:
    """Value semantics of :func:`subst_matching_b` /
    ``synth_subst_matching`` on arbitrary ``s``-bit ``C`` and
    ``eps``-bit codes: add the selected biased weight at the
    overflow-free extended width, saturating-subtract the bias, keep
    the low ``s`` planes.  The final masking is genuine truncation —
    the prover checks the circuit bit for bit, so the reference must
    wrap exactly where the circuit would (it provably cannot for
    in-range scores; see ``Netlist.prove_widths``)."""
    from .circuits import clamp_penalty

    st = subst_structure(weights, eps)
    C = np.asarray(C, dtype=np.int64)
    wb = selected_weight_table(weights, eps)[
        np.asarray(x, dtype=np.int64), np.asarray(y, dtype=np.int64)]
    # C + wb <= (2**s - 1) + max_biased < 2**s_ext: the extended-width
    # add never wraps, so plain integer addition models it exactly.
    total = C + wb
    res = np.maximum(total - clamp_penalty(st.bias, st.s_ext(s)), 0)
    return res & ((1 << s) - 1)


def subst_sw_cell_reference(A, B, C, x, y, gap: int, weights, eps: int,
                            s: int) -> np.ndarray:
    """Value semantics of :func:`subst_sw_cell` /
    ``synth_subst_sw_cell``: substitution matching folded with the
    gapped ``max(max(A, B) - gap, 0)`` term."""
    from .circuits import clamp_penalty

    A = np.asarray(A, dtype=np.int64)
    B = np.asarray(B, dtype=np.int64)
    gapped = np.maximum(np.maximum(A, B) - clamp_penalty(gap, s), 0)
    return np.maximum(
        subst_matching_reference(C, x, y, weights, eps, s), gapped)
