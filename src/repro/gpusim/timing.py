"""Analytic timing of simulated kernels.

The SIMT simulator counts *what happened* (instructions, memory
transactions, barriers, bank conflicts); this module converts those
counts into an estimated device time for a given
:class:`~repro.gpusim.device.DeviceSpec` with a simple bounded-resource
model:

* **compute time** — instructions spread over the cores that the launch
  can occupy (blocks x threads, capped by the device);
* **memory time** — global transactions x segment size over DRAM
  bandwidth;
* **conflict/sync overhead** — serialized bank-conflict cycles and a
  per-barrier latency.

The kernel's estimate is the *maximum* of compute and memory time
(they overlap on real hardware) plus overheads.  This is the standard
roofline-style first-order model; it is deliberately simple and its
constants visible, because its role is to let users reason about
which resource bounds a kernel — not to promise absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec
from .kernel import KernelStats

__all__ = ["KernelTimeEstimate", "estimate_kernel_time",
           "estimate_transfer_time"]

#: Cycles charged per block-wide barrier (pipeline drain + re-issue).
BARRIER_CYCLES = 40


@dataclass(frozen=True)
class KernelTimeEstimate:
    """Breakdown of one kernel's estimated device time (seconds)."""

    compute_s: float
    memory_s: float
    conflict_s: float
    barrier_s: float

    @property
    def total_s(self) -> float:
        """Roofline total: max(compute, memory) + serial overheads."""
        return (max(self.compute_s, self.memory_s) + self.conflict_s
                + self.barrier_s)

    @property
    def bound(self) -> str:
        """Which resource dominates: ``"compute"`` or ``"memory"``."""
        return "compute" if self.compute_s >= self.memory_s else "memory"


def estimate_kernel_time(stats: KernelStats,
                         device: DeviceSpec) -> KernelTimeEstimate:
    """First-order device-time estimate for one simulated launch."""
    threads_wanted = stats.threads
    occupancy = min(threads_wanted, device.total_cores)
    if occupancy <= 0:
        raise ValueError("launch had no threads")
    clock_hz = device.clock_ghz * 1e9
    # Instructions are summed across threads; with `occupancy` lanes
    # running concurrently the wall time divides accordingly.
    compute_s = stats.instructions / (occupancy * clock_hz) * (
        threads_wanted / occupancy if threads_wanted > occupancy else 1.0
    )
    transactions = (stats.gmem.load_transactions
                    + stats.gmem.store_transactions)
    memory_s = (transactions * device.coalesce_segment_bytes
                / (device.mem_bandwidth_gbs * 1e9))
    conflict_s = stats.smem.bank_conflict_cycles / clock_hz
    barrier_s = stats.barriers * BARRIER_CYCLES / clock_hz
    return KernelTimeEstimate(compute_s=compute_s, memory_s=memory_s,
                              conflict_s=conflict_s, barrier_s=barrier_s)


def estimate_transfer_time(n_bytes: int, device: DeviceSpec,
                           latency_s: float = 10e-6) -> float:
    """Host-device transfer estimate: latency + bytes / PCIe bandwidth."""
    if n_bytes < 0:
        raise ValueError("byte count must be non-negative")
    return latency_s + n_bytes / (device.pcie_gbs * 1e9)
