"""Companion BPBC applications from the paper's lineage (§I refs)."""

from .life import life_step_bpbc, life_step_reference, run_life

__all__ = ["life_step_bpbc", "life_step_reference", "run_life"]
