#!/usr/bin/env python
"""Tiered-index benchmark: build a synthetic database, search it,
report per-tier survivors and wall-clock, and (optionally) check the
top hits bit-identical against brute force.

The acceptance experiment behind ``repro.index``: a ~10**8-char
synthetic database (``--chars 100000000``) must stream through the
tiered pipeline with peak RSS bounded by the shard size — not the
database size — while the minimizer prefilter discards the bulk of
the entries before any DP runs.  CI runs the 10**6-char smoke flavour
with ``--check``, which additionally asserts every query's top hit
(entry, score) is bit-identical to brute-force
:func:`repro.filter.database.search_database`.

Usage::

    PYTHONPATH=src python benchmarks/index_bench.py              # 1e6 smoke
    PYTHONPATH=src python benchmarks/index_bench.py --check      # + brute diff
    PYTHONPATH=src python benchmarks/index_bench.py --chars 100000000
"""

from __future__ import annotations

import argparse
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.filter.database import search_database  # noqa: E402
from repro.index.search import TieredSearch  # noqa: E402
from repro.index.store import DatabaseIndex, build_index  # noqa: E402
from repro.swa.scoring import ScoringScheme  # noqa: E402

SCHEME = ScoringScheme(match_score=2, mismatch_penalty=1, gap_penalty=1)


def _rss_mib() -> float:
    """Current peak RSS of this process, MiB (ru_maxrss is KiB on
    Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def synth_database(rng, total_chars: int, entry_chars: int,
                   queries: int, query_m: int):
    """Random entries plus ``queries`` planted exact query copies."""
    n_entries = max(queries + 1, total_chars // entry_chars)
    entries = [rng.integers(0, 4, size=entry_chars).astype(np.uint8)
               for _ in range(n_entries)]
    qs, planted = [], []
    for qi in range(queries):
        e = int(rng.integers(0, n_entries))
        at = int(rng.integers(0, entry_chars - query_m + 1))
        q = entries[e][at:at + query_m].copy()
        qs.append(q)
        planted.append(e)
    return entries, qs, planted


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--chars", type=float, default=1e6,
                    help="total database characters (default 1e6)")
    ap.add_argument("--entry-chars", type=int, default=5000)
    ap.add_argument("--queries", type=int, default=4)
    ap.add_argument("--query-m", type=int, default=64)
    ap.add_argument("--k", type=int, default=16)
    ap.add_argument("--w", type=int, default=8)
    ap.add_argument("--shard-chars", type=int, default=1 << 24)
    ap.add_argument("--min-seeds", type=int, default=2)
    ap.add_argument("--threshold", type=int, default=0)
    ap.add_argument("--seed", type=int, default=20260808)
    ap.add_argument("--check", action="store_true",
                    help="assert top hits bit-identical to brute force "
                         "(also times the brute-force baseline)")
    args = ap.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    entries, queries, planted = synth_database(
        rng, int(args.chars), args.entry_chars, args.queries,
        args.query_m)
    total = sum(len(e) for e in entries)
    print(f"database: {len(entries)} entries, {total:,} chars "
          f"({args.entry_chars} chars/entry); "
          f"{len(queries)} planted {args.query_m}-char queries")

    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        idx = build_index(((f"e{i}", s) for i, s in enumerate(entries)),
                          Path(tmp) / "idx", k=args.k, w=args.w,
                          shard_chars=args.shard_chars)
        build_s = time.perf_counter() - t0
        on_disk = sum(f.stat().st_size
                      for f in (Path(tmp) / "idx").iterdir())
        print(f"build:    {build_s:6.2f}s  {idx.n_shards} shards, "
              f"{on_disk / 1e6:.1f} MB on disk "
              f"({total / build_s / 1e6:.1f} Mchar/s)")

        idx = DatabaseIndex.open(Path(tmp) / "idx")
        search = TieredSearch(idx, scheme=SCHEME,
                              min_seeds=args.min_seeds,
                              threshold=args.threshold)
        rss_before = _rss_mib()
        t0 = time.perf_counter()
        res = search.search(queries, top_k=1)
        tiered_s = time.perf_counter() - t0
        # Marginal peak RSS of the search itself: the streaming claim
        # is that this tracks the shard budget, not the database size
        # (the synthetic entries held in memory dominate the absolute
        # number).
        print(f"tiered:   {tiered_s:6.2f}s  search RSS "
              f"+{_rss_mib() - rss_before:.0f} MiB on "
              f"{_rss_mib():.0f} MiB peak (shard budget "
              f"{args.shard_chars / 4 / 1e6:.0f} MB packed)")
        print(res.stats.render())
        for h in res.hits:
            print(f"  q{h.query_index}: {h.entry_id} score {h.score}")

        missing = [qi for qi in range(len(queries))
                   if not any(h.query_index == qi for h in res.hits)]
        if missing:
            print(f"FAIL: no hit for planted queries {missing}")
            return 1
        for h in res.hits:
            if h.db_index == planted[h.query_index] \
                    and h.score < 2 * args.query_m:
                print(f"FAIL: planted exact match under-scored: {h}")
                return 1

        if args.check:
            t0 = time.perf_counter()
            brute = search_database(queries, entries, SCHEME,
                                    window=4096)
            brute_s = time.perf_counter() - t0
            print(f"brute:    {brute_s:6.2f}s  "
                  f"({brute_s / max(tiered_s, 1e-9):.1f}x tiered)")
            best = {}
            for b in brute:
                cur = best.get(b.query_index)
                if cur is None or b.score > cur[1]:
                    best[b.query_index] = (b.db_index, b.score)
            for h in res.hits:
                want = best[h.query_index]
                if (h.db_index, h.score) != want:
                    print(f"FAIL: top hit differs for q{h.query_index}: "
                          f"tiered ({h.db_index}, {h.score}) != "
                          f"brute {want}")
                    return 1
            print("check:    top hits bit-identical to brute force")
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
