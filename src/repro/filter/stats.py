"""Score statistics for threshold selection.

The paper leaves the screening threshold τ as a free parameter.  In
practice τ is chosen from the *null distribution* — the scores random
(unrelated) pairs produce.  This module estimates that distribution
with the bulk engine itself (scoring thousands of random pairs is
exactly what BPBC is fast at), and provides

* empirical p-values and quantile-based thresholds, and
* a Gumbel (extreme-value) fit: Karlin-Altschul theory says ungapped
  local-alignment maxima follow an extreme-value law, and gapped
  scores do so empirically — the fit extrapolates p-values beyond the
  sampled range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from ..swa.scoring import DEFAULT_SCHEME, ScoringScheme
from ..workloads.dna import random_strands
from .screening import bulk_max_scores

__all__ = ["NullModel", "fit_null_model", "suggest_threshold"]


@dataclass(frozen=True)
class NullModel:
    """A fitted null distribution of max scores for one (m, n) shape."""

    m: int
    n: int
    samples: np.ndarray          # sorted null scores
    gumbel_loc: float
    gumbel_scale: float
    max_score: int               # hard ceiling: c1 * min(m, n)

    def empirical_pvalue(self, score: float) -> float:
        """P(null >= score) from the raw sample (add-one smoothed)."""
        exceed = int((self.samples >= score).sum())
        return (exceed + 1) / (len(self.samples) + 1)

    def gumbel_pvalue(self, score: float) -> float:
        """P(null >= score) under the fitted extreme-value law."""
        return float(sps.gumbel_r.sf(score, loc=self.gumbel_loc,
                                     scale=self.gumbel_scale))

    def quantile(self, q: float) -> float:
        """Empirical quantile of the null scores."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.samples, q))


def fit_null_model(m: int, n: int, scheme: ScoringScheme | None = None,
                   samples: int = 2048, seed: int = 0,
                   word_bits: int = 64) -> NullModel:
    """Score ``samples`` random pairs and fit the null distribution.

    Uses the bulk BPBC engine, so even thousands of samples cost one
    engine pass.
    """
    if samples < 16:
        raise ValueError(f"need at least 16 samples, got {samples}")
    scheme = scheme or DEFAULT_SCHEME
    rng = np.random.default_rng(seed)
    X = random_strands(rng, samples, m)
    Y = random_strands(rng, samples, n)
    scores = bulk_max_scores(X, Y, scheme, word_bits=word_bits)
    loc, scale = sps.gumbel_r.fit(scores)
    return NullModel(m=m, n=n, samples=np.sort(scores),
                     gumbel_loc=float(loc), gumbel_scale=float(scale),
                     max_score=scheme.max_score(m, n))


def suggest_threshold(null: NullModel, alpha: float = 1e-3,
                      method: str = "gumbel") -> int:
    """Smallest integer τ with null pass probability at most ``alpha``.

    ``method`` is ``"gumbel"`` (extrapolating fit; works for alphas far
    below ``1 / samples``) or ``"empirical"`` (raw quantile).

    Scores are bounded by ``c1 * min(m, n)``, but the Gumbel tail is
    not — for short queries and tiny alphas the extrapolated tau can
    exceed the ceiling, which would silently reject *everything*; the
    result is clamped to ``max_score - 1`` (the strictest threshold a
    perfect match still passes).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if method == "empirical":
        tau = int(np.ceil(null.quantile(1.0 - alpha)))
    elif method == "gumbel":
        tau = int(np.ceil(sps.gumbel_r.isf(alpha, loc=null.gumbel_loc,
                                           scale=null.gumbel_scale)))
    else:
        raise ValueError(f"unknown method {method!r}")
    return min(tau, null.max_score - 1)
