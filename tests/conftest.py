"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

from repro.core.bitops import WORD_DTYPES

# Wall-clock deadlines are meaningless on shared/loaded CI machines and
# were observed to flake; correctness examples still run in full.
hypothesis_settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; reseed per test for reproducibility."""
    return np.random.default_rng(0xBADC0DE)


def random_words(rng: np.random.Generator, word_bits: int, shape,
                 max_value: int | None = None) -> np.ndarray:
    """Random words of the given width (full range by default)."""
    high = (1 << word_bits) if max_value is None else max_value
    vals = rng.integers(0, high, size=shape, dtype=np.uint64)
    return vals.astype(WORD_DTYPES[word_bits])


ALL_WIDTHS = (8, 16, 32, 64)
MAIN_WIDTHS = (32, 64)  # the widths the paper evaluates
