"""RetryPolicy (full-jitter backoff, deadline-aware) and CircuitBreaker.

Both are tested with injected clocks/PRNGs — no wall-clock sleeps, so
the tests are exact and instant.
"""

from __future__ import annotations

import random

import pytest

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import RetriesExhausted, RetryPolicy


class _Clock:
    """A hand-cranked monotonic clock."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


class TestRetryPolicy:
    def test_backoff_is_full_jitter_and_deterministic(self, chaos_seed):
        policy = RetryPolicy(max_retries=5, base_delay_s=0.1,
                             max_delay_s=1.0)
        a = [policy.backoff_s(k, random.Random(chaos_seed))
             for k in range(5)]
        b = [policy.backoff_s(k, random.Random(chaos_seed))
             for k in range(5)]
        assert a == b  # same rng -> same jitter
        for k, delay in enumerate(a):
            assert 0.0 <= delay <= min(1.0, 0.1 * 2 ** k)

    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_retries=3, base_delay_s=0.0)
        assert policy.call(flaky, rng=random.Random(0)) == "ok"
        assert len(calls) == 3

    def test_exhaustion_reports_attempts_and_cause(self):
        boom = ValueError("always")
        policy = RetryPolicy(max_retries=2, base_delay_s=0.0)
        with pytest.raises(RetriesExhausted) as excinfo:
            policy.call(lambda: (_ for _ in ()).throw(boom),
                        retry_on=(ValueError,), rng=random.Random(0))
        assert excinfo.value.attempts == 3  # 1 try + 2 retries
        assert excinfo.value.cause is boom

    def test_non_retryable_exception_propagates_immediately(self):
        calls = []

        def bad_input():
            calls.append(1)
            raise TypeError("not transient")

        policy = RetryPolicy(max_retries=5, base_delay_s=0.0)
        with pytest.raises(TypeError):
            policy.call(bad_input, retry_on=(OSError,))
        assert len(calls) == 1

    def test_never_sleeps_past_deadline(self, monkeypatch):
        # The serve-path contract: with ~50 ms to the deadline and
        # ~1 s backoff delays, the policy must give up rather than
        # schedule a sleep that overshoots.
        import repro.resilience.retry as retry_mod

        clock = _Clock()
        monkeypatch.setattr(retry_mod.time, "monotonic", clock)
        slept: list[float] = []

        def sleep(s: float) -> None:
            slept.append(s)
            clock.now += s

        policy = RetryPolicy(max_retries=10, base_delay_s=1.0,
                             max_delay_s=1.0)
        deadline = clock.now + 0.05
        with pytest.raises(RetriesExhausted):
            policy.call(lambda: (_ for _ in ()).throw(OSError("x")),
                        retry_on=(OSError,), deadline=deadline,
                        rng=random.Random(7), sleep=sleep)
        assert clock.now <= deadline  # never slept past it

    def test_expired_deadline_fails_without_calling(self, monkeypatch):
        import repro.resilience.retry as retry_mod

        clock = _Clock()
        monkeypatch.setattr(retry_mod.time, "monotonic", clock)
        calls = []
        policy = RetryPolicy(max_retries=3)
        with pytest.raises(RetriesExhausted) as excinfo:
            policy.call(lambda: calls.append(1),
                        deadline=clock.now - 1.0)
        assert calls == []
        assert excinfo.value.attempts == 0

    def test_on_retry_hook_observes_each_retry(self):
        seen = []
        policy = RetryPolicy(max_retries=2, base_delay_s=0.0)
        with pytest.raises(RetriesExhausted):
            policy.call(lambda: (_ for _ in ()).throw(OSError("x")),
                        retry_on=(OSError,), rng=random.Random(0),
                        on_retry=lambda k, exc, d: seen.append(k))
        assert seen == [0, 1]

    def test_zero_retries_is_a_plain_call(self):
        policy = RetryPolicy(max_retries=0)
        with pytest.raises(RetriesExhausted) as excinfo:
            policy.call(lambda: (_ for _ in ()).throw(OSError("x")),
                        retry_on=(OSError,))
        assert excinfo.value.attempts == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = _Clock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("reset_after_s", 30.0)
        return CircuitBreaker(clock=clock, **kwargs), clock

    def test_opens_after_consecutive_failures(self):
        br, _ = self._breaker()
        for _ in range(2):
            br.record_failure()
        assert br.state == "closed" and br.allow()
        br.record_failure()
        assert br.state == "open" and not br.allow()

    def test_success_resets_the_failure_run(self):
        br, _ = self._breaker()
        br.record_failure()
        br.record_failure()
        br.record_success()  # run broken: counter restarts
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"

    def test_half_open_probe_after_reset_window(self):
        br, clock = self._breaker()
        for _ in range(3):
            br.record_failure()
        assert not br.allow()
        clock.now += 30.0
        assert br.state == "half-open"
        assert br.allow()        # exactly one probe slot
        assert not br.allow()    # second caller still shed
        br.record_success()
        assert br.state == "closed" and br.allow()

    def test_half_open_failure_reopens(self):
        br, clock = self._breaker()
        for _ in range(3):
            br.record_failure()
        clock.now += 30.0
        assert br.allow()
        br.record_failure()
        assert br.state == "open" and not br.allow()
        # ... and the reset window starts over.
        clock.now += 30.0
        assert br.allow()

    def test_snapshot_is_json_able(self):
        import json

        br, _ = self._breaker()
        br.record_failure()
        snap = br.snapshot()
        assert snap["state"] == "closed"
        assert snap["consecutive_failures"] == 1
        json.dumps(snap)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after_s=-1.0)
