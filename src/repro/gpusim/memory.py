"""Simulated GPU memories with access-pattern accounting.

:class:`GlobalMemory` models the device DRAM: named typed buffers with
bounds checking and, per warp-wide access, a count of the 128-byte
transaction segments touched — perfectly coalesced accesses produce
one segment per 32 four-byte lanes, strided ones up to 32.

:class:`SharedMemory` models one block's on-chip scratchpad: a word
array divided across 32 banks; a warp access hitting the same bank at
different word addresses serialises, and the conflict degree is
recorded (paper §I discusses both hazards as the key to CUDA
performance, which is why the simulator accounts for them).

Both memories carry an optional :class:`~repro.gpusim.trace.AccessTracer`
(the ``tracer`` attribute, normally attached by
:func:`~repro.gpusim.kernel.launch_kernel`): when set, every element
access is reported with its flat address, which is what the
:mod:`repro.analyze` race detector consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from ..resilience.faults import should_inject
from .errors import MemoryFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .trace import AccessTracer

__all__ = ["MemoryStats", "GlobalMemory", "SharedMemory"]

#: Scalar element index: an int, or one int per buffer dimension.
Index = Any


@dataclass
class MemoryStats:
    """Aggregated access statistics for one memory object."""

    loads: int = 0
    stores: int = 0
    load_transactions: int = 0
    store_transactions: int = 0
    bank_conflict_cycles: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0

    def merge(self, other: "MemoryStats") -> None:
        """Accumulate ``other`` into this object."""
        self.loads += other.loads
        self.stores += other.stores
        self.load_transactions += other.load_transactions
        self.store_transactions += other.store_transactions
        self.bank_conflict_cycles += other.bank_conflict_cycles
        self.bytes_loaded += other.bytes_loaded
        self.bytes_stored += other.bytes_stored


def _flat_elements(buf: np.ndarray, index: Index) -> np.ndarray:
    """Flat element addresses a scalar index touches (tracer currency).

    Fast paths cover the kernel idioms (an int into a 1-d buffer, a
    full tuple of ints); anything fancier falls back to indexing an
    address grid, which is exact for every NumPy indexing form.
    """
    if isinstance(index, tuple) and len(index) == buf.ndim \
            and all(np.ndim(i) == 0 for i in index):
        flat = 0
        for i, dim in zip(index, buf.shape):
            flat = flat * dim + int(i) % dim
        return np.array([flat], dtype=np.int64)
    if np.ndim(index) == 0 and buf.ndim == 1:
        return np.array([int(index) % buf.size], dtype=np.int64)
    grid = np.arange(buf.size, dtype=np.int64).reshape(buf.shape)
    return np.atleast_1d(np.asarray(grid[index], dtype=np.int64)).reshape(-1)


class GlobalMemory:
    """Named, typed device buffers with coalescing accounting.

    Buffers are allocated with :meth:`alloc` (or adopted from host
    arrays with :meth:`from_host`) and accessed per element.  Warp-wide
    accesses should go through :meth:`warp_load` / :meth:`warp_store`
    so the transaction count reflects coalescing; scalar accesses count
    one transaction each.
    """

    def __init__(self, capacity_bytes: int | None = None,
                 segment_bytes: int = 128) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._capacity = capacity_bytes
        self._segment = segment_bytes
        self.stats = MemoryStats()
        self.tracer: Optional["AccessTracer"] = None

    # -- allocation ---------------------------------------------------
    def alloc(self, name: str, shape: int | tuple[int, ...],
              dtype: Any) -> np.ndarray:
        """Allocate a zeroed device buffer; returns the backing array."""
        if name in self._buffers:
            raise MemoryFault(f"buffer {name!r} already allocated")
        arr = np.zeros(shape, dtype=dtype)
        self._check_capacity(extra=arr.nbytes)
        self._buffers[name] = arr
        return arr

    def from_host(self, name: str, host: np.ndarray) -> np.ndarray:
        """Copy a host array into a new device buffer (cudaMemcpy H2D)."""
        if name in self._buffers:
            raise MemoryFault(f"buffer {name!r} already allocated")
        self._check_capacity(extra=host.nbytes)
        self._buffers[name] = np.array(host, copy=True)
        return self._buffers[name]

    def free(self, name: str) -> None:
        """Release a buffer."""
        self._buffers.pop(name, None)

    def buffer(self, name: str) -> np.ndarray:
        """Direct handle to a buffer (host-side inspection)."""
        try:
            return self._buffers[name]
        except KeyError:
            raise MemoryFault(f"no buffer named {name!r}") from None

    def _check_capacity(self, extra: int) -> None:
        if self._capacity is None:
            return
        used = sum(b.nbytes for b in self._buffers.values())
        if used + extra > self._capacity:
            raise MemoryFault(
                f"device memory exhausted: {used + extra} bytes needed, "
                f"{self._capacity} available"
            )

    @staticmethod
    def _chaos(op: str, name: str) -> None:
        """The ``gpusim.memory.fault`` injection site: a transient or
        permanent DRAM failure, surfaced through the same
        :class:`MemoryFault` type as an organic access error."""
        if should_inject("gpusim.memory.fault"):
            raise MemoryFault(
                f"injected fault (site gpusim.memory.fault): {op} on "
                f"buffer {name!r} failed"
            )

    # -- element access ------------------------------------------------
    def load(self, name: str, index: Index) -> Any:
        """Scalar load (one transaction)."""
        self._chaos("load", name)
        buf = self.buffer(name)
        try:
            value = buf[index]
        except IndexError:
            raise MemoryFault(
                f"load out of bounds on buffer {name!r}: index {index!r} "
                f"not within shape {buf.shape}"
            ) from None
        self.stats.loads += 1
        self.stats.load_transactions += 1
        self.stats.bytes_loaded += buf.itemsize
        if self.tracer is not None:
            self.tracer.record_global(name, _flat_elements(buf, index),
                                      is_store=False)
        return value

    def store(self, name: str, index: Index, value: Any) -> None:
        """Scalar store (one transaction)."""
        self._chaos("store", name)
        buf = self.buffer(name)
        try:
            buf[index] = value
        except IndexError:
            raise MemoryFault(
                f"store out of bounds on buffer {name!r}: index {index!r} "
                f"not within shape {buf.shape}"
            ) from None
        self.stats.stores += 1
        self.stats.store_transactions += 1
        self.stats.bytes_stored += buf.itemsize
        if self.tracer is not None:
            self.tracer.record_global(name, _flat_elements(buf, index),
                                      is_store=True)

    # -- warp-wide access ----------------------------------------------
    def _transactions(self, buf: np.ndarray, flat_indices: np.ndarray) -> int:
        byte_addrs = np.asarray(flat_indices, dtype=np.int64) * buf.itemsize
        segments = np.unique(byte_addrs // self._segment)
        return len(segments)

    def warp_load(self, name: str, flat_indices: Any) -> np.ndarray:
        """Load one element per lane (flat indices); counts coalescing."""
        self._chaos("warp load", name)
        buf = self.buffer(name)
        flat = np.asarray(flat_indices, dtype=np.int64)
        if flat.size and (flat.min() < 0 or flat.max() >= buf.size):
            raise MemoryFault(
                f"warp load out of bounds on buffer {name!r} "
                f"(size {buf.size}, indices {flat.min()}..{flat.max()})"
            )
        self.stats.loads += int(flat.size)
        self.stats.load_transactions += self._transactions(buf, flat)
        self.stats.bytes_loaded += int(flat.size) * buf.itemsize
        if self.tracer is not None:
            self.tracer.record_global(name, flat, is_store=False)
        return buf.reshape(-1)[flat]

    def warp_store(self, name: str, flat_indices: Any, values: Any) -> None:
        """Store one element per lane (flat indices); counts coalescing."""
        self._chaos("warp store", name)
        buf = self.buffer(name)
        flat = np.asarray(flat_indices, dtype=np.int64)
        if flat.size and (flat.min() < 0 or flat.max() >= buf.size):
            raise MemoryFault(
                f"warp store out of bounds on buffer {name!r} "
                f"(size {buf.size}, indices {flat.min()}..{flat.max()})"
            )
        buf.reshape(-1)[flat] = values
        self.stats.stores += int(flat.size)
        self.stats.store_transactions += self._transactions(buf, flat)
        self.stats.bytes_stored += int(flat.size) * buf.itemsize
        if self.tracer is not None:
            self.tracer.record_global(name, flat, is_store=True)


class SharedMemory:
    """One block's shared memory: a word array with bank accounting.

    Words are 4 bytes; word ``a`` lives in bank ``a % banks``.  A warp
    access costs ``max(count of distinct words per bank)`` cycles; the
    excess over 1 is recorded as conflict cycles.
    """

    def __init__(self, n_words: int, banks: int = 32,
                 capacity_bytes: int | None = None,
                 name: str = "shared") -> None:
        if capacity_bytes is not None and n_words * 4 > capacity_bytes:
            raise MemoryFault(
                f"shared allocation of {n_words * 4} bytes exceeds the "
                f"{capacity_bytes}-byte block limit"
            )
        self._data = np.zeros(n_words, dtype=np.uint64)
        self._banks = banks
        self.name = name
        self.stats = MemoryStats()
        self.tracer: Optional["AccessTracer"] = None

    def __len__(self) -> int:
        return len(self._data)

    def _account(self, indices: Any, is_store: bool) -> np.ndarray:
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        if idx.size and (idx.min() < 0 or idx.max() >= len(self._data)):
            bad = idx[(idx < 0) | (idx >= len(self._data))]
            raise MemoryFault(
                f"{'store' if is_store else 'load'} out of bounds on "
                f"{self.name} memory: "
                f"{'index' if bad.size == 1 else 'indices'} "
                f"{', '.join(str(int(b)) for b in bad[:8])}"
                f"{', ...' if bad.size > 8 else ''} "
                f"not within 0..{len(self._data) - 1}"
            )
        words = np.unique(idx)
        banks = words % self._banks
        _, counts = np.unique(banks, return_counts=True)
        degree = int(counts.max()) if counts.size else 1
        self.stats.bank_conflict_cycles += degree - 1
        if is_store:
            self.stats.stores += int(idx.size)
            self.stats.bytes_stored += int(idx.size) * 4
        else:
            self.stats.loads += int(idx.size)
            self.stats.bytes_loaded += int(idx.size) * 4
        if self.tracer is not None:
            self.tracer.record_shared(self, idx.reshape(-1),
                                      is_store=is_store)
        return idx

    def load(self, index: int) -> int:
        """Single-lane load."""
        self._account([index], is_store=False)
        return int(self._data[index])

    def store(self, index: int, value: int) -> None:
        """Single-lane store."""
        self._account([index], is_store=True)
        self._data[index] = value

    def warp_load(self, indices: Any) -> np.ndarray:
        """Warp-wide load with bank-conflict accounting."""
        self._account(indices, is_store=False)
        return self._data[np.asarray(indices, dtype=np.int64)].copy()

    def warp_store(self, indices: Any, values: Any) -> None:
        """Warp-wide store with bank-conflict accounting."""
        self._account(indices, is_store=True)
        self._data[np.asarray(indices, dtype=np.int64)] = values
