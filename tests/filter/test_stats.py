"""Tests for repro.filter.stats: null models and threshold selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.filter.stats import NullModel, fit_null_model, suggest_threshold
from repro.swa.scoring import ScoringScheme

SCHEME = ScoringScheme(2, 1, 1)


@pytest.fixture(scope="module")
def null() -> NullModel:
    return fit_null_model(16, 128, SCHEME, samples=512, seed=1)


class TestFit:
    def test_shapes_recorded(self, null):
        assert (null.m, null.n) == (16, 128)
        assert len(null.samples) == 512
        assert (np.diff(null.samples) >= 0).all()

    def test_scores_in_valid_range(self, null):
        assert null.samples.min() >= 0
        assert null.samples.max() <= 32  # c1 * m

    def test_gumbel_params_sane(self, null):
        # Location near the bulk of the distribution, positive scale.
        assert null.samples.min() <= null.gumbel_loc <= \
            null.samples.max()
        assert null.gumbel_scale > 0

    def test_reproducible(self):
        a = fit_null_model(8, 32, SCHEME, samples=64, seed=7)
        b = fit_null_model(8, 32, SCHEME, samples=64, seed=7)
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_null_model(8, 32, SCHEME, samples=4)


class TestPValues:
    def test_empirical_monotone(self, null):
        ps = [null.empirical_pvalue(s) for s in range(0, 33, 4)]
        assert all(a >= b for a, b in zip(ps, ps[1:]))

    def test_empirical_extremes(self, null):
        assert null.empirical_pvalue(0) == pytest.approx(1.0, abs=0.01)
        assert null.empirical_pvalue(33) == pytest.approx(
            1 / 513, abs=1e-6
        )

    def test_gumbel_close_to_empirical_in_bulk(self, null):
        """Near the median the fit and the sample should agree within
        a few percentage points."""
        med = float(np.median(null.samples))
        emp = null.empirical_pvalue(med)
        gum = null.gumbel_pvalue(med)
        assert abs(emp - gum) < 0.15

    def test_quantile_validation(self, null):
        with pytest.raises(ValueError):
            null.quantile(1.5)


class TestThreshold:
    def test_threshold_controls_null_pass_rate(self, null):
        tau = suggest_threshold(null, alpha=0.05, method="empirical")
        pass_rate = (null.samples > tau).mean()
        assert pass_rate <= 0.05

    def test_gumbel_threshold_reasonable(self, null):
        tau = suggest_threshold(null, alpha=1e-3)
        # Above the null bulk, below the hard ceiling.
        assert null.quantile(0.9) < tau <= 40

    def test_smaller_alpha_larger_tau(self, null):
        t1 = suggest_threshold(null, alpha=1e-2)
        t2 = suggest_threshold(null, alpha=1e-5)
        assert t2 >= t1

    def test_threshold_separates_planted_pairs(self):
        """End to end: a Gumbel threshold at alpha=1e-3 keeps random
        pairs out and lets planted homologies through."""
        from repro.filter.screening import screen_pairs
        from repro.workloads.dna import MutationModel, homologous_pairs

        null = fit_null_model(24, 96, SCHEME, samples=512, seed=2)
        tau = suggest_threshold(null, alpha=1e-3)
        rng = np.random.default_rng(3)
        X, Y, labels = homologous_pairs(
            rng, 60, 24, 96, related_fraction=0.5,
            model=MutationModel(sub_rate=0.02),
        )
        res = screen_pairs(X, Y, tau, SCHEME, align_survivors=False)
        passed = res.scores > tau
        assert passed[labels].mean() > 0.8
        assert passed[~labels].mean() < 0.1

    def test_validation(self, null):
        with pytest.raises(ValueError):
            suggest_threshold(null, alpha=0.0)
        with pytest.raises(ValueError):
            suggest_threshold(null, alpha=0.5, method="bayes")
