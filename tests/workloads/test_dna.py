"""Tests for repro.workloads: generators, mutation channel, datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_max_score
from repro.workloads.datasets import paper_workload, sweep_workloads
from repro.workloads.dna import (
    MutationModel,
    homologous_pairs,
    mutate,
    plant_homology,
    random_strand,
    random_strands,
)


class TestRandomStrands:
    def test_shape_and_range(self, rng):
        s = random_strands(rng, 10, 50)
        assert s.shape == (10, 50)
        assert s.min() >= 0 and s.max() <= 3

    def test_reproducible(self):
        a = random_strands(np.random.default_rng(7), 4, 9)
        b = random_strands(np.random.default_rng(7), 4, 9)
        np.testing.assert_array_equal(a, b)

    def test_roughly_uniform(self, rng):
        s = random_strands(rng, 100, 100)
        counts = np.bincount(s.reshape(-1), minlength=4)
        assert counts.min() > 0.2 * s.size / 4

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            random_strands(rng, 0, 5)
        with pytest.raises(ValueError):
            random_strand(rng, 0)


class TestMutationModel:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            MutationModel(sub_rate=1.5)
        with pytest.raises(ValueError):
            MutationModel(del_rate=-0.1)

    def test_zero_rates_identity(self, rng):
        strand = random_strand(rng, 30)
        out = mutate(rng, strand, MutationModel(0, 0, 0))
        np.testing.assert_array_equal(out, strand)

    def test_substitutions_change_bases(self, rng):
        strand = random_strand(rng, 200)
        out = mutate(rng, strand, MutationModel(sub_rate=1.0))
        assert len(out) == len(strand)
        assert (out != strand).all()  # substitution is always different
        assert out.max() <= 3

    def test_deletions_shrink(self, rng):
        strand = random_strand(rng, 200)
        out = mutate(rng, strand, MutationModel(0, 0.5, 0))
        assert len(out) < 200

    def test_insertions_grow(self, rng):
        strand = random_strand(rng, 200)
        out = mutate(rng, strand, MutationModel(0, 0, 0.5))
        assert len(out) > 200


class TestPlantHomology:
    def test_planted_copy_scores_high(self, rng):
        scheme = ScoringScheme(2, 1, 1)
        pattern = random_strand(rng, 32)
        text, pos = plant_homology(rng, pattern, 200,
                                   MutationModel(sub_rate=0.03))
        planted = sw_max_score(pattern, text, scheme)
        background = sw_max_score(pattern, random_strand(rng, 200),
                                  scheme)
        assert planted > background

    def test_insert_position_in_range(self, rng):
        pattern = random_strand(rng, 16)
        for _ in range(5):
            text, pos = plant_homology(rng, pattern, 64,
                                       MutationModel(0, 0, 0))
            assert 0 <= pos <= 64 - 16
            np.testing.assert_array_equal(text[pos:pos + 16], pattern)

    def test_fragment_validation(self, rng):
        with pytest.raises(ValueError):
            plant_homology(rng, random_strand(rng, 8), 32,
                           MutationModel(), fragment=0.0)

    def test_fragment_copies_part(self, rng):
        pattern = random_strand(rng, 40)
        text, _ = plant_homology(rng, pattern, 100, MutationModel(0, 0, 0),
                                 fragment=0.5)
        scheme = ScoringScheme(2, 1, 1)
        assert sw_max_score(pattern, text, scheme) >= 2 * 20


class TestHomologousPairs:
    def test_labels_separate_scores(self, rng):
        scheme = ScoringScheme(2, 1, 1)
        X, Y, labels = homologous_pairs(rng, 40, 24, 128,
                                        related_fraction=0.5)
        assert labels.any() and not labels.all()
        rel = [sw_max_score(X[p], Y[p], scheme)
               for p in np.flatnonzero(labels)]
        unrel = [sw_max_score(X[p], Y[p], scheme)
                 for p in np.flatnonzero(~labels)]
        assert np.mean(rel) > np.mean(unrel)

    def test_fraction_validation(self, rng):
        with pytest.raises(ValueError):
            homologous_pairs(rng, 4, 8, 16, related_fraction=1.5)


class TestDatasets:
    def test_paper_workload_shape(self):
        b = paper_workload(256, pairs=100, m=16, seed=3)
        assert b.X.shape == (100, 16)
        assert b.Y.shape == (100, 256)
        assert b.pairs == 100 and b.m == 16 and b.n == 256
        assert b.cells == 100 * 16 * 256

    def test_paper_workload_reproducible(self):
        a = paper_workload(64, pairs=10, m=8, seed=1)
        b = paper_workload(64, pairs=10, m=8, seed=1)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.Y, b.Y)

    def test_sweep(self):
        ws = sweep_workloads((32, 64), pairs=8, m=4)
        assert set(ws) == {32, 64}
        assert ws[64].n == 64
