"""Tests for the bounded request queue: futures, deadlines, triggers."""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.serve.errors import DeadlineExceededError, QueueFullError
from repro.serve.queue import AlignmentRequest, RequestQueue
from repro.swa.scoring import DEFAULT_SCHEME


def make_request(rng, m=8, n=8, threshold=None, deadline=None):
    return AlignmentRequest(
        query=rng.integers(0, 4, m, dtype=np.uint8),
        subject=rng.integers(0, 4, n, dtype=np.uint8),
        scheme=DEFAULT_SCHEME, threshold=threshold, deadline=deadline,
        future=Future(), enqueued_at=time.monotonic(),
    )


class TestBackpressure:
    def test_put_rejects_when_full(self, rng):
        q = RequestQueue(maxsize=2)
        q.put(make_request(rng))
        q.put(make_request(rng))
        with pytest.raises(QueueFullError):
            q.put(make_request(rng))
        assert len(q) == 2

    def test_depth_gauge(self, rng):
        q = RequestQueue(maxsize=8)
        for _ in range(3):
            q.put(make_request(rng))
        assert q.depth == 3

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            RequestQueue(maxsize=0)


class TestDrainTriggers:
    def test_size_trigger_fires_before_wait(self, rng):
        q = RequestQueue(maxsize=64)
        for _ in range(5):
            q.put(make_request(rng))
        t0 = time.monotonic()
        batch = q.drain(max_items=5, max_wait=60.0)
        assert len(batch) == 5
        assert time.monotonic() - t0 < 5.0  # did not sit out max_wait

    def test_latency_trigger_fires_partial(self, rng):
        q = RequestQueue(maxsize=64)
        q.put(make_request(rng))
        batch = q.drain(max_items=64, max_wait=0.05)
        assert len(batch) == 1  # partial batch after the wait window

    def test_stop_event_unblocks_empty_drain(self):
        q = RequestQueue(maxsize=4)
        stop = threading.Event()
        out = []

        def drain():
            out.append(q.drain(64, 0.01, stop=stop, poll=0.01))

        t = threading.Thread(target=drain)
        t.start()
        stop.set()
        t.join(timeout=5)
        assert not t.is_alive()
        assert out == [[]]

    def test_fifo_order(self, rng):
        q = RequestQueue(maxsize=16)
        reqs = [make_request(rng) for _ in range(4)]
        for r in reqs:
            q.put(r)
        assert q.drain(4, 1.0) == reqs


class TestDeadlines:
    def test_expired_request_fails_not_hangs(self, rng):
        q = RequestQueue(maxsize=4)
        dead = make_request(rng, deadline=time.monotonic() - 0.01)
        live = make_request(rng)
        q.put(dead)
        q.put(live)
        batch = q.drain(4, 0.01)
        assert batch == [live]
        with pytest.raises(DeadlineExceededError):
            dead.future.result(timeout=1)

    def test_on_expired_hook(self, rng):
        seen = []
        q = RequestQueue(maxsize=4, on_expired=seen.append)
        dead = make_request(rng, deadline=time.monotonic() - 0.01)
        live = make_request(rng)
        q.put(dead)
        q.put(live)  # drain blocks until a *live* request shows up
        assert q.drain(4, 0.01) == [live]
        assert seen == [dead]

    def test_future_resolution_computes_passed(self, rng):
        req = make_request(rng, threshold=10)
        req.resolve(11)
        assert req.future.result(timeout=1).passed is True
        req2 = make_request(rng, threshold=10)
        req2.resolve(10)  # equal to tau: strictly-greater means fail
        assert req2.future.result(timeout=1).passed is False

    def test_fail_all(self, rng):
        q = RequestQueue(maxsize=4)
        reqs = [make_request(rng) for _ in range(3)]
        for r in reqs:
            q.put(r)
        assert q.fail_all(RuntimeError("bye")) == 3
        for r in reqs:
            with pytest.raises(RuntimeError):
                r.future.result(timeout=1)
