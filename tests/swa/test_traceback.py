"""Tests for repro.swa.traceback: alignment extraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_matrix
from repro.swa.traceback import (
    Alignment,
    align,
    format_alignment,
    traceback,
)

SCHEME = ScoringScheme(2, 1, 1)
dna = st.text(alphabet="ACGT", min_size=1, max_size=20)


def _score_alignment(a: Alignment, scheme: ScoringScheme) -> int:
    score = 0
    for p, q in zip(a.aligned_x, a.aligned_y):
        if p == "-" or q == "-":
            score -= scheme.gap_penalty
        elif p == q:
            score += scheme.match_score
        else:
            score -= scheme.mismatch_penalty
    return score


class TestTraceback:
    def test_table2_alignment(self):
        """The paper's example: the best local alignment pairs
        x2..x5 = ACTG with y3..y6 = ACTG (1-based), score 8."""
        a = align("TACTG", "GAACTGA", SCHEME)
        assert a.score == 8
        assert a.aligned_x == "ACTG"
        assert a.aligned_y == "ACTG"
        assert (a.x_start, a.x_end) == (1, 5)
        assert (a.y_start, a.y_end) == (2, 6)
        assert a.identity == 1.0

    def test_perfect_match(self):
        a = align("ACGT", "ACGT", SCHEME)
        assert a.score == 8
        assert a.length == 4
        assert a.identity == 1.0

    def test_gap_in_x(self):
        a = align("ACGT", "ACT", SCHEME)
        assert a.score == 5
        assert "-" in a.aligned_y
        assert a.aligned_x.replace("-", "") in "ACGT"

    def test_no_similarity(self):
        a = align("AAAA", "TTTT", SCHEME)
        assert a.score == 0
        assert a.length == 0

    def test_alignment_rows_equal_length(self, rng):
        from repro.workloads.dna import random_strand
        from repro.core.encoding import decode

        x = decode(random_strand(rng, 10))
        y = decode(random_strand(rng, 15))
        a = align(x, y, SCHEME)
        assert len(a.aligned_x) == len(a.aligned_y)

    def test_alignment_substrings_match_ranges(self):
        a = align("TACTG", "GAACTGA", SCHEME)
        assert a.aligned_x.replace("-", "") == "TACTG"[a.x_start:a.x_end]
        assert a.aligned_y.replace("-", "") == "GAACTGA"[a.y_start:a.y_end]

    def test_explicit_end_cell(self):
        x, y = "TACTG", "GAACTGA"
        d = sw_matrix(x, y, SCHEME)
        a = traceback(d, x, y, SCHEME, end=(4, 5))
        assert a.score == int(d[4, 5]) == 6

    def test_shape_mismatch_rejected(self):
        d = np.zeros((3, 3))
        with pytest.raises(ValueError):
            traceback(d, "ACGT", "ACG", SCHEME)

    def test_format_alignment(self):
        text = format_alignment(align("TACTG", "GAACTGA", SCHEME))
        assert "score=8" in text
        assert "ACTG" in text
        assert "||||" in text

    @settings(max_examples=40, deadline=None)
    @given(dna, dna)
    def test_reconstructed_score_property(self, x, y):
        """Re-scoring the gapped alignment rows reproduces the DP
        score — the fundamental traceback correctness property."""
        a = align(x, y, SCHEME)
        assert _score_alignment(a, SCHEME) == a.score
        assert a.score == int(sw_matrix(x, y, SCHEME).max())
