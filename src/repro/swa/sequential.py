"""Sequential wordwise Smith-Waterman (paper §III) — the gold standard.

Pure-Python dynamic programming, written for clarity and used as the
correctness oracle for every other engine in the library.  The layout
follows the paper: the scoring matrix has a zero boundary row/column
(index -1 in the paper; row/column 0 here) and cell ``(i, j)`` scores
``x_i`` against ``y_j``.
"""

from __future__ import annotations

import numpy as np

from .scoring import ScoringScheme

__all__ = ["sw_matrix", "sw_max_score", "sw_matrix_strings"]


def sw_matrix(x, y, scheme: ScoringScheme) -> np.ndarray:
    """Full ``(m+1) x (n+1)`` scoring matrix (row/col 0 are the zero
    boundary).

    ``x`` and ``y`` are sequences of comparable items (code arrays or
    strings).  O(mn) time, O(mn) space; intended for validation and for
    traceback of screened survivors, not for bulk throughput.
    """
    m, n = len(x), len(y)
    d = np.zeros((m + 1, n + 1), dtype=np.int64)
    c1 = scheme.match_score
    c2 = scheme.mismatch_penalty
    gap = scheme.gap_penalty
    for i in range(1, m + 1):
        xi = x[i - 1]
        for j in range(1, n + 1):
            diag = d[i - 1, j - 1] + (c1 if xi == y[j - 1] else -c2)
            up = d[i - 1, j] - gap
            left = d[i, j - 1] - gap
            best = diag
            if up > best:
                best = up
            if left > best:
                best = left
            d[i, j] = best if best > 0 else 0
    return d

def sw_matrix_strings(x: str, y: str,
                      scheme: ScoringScheme | None = None) -> np.ndarray:
    """String-input convenience wrapper around :func:`sw_matrix`."""
    from .scoring import DEFAULT_SCHEME

    return sw_matrix(x, y, scheme or DEFAULT_SCHEME)


def sw_max_score(x, y, scheme: ScoringScheme) -> int:
    """Maximum cell of the scoring matrix (what the BPBC pipeline
    reports per pair)."""
    return int(sw_matrix(x, y, scheme).max())
