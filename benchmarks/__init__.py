"""Benchmark suite (pytest-benchmark): one module per paper table."""
