"""Compiled SW-cell factories and the fused wavefront step.

:func:`compiled_sw_cell`
    LRU-cached ``(s, gap, c1, c2, eps, word_bits)`` →
    :class:`~repro.jit.compiler.CompiledNetlist` of the plain SW-cell
    circuit — a drop-in for ``build_sw_cell_netlist(...).evaluate``.

:func:`sw_wavefront_step`
    LRU-cached factory for the engine's hot loop: the SW cell *fused*
    with the running-max update
    (:func:`repro.core.netlist.build_sw_cell_best_netlist`), lowered to
    either a native step kernel (``backend="c"``, via
    :mod:`repro.jit.cbackend`) or a generated zero-alloc NumPy function
    (``backend="numpy"``).  ``backend="auto"`` prefers native and
    silently falls back when no C toolchain is available — results are
    bit-identical either way (pinned by the differential fuzz suite).

Both caches key on plain ints, so repeated engine calls reuse the same
compiled artifact instead of re-synthesising and re-lowering the
circuit.  Memoisation makes the artifacts process-wide shared objects,
and both are safe to call concurrently: the C kernel is stateless, and
the generated-NumPy evaluator keeps its scratch pools in thread-local
storage (see :class:`~repro.jit.compiler.CompiledNetlist`), which is
what lets serve's multi-threaded ``EnginePool`` drive them.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.netlist import (build_gotoh_cell_best_netlist,
                            build_subst_sw_cell_best_netlist,
                            build_sw_cell_best_netlist,
                            build_sw_cell_netlist)
from . import cbackend
from .compiler import CompiledNetlist, JitError, plan_netlist

__all__ = ["compiled_sw_cell", "sw_wavefront_step",
           "subst_wavefront_step", "gotoh_wavefront_step", "NumpyStep",
           "CStep", "GotohNumpyStep"]


@lru_cache(maxsize=128)
def _compiled_sw_cell_cached(s: int, gap: int, c1: int, c2: int,
                             eps: int, word_bits: int) -> CompiledNetlist:
    net = build_sw_cell_netlist(s, gap, c1, c2, eps=eps)
    return CompiledNetlist(net, word_bits, name=f"sw_cell[s={s}]")


def compiled_sw_cell(s: int, gap: int, c1: int, c2: int, eps: int = 2,
                     word_bits: int = 64) -> CompiledNetlist:
    """A compiled SW-cell evaluator (memoised per parameter tuple).

    Repeated calls with equal parameters return the *same*
    :class:`~repro.jit.compiler.CompiledNetlist` — its temporary pools
    warm up once per process, after which every evaluation is
    allocation-free.
    """
    return _compiled_sw_cell_cached(int(s), int(gap), int(c1), int(c2),
                                    int(eps), int(word_bits))


class NumpyStep:
    """One fused wavefront step via the generated-NumPy evaluator.

    Calling convention matches the zero-copy engine loop: ``p1``/``p2``
    are the ``(s, m + 1, lanes)`` row-padded state planes of diagonals
    ``t - 1`` / ``t - 2`` (padded row 0 permanently zero), ``best`` the
    ``(s, m, lanes)`` running maxima, ``Xp``/``Yp`` the character
    planes.  Fresh cell planes are written straight into the
    destination rows of ``p2`` and the new maxima into ``best`` — the
    compiled function computes everything into pooled temporaries
    before its trailing output copies, so the in-place aliasing is
    safe.
    """

    backend = "numpy"

    def __init__(self, compiled: CompiledNetlist, s: int, eps: int) -> None:
        self.compiled = compiled
        self.source = compiled.source
        self._s = s
        self._eps = eps

    def __call__(self, p1: np.ndarray, p2: np.ndarray, best: np.ndarray,
                 Xp: np.ndarray, Yp: np.ndarray,
                 t: int, lo: int, hi: int) -> None:
        s, eps = self._s, self._eps
        up = slice(lo, hi + 1)          # padded index i  -> row i - 1
        dst = slice(lo + 1, hi + 2)     # padded index i + 1 -> row i
        # Row r of the active band aligns with y position t - r; the
        # reversed slice view realises that gather with no copy.
        ins = ([p1[h, up] for h in range(s)]
               + [p1[h, dst] for h in range(s)]
               + [p2[h, up] for h in range(s)]
               + [Xp[b, up] for b in range(eps)]
               + [Yp[b, t - hi:t - lo + 1][::-1] for b in range(eps)]
               + [best[h, up] for h in range(s)])
        outs = ([p2[h, dst] for h in range(s)]
                + [best[h, up] for h in range(s)])
        self.compiled.run(ins, outs)


class CStep:
    """One fused wavefront step as a native kernel (see cbackend)."""

    backend = "c"

    def __init__(self, fn, source: str) -> None:
        self.fn = fn
        self.source = source


@lru_cache(maxsize=64)
def _step_cached(s: int, gap: int, c1: int, c2: int, eps: int,
                 word_bits: int, backend: str):
    net = build_sw_cell_best_netlist(s, gap, c1, c2, eps=eps)
    if backend in ("auto", "c"):
        try:
            plan = plan_netlist(net)
            source = cbackend.c_step_source(plan, s, eps, word_bits)
            return CStep(cbackend.compile_step(source), source)
        except JitError:
            if backend == "c":
                raise
    compiled = CompiledNetlist(net, word_bits,
                               name=f"sw_cell_best[s={s}]")
    return NumpyStep(compiled, s, eps)


def sw_wavefront_step(s: int, gap: int, c1: int, c2: int, eps: int,
                      word_bits: int, backend: str = "auto"):
    """The fused cell + running-max step for one scoring configuration.

    ``backend``: ``"auto"`` (native when a C compiler is present,
    NumPy otherwise), ``"c"`` (native or raise
    :class:`~repro.jit.compiler.JitError`), or ``"numpy"``.  Returns a
    :class:`CStep` or :class:`NumpyStep`; inspect ``.backend`` and
    ``.source``.  Memoised — one lowering per configuration per
    process.
    """
    _check_backend(backend)
    return _step_cached(int(s), int(gap), int(c1), int(c2), int(eps),
                        int(word_bits), backend)


def _check_backend(backend: str) -> None:
    if backend not in ("auto", "c", "numpy"):
        raise JitError(
            f"unknown jit backend {backend!r}; expected 'auto', 'c', "
            "or 'numpy'"
        )


@lru_cache(maxsize=64)
def _subst_step_cached(s: int, gap: int, weights, eps: int,
                       word_bits: int, backend: str):
    net = build_subst_sw_cell_best_netlist(s, gap, weights, eps=eps)
    if backend in ("auto", "c"):
        try:
            plan = plan_netlist(net)
            source = cbackend.c_step_source(plan, s, eps, word_bits)
            return CStep(cbackend.compile_step(source), source)
        except JitError:
            if backend == "c":
                raise
    compiled = CompiledNetlist(net, word_bits,
                               name=f"subst_sw_cell_best[s={s}]")
    return NumpyStep(compiled, s, eps)


def subst_wavefront_step(s: int, gap: int, weights, eps: int,
                         word_bits: int, backend: str = "auto"):
    """The fused substitution-matrix cell + running-max step.

    Identical calling convention and bus layout to
    :func:`sw_wavefront_step` — the mux tree of
    :mod:`repro.core.subst` replaces the equality gate, so the same C
    emitter and NumPy evaluator lower it unchanged ("the compiler sees
    just a bigger netlist").  ``weights`` is any square int table;
    memoised per hashable table form.
    """
    from ..core.subst import weights_key

    _check_backend(backend)
    return _subst_step_cached(int(s), int(gap), weights_key(weights),
                              int(eps), int(word_bits), backend)


class GotohNumpyStep:
    """One fused affine wavefront step via the generated-NumPy evaluator.

    ``h1``/``h2`` double-buffer the H planes exactly like the linear
    step's ``p1``/``p2``; ``e``/``f`` are single-buffered
    ``(s, m + 1, lanes)`` planes updated in place (safe because the
    compiled function finishes every read before its trailing output
    copies).  The caller swaps ``h1``/``h2`` after each step.
    """

    backend = "numpy"

    def __init__(self, compiled: CompiledNetlist, s: int, eps: int) -> None:
        self.compiled = compiled
        self.source = compiled.source
        self._s = s
        self._eps = eps

    def __call__(self, h1: np.ndarray, h2: np.ndarray, e: np.ndarray,
                 f: np.ndarray, best: np.ndarray,
                 Xp: np.ndarray, Yp: np.ndarray,
                 t: int, lo: int, hi: int) -> None:
        s, eps = self._s, self._eps
        up = slice(lo, hi + 1)          # padded index i  -> row i - 1
        dst = slice(lo + 1, hi + 2)     # padded index i + 1 -> row i
        ins = ([h1[h, dst] for h in range(s)]       # H[i][j-1]
               + [e[h, dst] for h in range(s)]      # E[i][j-1]
               + [h1[h, up] for h in range(s)]      # H[i-1][j]
               + [f[h, up] for h in range(s)]       # F[i-1][j]
               + [h2[h, up] for h in range(s)]      # H[i-1][j-1]
               + [Xp[b, up] for b in range(eps)]
               + [Yp[b, t - hi:t - lo + 1][::-1] for b in range(eps)]
               + [best[h, up] for h in range(s)])
        outs = ([h2[h, dst] for h in range(s)]
                + [e[h, dst] for h in range(s)]
                + [f[h, dst] for h in range(s)]
                + [best[h, up] for h in range(s)])
        self.compiled.run(ins, outs)


@lru_cache(maxsize=64)
def _gotoh_step_cached(s: int, go: int, ge: int, c1, c2, weights,
                       eps: int, word_bits: int, backend: str):
    net = build_gotoh_cell_best_netlist(s, go, ge, c1=c1, c2=c2,
                                        weights=weights, eps=eps)
    if backend in ("auto", "c"):
        try:
            plan = plan_netlist(net)
            source = cbackend.c_gotoh_step_source(plan, s, eps, word_bits)
            fn = cbackend.compile_step(source,
                                       symbol=cbackend.GOTOH_STEP_SYMBOL,
                                       num_ptr_args=7)
            return CStep(fn, source)
        except JitError:
            if backend == "c":
                raise
    compiled = CompiledNetlist(net, word_bits,
                               name=f"gotoh_cell_best[s={s}]")
    return GotohNumpyStep(compiled, s, eps)


def gotoh_wavefront_step(s: int, gap_open: int, gap_extend: int,
                         eps: int, word_bits: int,
                         backend: str = "auto", c1: int | None = None,
                         c2: int | None = None, weights=None):
    """The fused affine (Gotoh) cell + running-max step.

    The diagonal term is the DNA equality gate with ``c1``/``c2`` or
    the substitution mux tree with ``weights`` (exactly one of the
    two).  Returns a :class:`CStep` (seven-pointer native kernel, see
    :func:`repro.jit.cbackend.c_gotoh_step_source`) or a
    :class:`GotohNumpyStep`.  Memoised per configuration.
    """
    from ..core.subst import weights_key

    _check_backend(backend)
    wk = None if weights is None else weights_key(weights)
    c1i = None if c1 is None else int(c1)
    c2i = None if c2 is None else int(c2)
    return _gotoh_step_cached(int(s), int(gap_open), int(gap_extend),
                              c1i, c2i, wk, int(eps), int(word_bits),
                              backend)
