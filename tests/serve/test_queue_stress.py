"""Concurrency stress: 16 producers against the bounded queue.

The queue's contract under contention: every request either enters
the queue (and its future later resolves exactly once) or is rejected
with ``QueueFullError`` (and its future never resolves) — nothing is
lost, nothing is delivered twice, and the shed count adds up.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np

import pytest

from repro.serve import AlignmentService
from repro.serve.errors import DeadlineExceededError, QueueFullError
from repro.serve.queue import AlignmentRequest, RequestQueue
from repro.swa.scoring import DEFAULT_SCHEME

PRODUCERS = 16
PER_PRODUCER = 200
QUEUE_SIZE = 64


def _tagged_request(tag: int,
                    deadline: float | None = None) -> AlignmentRequest:
    # The threshold field doubles as a unique tag: the consumer echoes
    # it back as the score, so delivery is traceable end to end.
    return AlignmentRequest(
        query=np.zeros(4, dtype=np.uint8),
        subject=np.zeros(4, dtype=np.uint8),
        scheme=DEFAULT_SCHEME, threshold=tag, deadline=deadline,
        future=Future(), enqueued_at=time.monotonic(),
    )


def test_sixteen_producers_no_lost_or_duplicated_futures():
    queue = RequestQueue(maxsize=QUEUE_SIZE)
    accepted: list[list[AlignmentRequest]] = [[] for _ in range(PRODUCERS)]
    rejected: list[list[AlignmentRequest]] = [[] for _ in range(PRODUCERS)]
    consumed: list[int] = []
    stop = threading.Event()
    start = threading.Barrier(PRODUCERS + 1)

    def producer(tid: int) -> None:
        start.wait()
        for i in range(PER_PRODUCER):
            req = _tagged_request(tid * PER_PRODUCER + i)
            try:
                queue.put(req)
            except QueueFullError:
                rejected[tid].append(req)
            else:
                accepted[tid].append(req)

    def consumer() -> None:
        start.wait()
        while not stop.is_set() or len(queue):
            for req in queue.drain(32, 0.001, stop=stop):
                req.resolve(req.threshold)
                consumed.append(req.threshold)

    threads = [threading.Thread(target=producer, args=(t,))
               for t in range(PRODUCERS)]
    threads.append(threading.Thread(target=consumer))
    for t in threads:
        t.start()
    for t in threads[:-1]:
        t.join(timeout=60)
    stop.set()
    threads[-1].join(timeout=60)
    assert not any(t.is_alive() for t in threads)

    n_accepted = sum(len(a) for a in accepted)
    n_rejected = sum(len(r) for r in rejected)
    assert n_accepted + n_rejected == PRODUCERS * PER_PRODUCER
    assert n_accepted >= QUEUE_SIZE  # the queue did absorb work

    # Exactly the accepted tags were consumed — once each.
    accepted_tags = sorted(r.threshold for a in accepted for r in a)
    assert sorted(consumed) == accepted_tags
    assert len(set(consumed)) == len(consumed)
    assert len(queue) == 0

    # Every accepted future resolved with its own tag; no rejected
    # future was ever touched.
    for reqs in accepted:
        for req in reqs:
            assert req.future.done()
            assert req.future.result(timeout=0).score == req.threshold
    for reqs in rejected:
        for req in reqs:
            assert not req.future.done()


class TestDeadlineExpiryEdges:
    """Deadline boundary semantics at the queue layer."""

    def test_expiry_exactly_at_pop_time_counts_as_expired(self):
        # deadline uses >= : a request popped at precisely its deadline
        # instant is expired, not "just barely live".
        req = _tagged_request(0, deadline=1000.0)
        assert req.expired(now=1000.0)
        assert not req.expired(now=999.999999)

    def test_queue_fails_request_expired_at_pop(self):
        expired_seen: list[AlignmentRequest] = []
        queue = RequestQueue(maxsize=8, on_expired=expired_seen.append)
        dead = _tagged_request(1, deadline=time.monotonic() - 0.01)
        live = _tagged_request(2)
        queue.put(dead)
        queue.put(live)
        got = queue.drain(8, 0.0)
        # Only the live request reaches the engine side ...
        assert [r.threshold for r in got] == [2]
        # ... the expired one's future is already failed, typed.
        assert dead.future.done()
        with pytest.raises(DeadlineExceededError):
            dead.future.result(timeout=0)
        # The stats hook fired exactly once, for exactly that request.
        assert expired_seen == [dead]
        assert len(queue) == 0

    def test_request_expiring_after_pop_is_still_answered(self):
        # The dispatch-time contract: expiry is enforced at pop, so a
        # request that goes stale *after* being drained (while packed
        # into a lane) is answered late rather than dropped.
        queue = RequestQueue(maxsize=8)
        req = _tagged_request(7, deadline=time.monotonic() + 0.05)
        queue.put(req)
        got = queue.drain(8, 0.0)
        assert got == [req]
        time.sleep(0.08)  # now past the deadline, but already popped
        assert req.expired()
        req.resolve(42)
        assert req.future.result(timeout=0).score == 42

    def test_expired_future_never_double_resolves(self):
        # After the queue fails an expired request, later resolve()
        # attempts must be no-ops on the future — the accounting (one
        # outcome per future) survives racy late deliveries.
        queue = RequestQueue(maxsize=8)
        req = _tagged_request(3, deadline=time.monotonic() - 0.01)
        queue.put(req)
        stop = threading.Event()
        stop.set()  # only the expired request is queued; don't block
        assert queue.drain(8, 0.0, stop=stop) == []
        with pytest.raises(DeadlineExceededError):
            req.future.result(timeout=0)
        req.resolve(99)  # late engine delivery: swallowed
        with pytest.raises(DeadlineExceededError):
            req.future.result(timeout=0)

    def test_mixed_batch_expiry_accounting_balances(self):
        expired_count = [0]
        queue = RequestQueue(
            maxsize=64, on_expired=lambda r: expired_count.__setitem__(
                0, expired_count[0] + 1))
        now = time.monotonic()
        reqs = [_tagged_request(
            i, deadline=(now - 0.01 if i % 3 == 0 else None))
            for i in range(30)]
        for r in reqs:
            queue.put(r)
        got = queue.drain(64, 0.0)
        n_expired = sum(1 for i in range(30) if i % 3 == 0)
        assert len(got) == 30 - n_expired
        assert expired_count[0] == n_expired
        for i, r in enumerate(reqs):
            if i % 3 == 0:
                assert r.future.done()
            else:
                assert not r.future.done()
        assert len(queue) == 0


def test_service_level_backpressure_accounting():
    """The same contract one layer up: concurrent ``submit`` against a
    small service either returns a future that resolves or raises
    ``QueueFullError``, and the stats ledger balances."""
    service = AlignmentService(engine="bpbc", workers=2, max_queue=32,
                               max_wait_ms=0.5, cache_size=0)
    futures: list[Future] = []
    counts = {"rejected": 0}
    lock = threading.Lock()
    start = threading.Barrier(PRODUCERS)
    rng = np.random.default_rng(5)
    query = rng.integers(0, 4, 8, dtype=np.uint8)
    subject = rng.integers(0, 4, 8, dtype=np.uint8)

    def producer() -> None:
        start.wait()
        for _ in range(25):
            try:
                f = service.submit(query, subject)
            except QueueFullError:
                with lock:
                    counts["rejected"] += 1
            else:
                with lock:
                    futures.append(f)

    with service:
        threads = [threading.Thread(target=producer)
                   for _ in range(PRODUCERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        results = [f.result(timeout=60) for f in futures]

    submitted = PRODUCERS * 25
    assert len(futures) + counts["rejected"] == submitted
    assert len({r.score for r in results}) <= 1  # one pair, one score
    snap = service.stats.snapshot()
    assert snap["requests_submitted"] == submitted
    assert snap["requests_rejected"] == counts["rejected"]
    assert snap["requests_completed"] == len(futures)
    assert snap["requests_failed"] == 0 and snap["requests_expired"] == 0
