"""Seeded tiered-vs-brute-force differential over random databases.

The exactness contract of :class:`repro.index.search.TieredSearch`:

* ``min_seeds=0, threshold=0`` is *exactly* brute-force
  :func:`repro.filter.database.search_database` (positive scores),
* with ``min_seeds=1`` hits are a subset of the brute-force positive
  hits and every score is *seed-anchored*: the exact optimum over the
  seed-containing windows, hence a lower bound on the entry's global
  optimum (equal whenever the best alignment overlaps a seeded
  window — the planted-homology case the tiers target).

This module fuzzes both properties over random ragged databases,
random queries with planted (mutated) homologies, rotating schemes
and shard budgets.  The seed defaults to a constant and is rotated by
CI's nightly fuzz job via ``REPRO_FUZZ_SEED``; reproduce a failure
with::

    REPRO_FUZZ_SEED=<seed> python -m pytest tests/index/test_tiered_fuzz.py
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.filter.database import search_database
from repro.index.search import TieredSearch
from repro.index.store import build_index
from repro.swa.scoring import ScoringScheme
from repro.workloads.dna import MutationModel, mutate

DEFAULT_SEED = 20260808

SEED = int(os.environ.get("REPRO_FUZZ_SEED", DEFAULT_SEED))

SCHEMES = (
    ScoringScheme(2, 1, 1),
    ScoringScheme(1, 1, 1),
    ScoringScheme(3, 2, 2),
)

ROUNDS = 6


def _random_db(rng, round_index):
    """A ragged database with planted mutated homologies."""
    n_entries = int(rng.integers(10, 30))
    entries = [rng.integers(0, 4, size=int(n),
                            dtype=np.uint8).astype(np.uint8)
               for n in rng.integers(40, 400, size=n_entries)]
    m = int(rng.integers(16, 48))
    query = rng.integers(0, 4, size=m, dtype=np.uint8).astype(np.uint8)
    model = MutationModel(sub_rate=0.1)
    for _ in range(int(rng.integers(1, 4))):
        e = int(rng.integers(0, n_entries))
        copy = mutate(rng, query, model)
        if len(copy) <= len(entries[e]):
            at = int(rng.integers(0, len(entries[e]) - len(copy) + 1))
            entries[e][at:at + len(copy)] = copy
    return entries, query


@pytest.mark.parametrize("round_index", range(ROUNDS))
def test_tiered_vs_brute_force(tmp_path, round_index):
    rng = np.random.default_rng(SEED + round_index * 7919)
    scheme = SCHEMES[round_index % len(SCHEMES)]
    entries, query = _random_db(rng, round_index)
    k = int(rng.integers(6, 13))
    w = int(rng.integers(2, 8))
    shard_chars = int(rng.integers(300, 3000))
    ctx = (f"seed={SEED} round={round_index} scheme={scheme} "
           f"k={k} w={w} shard_chars={shard_chars}")

    idx = build_index(((f"e{i}", s) for i, s in enumerate(entries)),
                      tmp_path / f"idx{round_index}", k=k, w=w,
                      shard_chars=shard_chars)
    brute = {(h.query_index, h.db_index): h.score
             for h in search_database([query], entries, scheme)}

    # Exact mode: identical positive-score hit sets.
    exact = TieredSearch(idx, scheme=scheme, min_seeds=0,
                         threshold=0).search([query], align=False)
    got = {(h.query_index, h.db_index): h.score for h in exact.hits}
    want = {key: s for key, s in brute.items() if s > 0}
    assert got == want, f"exact-mode mismatch [{ctx}]"

    # Seeded mode: a subset of the brute-force positives; every score
    # is a seed-anchored exact optimum, never above the global one;
    # alignments self-check against the screened score.
    if len(query) >= k:
        seeded = TieredSearch(idx, scheme=scheme, min_seeds=1,
                              threshold=0).search([query])
        for h in seeded.hits:
            key = (h.query_index, h.db_index)
            assert key in want, f"seeded hit not in brute [{ctx}]"
            assert h.score <= brute[key], \
                f"seeded score above optimum for {h.db_index} [{ctx}]"
            assert h.alignment is not None
            assert h.alignment.score == h.score
