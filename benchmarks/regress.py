#!/usr/bin/env python
"""Bench-regression harness for the SWA cell evaluators.

Times the bitwise wavefront engine on the Table IV acceptance workload
once per cell evaluator (``generic`` interpreter, ``folded`` netlist,
``compiled-numpy``, and ``compiled`` with automatic backend choice),
calibrates against the wordwise NumPy engine on the same workload, and
records a ``BENCH_<n>.json`` snapshot at the repo root.  A protein
entry (``protein-compiled``) times the compiled substitution-matrix
Gotoh cell (BLOSUM62, affine 11/1) against the word-wise scalar Gotoh
reference the same way.

Absolute milliseconds are machine-specific, so every entry also stores
``rel`` — its time divided by the wordwise calibration run.  Regression
checking compares ``rel`` values, which transfer across machines: a 25%
regression in ``rel`` means the evaluator got 25% slower *relative to
the same machine's wordwise baseline*, not that the runner was slow.

Usage::

    python benchmarks/regress.py                 # measure + print
    python benchmarks/regress.py --write         # + snapshot BENCH_<n>.json
    python benchmarks/regress.py --check         # compare vs latest snapshot
    python benchmarks/regress.py --quick --check # CI smoke (small workload)

``--quick`` runs a reduced workload and keys its results under a
separate ``quick`` section, so CI quick runs compare against the
committed quick baseline, never against full-scale numbers.

``--write`` additionally records three evidence sections that
``--check`` never gates (timings do not transfer across machines): a
``transport`` ladder showing shm-vs-pickle shard transport cost as the
payload grows, a ``serve`` record showing the SLO scheduler shedding
an overload burst that drowns the static service, and a ``cluster``
record comparing the 3-node coordinator against a single node —
healthy and with a node SIGKILLed mid-batch — after asserting the
scores bit-identical.

``--rounds N`` measures the whole section N times and keeps each
entry's best (lowest) ``rel``.  Shared CI runners are noisy neighbours:
one unlucky round can inflate a sub-second measurement well past any
sane tolerance, but the *best* of a few rounds is stable — CI gates on
that.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.affine_bpbc import bpbc_gotoh_wavefront_planes  # noqa: E402
from repro.core.alphabet import PROTEIN_X  # noqa: E402
from repro.core.encoding import (encode_batch_bit_transposed,  # noqa: E402
                                 encode_batch_char_planes)
from repro.core.matrices import BLOSUM62  # noqa: E402
from repro.core.protein import (ProteinScheme,  # noqa: E402
                                subst_gotoh_batch_max_scores)
from repro.core.sw_bpbc import bpbc_sw_wavefront  # noqa: E402
from repro.jit import cc_available  # noqa: E402
from repro.swa.numpy_batch import sw_batch_max_scores  # noqa: E402
from repro.swa.scoring import ScoringScheme  # noqa: E402
from repro.workloads.datasets import paper_workload  # noqa: E402

SCHEME = ScoringScheme(match_score=2, mismatch_penalty=1, gap_penalty=1)
PROTEIN_SCHEME = ProteinScheme(BLOSUM62, gap_open=11, gap_extend=1)
WORD_BITS = 64

#: Evaluators tracked by the snapshot, slowest first.
CELLS = ("generic", "folded", "compiled-numpy", "compiled")

#: Workload per section.  ``full`` is the Table IV acceptance workload
#: (same shape as ``benchmarks/conftest.py``'s ``bench_batch``);
#: ``quick`` is sized for CI smoke runs (~seconds total).  The protein
#: sub-workload is smaller: the affine mux-tree cell does several
#: times the gate work of the DNA cell per plane.
WORKLOADS = {
    "full": {"pairs": 2048, "m": 128, "n": 512, "repeats": 3,
             "protein": {"pairs": 512, "m": 64, "n": 128}},
    "quick": {"pairs": 256, "m": 64, "n": 128, "repeats": 5,
              "protein": {"pairs": 128, "m": 32, "n": 64}},
}

#: Default allowed slowdown in ``rel`` before --check fails.
DEFAULT_TOLERANCE = 1.25


def _best_of(fn, repeats: int) -> float:
    """Best wall-clock of ``repeats`` calls, in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def run_section(mode: str, verbose: bool = True) -> dict:
    """Measure one section (``full`` or ``quick``); return its record."""
    cfg = WORKLOADS[mode]
    pairs, m, n, repeats = cfg["pairs"], cfg["m"], cfg["n"], cfg["repeats"]
    batch = paper_workload(n, pairs=pairs, m=m, seed=42)
    XH, XL = encode_batch_bit_transposed(batch.X, WORD_BITS)
    YH, YL = encode_batch_bit_transposed(batch.Y, WORD_BITS)

    if verbose:
        print(f"[{mode}] {pairs} pairs, m={m}, n={n}, "
              f"word_bits={WORD_BITS}, best of {repeats}")
    cal_ms = _best_of(
        lambda: sw_batch_max_scores(batch.X, batch.Y, SCHEME), repeats)
    if verbose:
        print(f"  {'wordwise (calibration)':<24} {cal_ms:9.1f} ms")

    entries: dict[str, dict] = {}
    for cell in CELLS:
        def swa(cell=cell):
            return bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, WORD_BITS,
                                     cell=cell)
        swa()  # warmup: jit compile + buffer pools, outside the timing
        ms = _best_of(swa, repeats)
        entries[f"cell-{cell}"] = {"ms": round(ms, 3),
                                   "rel": round(ms / cal_ms, 5)}
        if verbose:
            print(f"  {'cell-' + cell:<24} {ms:9.1f} ms   "
                  f"rel {ms / cal_ms:7.4f}")

    speedup = (entries["cell-generic"]["ms"]
               / entries["cell-compiled"]["ms"])
    if verbose:
        print(f"  compiled speedup over generic: {speedup:.2f}x")

    # -- protein affine: compiled mux-tree Gotoh cell vs the word-wise
    # scalar reference, calibrated the same way (rel transfers across
    # machines; the gate catches the compiled cell regressing against
    # its own baseline ratio).
    pcfg = cfg["protein"]
    rng = np.random.default_rng(42)
    PX = rng.integers(0, 20, size=(pcfg["pairs"], pcfg["m"]),
                      dtype=np.uint8)
    PY = rng.integers(0, 20, size=(pcfg["pairs"], pcfg["n"]),
                      dtype=np.uint8)
    eps = PROTEIN_X.pad_bits
    Xp = encode_batch_char_planes(PX, WORD_BITS, char_bits=eps)
    Yp = encode_batch_char_planes(PY, WORD_BITS, char_bits=eps)
    protein_cal_ms = _best_of(
        lambda: subst_gotoh_batch_max_scores(PX, PY, PROTEIN_SCHEME),
        repeats)

    def protein_swa():
        return bpbc_gotoh_wavefront_planes(
            Xp, Yp, PROTEIN_SCHEME, WORD_BITS, cell="compiled")
    protein_swa()  # warmup: jit compile outside the timing
    protein_ms = _best_of(protein_swa, repeats)
    entries["protein-compiled"] = {
        "ms": round(protein_ms, 3),
        "rel": round(protein_ms / protein_cal_ms, 5),
    }
    if verbose:
        print(f"  {'protein wordwise (cal)':<24} "
              f"{protein_cal_ms:9.1f} ms")
        print(f"  {'protein-compiled':<24} {protein_ms:9.1f} ms   "
              f"rel {protein_ms / protein_cal_ms:7.4f}")
    return {
        "workload": {"pairs": pairs, "m": m, "n": n,
                     "word_bits": WORD_BITS, "seed": 42,
                     "repeats": repeats},
        "calibration_ms": round(cal_ms, 3),
        "protein_workload": dict(pcfg, word_bits=WORD_BITS, seed=42),
        "protein_calibration_ms": round(protein_cal_ms, 3),
        "entries": entries,
        "compiled_speedup": round(speedup, 3),
    }


def run_section_best(mode: str, rounds: int, verbose: bool = True) -> dict:
    """Best-of-``rounds`` measurement of one section.

    Each round re-runs :func:`run_section` (its own calibration and
    evaluator timings); per entry the round with the lowest ``rel``
    wins, so a noisy-neighbour spike in any single round cannot fail
    the gate.
    """
    best = run_section(mode, verbose=verbose)
    for k in range(1, rounds):
        if verbose:
            print(f"[{mode}] round {k + 1}/{rounds}")
        nxt = run_section(mode, verbose=verbose)
        for key, cur in nxt["entries"].items():
            if cur["rel"] < best["entries"][key]["rel"]:
                best["entries"][key] = cur
        best["calibration_ms"] = min(best["calibration_ms"],
                                     nxt["calibration_ms"])
        best["protein_calibration_ms"] = min(
            best["protein_calibration_ms"], nxt["protein_calibration_ms"])
        best["compiled_speedup"] = round(
            best["entries"]["cell-generic"]["ms"]
            / best["entries"]["cell-compiled"]["ms"], 3)
    if rounds > 1:
        best["rounds"] = rounds
    return best


def _null_engine(X, Y, scheme, word_bits):
    """Transport-cost probe: ships bytes, computes nothing."""
    return np.zeros(len(X), dtype=np.int64)


#: Transport evidence ladder: pair counts of 2x512-nt payloads.  Each
#: rung quadruples the bytes crossing the executor/worker boundary.
TRANSPORT_PAIRS = (16, 64, 256, 1024)
TRANSPORT_LENGTH = 512
TRANSPORT_REPEATS = 5
TRANSPORT_WORKERS = 4


def run_transport_section(verbose: bool = True) -> dict | None:
    """Shm-vs-pickle transport cost ladder (snapshot evidence).

    A null engine isolates transport: every millisecond here is
    packing, shipping, and unpacking bytes.  Recorded raw — absolute
    numbers and growth ratios are evidence for the zero-copy claim,
    not gated entries (``check`` never compares this section; shared
    runners make cross-machine transport ratios meaningless).
    """
    from repro.shard import ShardExecutor, shm_available

    if not shm_available():
        if verbose:
            print("[transport] shared memory unavailable — skipped")
        return None
    rng = np.random.default_rng(37)
    ladder = [
        (rng.integers(0, 4, size=(p, TRANSPORT_LENGTH), dtype=np.uint8),
         rng.integers(0, 4, size=(p, TRANSPORT_LENGTH), dtype=np.uint8))
        for p in TRANSPORT_PAIRS
    ]
    times: dict[str, list[float]] = {}
    for transport in ("pickle", "shm"):
        with ShardExecutor(workers=TRANSPORT_WORKERS,
                           engine=_null_engine,
                           transport=transport) as ex:
            if ex.in_process:
                if verbose:
                    print("[transport] no multiprocessing pool — "
                          "skipped")
                return None
            ex.run(*ladder[0], SCHEME)  # warm the pool + arena
            times[transport] = [
                round(_best_of(lambda X=X, Y=Y: ex.run(X, Y, SCHEME),
                               TRANSPORT_REPEATS), 3)
                for X, Y in ladder
            ]
    growth = {t: round(ts[-1] / ts[0], 3) for t, ts in times.items()}
    top = round(times["pickle"][-1] / times["shm"][-1], 3)
    if verbose:
        factor = TRANSPORT_PAIRS[-1] // TRANSPORT_PAIRS[0]
        print(f"[transport] null engine, {TRANSPORT_WORKERS} workers, "
              f"payload x{factor} ladder:")
        for t in ("pickle", "shm"):
            ms = ", ".join(f"{v:7.2f}" for v in times[t])
            print(f"  {t:<7} [{ms}] ms  -> x{growth[t]:.1f} growth")
        print(f"  pickle/shm at top rung: {top:.2f}x")
    return {
        "workload": {"pairs": list(TRANSPORT_PAIRS),
                     "length": TRANSPORT_LENGTH,
                     "workers": TRANSPORT_WORKERS,
                     "repeats": TRANSPORT_REPEATS, "seed": 37},
        "ms": times,
        "growth": growth,
        "pickle_over_shm_at_top": top,
    }


#: Serve evidence: the overload burst of the scheduler benchmark
#: (see benchmarks/test_bench_transport.py for the full rationale).
SERVE_WARMUP = 8
SERVE_WARMUP_RPS = 4.0
SERVE_REQUESTS = 128
SERVE_M = 512
SERVE_SLO_MS = 100.0
SERVE_MAX_BATCH = 8


def run_serve_section(verbose: bool = True) -> dict:
    """Static vs SLO-scheduled service under one burst (evidence).

    Both services see the same warm-up and the same burst; the static
    one drains everything late, the adaptive one sheds at admission
    and keeps its completions near the SLO.  Scores are asserted
    bit-identical to the single-process reference before anything is
    recorded — a snapshot of wrong answers would be worthless.
    """
    sys.path.insert(0, str(ROOT / "benchmarks"))
    from traffic import replay, request_stream

    from repro.filter.screening import bulk_max_scores
    from repro.serve import AlignmentService

    rng = np.random.default_rng(41)
    warm = list(request_stream(rng, SERVE_WARMUP,
                               rate_per_s=SERVE_WARMUP_RPS, m=SERVE_M))
    burst = list(request_stream(rng, SERVE_REQUESTS,
                                rate_per_s=np.inf, m=SERVE_M))
    expected = bulk_max_scores(np.stack([r.query for r in burst]),
                               np.stack([r.subject for r in burst]),
                               SCHEME)

    def _run(slo_ms):
        service = AlignmentService(engine="bpbc", workers=1,
                                   max_wait_ms=2.0, cache_size=0,
                                   max_batch=SERVE_MAX_BATCH,
                                   max_queue=4096, slo_ms=slo_ms)
        with service:
            replay(service, warm)
            report = replay(service, burst, realtime=False)
        got = [r.score for r in report.results]
        want = [int(expected[i]) for i in report.indices]
        if got != want:
            raise AssertionError(
                "served scores diverged from the reference")
        return {
            "completed": report.completed,
            "rejected": report.rejected,
            "p50_ms": round(report.percentile_ms(50), 1),
            "p99_ms": round(report.p99_ms, 1),
            "goodput_rps": round(report.goodput_rps(SERVE_SLO_MS), 1),
        }

    static = _run(slo_ms=None)
    adaptive = _run(slo_ms=SERVE_SLO_MS)
    if verbose:
        print(f"[serve] burst of {SERVE_REQUESTS} x {SERVE_M} nt, "
              f"SLO {SERVE_SLO_MS:.0f} ms:")
        for name, rec in (("static", static), ("adaptive", adaptive)):
            print(f"  {name:<8} {rec['completed']:4d} completed "
                  f"({rec['rejected']} shed), p99 {rec['p99_ms']:7.1f} "
                  f"ms, goodput {rec['goodput_rps']:6.1f}/s")
    return {
        "workload": {"requests": SERVE_REQUESTS, "m": SERVE_M,
                     "slo_ms": SERVE_SLO_MS,
                     "max_batch": SERVE_MAX_BATCH,
                     "warmup": SERVE_WARMUP, "seed": 41},
        "static": static,
        "adaptive": adaptive,
    }


#: Cluster evidence: coordinator-vs-single-node on one mixed batch.
CLUSTER_NODES = 3
CLUSTER_DNA_PAIRS = 48
CLUSTER_PROTEIN_PAIRS = 16
CLUSTER_SEED = 20260808


def run_cluster_section(verbose: bool = True) -> dict | None:
    """Coordinator vs single node (snapshot evidence; never gated).

    Boots a real 3-subprocess harness, scores the cluster_bench mixed
    batch through the coordinator, kills one node mid-batch, and
    records healthy/chaos timings plus routing counters — after
    asserting every score bit-identical to the single-node reference.
    Returns None where subprocesses or sockets are unavailable.
    """
    sys.path.insert(0, str(ROOT / "benchmarks"))
    import time

    from cluster_bench import (DNA_SCHEME, PROTEIN_SCHEME,
                               mixed_batches, single_node_reference)

    from repro.cluster import LocalCluster
    from repro.resilience.faults import FaultPlan

    rng = np.random.default_rng(CLUSTER_SEED)
    dna, protein = mixed_batches(rng, CLUSTER_DNA_PAIRS,
                                 CLUSTER_PROTEIN_PAIRS)
    try:
        dna_gold, protein_gold, single_s = single_node_reference(
            dna, protein)
        with LocalCluster(n=CLUSTER_NODES,
                          startup_timeout_s=120.0) as lc:
            with lc.coordinator(deadline_s=60.0) as coord:
                t0 = time.perf_counter()
                got_d = coord.score_batch(dna, DNA_SCHEME)
                got_p = coord.score_batch(protein, PROTEIN_SCHEME)
                healthy_s = time.perf_counter() - t0
                if list(got_d) != dna_gold or \
                        list(got_p) != protein_gold:
                    raise AssertionError(
                        "cluster scores diverged from the "
                        "single-node reference")
                with FaultPlan.single("cluster.node.drop",
                                      seed=CLUSTER_SEED, times=1):
                    t0 = time.perf_counter()
                    kill_d = coord.score_batch(dna, DNA_SCHEME)
                    chaos_s = time.perf_counter() - t0
                if list(kill_d) != dna_gold:
                    raise AssertionError(
                        "post-kill scores diverged from the "
                        "single-node reference")
                status = coord.status()
    except Exception as exc:  # noqa: BLE001 - evidence only
        if verbose:
            print(f"[cluster] harness unavailable — skipped ({exc})")
        return None
    cluster = status["cluster"]
    record = {
        "workload": {"nodes": CLUSTER_NODES,
                     "dna_pairs": CLUSTER_DNA_PAIRS,
                     "protein_pairs": CLUSTER_PROTEIN_PAIRS,
                     "seed": CLUSTER_SEED},
        "single_node_s": round(single_s, 3),
        "cluster_healthy_s": round(healthy_s, 3),
        "cluster_node_killed_s": round(chaos_s, 3),
        "rerouted": cluster["rerouted"],
        "degraded": cluster["degraded"],
        "shed": cluster["shed"],
        "per_node_p99_ms": {
            n["name"]: round(n["p99_ms"], 1)
            for n in status["per_node"] if n["p99_ms"] is not None},
    }
    if verbose:
        print(f"[cluster] {CLUSTER_NODES} nodes, "
              f"{CLUSTER_DNA_PAIRS}+{CLUSTER_PROTEIN_PAIRS} pairs: "
              f"single {single_s:5.2f}s, cluster {healthy_s:5.2f}s, "
              f"node-killed {chaos_s:5.2f}s "
              f"(rerouted {cluster['rerouted']}, bit-identical)")
    return record


def snapshot_paths() -> list[Path]:
    """Committed snapshots at the repo root, oldest first."""
    def index(p: Path) -> int:
        mt = re.fullmatch(r"BENCH_(\d+)\.json", p.name)
        return int(mt.group(1)) if mt else -1
    paths = [p for p in ROOT.glob("BENCH_*.json") if index(p) >= 0]
    return sorted(paths, key=index)


def next_snapshot_path() -> Path:
    """Name for a new snapshot: one past the highest committed index.

    Snapshots are numbered by the PR that recorded them; the series
    starts at BENCH_4.json (the PR that introduced this harness).
    """
    existing = snapshot_paths()
    if not existing:
        return ROOT / "BENCH_4.json"
    last = int(re.fullmatch(r"BENCH_(\d+)\.json",
                            existing[-1].name).group(1))
    return ROOT / f"BENCH_{last + 1}.json"


def check(current: dict, baseline_path: Path, mode: str,
          tolerance: float) -> int:
    """Compare ``current[mode]`` vs the baseline; return exit status."""
    baseline = json.loads(baseline_path.read_text())
    base_section = baseline.get(mode)
    if base_section is None:
        print(f"baseline {baseline_path.name} has no {mode!r} section; "
              "nothing to check")
        return 0
    base_entries = base_section["entries"]
    cur_entries = current[mode]["entries"]
    failures = []
    print(f"\ncheck vs {baseline_path.name} [{mode}] "
          f"(tolerance {tolerance:.2f}x on rel):")
    for key, cur in sorted(cur_entries.items()):
        base = base_entries.get(key)
        if base is None:
            print(f"  {key:<24} new entry, no baseline — skipped")
            continue
        ratio = cur["rel"] / base["rel"]
        verdict = "ok" if ratio <= tolerance else "REGRESSION"
        print(f"  {key:<24} rel {base['rel']:7.4f} -> {cur['rel']:7.4f} "
              f"({ratio:5.2f}x)  {verdict}")
        if ratio > tolerance:
            failures.append(key)
    if failures:
        print(f"\nFAIL: {len(failures)} evaluator(s) regressed more than "
              f"{(tolerance - 1) * 100:.0f}% vs {baseline_path.name}: "
              + ", ".join(failures))
        return 1
    print("\nPASS: no evaluator regressed beyond tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="run the reduced CI workload (its own section)")
    ap.add_argument("--write", nargs="?", const="auto", default=None,
                    metavar="PATH",
                    help="write a BENCH_<n>.json snapshot (auto-numbered "
                         "unless PATH is given); records both sections")
    ap.add_argument("--check", action="store_true",
                    help="compare against the latest committed snapshot "
                         "and fail on regression")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                    help="allowed rel slowdown before --check fails "
                         "(default %(default)s)")
    ap.add_argument("--rounds", type=int, default=1,
                    help="measure the section this many times and keep "
                         "each entry's best rel (default %(default)s; "
                         "CI uses 3 to ride out noisy runners)")
    args = ap.parse_args(argv)
    if args.rounds < 1:
        ap.error("--rounds must be >= 1")

    mode = "quick" if args.quick else "full"
    print(f"cell-evaluator bench regression — cc available: "
          f"{cc_available()}, numpy {np.__version__}")

    result: dict = {"schema": 1}
    if args.write is not None:
        # Snapshots always carry both sections so later full *and*
        # quick runs have a baseline to compare against — plus the
        # transport/serve/cluster evidence sections (never gated: check()
        # only compares per-mode entries).
        result["full"] = run_section_best("full", args.rounds)
        result["quick"] = run_section_best("quick", args.rounds)
        transport = run_transport_section()
        if transport is not None:
            result["transport"] = transport
        result["serve"] = run_serve_section()
        cluster = run_cluster_section()
        if cluster is not None:
            result["cluster"] = cluster
    else:
        result[mode] = run_section_best(mode, args.rounds)

    status = 0
    if args.check:
        snapshots = snapshot_paths()
        if not snapshots:
            print("no committed BENCH_*.json baseline found; "
                  "run with --write first")
            return 2
        status = check(result, snapshots[-1], mode, args.tolerance)

    if args.write is not None and status == 0:
        path = (next_snapshot_path() if args.write == "auto"
                else Path(args.write))
        path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"\nwrote {path}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
