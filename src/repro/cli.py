"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``score``
    Bulk-score FASTA query/subject pairs with the BPBC engine; TSV to
    stdout (id, id, score).
``screen``
    The paper's τ-threshold workflow: bulk-score, then align and print
    the survivors.
``match``
    Exact or k-mismatch bulk string matching (§II and its extension).
``experiments``
    Regenerate the paper's tables and figures.

Queries and subjects are matched up pairwise (record i against record
i); use ``--all-vs-all`` in ``score``/``screen`` to cross every query
with every subject instead.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core.bitops import unpack_lanes
from .core.approx_matching import bpbc_k_mismatch
from .core.encoding import decode, encode_batch_bit_transposed
from .filter.screening import screen_pairs
from .swa.scoring import ScoringScheme
from .swa.traceback import format_alignment
from .workloads.fasta import read_fasta, records_to_batch

__all__ = ["main"]


def _scheme_from_args(args) -> ScoringScheme:
    return ScoringScheme(match_score=args.match,
                         mismatch_penalty=args.mismatch,
                         gap_penalty=args.gap)


def _add_scoring_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--match", type=int, default=2,
                   help="match score c1 (default 2)")
    p.add_argument("--mismatch", type=int, default=1,
                   help="mismatch penalty c2 (default 1)")
    p.add_argument("--gap", type=int, default=1,
                   help="linear gap penalty (default 1)")
    p.add_argument("--word-bits", type=int, default=64,
                   choices=(8, 16, 32, 64),
                   help="lane word width (default 64)")


def _load_pairs(args) -> tuple[list, list, np.ndarray, np.ndarray]:
    queries = read_fasta(args.queries)
    subjects = read_fasta(args.subjects)
    if getattr(args, "all_vs_all", False):
        q = [r for r in queries for _ in subjects]
        s = [r for _ in queries for r in subjects]
    else:
        if len(queries) != len(subjects):
            raise SystemExit(
                f"error: {len(queries)} queries vs {len(subjects)} "
                f"subjects; pairwise mode needs equal counts "
                f"(or pass --all-vs-all)"
            )
        q, s = queries, subjects
    return q, s, records_to_batch(q), records_to_batch(s)


def _cmd_score(args) -> int:
    from .filter.screening import bulk_max_scores

    q, s, X, Y = _load_pairs(args)
    scores = bulk_max_scores(X, Y, _scheme_from_args(args),
                             word_bits=args.word_bits)
    out = sys.stdout
    out.write("query\tsubject\tscore\n")
    for qr, sr, sc in zip(q, s, scores):
        out.write(f"{qr.id}\t{sr.id}\t{int(sc)}\n")
    return 0


def _cmd_screen(args) -> int:
    q, s, X, Y = _load_pairs(args)
    result = screen_pairs(X, Y, args.threshold, _scheme_from_args(args),
                          word_bits=args.word_bits)
    print(f"{len(result.hits)} of {len(q)} pairs exceed "
          f"tau={args.threshold} ({result.pass_rate:.1%})")
    for hit in sorted(result.hits, key=lambda h: -h.score):
        print(f"\n{q[hit.pair_index].id} vs {s[hit.pair_index].id}")
        print(format_alignment(hit.alignment))
    return 0


def _cmd_match(args) -> int:
    patterns = read_fasta(args.patterns)
    texts = read_fasta(args.texts)
    if len(patterns) != len(texts):
        raise SystemExit(
            f"error: {len(patterns)} patterns vs {len(texts)} texts"
        )
    X = records_to_batch(patterns)
    Y = records_to_batch(texts)
    P = len(patterns)
    XH, XL = encode_batch_bit_transposed(X, args.word_bits)
    YH, YL = encode_batch_bit_transposed(Y, args.word_bits)
    hits = bpbc_k_mismatch(XH, XL, YH, YL, args.k, args.word_bits)
    bits = unpack_lanes(hits, args.word_bits, count=P)  # (offsets, P)
    print(f"pattern\ttext\tk\toffsets")
    for p in range(P):
        offs = ",".join(str(j) for j in np.flatnonzero(bits[:, p]))
        print(f"{patterns[p].id}\t{texts[p].id}\t{args.k}\t"
              f"{offs or '-'}")
    return 0


def _cmd_experiments(args) -> int:
    from .experiments import main as exp_main

    argv = list(args.names)
    if args.fast:
        argv.append("--fast")
    return exp_main(argv)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Bitwise Parallel Bulk Computation for "
                    "Smith-Waterman (IPDPS-W 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("score", help="bulk-score FASTA pairs")
    p.add_argument("queries", help="FASTA file of query sequences")
    p.add_argument("subjects", help="FASTA file of subject sequences")
    p.add_argument("--all-vs-all", action="store_true",
                   help="cross every query with every subject")
    _add_scoring_args(p)
    p.set_defaults(func=_cmd_score)

    p = sub.add_parser("screen",
                       help="threshold screening with alignments")
    p.add_argument("queries")
    p.add_argument("subjects")
    p.add_argument("--threshold", "-t", type=int, required=True,
                   help="report pairs scoring above this tau")
    p.add_argument("--all-vs-all", action="store_true")
    _add_scoring_args(p)
    p.set_defaults(func=_cmd_screen)

    p = sub.add_parser("match", help="bulk (k-mismatch) string search")
    p.add_argument("patterns", help="FASTA file of patterns")
    p.add_argument("texts", help="FASTA file of texts")
    p.add_argument("-k", type=int, default=0,
                   help="allowed mismatches (default 0 = exact)")
    p.add_argument("--word-bits", type=int, default=64,
                   choices=(8, 16, 32, 64))
    p.set_defaults(func=_cmd_match)

    p = sub.add_parser("experiments",
                       help="regenerate the paper's tables/figures")
    p.add_argument("names", nargs="*", default=[])
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
