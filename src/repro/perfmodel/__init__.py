"""Operation counts (Lemmas 1-6) and the Table IV/V analytic model."""

from .model import CalibratedRate, Table4Model
from .opcounts import (WorkloadSpec, b2w_ops, score_bits_paper,
                       swa_bulk_ops, w2b_ops, wordwise_swa_ops)
from .paper_data import (M_PATTERN, N_VALUES, PAIRS, PAPER_TABLE1,
                         PAPER_TABLE4, PAPER_TABLE5)

__all__ = [
    "Table4Model", "CalibratedRate",
    "WorkloadSpec", "swa_bulk_ops", "w2b_ops", "b2w_ops",
    "wordwise_swa_ops", "score_bits_paper",
    "N_VALUES", "PAIRS", "M_PATTERN",
    "PAPER_TABLE1", "PAPER_TABLE4", "PAPER_TABLE5",
]
