"""Differential fuzzing: every Smith-Waterman engine on shared inputs.

The library now has seven ways to compute a maximum local-alignment
score; this cross-validation chain is the strongest single correctness
statement the suite makes, so it gets its own module.  For each random
workload, all of

1. pure-Python sequential DP (gold),
2. NumPy wavefront DP (per pair),
3. NumPy wordwise batch engine,
4. BPBC row-major engine,
5. BPBC wavefront engine (generic circuit),
6. BPBC wavefront engine (constant-folded netlist),
7. the simulated GPU pipeline (shared-memory kernel), and
8. the oblivious-IR SW cell driven through the gold recurrence

must agree on every pair.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import encode_batch_bit_transposed
from repro.core.oblivious import sw_cell_program
from repro.core.sw_bpbc import bpbc_sw_sequential, bpbc_sw_wavefront
from repro.kernels.pipeline import run_gpu_pipeline
from repro.swa.numpy_batch import sw_batch_max_scores
from repro.swa.parallel import sw_matrix_wavefront
from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_matrix


def _all_engine_scores(X, Y, scheme, word_bits=32):
    P = X.shape[0]
    results = {}
    results["gold"] = np.array(
        [int(sw_matrix(X[p], Y[p], scheme).max()) for p in range(P)]
    )
    results["wavefront_dp"] = np.array(
        [int(sw_matrix_wavefront(X[p], Y[p], scheme).max())
         for p in range(P)]
    )
    results["wordwise_batch"] = sw_batch_max_scores(X, Y, scheme)
    XH, XL = encode_batch_bit_transposed(X, word_bits)
    YH, YL = encode_batch_bit_transposed(Y, word_bits)
    results["bpbc_rowmajor"] = bpbc_sw_sequential(
        XH, XL, YH, YL, scheme, word_bits
    ).max_scores[:P]
    results["bpbc_wavefront"] = bpbc_sw_wavefront(
        XH, XL, YH, YL, scheme, word_bits
    ).max_scores[:P]
    results["bpbc_folded"] = bpbc_sw_wavefront(
        XH, XL, YH, YL, scheme, word_bits, cell="folded"
    ).max_scores[:P]
    results["gpu_pipeline"] = run_gpu_pipeline(
        X, Y, scheme, word_bits=word_bits
    )[0]
    return results


def _ir_score(x, y, scheme):
    """Drive the oblivious-IR SW cell through the DP loop."""
    m, n = len(x), len(y)
    s = scheme.score_bits(m, n)
    prog = sw_cell_program(s, scheme.gap_penalty, scheme.match_score,
                           scheme.mismatch_penalty)
    d = np.zeros((m + 1, n + 1), dtype=np.int64)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            out = prog.run_wordwise({
                "up": np.array([d[i - 1, j]]),
                "left": np.array([d[i, j - 1]]),
                "diag": np.array([d[i - 1, j - 1]]),
                "x": np.array([x[i - 1]]),
                "y": np.array([y[j - 1]]),
            })
            d[i, j] = out["d"][0]
    return int(d.max())


class TestDifferential:
    def test_default_scheme_small(self, rng):
        scheme = ScoringScheme(2, 1, 1)
        X = rng.integers(0, 4, (40, 6), dtype=np.uint8)
        Y = rng.integers(0, 4, (40, 12), dtype=np.uint8)
        results = _all_engine_scores(X, Y, scheme)
        gold = results.pop("gold")
        for name, scores in results.items():
            np.testing.assert_array_equal(scores, gold, err_msg=name)

    def test_ir_cell_agrees(self, rng):
        scheme = ScoringScheme(2, 1, 1)
        x = rng.integers(0, 4, 5)
        y = rng.integers(0, 4, 8)
        assert _ir_score(x, y, scheme) == int(
            sw_matrix(x, y, scheme).max()
        )

    @settings(max_examples=6, deadline=None)
    @given(
        m=st.integers(1, 6),
        n=st.integers(1, 10),
        P=st.integers(1, 36),
        c1=st.integers(1, 3),
        c2=st.integers(0, 2),
        gap=st.integers(0, 2),
        w=st.sampled_from([32, 64]),
        seed=st.integers(0, 2**31),
    )
    def test_all_engines_property(self, m, n, P, c1, c2, gap, w, seed):
        rng = np.random.default_rng(seed)
        scheme = ScoringScheme(c1, c2, gap)
        X = rng.integers(0, 4, (P, m), dtype=np.uint8)
        Y = rng.integers(0, 4, (P, n), dtype=np.uint8)
        results = _all_engine_scores(X, Y, scheme, word_bits=w)
        gold = results.pop("gold")
        for name, scores in results.items():
            np.testing.assert_array_equal(scores, gold, err_msg=name)
