"""Tests for repro.swa.parallel: wavefront schedule and engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.swa.parallel import (
    diagonal_cells,
    sw_matrix_wavefront,
    wavefront_schedule,
)
from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_matrix

SCHEME = ScoringScheme(2, 1, 1)


class TestSchedule:
    def test_table3_values(self):
        """Table III prints t = i + j + 1 (1-based) for a 5 x 7 DP."""
        sched = wavefront_schedule(5, 7)
        printed = sched + 1
        assert printed[0, 0] == 1
        assert printed[4, 6] == 11
        np.testing.assert_array_equal(printed[0], np.arange(1, 8))
        np.testing.assert_array_equal(printed[:, 0], np.arange(1, 6))

    def test_dependencies_precede(self):
        sched = wavefront_schedule(6, 9)
        for i in range(6):
            for j in range(9):
                if i > 0:
                    assert sched[i - 1, j] < sched[i, j]
                if j > 0:
                    assert sched[i, j - 1] < sched[i, j]
                if i > 0 and j > 0:
                    assert sched[i - 1, j - 1] < sched[i, j]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            wavefront_schedule(0, 5)

    def test_diagonal_cells_partition(self):
        m, n = 4, 6
        seen = set()
        for t in range(m + n - 1):
            for cell in diagonal_cells(m, n, t):
                assert cell not in seen
                seen.add(cell)
        assert len(seen) == m * n

    def test_diagonal_cells_on_schedule(self):
        sched = wavefront_schedule(4, 6)
        for t in range(9):
            for i, j in diagonal_cells(4, 6, t):
                assert sched[i, j] == t


class TestWavefrontEngine:
    @pytest.mark.parametrize("m,n", [(1, 1), (1, 7), (7, 1), (5, 7),
                                     (7, 5), (8, 8)])
    def test_equals_sequential(self, rng, m, n):
        x = rng.integers(0, 4, m)
        y = rng.integers(0, 4, n)
        np.testing.assert_array_equal(
            sw_matrix_wavefront(x, y, SCHEME), sw_matrix(x, y, SCHEME)
        )

    def test_string_input(self):
        np.testing.assert_array_equal(
            sw_matrix_wavefront("TACTG", "GAACTGA", SCHEME),
            sw_matrix("TACTG", "GAACTGA", SCHEME),
        )

    @settings(max_examples=40, deadline=None)
    @given(m=st.integers(1, 10), n=st.integers(1, 14),
           seed=st.integers(0, 2**31),
           c1=st.integers(1, 4), c2=st.integers(0, 3),
           gap=st.integers(0, 3))
    def test_equals_sequential_property(self, m, n, seed, c1, c2, gap):
        """Obliviousness in action: the wavefront execution order never
        changes the DP result, for any scoring scheme."""
        rng = np.random.default_rng(seed)
        scheme = ScoringScheme(c1, c2, gap)
        x = rng.integers(0, 4, m)
        y = rng.integers(0, 4, n)
        np.testing.assert_array_equal(
            sw_matrix_wavefront(x, y, scheme), sw_matrix(x, y, scheme)
        )
