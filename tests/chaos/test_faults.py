"""FaultPlan semantics: determinism, rule arithmetic, serialisation.

Determinism is the foundation of the whole suite — a plan with seed S
must make the same fire/skip decisions at the same call counts on every
run, every machine, every interpreter (SHA-256-derived PRNG streams,
not Python's salted ``hash``).
"""

from __future__ import annotations

import pickle

import pytest

from repro.resilience.faults import (SITES, FaultPlan, FaultRule,
                                     InjectedFault, active_plan,
                                     deactivate, fault_point,
                                     known_sites, should_inject)

SITE = "engine.bpbc.fail"  # an arbitrary registered site


def _schedule(plan: FaultPlan, site: str, calls: int) -> list[bool]:
    with plan:
        return [should_inject(site) for _ in range(calls)]


class TestDeterminism:
    def test_same_seed_same_schedule(self, chaos_seed):
        rule = dict(site=SITE, probability=0.35)
        a = _schedule(FaultPlan([rule], seed=chaos_seed), SITE, 200)
        b = _schedule(FaultPlan([rule], seed=chaos_seed), SITE, 200)
        assert a == b
        assert any(a) and not all(a)  # p=0.35 over 200 calls

    def test_different_seeds_differ(self, chaos_seed):
        rule = dict(site=SITE, probability=0.35)
        a = _schedule(FaultPlan([rule], seed=chaos_seed), SITE, 200)
        b = _schedule(FaultPlan([rule], seed=chaos_seed + 1), SITE, 200)
        assert a != b

    def test_sites_draw_independent_streams(self, chaos_seed):
        # Two sites in one plan must not share a PRNG stream: firing
        # decisions at one site may not perturb the other's schedule.
        other = "engine.numpy.fail"
        solo = _schedule(FaultPlan(
            [dict(site=SITE, probability=0.5)], seed=chaos_seed),
            SITE, 100)
        both_plan = FaultPlan([dict(site=SITE, probability=0.5),
                               dict(site=other, probability=0.5)],
                              seed=chaos_seed)
        with both_plan:
            interleaved = []
            for _ in range(100):
                should_inject(other)
                interleaved.append(should_inject(SITE))
        assert interleaved == solo

    def test_pickle_replays_from_start(self, chaos_seed):
        plan = FaultPlan([dict(site=SITE, probability=0.5)],
                         seed=chaos_seed)
        before = _schedule(plan, SITE, 50)
        clone = pickle.loads(pickle.dumps(plan))
        deactivate()
        assert _schedule(clone, SITE, 50) == before


class TestRuleSemantics:
    def test_after_skips_leading_calls(self):
        plan = FaultPlan.single(SITE, after=3)
        assert _schedule(plan, SITE, 6) == [False] * 3 + [True] * 3

    def test_times_caps_fires(self):
        plan = FaultPlan.single(SITE, times=2)
        assert _schedule(plan, SITE, 5) == [True, True, False, False,
                                            False]
        assert plan.fire_counts() == {SITE: 2}

    def test_times_none_is_permanent(self):
        plan = FaultPlan.single(SITE)
        assert all(_schedule(plan, SITE, 20))

    def test_unarmed_site_never_fires(self):
        plan = FaultPlan.single(SITE)
        with plan:
            assert not should_inject("engine.numpy.fail")

    def test_none_plan_never_fires(self):
        with FaultPlan.none():
            assert not any(should_inject(s) for s in known_sites())

    def test_fault_point_raises_typed(self):
        with FaultPlan.single(SITE):
            with pytest.raises(InjectedFault) as excinfo:
                fault_point(SITE)
        assert excinfo.value.site == SITE

    def test_fault_point_runs_action(self):
        fired = []
        with FaultPlan.single(SITE):
            fault_point(SITE, action=lambda: fired.append(1))
        assert fired == [1]


class TestValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule("shard.worker.tyop")

    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan([dict(site=SITE), dict(site=SITE)])

    @pytest.mark.parametrize("kwargs", [
        {"probability": -0.1}, {"probability": 1.5},
        {"after": -1}, {"times": 0},
    ])
    def test_bad_rule_fields(self, kwargs):
        with pytest.raises(ValueError):
            FaultRule(SITE, **kwargs)


class TestActivation:
    def test_nested_install_raises(self):
        with FaultPlan.none():
            with pytest.raises(RuntimeError, match="already active"):
                FaultPlan.single(SITE).install()

    def test_context_manager_deactivates(self):
        plan = FaultPlan.single(SITE)
        with plan:
            assert active_plan() is plan
        assert active_plan() is None

    def test_reinstall_same_plan_is_idempotent(self):
        plan = FaultPlan.single(SITE)
        with plan:
            plan.install()
            assert active_plan() is plan


class TestSerialisation:
    def test_json_round_trip(self, chaos_seed):
        plan = FaultPlan([dict(site=SITE, probability=0.5, after=2,
                               times=3)], seed=chaos_seed)
        back = FaultPlan.from_json(plan.to_json())
        assert back.seed == plan.seed
        assert back.rules == plan.rules
        assert _schedule(back, SITE, 40) == _schedule(plan, SITE, 40)

    def test_from_file(self, tmp_path, chaos_seed):
        path = tmp_path / "plan.json"
        path.write_text(FaultPlan.single(SITE,
                                         seed=chaos_seed).to_json())
        plan = FaultPlan.from_file(path)
        assert plan.seed == chaos_seed
        assert plan.rules[0].site == SITE

    def test_bad_json_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_json('{"seed": 1, "sites": []}')
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json('[1, 2]')


def test_catalogue_is_documented_and_sorted():
    assert known_sites() == tuple(sorted(SITES))
    for name, what in SITES.items():
        assert name.count(".") >= 1  # subsystem.site[.detail] naming
        assert len(what) > 10  # every site says what firing does
