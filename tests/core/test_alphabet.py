"""Tests for repro.core.alphabet and the general-plane engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import DNA, MURPHY10, PROTEIN, RNA, Alphabet
from repro.core.bitops import BitOpsError, OpCounter
from repro.core.circuits import sw_cell_ops_exact
from repro.core.encoding import encode, encode_batch_bit_transposed
from repro.core.sw_bpbc import bpbc_sw_wavefront, bpbc_sw_wavefront_planes
from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_max_score

SCHEME = ScoringScheme(2, 1, 1)


class TestAlphabetBasics:
    def test_dna_matches_encoding_module(self):
        s = "ATGCCGTA"
        np.testing.assert_array_equal(DNA.encode(s), encode(s))
        assert DNA.bits == 2
        assert DNA.size == 4

    def test_rna_aliases_t(self):
        np.testing.assert_array_equal(RNA.encode("AUGC"),
                                      RNA.encode("ATGC"))
        assert RNA.decode(RNA.encode("AUGC")) == "AUGC"

    def test_protein_width(self):
        assert PROTEIN.size == 20
        assert PROTEIN.bits == 5

    def test_murphy_reduction(self):
        assert MURPHY10.bits == 4
        # LVIM all collapse to the same code.
        codes = {MURPHY10.code(c) for c in "LVIM"}
        assert len(codes) == 1
        assert MURPHY10.code("D") == MURPHY10.code("E")

    def test_roundtrip(self):
        seq = "ACDEFGHIKLMNPQRSTVWY"
        assert PROTEIN.decode(PROTEIN.encode(seq)) == seq

    def test_unknown_char_rejected(self):
        with pytest.raises(BitOpsError):
            DNA.encode("ATXG")

    def test_validation(self):
        with pytest.raises(BitOpsError):
            Alphabet("bad", "")
        with pytest.raises(BitOpsError):
            Alphabet("bad", "AAB")
        with pytest.raises(BitOpsError):
            Alphabet("bad", "AB", aliases={"X": "C"})

    def test_decode_range_check(self):
        with pytest.raises(BitOpsError):
            DNA.decode([4])

    def test_batch_validation(self):
        with pytest.raises(BitOpsError):
            DNA.encode_batch([])
        with pytest.raises(BitOpsError):
            DNA.encode_batch(["AC", "A"])


class TestPlaneConversion:
    @pytest.mark.parametrize("alphabet", [DNA, PROTEIN, MURPHY10])
    @pytest.mark.parametrize("w", [8, 32, 64])
    def test_roundtrip(self, rng, alphabet, w):
        P, n = 37, 12
        codes = rng.integers(0, alphabet.size, (P, n)).astype(np.uint8)
        planes = alphabet.batch_planes(codes, w)
        assert planes.shape[0] == alphabet.bits
        back = alphabet.batch_from_planes(planes, w, count=P)
        np.testing.assert_array_equal(back, codes)

    def test_dna_planes_match_legacy_encoding(self, rng):
        codes = rng.integers(0, 4, (20, 9), dtype=np.uint8)
        planes = DNA.batch_planes(codes, 32)
        H, L = encode_batch_bit_transposed(codes, 32)
        np.testing.assert_array_equal(planes[0], L)
        np.testing.assert_array_equal(planes[1], H)

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(BitOpsError):
            DNA.batch_planes(np.array([[4]]), 32)


class TestGeneralEngine:
    @pytest.mark.parametrize("alphabet", [DNA, PROTEIN, MURPHY10])
    def test_matches_gold_for_any_alphabet(self, rng, alphabet):
        P, m, n = 40, 6, 13
        X = rng.integers(0, alphabet.size, (P, m)).astype(np.uint8)
        Y = rng.integers(0, alphabet.size, (P, n)).astype(np.uint8)
        Xp = alphabet.batch_planes(X, 64)
        Yp = alphabet.batch_planes(Y, 64)
        r = bpbc_sw_wavefront_planes(Xp, Yp, SCHEME, 64)
        gold = [sw_max_score(X[p], Y[p], SCHEME) for p in range(P)]
        np.testing.assert_array_equal(r.max_scores[:P], gold)

    def test_wrapper_delegates(self, rng):
        P, m, n = 30, 5, 9
        X = rng.integers(0, 4, (P, m), dtype=np.uint8)
        Y = rng.integers(0, 4, (P, n), dtype=np.uint8)
        XH, XL = encode_batch_bit_transposed(X, 32)
        YH, YL = encode_batch_bit_transposed(Y, 32)
        legacy = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32)
        general = bpbc_sw_wavefront_planes(
            DNA.batch_planes(X, 32), DNA.batch_planes(Y, 32), SCHEME, 32
        )
        np.testing.assert_array_equal(legacy.max_scores,
                                      general.max_scores)

    def test_folded_cell_with_protein(self, rng):
        P, m, n = 20, 5, 9
        X = rng.integers(0, 20, (P, m)).astype(np.uint8)
        Y = rng.integers(0, 20, (P, n)).astype(np.uint8)
        Xp = PROTEIN.batch_planes(X, 32)
        Yp = PROTEIN.batch_planes(Y, 32)
        g = bpbc_sw_wavefront_planes(Xp, Yp, SCHEME, 32, cell="generic")
        f = bpbc_sw_wavefront_planes(Xp, Yp, SCHEME, 32, cell="folded")
        np.testing.assert_array_equal(g.max_scores, f.max_scores)

    def test_cost_grows_by_2eps(self, rng):
        """Protein costs exactly 2*(5-2) = 6 ops per cell over DNA."""
        m, n = 3, 4
        counters = {}
        for alphabet in (DNA, PROTEIN):
            X = rng.integers(0, alphabet.size, (32, m)).astype(np.uint8)
            Y = rng.integers(0, alphabet.size, (32, n)).astype(np.uint8)
            c = OpCounter()
            bpbc_sw_wavefront_planes(
                alphabet.batch_planes(X, 32),
                alphabet.batch_planes(Y, 32), SCHEME, 32, counter=c,
            )
            counters[alphabet.name] = c.ops
        diff = counters["protein"] - counters["DNA"]
        steps = m + n - 1
        assert diff == steps * (sw_cell_ops_exact(SCHEME.score_bits(m, n), 5)
                                - sw_cell_ops_exact(
                                    SCHEME.score_bits(m, n), 2))
        assert diff == steps * 6

    def test_mismatched_eps_rejected(self, rng):
        Xp = np.zeros((2, 3, 1), dtype=np.uint32)
        Yp = np.zeros((3, 4, 1), dtype=np.uint32)
        with pytest.raises(BitOpsError):
            bpbc_sw_wavefront_planes(Xp, Yp, SCHEME, 32)

    def test_2d_input_rejected(self):
        bad = np.zeros((3, 1), dtype=np.uint32)
        with pytest.raises(BitOpsError):
            bpbc_sw_wavefront_planes(bad, bad, SCHEME, 32)

    @settings(max_examples=10, deadline=None)
    @given(size=st.integers(2, 20), m=st.integers(1, 6),
           n=st.integers(1, 9), seed=st.integers(0, 2**31))
    def test_any_alphabet_size_property(self, size, m, n, seed):
        rng = np.random.default_rng(seed)
        letters = "ABCDEFGHIJKLMNOPQRST"[:size]
        alpha = Alphabet("test", letters)
        P = 30
        X = rng.integers(0, size, (P, m)).astype(np.uint8)
        Y = rng.integers(0, size, (P, n)).astype(np.uint8)
        r = bpbc_sw_wavefront_planes(
            alpha.batch_planes(X, 64), alpha.batch_planes(Y, 64),
            SCHEME, 64,
        )
        gold = [sw_max_score(X[p], Y[p], SCHEME) for p in range(P)]
        np.testing.assert_array_equal(r.max_scores[:P], gold)
