"""Engine fallback chain: four bit-identical engines, one answer.

The repo ships four independent implementations of the same batch
scoring contract ``(X, Y, scheme, word_bits) -> (P,) max scores``:

1. ``compiled-c`` — the BPBC wavefront with the native fused step
   (:mod:`repro.jit.cbackend`; needs a system C toolchain),
2. ``compiled-numpy`` — the same circuit lowered to generated NumPy,
3. ``bpbc`` — the paper-literal interpreted circuit evaluator,
4. ``numpy`` — the wordwise NumPy Smith-Waterman baseline.

They are bit-identical by construction and pinned so by the
differential fuzz suite — which makes them *redundant hardware* in the
fault-tolerance sense (SWAPHI's Xeon-Phi-offload-or-CPU and
AnySeq/GPU's per-backend variants exploit the same property).
:class:`EngineFallbackChain` turns that redundancy into availability:
score on the fastest healthy engine, demote on failure, and guard each
engine with a :class:`~repro.resilience.breaker.CircuitBreaker` so a
permanently broken backend stops being offered traffic.

Because a *wrong* fallback would be worse than an outage, every engine
must pass a known-answer self-test (:data:`KAT_EXPECTED`, hardcoded
scores over a fixed pair set) before it may join a chain — an engine
whose toolchain is missing is silently dropped, but an engine that
returns different scores raises :class:`SelfTestError` loudly.
"""

from __future__ import annotations

import threading

import numpy as np

from ..swa.scoring import DEFAULT_SCHEME, ScoringScheme
from .breaker import CircuitBreaker
from .errors import FallbackExhaustedError, SelfTestError
from .faults import fault_point

__all__ = ["DEFAULT_CHAIN", "RESILIENCE_ENGINES", "KAT_EXPECTED",
           "EngineFallbackChain", "engine_available", "default_chain"]


def _score_wavefront(X, Y, scheme, word_bits, cell):
    """One rectangular (possibly sentinel-padded) batch through the
    BPBC wavefront with a pinned cell evaluator — the same dispatch as
    the shard workers and serve engines."""
    from ..shard.worker import _score_bpbc

    return _score_bpbc(np.asarray(X, dtype=np.uint8),
                       np.asarray(Y, dtype=np.uint8),
                       scheme, word_bits, cell=cell)


def _engine_compiled_c(X, Y, scheme, word_bits):
    fault_point("engine.compiled-c.fail")
    return _score_wavefront(X, Y, scheme, word_bits, "compiled-c")


def _engine_compiled_numpy(X, Y, scheme, word_bits):
    fault_point("engine.compiled-numpy.fail")
    return _score_wavefront(X, Y, scheme, word_bits, "compiled-numpy")


def _engine_bpbc(X, Y, scheme, word_bits):
    fault_point("engine.bpbc.fail")
    return _score_wavefront(X, Y, scheme, word_bits, "generic")


def _engine_numpy(X, Y, scheme, word_bits):
    fault_point("engine.numpy.fail")
    from ..shard.worker import _score_numpy

    return _score_numpy(np.asarray(X, dtype=np.uint8),
                        np.asarray(Y, dtype=np.uint8), scheme,
                        word_bits)


#: Chain engines, fastest first — exactly the demotion order.
RESILIENCE_ENGINES = {
    "compiled-c": _engine_compiled_c,
    "compiled-numpy": _engine_compiled_numpy,
    "bpbc": _engine_bpbc,
    "numpy": _engine_numpy,
}

#: Default demotion order: native -> generated NumPy -> interpreted
#: circuit -> wordwise SWA.
DEFAULT_CHAIN = ("compiled-c", "compiled-numpy", "bpbc", "numpy")


# -- known-answer self-test --------------------------------------------
# Five fixed DNA pairs covering perfect match, substitutions, gaps and
# a no-match case.  The expected scores are hardcoded (verified against
# the wordwise reference in tests/chaos/test_fallback_chain.py): a KAT
# that recomputed its own expectation would never catch a systematic
# bug shared by the engine under test and the recomputation.
KAT_X = np.array([
    [0, 1, 2, 3, 0, 1, 2, 3],
    [0, 0, 0, 0, 1, 1, 1, 1],
    [2, 3, 2, 3, 2, 3, 2, 3],
    [3, 2, 1, 0, 3, 2, 1, 0],
    [0, 1, 2, 3, 3, 2, 1, 0],
], dtype=np.uint8)
KAT_Y = np.array([
    [0, 1, 2, 3, 0, 1, 2, 3],
    [2, 2, 0, 0, 0, 0, 3, 3],
    [2, 3, 0, 1, 2, 3, 0, 1],
    [1, 0, 1, 0, 1, 0, 1, 0],
    [0, 1, 2, 0, 3, 2, 1, 3],
], dtype=np.uint8)
#: Exact max scores of the KAT pairs under the paper's default scheme.
KAT_EXPECTED = (16, 8, 6, 6, 11)


def engine_available(name: str, word_bits: int = 64) -> bool:
    """Probe + self-test one engine; ``False`` when it cannot run or
    errors (a *wrong* engine still raises :class:`SelfTestError`)."""
    try:
        run_self_test(name, word_bits)
        return True
    except SelfTestError:
        raise
    except Exception:  # noqa: BLE001 - missing toolchain, import, ...
        return False


def run_self_test(name: str, word_bits: int = 64) -> None:
    """Score the KAT pairs on engine ``name``; raise on any deviation.

    Every engine must reproduce :data:`KAT_EXPECTED` bit for bit —
    this is the startup gate that keeps a miscompiled or corrupted
    backend out of the fallback rotation.
    """
    fn = RESILIENCE_ENGINES[name]
    got = np.asarray(fn(KAT_X, KAT_Y, DEFAULT_SCHEME, word_bits))
    expected = np.asarray(KAT_EXPECTED, dtype=got.dtype)
    if got.shape != expected.shape or not np.array_equal(got, expected):
        raise SelfTestError(name, KAT_EXPECTED, got.reshape(-1))


class EngineFallbackChain:
    """Score batches on the first healthy engine of a demotion chain.

    Parameters
    ----------
    engines:
        Ordered engine names from :data:`RESILIENCE_ENGINES` (default
        :data:`DEFAULT_CHAIN`).  At construction each engine runs the
        known-answer self-test; engines that cannot run at all (e.g.
        ``compiled-c`` without a C toolchain) are dropped, and engines
        that run but score *wrong* raise :class:`SelfTestError`.
    failure_threshold / reset_after_s:
        Per-engine :class:`CircuitBreaker` tuning.
    word_bits:
        Lane width handed to the engines.

    :meth:`score` walks the chain: engines with open breakers are
    skipped without a call, a failing engine records a breaker failure
    and the next engine is tried, and the first success records a
    breaker success.  When every engine fails,
    :class:`FallbackExhaustedError` reports each attempt.  All of it
    is thread-safe — serve's worker threads share one chain.
    """

    def __init__(self, engines=DEFAULT_CHAIN, *,
                 failure_threshold: int = 3,
                 reset_after_s: float = 30.0,
                 word_bits: int = 64,
                 self_test: bool = True) -> None:
        for name in engines:
            if name not in RESILIENCE_ENGINES:
                raise ValueError(
                    f"unknown resilience engine {name!r}; expected a "
                    f"subset of {sorted(RESILIENCE_ENGINES)}"
                )
        if not engines:
            raise ValueError("engine chain must not be empty")
        self.word_bits = word_bits
        self.dropped: dict[str, str] = {}
        names: list[str] = []
        for name in engines:
            if self_test:
                try:
                    run_self_test(name, word_bits)
                except SelfTestError:
                    raise
                except Exception as exc:  # noqa: BLE001 - unavailable
                    self.dropped[name] = repr(exc)
                    continue
            names.append(name)
        if not names:
            raise FallbackExhaustedError(
                "no resilience engine survived the self-test gate",
                {k: v for k, v in self.dropped.items()})
        self.engines = tuple(names)
        self.breakers = {
            name: CircuitBreaker(failure_threshold=failure_threshold,
                                 reset_after_s=reset_after_s)
            for name in names
        }
        self._lock = threading.Lock()
        self.scored_batches = 0
        self.fallback_batches = 0

    @property
    def active_engine(self) -> str:
        """First engine whose breaker currently admits calls."""
        for name in self.engines:
            if self.breakers[name].state != "open":
                return name
        return self.engines[-1]

    def states(self) -> dict[str, dict]:
        """Per-engine breaker snapshots (for service stats)."""
        snap = {name: self.breakers[name].snapshot()
                for name in self.engines}
        for name, reason in self.dropped.items():
            snap[name] = {"state": "dropped", "reason": reason}
        return snap

    def score(self, X, Y, scheme: ScoringScheme | None = None,
              word_bits: int | None = None) -> tuple[np.ndarray, str]:
        """Score one rectangular batch; returns ``(scores, engine)``.

        ``engine`` names the implementation that produced the scores —
        callers surface it in stats so a demoted deployment is visible,
        not silent.
        """
        scheme = scheme or DEFAULT_SCHEME
        word_bits = self.word_bits if word_bits is None else word_bits
        attempts: dict[str, object] = {}
        for i, name in enumerate(self.engines):
            breaker = self.breakers[name]
            if not breaker.allow():
                attempts[name] = "breaker-open"
                continue
            try:
                scores = RESILIENCE_ENGINES[name](X, Y, scheme,
                                                  word_bits)
            except Exception as exc:  # noqa: BLE001 - demote and go on
                breaker.record_failure()
                attempts[name] = exc
                continue
            breaker.record_success()
            with self._lock:
                self.scored_batches += 1
                if i > 0 or attempts:
                    self.fallback_batches += 1
            return np.asarray(scores, dtype=np.int64), name
        raise FallbackExhaustedError(
            f"all {len(self.engines)} engines failed the batch: "
            + ", ".join(f"{k}={v!r}" for k, v in attempts.items()),
            attempts)


_default_chain: EngineFallbackChain | None = None
_default_lock = threading.Lock()


def default_chain(word_bits: int = 64) -> EngineFallbackChain:
    """A process-wide shared chain (lazily built, self-tested once).

    The recovery paths of :func:`repro.filter.screening.bulk_max_scores`
    use this so repeated bulk calls do not re-run the startup
    self-tests.  Only the 64-bit chain is shared; other widths build a
    fresh chain per call.
    """
    global _default_chain
    if word_bits != 64:
        return EngineFallbackChain(word_bits=word_bits)
    with _default_lock:
        if _default_chain is None:
            _default_chain = EngineFallbackChain()
        return _default_chain
