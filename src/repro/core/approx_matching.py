"""BPBC approximate string matching (k-mismatch).

The paper's §II matcher only detects *exact* occurrences; its
references [19, 20] concern the approximate variant.  The BPBC
extension is natural: instead of OR-ing mismatch flags into one bit,
*count* mismatches per offset with a bit-sliced counter — one
half-adder increment (2 ops per counter bit) per pattern position —
then compare the count against ``k`` with the §IV comparator.  Total
cost stays O(mn) bitwise operations for ``word_bits x lanes`` pairs at
once.

Functions::

    counter = increment_if(counter, flag)        # bit-sliced +flag
    counts  = bpbc_count_mismatches(XH, XL, YH, YL, word_bits)
    hits    = bpbc_k_mismatch(XH, XL, YH, YL, k, word_bits)
"""

from __future__ import annotations

import numpy as np

from .bitops import BitOpsError, OpCounter, word_dtype
from .circuits import greater_than, splat_constant

__all__ = [
    "increment_if",
    "increment_if_ops",
    "bpbc_count_mismatches",
    "bpbc_k_mismatch",
    "count_mismatches_reference",
]


def increment_if(planes: list[np.ndarray], flag: np.ndarray,
                 counter: OpCounter | None = None) -> list[np.ndarray]:
    """Add a per-lane 0/1 ``flag`` to a bit-sliced counter.

    Half-adder ripple: ``2s - 1`` operations for an ``s``-bit counter
    (the final carry's AND is skipped).  The caller must size the
    counter so it cannot overflow (``s = bit_length(max_count)``).
    """
    s = len(planes)
    if s == 0:
        raise BitOpsError("empty counter")
    out = []
    carry = flag
    for h in range(s):
        out.append(planes[h] ^ carry)
        if counter is not None:
            counter.add(1, kind="count")
        if h < s - 1:
            carry = planes[h] & carry
            if counter is not None:
                counter.add(1, kind="count")
    return out


def increment_if_ops(s: int) -> int:
    """Exact op count of :func:`increment_if`: ``2s - 1``."""
    return 2 * s - 1


def bpbc_count_mismatches(XH, XL, YH, YL, word_bits: int,
                          counter: OpCounter | None = None) -> np.ndarray:
    """Per-offset bit-sliced Hamming distances for all lanes.

    Inputs as in :func:`repro.core.string_matching.bpbc_string_matching`.
    Returns an array of shape ``(n - m + 1, s, lanes)`` where
    ``[j]`` is the bit-sliced mismatch count of offset ``j``
    (``s = bit_length(m)``).
    """
    XH = np.asarray(XH)
    XL = np.asarray(XL)
    YH = np.asarray(YH)
    YL = np.asarray(YL)
    if XH.shape != XL.shape or YH.shape != YL.shape:
        raise BitOpsError("H/L plane shapes must match")
    m, n = XH.shape[0], YH.shape[0]
    if m == 0:
        raise BitOpsError("empty pattern")
    if m > n:
        raise BitOpsError(f"pattern length {m} exceeds text length {n}")
    dt = word_dtype(word_bits)
    s = max(1, m.bit_length())
    lanes = XH.shape[1:]
    out = np.zeros((n - m + 1, s) + lanes, dtype=dt)
    for j in range(n - m + 1):
        planes = [np.zeros(lanes, dtype=dt) for _ in range(s)]
        for i in range(m):
            flag = (XH[i] ^ YH[i + j]) | (XL[i] ^ YL[i + j])
            if counter is not None:
                counter.add(3, kind="mismatch-flag")
            planes = increment_if(planes, flag, counter)
        for h in range(s):
            out[j, h] = planes[h]
    return out


def bpbc_k_mismatch(XH, XL, YH, YL, k: int, word_bits: int,
                    counter: OpCounter | None = None) -> np.ndarray:
    """Per-offset, per-lane flag words: lane bit 1 iff the pattern
    matches at that offset with at most ``k`` mismatches.

    ``k = 0`` degenerates to the exact matcher of §II (tested).
    Returns shape ``(n - m + 1, lanes)`` flag words.
    """
    if k < 0:
        raise BitOpsError(f"k must be non-negative, got {k}")
    counts = bpbc_count_mismatches(XH, XL, YH, YL, word_bits, counter)
    n_off, s = counts.shape[0], counts.shape[1]
    k_planes = splat_constant(min(k, (1 << s) - 1), s, word_bits)
    dt = word_dtype(word_bits)
    out = np.zeros((n_off,) + counts.shape[2:], dtype=dt)
    for j in range(n_off):
        # k >= count  <=>  greater_than(k, count).
        out[j] = greater_than(k_planes, [counts[j, h] for h in range(s)],
                              counter)
    return out


def count_mismatches_reference(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Wordwise reference: mismatch count per offset for one pair."""
    X = np.asarray(X)
    Y = np.asarray(Y)
    m, n = len(X), len(Y)
    if m == 0 or m > n:
        raise BitOpsError("invalid pattern/text lengths")
    return np.array([
        int((X != Y[j:j + m]).sum()) for j in range(n - m + 1)
    ])
