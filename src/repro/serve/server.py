"""TCP front end: newline-delimited JSON over a threading server.

The protocol is one JSON object per line, both directions.  Requests::

    {"op": "align", "id": 7, "query": "ACGT...", "subject": "TTGA...",
     "match": 2, "mismatch": 1, "gap": 1,
     "threshold": 20, "timeout_ms": 250}
    {"op": "align", "id": 8, "query": "MKWV...", "subject": "MKYV...",
     "alphabet": "protein", "matrix": "blosum62",
     "gap_open": 11, "gap_extend": 1}
    {"op": "stats"}
    {"op": "ping"}

``op`` defaults to ``"align"``; scoring fields default to the paper's
Table II scheme (or the server's configured default scheme).
``alphabet: "protein"`` selects substitution-matrix Gotoh scoring;
DNA requests with ``gap_open`` / ``gap_extend`` get affine gaps.
Responses echo ``id`` and carry ``ok``; an align
response adds ``score`` / ``passed`` / ``cached`` / ``wait_ms``, an
error response adds ``error`` (message) and ``kind`` (a stable string
from :func:`repro.serve.errors.error_kind`).

Align requests may also carry ``req``, a client-generated request ID.
The server keeps a bounded :class:`IdempotencyIndex` of IDs it has
executed, shared across connections: a retry bearing a known ID (after
a truncated response frame, say) is answered from the remembered
response — flagged ``duplicate: true`` — instead of being scored a
second time.

Clients may *pipeline*: send many lines before reading any responses.
The handler keeps reading while a per-connection writer thread emits
responses in submission order as futures resolve — this is what lets a
single connection fill whole 64-lane batches instead of ping-ponging
one pair at a time.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from collections import OrderedDict
from concurrent.futures import Future
from queue import Queue

from ..resilience.faults import should_inject
from ..swa.scoring import DEFAULT_SCHEME, ScoringScheme
from .errors import error_kind
from .service import AlignmentService

__all__ = ["AlignmentServer", "IdempotencyIndex", "DEFAULT_PORT"]

#: Default TCP port for ``python -m repro serve``.
DEFAULT_PORT = 7421

#: Upper bound on how long the writer waits for one future before
#: answering with a timeout error (keeps connections from wedging on a
#: lost request).
_RESULT_TIMEOUT_S = 60.0


_SCHEME_KEYS = ("match", "mismatch", "gap", "alphabet", "matrix",
                "gap_open", "gap_extend")


def _scheme_from(obj: dict, default=None):
    """Build a scoring scheme from a request's scoring fields.

    ``alphabet: "protein"`` (or any ``matrix`` key) selects a protein
    :class:`~repro.core.protein.ProteinScheme` — ``matrix`` names a
    shipped substitution matrix (default BLOSUM62), ``gap_open`` /
    ``gap_extend`` default to 11 / 1.  A DNA request carrying
    ``gap_open`` / ``gap_extend`` gets an affine
    :class:`~repro.swa.affine.AffineScheme`; plain ``match`` /
    ``mismatch`` / ``gap`` keep the paper's linear scheme.  Requests
    with no scoring fields use ``default`` (the server's configured
    default scheme).
    """
    if not any(k in obj for k in _SCHEME_KEYS):
        return default if default is not None else DEFAULT_SCHEME
    alphabet = str(obj.get("alphabet", "dna")).lower()
    if alphabet in ("protein", "protein-x") or "matrix" in obj:
        from ..core.matrices import matrix_by_name
        from ..core.protein import ProteinScheme

        return ProteinScheme(
            matrix=matrix_by_name(str(obj.get("matrix", "blosum62"))),
            gap_open=int(obj.get("gap_open", 11)),
            gap_extend=int(obj.get("gap_extend", 1)),
        )
    if alphabet != "dna":
        raise ValueError(
            f"unknown alphabet {obj.get('alphabet')!r}; expected "
            "'dna' or 'protein'"
        )
    if "gap_open" in obj or "gap_extend" in obj:
        from ..swa.affine import AffineScheme

        return AffineScheme(
            match_score=int(obj.get("match",
                                    DEFAULT_SCHEME.match_score)),
            mismatch_penalty=int(
                obj.get("mismatch", DEFAULT_SCHEME.mismatch_penalty)),
            gap_open=int(obj.get("gap_open",
                                 DEFAULT_SCHEME.gap_penalty)),
            gap_extend=int(obj.get("gap_extend", 1)),
        )
    return ScoringScheme(
        match_score=int(obj.get("match", DEFAULT_SCHEME.match_score)),
        mismatch_penalty=int(
            obj.get("mismatch", DEFAULT_SCHEME.mismatch_penalty)),
        gap_penalty=int(obj.get("gap", DEFAULT_SCHEME.gap_penalty)),
    )


class IdempotencyIndex:
    """Server-level LRU of request ID -> outcome (retry dedup).

    A client that loses a response frame mid-line cannot tell whether
    the server executed its request; the safe recovery is to reconnect
    and *resend with the same client-generated ID* (the ``req`` wire
    field).  This index — shared by every connection of a server, so
    the retry may arrive on a fresh socket — remembers what each ID
    resolved to:

    * ``pending`` (a live future): the duplicate attaches to the same
      in-flight execution instead of submitting a second one;
    * ``done`` (the successful response payload): the duplicate gets
      the remembered response, flagged ``duplicate: true``.

    Only *successful* responses are remembered — a request that failed
    with a typed error (deadline, queue full) must be allowed to
    re-execute on retry.  Evicting the least-recently-used entry past
    ``capacity`` only loses dedup, never correctness: a re-executed
    request recomputes the identical score (the engines are
    deterministic and the result cache is content-keyed).
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[str, tuple[str, object]] = OrderedDict()
        self._lock = threading.Lock()
        self.duplicates = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def lookup(self, req: str):
        """``("pending", future)`` / ``("done", payload)`` or None."""
        with self._lock:
            hit = self._data.get(req)
            if hit is not None:
                self._data.move_to_end(req)
                self.duplicates += 1
            return hit

    def begin(self, req: str, future: Future) -> None:
        """Register an in-flight execution for ``req``."""
        if self.capacity == 0:
            return
        with self._lock:
            self._data[req] = ("pending", future)
            self._data.move_to_end(req)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def complete(self, req: str, payload: dict) -> None:
        """Remember the successful response payload for ``req``."""
        if self.capacity == 0:
            return
        with self._lock:
            self._data[req] = ("done", dict(payload))
            self._data.move_to_end(req)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def forget(self, req: str) -> None:
        """Drop ``req`` (its execution failed; a retry may re-run)."""
        with self._lock:
            self._data.pop(req, None)


class _Handler(socketserver.StreamRequestHandler):
    """One thread per connection; a second thread writes responses."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        service: AlignmentService = self.server.service
        out: Queue = Queue()
        writer = threading.Thread(target=self._write_loop, args=(out,),
                                  daemon=True)
        writer.start()
        try:
            for raw in self.rfile:
                line = raw.strip()
                if not line:
                    continue
                out.put(self._dispatch(service, line))
        finally:
            out.put(None)
            writer.join()

    def _dispatch(self, service: AlignmentService, line: bytes):
        """Parse one request line -> response dict or (id, req, future)."""
        try:
            obj = json.loads(line)
            if not isinstance(obj, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            return {"ok": False, "error": f"bad JSON: {exc}",
                    "kind": "bad_request"}
        rid = obj.get("id")
        op = obj.get("op", "align")
        if op == "ping":
            return {"ok": True, "id": rid, "pong": True}
        if op == "stats":
            return {"ok": True, "id": rid,
                    "stats": service.stats.snapshot()}
        if op != "align":
            return {"ok": False, "id": rid,
                    "error": f"unknown op {op!r}", "kind": "bad_request"}
        req = obj.get("req")
        req = None if req is None else str(req)
        idem: IdempotencyIndex | None = getattr(self.server,
                                                "idempotency", None)
        if req is not None and idem is not None:
            hit = idem.lookup(req)
            if hit is not None:
                kind, payload = hit
                if kind == "done":
                    # Retry of a request the server already executed:
                    # replay the remembered response, never re-score.
                    resp = dict(payload)
                    resp["id"] = rid
                    resp["duplicate"] = True
                    return resp
                # Still in flight: attach to the same execution (req
                # None: the original submission owns completion).
                return (rid, None, payload, True)
        try:
            future = service.submit(
                obj["query"], obj["subject"],
                scheme=_scheme_from(obj, getattr(self.server,
                                                 "default_scheme", None)),
                threshold=obj.get("threshold"),
                timeout_ms=obj.get("timeout_ms"),
                priority=int(obj.get("priority", 0)),
            )
        except KeyError as exc:
            return {"ok": False, "id": rid,
                    "error": f"missing field {exc.args[0]!r}",
                    "kind": "bad_request"}
        except Exception as exc:  # noqa: BLE001 - becomes a wire error
            return {"ok": False, "id": rid, "error": str(exc),
                    "kind": error_kind(exc)}
        if req is not None and idem is not None:
            idem.begin(req, future)
        return (rid, req, future, False)

    def _drop_connection(self) -> None:
        """Kill this connection (fault injection): shutting the socket
        down wakes the reader thread out of its blocking read too."""
        try:
            self.connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.connection.close()
        except OSError:
            pass

    def _write_loop(self, out: Queue) -> None:
        """Emit responses in submission order as futures resolve."""
        while True:
            item = out.get()
            if item is None:
                return
            if isinstance(item, tuple):
                rid, req, future, attached = item
                item = self._await(rid, future)
                idem: IdempotencyIndex | None = getattr(
                    self.server, "idempotency", None)
                if req is not None and idem is not None:
                    if item.get("ok"):
                        idem.complete(req, {k: v for k, v in item.items()
                                            if k != "id"})
                    else:
                        # Typed failure: forget the ID so a retry may
                        # re-execute instead of replaying the error.
                        idem.forget(req)
                if attached and item.get("ok"):
                    # A duplicate that attached to the in-flight
                    # execution is flagged like a replayed one.
                    item["duplicate"] = True
            data = json.dumps(item).encode() + b"\n"
            if should_inject("serve.sock.truncate"):
                # Half a frame, no terminator, then a dead socket —
                # the client must see a typed protocol error, never a
                # parsed half-response.
                try:
                    self.wfile.write(data[:max(1, len(data) // 2)])
                    self.wfile.flush()
                except OSError:
                    pass
                self._drop_connection()
                return
            if should_inject("serve.sock.drop"):
                self._drop_connection()
                return
            try:
                self.wfile.write(data)
                self.wfile.flush()
            except OSError:
                return  # client went away; drain silently

    @staticmethod
    def _await(rid, future: Future) -> dict:
        try:
            result = future.result(timeout=_RESULT_TIMEOUT_S)
        except Exception as exc:  # noqa: BLE001 - becomes a wire error
            return {"ok": False, "id": rid, "error": str(exc),
                    "kind": error_kind(exc)}
        return {"ok": True, "id": rid, "score": result.score,
                "passed": result.passed, "cached": result.cached,
                "wait_ms": round(result.wait_ms, 3)}


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class AlignmentServer:
    """Socket server wrapping an :class:`AlignmentService`.

    ``port=0`` binds an ephemeral port; read :attr:`address` for the
    actual one.  ``serve_forever`` blocks; ``start`` runs the accept
    loop on a background thread (what the tests use).
    ``default_scheme`` is applied to requests that carry no scoring
    fields of their own (the CLI's ``--alphabet protein`` path);
    ``None`` keeps the paper's Table II linear DNA scheme.
    ``idempotency_size`` bounds the server-wide retry-dedup index of
    client request IDs (the ``req`` wire field; 0 disables dedup).
    """

    def __init__(self, service: AlignmentService,
                 host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT,
                 default_scheme=None,
                 idempotency_size: int = 8192) -> None:
        self.service = service
        self.default_scheme = default_scheme
        self.idempotency = IdempotencyIndex(idempotency_size)
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.service = service
        self._tcp.default_scheme = default_scheme
        self._tcp.idempotency = self.idempotency
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """Actual ``(host, port)`` bound."""
        return self._tcp.server_address[:2]

    def start(self) -> "AlignmentServer":
        """Serve on a background thread (service must be started)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._tcp.serve_forever,
                name="repro-serve-accept", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking accept loop (the CLI path)."""
        self._tcp.serve_forever()

    def shutdown(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "AlignmentServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
