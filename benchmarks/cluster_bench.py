#!/usr/bin/env python
"""Cluster smoke benchmark: boot a real 3-node harness, route a mixed
DNA/protein batch, kill a node mid-batch, and prove recovery.

The acceptance experiment behind ``repro.cluster``: a coordinator over
three ``repro.serve`` subprocesses must score a mixed batch, survive
one node being SIGKILLed mid-batch (seeded ``cluster.node.drop``
driving the harness drop hook), and return scores *bit-identical* to
the fault-free single-node reference — the resilience contract at
cluster scale.  ``--check`` (the CI ``cluster-smoke`` job) asserts all
of it; without the flag the same run just reports timings.

Usage::

    PYTHONPATH=src python benchmarks/cluster_bench.py           # report
    PYTHONPATH=src python benchmarks/cluster_bench.py --check   # CI gate
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import LocalCluster  # noqa: E402
from repro.core.encoding import decode  # noqa: E402
from repro.core.matrices import BLOSUM62  # noqa: E402
from repro.core.protein import ProteinScheme  # noqa: E402
from repro.resilience.faults import FaultPlan  # noqa: E402
from repro.serve import AlignmentServer, AlignmentService  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.swa.scoring import ScoringScheme  # noqa: E402

DNA_SCHEME = ScoringScheme(match_score=2, mismatch_penalty=1,
                           gap_penalty=1)
PROTEIN_SCHEME = ProteinScheme(BLOSUM62, gap_open=11, gap_extend=1)
PROTEIN_LETTERS = "ARNDCQEGHILKMFPSTWYV"


def mixed_batches(rng, dna_pairs: int, protein_pairs: int):
    """A DNA batch and a protein batch (schemes differ per batch)."""
    dna = [(decode(rng.integers(0, 4, size=int(m)).astype(np.uint8)),
            decode(rng.integers(0, 4, size=int(n)).astype(np.uint8)))
           for m, n in rng.integers(16, 96, size=(dna_pairs, 2))]
    protein = [("".join(PROTEIN_LETTERS[c] for c in
                        rng.integers(0, 20, size=int(m))),
                "".join(PROTEIN_LETTERS[c] for c in
                        rng.integers(0, 20, size=int(n))))
               for m, n in rng.integers(12, 48,
                                        size=(protein_pairs, 2))]
    return dna, protein


def single_node_reference(dna, protein):
    """Fault-free single-node scores — the gold the cluster must hit."""
    from repro.serve.wire import scheme_wire_fields

    service = AlignmentService(workers=2, max_wait_ms=1.0)
    service.start()
    with AlignmentServer(service, host="127.0.0.1", port=0) as server:
        host, port = server.address
        with ServeClient(host, port) as client:
            t0 = time.perf_counter()
            d = client.align_many(dna,
                                  **scheme_wire_fields(DNA_SCHEME))
            p = client.align_many(protein,
                                  **scheme_wire_fields(PROTEIN_SCHEME))
            elapsed = time.perf_counter() - t0
    service.stop()
    if not all(r["ok"] for r in d + p):
        raise AssertionError("single-node reference run failed")
    return [int(r["score"]) for r in d], \
        [int(r["score"]) for r in p], elapsed


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--nodes", type=int, default=3)
    ap.add_argument("--dna-pairs", type=int, default=48)
    ap.add_argument("--protein-pairs", type=int, default=16)
    ap.add_argument("--seed", type=int, default=20260808)
    ap.add_argument("--check", action="store_true",
                    help="assert bit-identical recovery after the "
                         "node kill (the CI cluster-smoke gate)")
    args = ap.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    dna, protein = mixed_batches(rng, args.dna_pairs,
                                 args.protein_pairs)
    print(f"workload: {len(dna)} DNA pairs (linear scheme) + "
          f"{len(protein)} protein pairs (blosum62 affine)")

    dna_gold, protein_gold, single_s = single_node_reference(dna,
                                                             protein)
    print(f"single:   {single_s:6.2f}s  one in-process node "
          f"(the bit-exact reference)")

    with LocalCluster(n=args.nodes, startup_timeout_s=120.0) as lc:
        with lc.coordinator(deadline_s=60.0) as coord:
            t0 = time.perf_counter()
            got_dna = coord.score_batch(dna, DNA_SCHEME)
            got_protein = coord.score_batch(protein, PROTEIN_SCHEME)
            healthy_s = time.perf_counter() - t0
            print(f"cluster:  {healthy_s:6.2f}s  {args.nodes} "
                  f"subprocess nodes, healthy run")
            if list(got_dna) != dna_gold or \
                    list(got_protein) != protein_gold:
                print("FAIL: healthy cluster scores diverged from the "
                      "single-node reference")
                return 1

            # Round two: a node dies mid-batch; same gold scores.
            plan = FaultPlan.single("cluster.node.drop",
                                    seed=args.seed, times=1)
            t0 = time.perf_counter()
            with plan:
                kill_dna = coord.score_batch(dna, DNA_SCHEME)
                kill_protein = coord.score_batch(protein,
                                                 PROTEIN_SCHEME)
            killed_s = time.perf_counter() - t0
            dead = [s.name for s in lc.specs if not lc.alive(s.name)]
            status = coord.status()["cluster"]
            print(f"chaos:    {killed_s:6.2f}s  killed {dead or 'none'} "
                  f"mid-batch; rerouted {status['rerouted']}, "
                  f"degraded {status['degraded']}, "
                  f"shed {status['shed']}")

            if args.check:
                if plan.fire_counts()["cluster.node.drop"] != 1:
                    print("FAIL: the node-drop fault never fired")
                    return 1
                if len(dead) != 1:
                    print(f"FAIL: expected exactly one dead node, "
                          f"got {dead}")
                    return 1
                if list(kill_dna) != dna_gold or \
                        list(kill_protein) != protein_gold:
                    print("FAIL: post-kill scores diverged from the "
                          "single-node reference")
                    return 1
                if status["shed"]:
                    print("FAIL: requests were shed on a cluster with "
                          "two live nodes")
                    return 1
                # Survivors must keep serving.
                again = coord.score_batch(dna, DNA_SCHEME)
                if list(again) != dna_gold:
                    print("FAIL: survivors returned wrong scores")
                    return 1
                print("check:    recovery bit-identical to the "
                      "single-node reference")
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
