"""Traceback and local-alignment extraction for Smith-Waterman.

The BPBC pipeline reports only the maximum score per pair; pairs whose
score passes the threshold are re-aligned here on the CPU, as the paper
prescribes (§III: "Once such strings are identified, a detailed
matching can be computed by a conventional SWA on the CPU, where the
score and traceback matrices can be used to identify similar regions").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scoring import ScoringScheme
from .sequential import sw_matrix

__all__ = ["Alignment", "traceback", "align", "format_alignment"]

#: Traceback direction codes.
_STOP, _DIAG, _UP, _LEFT = 0, 1, 2, 3


@dataclass(frozen=True)
class Alignment:
    """A local alignment between two sequences.

    ``x_start``/``x_end`` and ``y_start``/``y_end`` are half-open
    0-based ranges into the original sequences; ``aligned_x`` /
    ``aligned_y`` are the gapped alignment rows (``-`` = gap) and
    ``score`` the Smith-Waterman score of the region.
    """

    score: int
    x_start: int
    x_end: int
    y_start: int
    y_end: int
    aligned_x: str
    aligned_y: str

    @property
    def length(self) -> int:
        """Number of alignment columns (including gaps)."""
        return len(self.aligned_x)

    @property
    def identity(self) -> float:
        """Fraction of alignment columns that are exact matches."""
        if not self.aligned_x:
            return 0.0
        matches = sum(
            1 for a, b in zip(self.aligned_x, self.aligned_y)
            if a == b and a != "-"
        )
        return matches / len(self.aligned_x)


def traceback(d: np.ndarray, x, y, scheme: ScoringScheme,
              end: tuple[int, int] | None = None) -> Alignment:
    """Trace one optimal local alignment back from ``end``.

    ``d`` is the ``(m+1) x (n+1)`` scoring matrix of
    :func:`repro.swa.sequential.sw_matrix`; ``end`` defaults to the
    argmax cell.  Ties are broken diagonal-first (the conventional
    choice, preferring substitutions over gaps).
    """
    m, n = len(x), len(y)
    if d.shape != (m + 1, n + 1):
        raise ValueError(
            f"matrix shape {d.shape} does not fit sequences "
            f"({m + 1} x {n + 1} expected)"
        )
    if end is None:
        flat = int(np.argmax(d))
        end = (flat // (n + 1), flat % (n + 1))
    i, j = end
    score = int(d[i, j])
    c1, c2, gap = (scheme.match_score, scheme.mismatch_penalty,
                   scheme.gap_penalty)
    ax: list[str] = []
    ay: list[str] = []
    x_end, y_end = i, j
    while i > 0 and j > 0 and d[i, j] > 0:
        here = d[i, j]
        w = c1 if x[i - 1] == y[j - 1] else -c2
        if here == d[i - 1, j - 1] + w:
            ax.append(str(x[i - 1]))
            ay.append(str(y[j - 1]))
            i -= 1
            j -= 1
        elif here == d[i - 1, j] - gap:
            ax.append(str(x[i - 1]))
            ay.append("-")
            i -= 1
        elif here == d[i, j - 1] - gap:
            ax.append("-")
            ay.append(str(y[j - 1]))
            j -= 1
        else:  # pragma: no cover - would indicate a corrupted matrix
            raise ValueError(
                f"inconsistent scoring matrix at cell ({i}, {j})"
            )
    return Alignment(
        score=score,
        x_start=i,
        x_end=x_end,
        y_start=j,
        y_end=y_end,
        aligned_x="".join(reversed(ax)),
        aligned_y="".join(reversed(ay)),
    )


def align(x, y, scheme: ScoringScheme | None = None) -> Alignment:
    """Best local alignment of ``x`` against ``y`` (matrix + traceback)."""
    from .scoring import DEFAULT_SCHEME

    scheme = scheme or DEFAULT_SCHEME
    d = sw_matrix(x, y, scheme)
    return traceback(d, x, y, scheme)


def format_alignment(a: Alignment) -> str:
    """Three-row pretty print: query, match bars, subject."""
    bars = "".join(
        "|" if p == q and p != "-" else " "
        for p, q in zip(a.aligned_x, a.aligned_y)
    )
    return (
        f"score={a.score} x[{a.x_start}:{a.x_end}] "
        f"y[{a.y_start}:{a.y_end}] identity={a.identity:.2f}\n"
        f"  {a.aligned_x}\n  {bars}\n  {a.aligned_y}"
    )
