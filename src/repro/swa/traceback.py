"""Traceback and local-alignment extraction for Smith-Waterman.

The BPBC pipeline reports only the maximum score per pair; pairs whose
score passes the threshold are re-aligned here on the CPU, as the paper
prescribes (§III: "Once such strings are identified, a detailed
matching can be computed by a conventional SWA on the CPU, where the
score and traceback matrices can be used to identify similar regions").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scoring import ScoringScheme
from .sequential import sw_matrix

__all__ = ["Alignment", "traceback", "align", "gotoh_traceback",
           "gotoh_align", "format_alignment"]

#: Traceback direction codes.
_STOP, _DIAG, _UP, _LEFT = 0, 1, 2, 3


@dataclass(frozen=True)
class Alignment:
    """A local alignment between two sequences.

    ``x_start``/``x_end`` and ``y_start``/``y_end`` are half-open
    0-based ranges into the original sequences; ``aligned_x`` /
    ``aligned_y`` are the gapped alignment rows (``-`` = gap) and
    ``score`` the Smith-Waterman score of the region.
    """

    score: int
    x_start: int
    x_end: int
    y_start: int
    y_end: int
    aligned_x: str
    aligned_y: str

    @property
    def length(self) -> int:
        """Number of alignment columns (including gaps)."""
        return len(self.aligned_x)

    @property
    def identity(self) -> float:
        """Fraction of alignment columns that are exact matches."""
        if not self.aligned_x:
            return 0.0
        matches = sum(
            1 for a, b in zip(self.aligned_x, self.aligned_y)
            if a == b and a != "-"
        )
        return matches / len(self.aligned_x)


def traceback(d: np.ndarray, x, y, scheme: ScoringScheme,
              end: tuple[int, int] | None = None) -> Alignment:
    """Trace one optimal local alignment back from ``end``.

    ``d`` is the ``(m+1) x (n+1)`` scoring matrix of
    :func:`repro.swa.sequential.sw_matrix`; ``end`` defaults to the
    argmax cell.  Ties are broken diagonal-first (the conventional
    choice, preferring substitutions over gaps).
    """
    m, n = len(x), len(y)
    if d.shape != (m + 1, n + 1):
        raise ValueError(
            f"matrix shape {d.shape} does not fit sequences "
            f"({m + 1} x {n + 1} expected)"
        )
    if end is None:
        flat = int(np.argmax(d))
        end = (flat // (n + 1), flat % (n + 1))
    i, j = end
    score = int(d[i, j])
    c1, c2, gap = (scheme.match_score, scheme.mismatch_penalty,
                   scheme.gap_penalty)
    ax: list[str] = []
    ay: list[str] = []
    x_end, y_end = i, j
    while i > 0 and j > 0 and d[i, j] > 0:
        here = d[i, j]
        w = c1 if x[i - 1] == y[j - 1] else -c2
        if here == d[i - 1, j - 1] + w:
            ax.append(str(x[i - 1]))
            ay.append(str(y[j - 1]))
            i -= 1
            j -= 1
        elif here == d[i - 1, j] - gap:
            ax.append(str(x[i - 1]))
            ay.append("-")
            i -= 1
        elif here == d[i, j - 1] - gap:
            ax.append("-")
            ay.append(str(y[j - 1]))
            j -= 1
        else:  # pragma: no cover - would indicate a corrupted matrix
            raise ValueError(
                f"inconsistent scoring matrix at cell ({i}, {j})"
            )
    return Alignment(
        score=score,
        x_start=i,
        x_end=x_end,
        y_start=j,
        y_end=y_end,
        aligned_x="".join(reversed(ax)),
        aligned_y="".join(reversed(ay)),
    )


def _pair_weight(scheme):
    """Per-pair weight function of an affine scheme.

    :class:`~repro.core.protein.ProteinScheme` scores through its
    substitution matrix (by character for strings, through the padded
    weight table for code sequences);
    :class:`~repro.swa.affine.AffineScheme` uses the equality gate.
    """
    if callable(getattr(scheme, "weights_key", None)):
        def w(a, b):
            if isinstance(a, (str, np.str_)):
                return scheme.matrix.score(a, b)
            from ..core.protein import padded_weight_table

            return int(padded_weight_table(scheme)[int(a), int(b)])
    else:
        c1, c2 = scheme.match_score, scheme.mismatch_penalty

        def w(a, b):
            return c1 if a == b else -c2
    return w


def gotoh_traceback(x, y, scheme, matrices=None,
                    end: tuple[int, int] | None = None) -> Alignment:
    """Trace one optimal affine-gap local alignment back from ``end``.

    ``scheme`` is an :class:`~repro.swa.affine.AffineScheme` or a
    :class:`~repro.core.protein.ProteinScheme`; ``matrices`` the
    ``(H, E, F)`` triple of the Gotoh DP (zero-clamped E/F, as
    :func:`repro.swa.affine.gotoh_matrix` and
    :func:`repro.core.protein.subst_gotoh_matrix` produce — recomputed
    here when omitted).  The trace is a three-state machine over
    H/E/F: in H, diagonal steps are preferred (substitutions over
    gaps) and gap runs are entered through E (gap in ``x``) before F
    (gap in ``y``); inside E/F the run extends until the opening step
    pays ``gap_open`` back into H.
    """
    m, n = len(x), len(y)
    if matrices is None:
        matrices = _gotoh_matrices(x, y, scheme)
    H, E, F = matrices
    if H.shape != (m + 1, n + 1):
        raise ValueError(
            f"matrix shape {H.shape} does not fit sequences "
            f"({m + 1} x {n + 1} expected)"
        )
    if end is None:
        flat = int(np.argmax(H))
        end = (flat // (n + 1), flat % (n + 1))
    i, j = end
    score = int(H[i, j])
    go, ge = scheme.gap_open, scheme.gap_extend
    w = _pair_weight(scheme)
    ax: list[str] = []
    ay: list[str] = []
    x_end, y_end = i, j
    state = "H"
    while i > 0 and j > 0:
        if state == "H":
            here = H[i, j]
            if here == 0:
                break
            if here == H[i - 1, j - 1] + w(x[i - 1], y[j - 1]):
                ax.append(str(x[i - 1]))
                ay.append(str(y[j - 1]))
                i -= 1
                j -= 1
            elif here == E[i, j]:
                state = "E"
            elif here == F[i, j]:
                state = "F"
            else:  # pragma: no cover - corrupted matrices
                raise ValueError(
                    f"inconsistent Gotoh matrices at cell ({i}, {j})"
                )
        elif state == "E":
            here = E[i, j]
            ax.append("-")
            ay.append(str(y[j - 1]))
            if here == H[i, j - 1] - go:
                state = "H"
            elif here != E[i, j - 1] - ge:  # pragma: no cover
                raise ValueError(
                    f"inconsistent E matrix at cell ({i}, {j})"
                )
            j -= 1
        else:  # state == "F"
            here = F[i, j]
            ax.append(str(x[i - 1]))
            ay.append("-")
            if here == H[i - 1, j] - go:
                state = "H"
            elif here != F[i - 1, j] - ge:  # pragma: no cover
                raise ValueError(
                    f"inconsistent F matrix at cell ({i}, {j})"
                )
            i -= 1
    return Alignment(
        score=score,
        x_start=i,
        x_end=x_end,
        y_start=j,
        y_end=y_end,
        aligned_x="".join(reversed(ax)),
        aligned_y="".join(reversed(ay)),
    )


def _gotoh_matrices(x, y, scheme):
    """The full ``(H, E, F)`` Gotoh DP (zero-clamped E/F)."""
    m, n = len(x), len(y)
    H = np.zeros((m + 1, n + 1), dtype=np.int64)
    E = np.zeros((m + 1, n + 1), dtype=np.int64)
    F = np.zeros((m + 1, n + 1), dtype=np.int64)
    go, ge = scheme.gap_open, scheme.gap_extend
    w = _pair_weight(scheme)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            E[i, j] = max(0, H[i, j - 1] - go, E[i, j - 1] - ge)
            F[i, j] = max(0, H[i - 1, j] - go, F[i - 1, j] - ge)
            diag = H[i - 1, j - 1] + w(x[i - 1], y[j - 1])
            H[i, j] = max(0, E[i, j], F[i, j], diag)
    return H, E, F


def gotoh_align(x, y, scheme) -> Alignment:
    """Best affine-gap local alignment (Gotoh DP + traceback)."""
    return gotoh_traceback(x, y, scheme, matrices=_gotoh_matrices(x, y,
                                                                  scheme))


def align(x, y, scheme: ScoringScheme | None = None) -> Alignment:
    """Best local alignment of ``x`` against ``y`` (matrix + traceback)."""
    from .scoring import DEFAULT_SCHEME

    scheme = scheme or DEFAULT_SCHEME
    d = sw_matrix(x, y, scheme)
    return traceback(d, x, y, scheme)


def format_alignment(a: Alignment) -> str:
    """Three-row pretty print: query, match bars, subject."""
    bars = "".join(
        "|" if p == q and p != "-" else " "
        for p, q in zip(a.aligned_x, a.aligned_y)
    )
    return (
        f"score={a.score} x[{a.x_start}:{a.x_end}] "
        f"y[{a.y_start}:{a.y_end}] identity={a.identity:.2f}\n"
        f"  {a.aligned_x}\n  {bars}\n  {a.aligned_y}"
    )
