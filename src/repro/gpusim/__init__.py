"""Cooperative SIMT GPU simulator (devices, memories, kernel launch)."""

from .device import CORE_I7_6700, GTX_280, GTX_TITAN_X, CpuSpec, DeviceSpec
from .errors import (GpuSimError, KernelDeadlock, LaunchConfigError,
                     MemoryFault)
from .kernel import Barrier, KernelStats, Shfl, ThreadCtx, launch_kernel
from .memory import GlobalMemory, MemoryStats, SharedMemory
from .trace import AccessTracer
from .timing import (KernelTimeEstimate, estimate_kernel_time,
                     estimate_transfer_time)

__all__ = [
    "DeviceSpec", "CpuSpec", "GTX_TITAN_X", "GTX_280", "CORE_I7_6700",
    "GlobalMemory", "SharedMemory", "MemoryStats",
    "launch_kernel", "Barrier", "Shfl", "ThreadCtx", "KernelStats",
    "GpuSimError", "KernelDeadlock", "MemoryFault", "LaunchConfigError",
    "AccessTracer",
    "estimate_kernel_time", "estimate_transfer_time",
    "KernelTimeEstimate",
]
