"""LocalCluster: real serve subprocesses on ephemeral ports.

One 2-node cluster is shared module-wide — subprocess startup is the
expensive part, and these tests only need *a* live cluster, not a
fresh one each.  Node-death chaos (which consumes nodes) lives in
``tests/chaos/test_cluster_chaos.py``.
"""

from __future__ import annotations

import pytest

from repro.cluster import LocalCluster, NodeSpec, TopologyError
from repro.swa.scoring import DEFAULT_SCHEME
from repro.swa.sequential import sw_matrix

PAIRS = [("ACGTACGT", "ACGTTGCA"), ("GATTACA", "GATTACA")]


@pytest.fixture(scope="module")
def cluster():
    lc = LocalCluster(n=2, startup_timeout_s=120.0)
    try:
        lc.start()
    except (TopologyError, OSError) as exc:
        lc.stop()
        pytest.skip(f"cannot spawn serve subprocesses here: {exc}")
    yield lc
    lc.stop()


def test_nodes_announce_ephemeral_ports(cluster):
    for spec in cluster.specs:
        host, port = cluster.address(spec.name)
        assert host == "127.0.0.1"
        assert port > 0
        assert cluster.alive(spec.name)


def test_coordinator_scores_through_real_processes(cluster):
    expected = [int(sw_matrix(q, s, DEFAULT_SCHEME).max())
                for q, s in PAIRS]
    with cluster.coordinator(deadline_s=30.0) as coord:
        got = coord.score_batch(PAIRS)
    assert list(got) == expected
    per_node = coord.status()["per_node"]
    assert {n["name"] for n in per_node} == {"node0", "node1"}


def test_drop_hooks_kill_the_real_process(cluster):
    nodes = cluster.nodes()
    assert all(n.drop_hook is not None for n in nodes)


def test_specs_validate():
    with pytest.raises(TopologyError, match="at least one"):
        LocalCluster(specs=[])
    with pytest.raises(TopologyError, match="non-empty"):
        NodeSpec(name="")


def test_kill_is_idempotent(cluster):
    # Killing an unknown name is a no-op, not an error.
    cluster.kill("never-existed")
