"""Quickstart: bulk Smith-Waterman scoring with the BPBC engine.

Runs in a few seconds:

    python examples/quickstart.py

1. builds a batch of DNA pairs (some with planted homologies),
2. scores all of them at once with the bitwise bulk engine,
3. verifies a few scores against the classic DP, and
4. prints the best alignment of the top-scoring pair.
"""

from __future__ import annotations

import numpy as np

from repro import (
    ScoringScheme,
    align,
    bulk_max_scores,
    decode,
    format_alignment,
    sw_max_score,
)
from repro.workloads.dna import MutationModel, homologous_pairs


def main() -> None:
    rng = np.random.default_rng(2017)
    scheme = ScoringScheme(match_score=2, mismatch_penalty=1,
                           gap_penalty=1)

    # 256 pattern/text pairs; half the texts contain a mutated copy of
    # their pattern.
    X, Y, labels = homologous_pairs(
        rng, count=256, m=48, n=384, related_fraction=0.5,
        model=MutationModel(sub_rate=0.04),
    )
    print(f"scoring {len(X)} pairs (m={X.shape[1]}, n={Y.shape[1]}) "
          f"in one bulk call...")

    # One call scores every pair: 64 pairs per machine word, all words
    # vectorised.  This is the paper's BPBC technique end to end.
    scores = bulk_max_scores(X, Y, scheme, word_bits=64)

    related = scores[labels]
    unrelated = scores[~labels]
    print(f"related pairs:   mean score {related.mean():6.1f} "
          f"(min {related.min()}, max {related.max()})")
    print(f"unrelated pairs: mean score {unrelated.mean():6.1f} "
          f"(min {unrelated.min()}, max {unrelated.max()})")

    # Spot-check the bulk engine against the classic DP.
    for p in rng.choice(len(X), size=3, replace=False):
        reference = sw_max_score(X[p], Y[p], scheme)
        assert scores[p] == reference, (p, scores[p], reference)
    print("spot-check vs classic DP: OK")

    # Full alignment of the best pair (the CPU path the paper reserves
    # for pairs that pass the threshold).
    best = int(np.argmax(scores))
    print(f"\nbest pair #{best} (score {scores[best]}):")
    print(format_alignment(align(decode(X[best]), decode(Y[best]),
                                 scheme)))


if __name__ == "__main__":
    main()
