"""Protein scoring schemes and the word-wise scalar Gotoh references.

:class:`ProteinScheme` is the protein counterpart of
:class:`repro.swa.scoring.ScoringScheme` / :class:`repro.swa.affine.AffineScheme`:
a substitution matrix (BLOSUM62 by default) over a 5-bit amino-acid
alphabet plus affine gap costs (BLAST's 11/1 by default).  With
``gap_open == gap_extend`` the model degenerates to linear gaps and the
engines run the cheaper linear substitution cell.

The module also provides the *gold* scalar references every bit-sliced
protein path is pinned against by the differential battery:

* :func:`subst_gotoh_matrix` / :func:`subst_gotoh_max_score` — pure
  Python Gotoh DP with zero-clamped E/F (matching the circuit's
  saturating subtractions),
* :func:`subst_gotoh_batch_max_scores` — the int32 wavefront-vectorised
  batch engine (mirrors :func:`repro.swa.affine.gotoh_batch_max_scores`).

Both index a *padded* weight table (:func:`padded_weight_table`): codes
at or above the alphabet size — the sentinel pads of
:mod:`repro.core.encoding` — score the matrix minimum, exactly what the
mux-tree circuit computes for an undecoded pair, so references and
circuits agree bit-for-bit even on sentinel-padded batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from .alphabet import PROTEIN_X, Alphabet
from .matrices import BLOSUM62, SubstitutionMatrix
from .subst import WeightsKey

__all__ = [
    "ProteinScheme",
    "padded_weight_table",
    "subst_gotoh_matrix",
    "subst_gotoh_max_score",
    "subst_gotoh_batch_max_scores",
]


@dataclass(frozen=True)
class ProteinScheme:
    """Substitution-matrix scoring with affine gaps.

    ``gap_open`` is the total cost of a gap's first character,
    ``gap_extend`` of each further one (non-negative magnitudes,
    ``gap_open >= gap_extend >= 1``); equality means linear gaps.  The
    ``alphabet`` orders the weight table rows/columns and is excluded
    from equality/hashing (its identity is implied by the letters the
    matrix is sliced with).
    """

    matrix: SubstitutionMatrix = BLOSUM62
    gap_open: int = 11
    gap_extend: int = 1
    alphabet: Alphabet = field(default=PROTEIN_X, compare=False)

    def __post_init__(self) -> None:
        if self.gap_extend < 1:
            raise ValueError(
                f"gap_extend must be at least 1, got {self.gap_extend}"
            )
        if self.gap_open < self.gap_extend:
            raise ValueError(
                "gap_open must not be below gap_extend "
                f"({self.gap_open} < {self.gap_extend})"
            )
        w = self.matrix.weights_for(self.alphabet.letters)  # validates
        if int(w.max()) <= 0:
            raise ValueError(
                f"matrix {self.matrix.name!r} has no positive score "
                "over this alphabet; no alignment could ever start"
            )

    # -- shape of the scheme ------------------------------------------------

    @property
    def is_affine(self) -> bool:
        """Whether opening costs more than extending."""
        return self.gap_open != self.gap_extend

    @property
    def gap_penalty(self) -> int:
        """The per-character gap cost of the *linear* degenerate case
        (raises when the scheme is genuinely affine)."""
        if self.is_affine:
            raise ValueError(
                "affine scheme has no single gap penalty "
                f"(open {self.gap_open}, extend {self.gap_extend})"
            )
        return self.gap_open

    @property
    def max_weight(self) -> int:
        """Largest substitution score over the alphabet."""
        return max(max(row) for row in self.weights_key())

    @property
    def min_weight(self) -> int:
        """Smallest substitution score over the alphabet."""
        return min(min(row) for row in self.weights_key())

    # -- weight table views -------------------------------------------------

    def weights(self) -> np.ndarray:
        """Dense ``(A, A)`` int64 weight table in alphabet code order."""
        return self.matrix.weights_for(self.alphabet.letters)

    def weights_key(self) -> WeightsKey:
        """Hashable tuple form (keys the netlist/jit caches)."""
        return self.matrix.weights_key_for(self.alphabet.letters)

    # -- score sizing (the engine contract) ---------------------------------

    def max_score(self, m: int, n: int | None = None) -> int:
        """Largest possible H value: a gap-free all-best-pairs path."""
        shorter = m if n is None else min(m, n)
        return max(0, self.max_weight) * shorter

    def score_bits(self, m: int, n: int | None = None) -> int:
        """Bits needed for any H/E/F value under zero-clamping."""
        return max(1, self.max_score(m, n).bit_length())


@lru_cache(maxsize=64)
def _padded_table_cached(key: WeightsKey, pad_bits: int) -> np.ndarray:
    size = 1 << pad_bits
    a = len(key)
    if a > size:
        raise ValueError(
            f"{a} codes do not fit in {pad_bits} character planes"
        )
    bias = max(0, -min(min(row) for row in key))
    table = np.full((size, size), -bias, dtype=np.int64)
    table[:a, :a] = np.array(key, dtype=np.int64)
    table.setflags(write=False)
    return table


def padded_weight_table(scheme: ProteinScheme,
                        pad_bits: int | None = None) -> np.ndarray:
    """Weight table totalised over every ``pad_bits``-bit code.

    Entries involving a code outside the alphabet score ``-bias`` (the
    matrix minimum, i.e. the mux tree's undecoded-pair output), so the
    scalar references below agree with the circuits on sentinel-padded
    batches.  Cached and read-only.
    """
    if pad_bits is None:
        pad_bits = scheme.alphabet.pad_bits
    return _padded_table_cached(scheme.weights_key(), int(pad_bits))


def subst_gotoh_matrix(x, y, scheme: ProteinScheme) -> np.ndarray:
    """Full ``(m+1) x (n+1)`` H matrix, pure Python (gold standard).

    ``x``/``y`` are code sequences in alphabet order (any code below
    ``2**pad_bits`` is accepted; pads score the matrix minimum).  E and
    F are zero-clamped, matching the bit-sliced engine.
    """
    W = padded_weight_table(scheme)
    m, n = len(x), len(y)
    H = np.zeros((m + 1, n + 1), dtype=np.int64)
    E = np.zeros((m + 1, n + 1), dtype=np.int64)
    F = np.zeros((m + 1, n + 1), dtype=np.int64)
    go = scheme.gap_open
    ge = scheme.gap_extend
    for i in range(1, m + 1):
        wrow = W[int(x[i - 1])]
        for j in range(1, n + 1):
            E[i, j] = max(0, H[i, j - 1] - go, E[i, j - 1] - ge)
            F[i, j] = max(0, H[i - 1, j] - go, F[i - 1, j] - ge)
            diag = H[i - 1, j - 1] + wrow[int(y[j - 1])]
            H[i, j] = max(0, E[i, j], F[i, j], diag)
    return H


def subst_gotoh_max_score(x, y, scheme: ProteinScheme) -> int:
    """Maximum substitution-matrix affine local-alignment score."""
    return int(subst_gotoh_matrix(x, y, scheme).max())


def subst_gotoh_batch_max_scores(X: np.ndarray, Y: np.ndarray,
                                 scheme: ProteinScheme) -> np.ndarray:
    """Word-wise batch engine: max H per pair, wavefront-vectorised.

    ``X`` is ``(P, m)``, ``Y`` is ``(P, n)`` code matrices; returns
    ``(P,)`` int64.  The scalar reference the protein BPBC engines are
    pinned against — and the engine behind the ``numpy`` rung of the
    resilience fallback chain for protein schemes.
    """
    X = np.asarray(X)
    Y = np.asarray(Y)
    if X.ndim != 2 or Y.ndim != 2 or X.shape[0] != Y.shape[0]:
        raise ValueError(
            f"expected (P, m) / (P, n) code matrices, got {X.shape} "
            f"and {Y.shape}"
        )
    W = padded_weight_table(scheme).astype(np.int32)
    P, m = X.shape
    n = Y.shape[1]
    Xi = X.astype(np.intp)
    Yi = Y.astype(np.intp)
    go = np.int32(scheme.gap_open)
    ge = np.int32(scheme.gap_extend)
    h1 = np.zeros((P, m), dtype=np.int32)  # H on diagonal t-1
    h2 = np.zeros((P, m), dtype=np.int32)  # H on diagonal t-2
    e1 = np.zeros((P, m), dtype=np.int32)  # E on diagonal t-1
    f1 = np.zeros((P, m), dtype=np.int32)  # F on diagonal t-1
    best = np.zeros(P, dtype=np.int32)
    for t in range(m + n - 1):
        lo = max(0, t - n + 1)
        hi = min(m - 1, t)
        i_idx = np.arange(lo, hi + 1)
        j_idx = t - i_idx
        width = hi - lo + 1
        h_up = np.zeros((P, width), dtype=np.int32)
        h_diag = np.zeros((P, width), dtype=np.int32)
        f_up = np.zeros((P, width), dtype=np.int32)
        inner = i_idx > 0
        h_up[:, inner] = h1[:, i_idx[inner] - 1]
        h_diag[:, inner] = h2[:, i_idx[inner] - 1]
        f_up[:, inner] = f1[:, i_idx[inner] - 1]
        h_left = h1[:, i_idx].copy()
        e_left = e1[:, i_idx].copy()
        jz = j_idx > 0
        h_left[:, ~jz] = 0
        e_left[:, ~jz] = 0
        h_diag[:, ~jz] = 0
        E = np.maximum(0, np.maximum(h_left - go, e_left - ge))
        F = np.maximum(0, np.maximum(h_up - go, f_up - ge))
        w = W[Xi[:, i_idx], Yi[:, j_idx]]
        H = np.maximum(np.maximum(E, F),
                       np.maximum(0, h_diag + w)).astype(np.int32)
        best = np.maximum(best, H.max(axis=1))
        h2 = h1
        nh = h1.copy()
        nh[:, lo:hi + 1] = H
        h1 = nh
        ne = e1.copy()
        ne[:, lo:hi + 1] = E
        e1 = ne
        nf = f1.copy()
        nf[:, lo:hi + 1] = F
        f1 = nf
    return best.astype(np.int64)
