"""Retry with exponential backoff, full jitter, and deadline awareness.

The policy follows the standard "full jitter" scheme: attempt ``k``
sleeps ``uniform(0, min(max_delay, base * 2**k))``, which decorrelates
a thundering herd of retriers while keeping the expected backoff
exponential.  Jitter draws come from a caller-supplied PRNG so tests
(and seeded chaos runs) are deterministic.

Deadline awareness is the serve-path requirement: a request carrying a
dispatch deadline must *never* burn its remaining budget sleeping — a
retry that cannot complete before the deadline is worthless, so
:meth:`RetryPolicy.call` gives up (re-raising the last failure) rather
than sleep past it.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

__all__ = ["RetryPolicy", "RetriesExhausted"]


class RetriesExhausted(RuntimeError):
    """Every attempt failed (or the deadline cut retrying short).

    ``cause`` is the last underlying failure, ``attempts`` how many
    calls were actually made.
    """

    def __init__(self, message: str, attempts: int,
                 cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.cause = cause


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, and how long to wait between tries.

    ``max_retries`` counts *re*-tries: the total attempt budget is
    ``1 + max_retries``.  ``max_retries=0`` means one attempt, no
    retry — the policy degrades to a plain call.
    """

    max_retries: int = 2
    base_delay_s: float = 0.02
    max_delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Full-jitter delay before retry number ``attempt`` (0-based)."""
        ceiling = min(self.max_delay_s,
                      self.base_delay_s * (2.0 ** attempt))
        return rng.uniform(0.0, ceiling)

    def call(self, fn, *, retry_on=(Exception,),
             deadline: float | None = None,
             rng: random.Random | None = None,
             on_retry=None, sleep=time.sleep):
        """Run ``fn()`` under this policy; return its result.

        ``retry_on`` names the exception types worth retrying —
        anything else propagates immediately (a ``ValueError`` from
        bad input will not magically pass on attempt two).
        ``deadline`` is an absolute :func:`time.monotonic` timestamp:
        no sleep is ever scheduled past it, and once it is in the past
        the last failure is raised at once.  ``on_retry(attempt, exc,
        delay_s)`` is the observability hook (stats counters, logs).
        """
        rng = rng if rng is not None else random.Random()
        last: BaseException | None = None
        for attempt in range(self.max_retries + 1):
            if deadline is not None and time.monotonic() >= deadline:
                break
            try:
                return fn()
            except retry_on as exc:  # noqa: PERF203 - retry loop
                last = exc
                if attempt >= self.max_retries:
                    break
                delay = self.backoff_s(attempt, rng)
                if deadline is not None and \
                        time.monotonic() + delay >= deadline:
                    break
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                if delay > 0:
                    sleep(delay)
        attempts = 0 if last is None else attempt + 1
        raise RetriesExhausted(
            f"gave up after {attempts} attempt(s)"
            + (": deadline expired" if last is None
               else f": {last!r}"),
            attempts=attempts, cause=last) from last
