"""Step 2 / Step 4 kernels: bit-transpose conversion on the device.

The paper's Step 2 (W2B) converts wordwise input strings into
bit-transpose format with one thread per ``w``-character block ("each
thread performs bit transpose for 32 characters"), and Step 4 (B2W)
converts the bit-sliced maximum scores back to wordwise.  Each thread
loads ``w`` words into registers, runs the reduced transpose schedule
of Table I locally, and writes the live planes back — the identical
register program our :mod:`repro.core.transpose` executes, here driven
through the SIMT simulator for memory-traffic accounting.
"""

from __future__ import annotations

import numpy as np

from ..core.bitops import word_dtype
from ..core.transpose import classify_reduced_schedule
from ..core.encoding import CHAR_BITS
from ..gpusim.kernel import Barrier, ThreadCtx

__all__ = ["w2b_kernel", "w2b_planes_kernel", "b2w_kernel",
           "apply_classified_ops", "apply_classified_ops_reversed"]


def apply_classified_ops(regs: list, schedule, word_bits: int,
                         ctx: ThreadCtx | None = None) -> None:
    """Run a classified reduced-transpose schedule on thread registers.

    ``regs`` is a Python list of ``w`` word values, modified in place.
    Counts 7 instructions per swap and 4 per copy on ``ctx``.
    """
    dt = word_dtype(word_bits)
    for step_ops in schedule:
        for c in step_ops:
            op = c.op
            if c.kind == "skip":
                continue
            b = dt.type(op.mask)
            k = dt.type(op.k)
            A, B = regs[op.i], regs[op.j]
            if c.kind == "swap":
                C = ((A >> k) & b) ^ (B & b)
                regs[op.i] = A ^ (C << k)
                regs[op.j] = B ^ C
                if ctx is not None:
                    ctx.count_ops(7)
            elif c.kind == "copy_up":
                regs[op.i] = (A & b) | ((B & b) << k)
                if ctx is not None:
                    ctx.count_ops(4)
            else:  # copy_down
                hi = dt.type((op.mask << op.k) & ((1 << word_bits) - 1))
                regs[op.j] = (B & hi) | ((A >> k) & b)
                if ctx is not None:
                    ctx.count_ops(4)


def apply_classified_ops_reversed(regs: list, schedule, word_bits: int,
                                  ctx: ThreadCtx | None = None) -> None:
    """Run a classified schedule backwards with inverted operations
    (the B2W direction; see
    :func:`repro.core.transpose.untranspose_bits_reduced`)."""
    dt = word_dtype(word_bits)
    for step_ops in reversed(schedule):
        for c in reversed(step_ops):
            op = c.op
            if c.kind == "skip":
                continue
            b = dt.type(op.mask)
            k = dt.type(op.k)
            A, B = regs[op.i], regs[op.j]
            if c.kind == "swap":
                C = ((A >> k) & b) ^ (B & b)
                regs[op.i] = A ^ (C << k)
                regs[op.j] = B ^ C
                if ctx is not None:
                    ctx.count_ops(7)
            elif c.kind == "copy_up":  # inverse is copy_down
                hi = dt.type((op.mask << op.k) & ((1 << word_bits) - 1))
                regs[op.j] = (B & hi) | ((A >> k) & b)
                if ctx is not None:
                    ctx.count_ops(4)
            else:  # inverse of copy_down is copy_up
                regs[op.i] = (A & b) | ((B & b) << k)
                if ctx is not None:
                    ctx.count_ops(4)


def w2b_kernel(ctx: ThreadCtx, src: str, dst_h: str, dst_l: str,
               n_positions: int, lane_groups: int, word_bits: int):
    """Step 2: wordwise character codes -> bit-transpose planes.

    Global layout: ``src`` is ``(lane_groups * w, n_positions)`` code
    words (instance-major); ``dst_h`` / ``dst_l`` are ``(n_positions,
    lane_groups)`` plane words.  Thread ``tid`` owns one (position,
    lane-group) cell: it gathers the ``w`` instance codes, runs the
    ``s = 2`` reduced transpose (127 operations for ``w = 32``,
    Table I), and writes the two live plane words.
    """
    w = word_bits
    tid = ctx.global_thread_idx
    total = n_positions * lane_groups
    if tid >= total:
        yield Barrier()
        return
    pos = tid // lane_groups
    group = tid % lane_groups
    # Gather the w instance codes at this position (a strided, hence
    # non-coalesced, load — the memory stats make the cost visible).
    idx = (np.arange(w, dtype=np.int64) + group * w) * n_positions + pos
    codes = ctx.gmem.warp_load(src, idx)
    regs = list(codes.astype(word_dtype(w)))
    schedule = classify_reduced_schedule(w, CHAR_BITS)
    apply_classified_ops(regs, schedule, w, ctx)
    ctx.gmem.store(dst_l, (pos, group), regs[0])
    ctx.gmem.store(dst_h, (pos, group), regs[1])
    yield Barrier()


def w2b_planes_kernel(ctx: ThreadCtx, src: str, dst: str,
                      n_positions: int, lane_groups: int,
                      word_bits: int, char_bits: int):
    """Step 2 for general alphabets: wordwise ``char_bits``-bit codes
    -> character planes.

    Same thread layout as :func:`w2b_kernel` but parametric in the
    code width (5 for protein) and writing one ``(char_bits,
    n_positions, lane_groups)`` plane buffer instead of the DNA H/L
    pair.  The reduced transpose schedule keeps only the ``char_bits``
    live planes, exactly as the ``s = 2`` special case does.
    """
    w = word_bits
    tid = ctx.global_thread_idx
    total = n_positions * lane_groups
    if tid >= total:
        yield Barrier()
        return
    pos = tid // lane_groups
    group = tid % lane_groups
    idx = (np.arange(w, dtype=np.int64) + group * w) * n_positions + pos
    codes = ctx.gmem.warp_load(src, idx)
    regs = list(codes.astype(word_dtype(w)))
    schedule = classify_reduced_schedule(w, char_bits)
    apply_classified_ops(regs, schedule, w, ctx)
    for b in range(char_bits):
        ctx.gmem.store(dst, (b, pos, group), regs[b])
    yield Barrier()


def b2w_kernel(ctx: ThreadCtx, src: str, dst: str, s: int,
               lane_groups: int, word_bits: int):
    """Step 4: bit-sliced ``s``-bit scores -> wordwise values.

    ``src`` is ``(s, lane_groups)`` plane words; ``dst`` is
    ``(lane_groups * w,)`` wordwise scores.  Thread ``tid`` owns one
    lane group: loads the ``s`` plane words, runs the reduced schedule
    backwards, and writes ``w`` scores (coalesced within the group).
    """
    w = word_bits
    tid = ctx.global_thread_idx
    if tid >= lane_groups:
        yield Barrier()
        return
    dt = word_dtype(w)
    regs = [dt.type(0)] * w
    for h in range(s):
        regs[h] = dt.type(ctx.gmem.load(src, (h, tid)))
    schedule = classify_reduced_schedule(w, s)
    apply_classified_ops_reversed(regs, schedule, w, ctx)
    mask = dt.type((1 << s) - 1) if s < w else dt.type(~dt.type(0))
    out_idx = tid * w + np.arange(w, dtype=np.int64)
    ctx.gmem.warp_store(dst, out_idx, [r & mask for r in regs])
    yield Barrier()
