"""Sharded multi-core bulk execution for the BPBC engines.

The paper's bulk technique packs 64 independent Smith-Waterman
instances into each machine word; this package scales that across
*cores* the way SWAPHI (Liu & Schmidt, 2014) and SALoBa (Park et
al., 2023) scale alignment across compute units — cost-balanced work
partitions fanned out to parallel workers:

* :mod:`~repro.shard.partition` — greedy LPT partitioning on
  ``len(x) * len(y)`` pair costs.
* :mod:`~repro.shard.worker` — spawn-safe worker protocol: packed
  ``uint8`` payloads, per-process engine construction, length-binned
  sentinel padding for ragged shards.
* :mod:`~repro.shard.shm` — zero-copy shared-memory transport:
  :class:`ShmArena` bump-allocates payloads and reply slots in
  ``multiprocessing.shared_memory`` segments so only tiny descriptors
  cross the pool pipe (``transport="shm"``/``"auto"``).
* :mod:`~repro.shard.executor` — :class:`ShardExecutor` (process
  pool, per-shard timing, crash/timeout containment, transport
  selection) and the one-shot :func:`shard_bulk_max_scores`.
* :mod:`~repro.shard.errors` — :class:`ShardError`, which carries the
  failed shard's pair indices for retry/skip.

Entry points higher up the stack: ``workers=`` on
:func:`repro.filter.screening.bulk_max_scores` /
:func:`~repro.filter.screening.screen_pairs` /
:func:`repro.filter.database.search_database`,
:class:`repro.serve.engine_pool.ShardedEngine` for the serving path,
and ``--workers`` on the CLI.
"""

from .errors import ShardError
from .executor import (TRANSPORTS, ShardExecutor, ShardRunResult,
                       ShardTiming, default_workers,
                       shard_bulk_max_scores)
from .partition import pair_costs, partition_lpt, shard_loads
from .shm import MIN_SHM_BYTES, ShmArena, ShmShardRef, shm_available
from .worker import SHARD_ENGINES, ShardPayload, resolve_shard_engine

__all__ = [
    "ShardError",
    "ShardExecutor",
    "ShardRunResult",
    "ShardTiming",
    "ShardPayload",
    "SHARD_ENGINES",
    "TRANSPORTS",
    "MIN_SHM_BYTES",
    "ShmArena",
    "ShmShardRef",
    "shm_available",
    "default_workers",
    "shard_bulk_max_scores",
    "resolve_shard_engine",
    "pair_costs",
    "partition_lpt",
    "shard_loads",
]
