"""Experiment: Table V — GCUPS throughput and speed-up factors.

Regenerates the paper's Table V from the calibrated analytic model
(paper scale), and measures the same quantities for our real engines
(machine scale).  The speed-up column (best-CPU-wordsize total over
best-GPU-wordsize total: 447.6x -> 514.6x, growing with n) is the
paper's headline result and reproduces within a few percent.

Known paper inconsistency (documented in :mod:`repro.perfmodel.model`):
the printed GPU GCUPS column is ~3x ``cells / SWA-kernel-time`` and
~5.5x ``cells / total-time`` from the paper's own Table IV; we report
the consistent definition alongside the printed values.
"""

from __future__ import annotations

from ..perfmodel.model import Table4Model
from ..perfmodel.paper_data import M_PATTERN, N_VALUES, PAIRS, PAPER_TABLE5
from .report import render_table
from .table4 import measure_cpu_bitwise, measure_cpu_wordwise

__all__ = ["run", "analytic_rows", "measured_rows"]


def analytic_rows() -> list[dict]:
    """Model Table V rows alongside the paper's printed values."""
    model = Table4Model()
    t5 = model.table5()
    rows = []
    for n in N_VALUES:
        ours = t5[n]
        paper = PAPER_TABLE5[n]
        rows.append({
            "n": n,
            "cpu_gcups_model": ours["cpu_gcups"],
            "cpu_gcups_paper": paper["cpu_gcups"],
            "gpu_gcups_model": ours["gpu_gcups"],
            "gpu_gcups_paper": paper["gpu_gcups"],
            "speedup_model": ours["speedup"],
            "speedup_paper": paper["speedup"],
        })
    return rows


def measured_rows(n_values=(256, 512, 1024), pairs: int = 2048,
                  m: int = 128) -> list[dict]:
    """Measured GCUPS of our engines (interpreted / jit / wordwise)."""
    rows = []
    for n in n_values:
        b64 = measure_cpu_bitwise(n, pairs, m, 64, cell="generic")
        j64 = measure_cpu_bitwise(n, pairs, m, 64, cell="compiled")
        ww = measure_cpu_wordwise(n, pairs, m)
        rows.append({
            "n": n,
            "bitwise64_gcups": b64["cells"] / (b64["total"] * 1e-3) / 1e9,
            "jit64_gcups": j64["cells"] / (j64["total"] * 1e-3) / 1e9,
            "wordwise_gcups": ww["cells"] / (ww["total"] * 1e-3) / 1e9,
            "speedup": ww["total"] / b64["total"],
            "jit_speedup": ww["total"] / j64["total"],
        })
    return rows


def run(verbose: bool = True, measured_pairs: int = 2048,
        measured_n=(256, 512, 1024)) -> str:
    """Render both Table V reproductions."""
    parts = []
    rows = analytic_rows()
    parts.append(render_table(
        ["n", "CPU GCUPS (model)", "CPU GCUPS (paper)",
         "GPU GCUPS (model, cells/total)", "GPU GCUPS (paper, printed)",
         "speedup (model)", "speedup (paper)"],
        [[r["n"], r["cpu_gcups_model"], r["cpu_gcups_paper"],
          r["gpu_gcups_model"], r["gpu_gcups_paper"],
          r["speedup_model"], r["speedup_paper"]] for r in rows],
        title=f"Table V (paper scale: {PAIRS} pairs, m={M_PATTERN})",
    ))
    meas = measured_rows(measured_n, pairs=measured_pairs)
    parts.append(render_table(
        ["n", "bitwise-64 GCUPS", "jit-64 GCUPS", "wordwise GCUPS",
         "bitwise speedup", "jit speedup"],
        [[r["n"], round(r["bitwise64_gcups"], 4),
          round(r["jit64_gcups"], 4),
          round(r["wordwise_gcups"], 4), r["speedup"],
          r["jit_speedup"]] for r in meas],
        title=f"Measured on this machine ({measured_pairs} pairs, m=128)",
    ))
    out = "\n\n".join(parts)
    if verbose:
        print(out)
    return out
