"""Micro-batching alignment service, end to end.

    python examples/serving_demo.py

Drives the serving subsystem the way a deployment would see it:

1. In-process: replay a Poisson stream of DNA pairs through
   :class:`repro.serve.AlignmentService` and watch the micro-batcher
   turn single-pair requests into near-full 64-lane BPBC batches.
2. Cache: resubmit a hot subset and watch hits short-circuit the
   engine entirely.
3. Over the wire: start the TCP server on a loopback port and run the
   same alignments through :class:`repro.serve.client.ServeClient`,
   pipelined on one connection.

Prints the service stats snapshot after each act.
"""

from __future__ import annotations

import time

import numpy as np

from repro.serve import AlignmentServer, AlignmentService
from repro.serve.client import ServeClient
from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_max_score
from repro.workloads.traffic import request_stream


def banner(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def in_process_stream(service: AlignmentService) -> list:
    banner("1. in-process Poisson stream (192 requests, ~100 nt)")
    rng = np.random.default_rng(2024)
    reqs = list(request_stream(rng, 192, rate_per_s=20_000.0,
                               m=100, length_jitter=4))
    start = time.perf_counter()
    futures = []
    for req in reqs:
        delay = req.at_s - (time.perf_counter() - start)
        if delay > 0:
            time.sleep(delay)
        futures.append(service.submit(req.query, req.subject,
                                      threshold=40))
    results = [f.result(timeout=60) for f in futures]
    elapsed = time.perf_counter() - start

    # Spot-check a few scores against the scalar gold standard.
    scheme = ScoringScheme(2, 1, 1)
    for i in (0, 91, 191):
        gold = sw_max_score(reqs[i].query, reqs[i].subject, scheme)
        assert results[i].score == gold, (i, results[i].score, gold)

    passed = sum(r.passed for r in results)
    print(f"  {len(results)} requests in {elapsed * 1e3:.0f} ms "
          f"({len(results) / elapsed:.0f} req/s), "
          f"{passed} passed tau=40")
    print(f"  batches: {service.stats.batches}, mean lane occupancy "
          f"{service.stats.mean_lane_occupancy:.1%}")
    return reqs


def cache_replay(service: AlignmentService, reqs) -> None:
    banner("2. cache replay (32 hot pairs, resubmitted)")
    hot = reqs[:32]
    t0 = time.perf_counter()
    results = [service.align(r.query, r.subject) for r in hot]
    warm_ms = (time.perf_counter() - t0) * 1e3
    assert all(r.cached for r in results)
    print(f"  {len(hot)} hits in {warm_ms:.2f} ms without touching "
          f"the engine (hit rate {service.cache.hit_rate:.1%})")


def over_the_wire(service: AlignmentService) -> None:
    banner("3. TCP round trip (pipelined on one connection)")
    with AlignmentServer(service, host="127.0.0.1", port=0) as server:
        host, port = server.address
        client = ServeClient(host, port)
        try:
            print(f"  server on {host}:{port}, ping: {client.ping()}")
            pairs = [("ACGTACGTACGT", "TTACGTACGTACGTAA"),
                     ("AAAA", "TTTTTTTT"),
                     ("GATTACA", "GATTACAGATTACA")]
            rows = client.align_many(pairs, threshold=8)
            for (query, subject), row in zip(pairs, rows):
                print(f"  {query:<14} vs {subject:<18} "
                      f"score={row['score']:>3}  "
                      f"passed={'yes' if row['passed'] else 'no'}")
            depth = client.stats()["queue_depth"]
            print(f"  remote stats: queue depth {depth}")
        finally:
            client.close()


def main() -> None:
    # bin_granularity=64: every jittered ~100 nt length rounds up to
    # one shared (128, 128) bin, so requests of different lengths ride
    # the same 64-lane words via sentinel padding; with the default
    # (exact shapes) every distinct length pair would batch alone.
    service = AlignmentService(engine="bpbc", workers=2, word_bits=64,
                               max_wait_ms=2.0, bin_granularity=64,
                               cache_size=4096)
    with service:
        reqs = in_process_stream(service)
        cache_replay(service, reqs)
        over_the_wire(service)
        banner("final stats snapshot")
        print(service.stats.render())


if __name__ == "__main__":
    main()
