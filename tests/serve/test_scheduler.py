"""AdaptiveScheduler: cost model, admission, shaping, dispatch hints,
and end-to-end bit-identity of an SLO-scheduled service.

The scheduler only ever decides *when and where* a batch runs — every
candidate engine is bit-identical — so the one invariant no test here
may weaken is: scores served under an SLO equal the scalar reference.
"""

from __future__ import annotations

import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.serve import AdmissionRejected, AlignmentService
from repro.serve.packer import PackedBatch
from repro.serve.queue import AlignmentRequest, RequestQueue
from repro.serve.scheduler import (AdaptiveScheduler, batch_ops,
                                   DEFAULT_NS_PER_OP, EWMA_ALPHA)
from repro.serve.stats import ServiceStats
from repro.swa.scoring import DEFAULT_SCHEME, ScoringScheme
from repro.swa.sequential import sw_max_score

SCHEME = ScoringScheme(2, 1, 1)


def _codes(rng, n):
    return rng.integers(0, 4, size=n, dtype=np.uint8)


def _req(rng, m=32, n=32, scheme=SCHEME, priority=0):
    return AlignmentRequest(query=_codes(rng, m), subject=_codes(rng, n),
                            scheme=scheme, threshold=None, deadline=None,
                            future=Future(),
                            enqueued_at=time.monotonic(),
                            priority=priority)


def _batch(rng, pairs=8, m=32, n=32, scheme=SCHEME):
    reqs = [_req(rng, m, n, scheme) for _ in range(pairs)]
    X = np.stack([r.query for r in reqs])
    Y = np.stack([r.subject for r in reqs])
    return PackedBatch(requests=reqs, X=X, Y=Y, scheme=scheme,
                       padded=False)


class TestCostModel:
    def test_batch_ops_monotone_in_shape(self):
        base = batch_ops(8, 32, 32, SCHEME)
        assert batch_ops(16, 32, 32, SCHEME) >= base
        assert batch_ops(8, 64, 32, SCHEME) > base
        assert batch_ops(8, 32, 64, SCHEME) > base

    def test_batch_ops_handles_protein_schemes(self):
        from repro.core.matrices import BLOSUM62
        from repro.core.protein import ProteinScheme

        scheme = ProteinScheme(BLOSUM62, gap_open=11, gap_extend=1)
        assert batch_ops(8, 32, 32, scheme) > 0

    def test_rate_starts_pessimistic_then_learns(self):
        sched = AdaptiveScheduler(slo_ms=100.0)
        assert sched.rate() == DEFAULT_NS_PER_OP
        ops = batch_ops(8, 32, 32, SCHEME)
        sched.observe(8, 32, 32, SCHEME, elapsed_s=ops * 0.25e-9)
        # First sample seeds the EWMA outright.
        assert sched.rate() == pytest.approx(0.25)
        sched.observe(8, 32, 32, SCHEME, elapsed_s=ops * 0.75e-9)
        expected = 0.25 + EWMA_ALPHA * (0.75 - 0.25)
        assert sched.rate() == pytest.approx(expected)
        assert sched.observations == 2

    def test_per_engine_rates_fall_back_to_pool_rate(self):
        sched = AdaptiveScheduler(slo_ms=100.0)
        ops = batch_ops(4, 16, 16, SCHEME)
        sched.observe(4, 16, 16, SCHEME, elapsed_s=ops * 1e-9)
        # Unobserved named engine inherits the pool (None) rate.
        assert sched.rate("bpbc-jit") == sched.rate(None)
        sched.observe(4, 16, 16, SCHEME, elapsed_s=ops * 3e-9,
                      engine="bpbc-jit")
        # A named engine's first sample EWMAs from the inherited pool
        # rate (its prior), rather than seeding outright.
        expected = 1.0 + EWMA_ALPHA * (3.0 - 1.0)
        assert sched.rate("bpbc-jit") == pytest.approx(expected)
        assert sched.rate(None) == pytest.approx(1.0)

    def test_pool_rate_falls_back_to_best_named_rate(self):
        # When every batch ran under an engine hint, the None (pool)
        # key is never observed — admission, which estimates with
        # engine=None, must still see the learned rates or it would
        # keep using the pessimistic default forever.
        sched = AdaptiveScheduler(slo_ms=100.0,
                                  engines=("bpbc-jit", "bpbc"))
        ops = batch_ops(4, 16, 16, SCHEME)
        sched.observe(4, 16, 16, SCHEME, elapsed_s=ops * 5e-9,
                      engine="bpbc")
        sched.observe(4, 16, 16, SCHEME, elapsed_s=ops * 2e-9,
                      engine="bpbc-jit")
        # The best learned candidate stands in for the pool rate:
        # that is the engine plan_batch would route the batch to.
        assert sched.rate(None) == pytest.approx(2.0)

    def test_estimate_scales_with_width(self):
        sched = AdaptiveScheduler(slo_ms=100.0)
        one = sched.estimate_ms(64, 128, 128, SCHEME, width=1)
        four = sched.estimate_ms(64, 128, 128, SCHEME, width=4)
        assert four == pytest.approx(one / 4)

    def test_degenerate_observations_are_ignored(self):
        sched = AdaptiveScheduler(slo_ms=100.0)
        sched.observe(8, 32, 32, SCHEME, elapsed_s=0.0)
        sched.observe(0, 32, 32, SCHEME, elapsed_s=1.0)
        assert sched.observations == 0
        assert sched.rate() == DEFAULT_NS_PER_OP


class TestAdmission:
    def test_cheap_request_is_admitted(self):
        sched = AdaptiveScheduler(slo_ms=1000.0)
        est = sched.admit(32, 32, SCHEME)
        assert est < 1000.0
        assert sched.admitted == 1

    def test_expensive_request_is_rejected_typed(self):
        sched = AdaptiveScheduler(slo_ms=1e-6)
        # Warm the model first: a cold scheduler deliberately admits.
        sched.observe(1, 512, 512, SCHEME, elapsed_s=0.001)
        with pytest.raises(AdmissionRejected, match="SLO"):
            sched.admit(512, 512, SCHEME)
        assert sched.rejected == 1

    def test_cold_scheduler_admits_despite_the_model(self):
        # Before any observation the default rate is a guess; reject-
        # ing on it would starve the model of the batches it needs to
        # learn (and did, before this was pinned).  Cold admission
        # must pass even when the modelled estimate dwarfs the SLO.
        sched = AdaptiveScheduler(slo_ms=1e-6)
        est = sched.admit(512, 512, SCHEME)
        assert est > sched.slo_ms
        assert sched.admitted == 1 and sched.rejected == 0

    def test_backlog_tightens_admission(self):
        sched = AdaptiveScheduler(slo_ms=1000.0, max_batch=64)
        # observe() at the admitted shape makes estimate == elapsed:
        # one 400 ms request fits the 1000 ms SLO alone, but not
        # behind a deep backlog of peers.
        sched.observe(1, 256, 256, SCHEME, elapsed_s=0.4)
        sched.admit(256, 256, SCHEME, queue_depth=0)
        with pytest.raises(AdmissionRejected, match="queue depth"):
            sched.admit(256, 256, SCHEME, queue_depth=10_000)

    def test_live_p50_floors_the_estimate(self):
        stats = ServiceStats()
        for _ in range(32):
            stats.record_completed(5.0)  # 5000 ms observed latency
        sched = AdaptiveScheduler(slo_ms=100.0, stats=stats)
        # The model alone would admit this tiny request; the observed
        # p50 says the service is drowning.
        with pytest.raises(AdmissionRejected):
            sched.admit(8, 8, SCHEME)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="slo_ms"):
            AdaptiveScheduler(slo_ms=0)
        with pytest.raises(ValueError, match="max_batch"):
            AdaptiveScheduler(slo_ms=1.0, max_batch=0)


class TestShapingAndHints:
    def test_batch_window_respects_static_caps(self):
        sched = AdaptiveScheduler(slo_ms=10_000.0, max_batch=64,
                                  max_wait_s=2e-3)
        items, wait = sched.batch_window()
        assert 1 <= items <= 64
        assert wait <= 2e-3

    def test_tight_slo_shrinks_the_window(self):
        slow = AdaptiveScheduler(slo_ms=1.0)
        # One lane alone takes 10 ms — far past half the 1 ms SLO —
        # so the window collapses to single-request batches.
        slow.observe(1, 128, 512, DEFAULT_SCHEME, elapsed_s=0.01)
        items, wait = slow.batch_window()
        assert items == 1
        assert wait == pytest.approx(1.0 / 1e3 / 4)

    def test_plan_batch_prefers_fastest_learned_engine(self, rng):
        sched = AdaptiveScheduler(slo_ms=100.0,
                                  engines=("bpbc-jit", "bpbc"))
        ops = batch_ops(8, 32, 32, SCHEME)
        sched.observe(8, 32, 32, SCHEME, elapsed_s=ops * 5e-9,
                      engine="bpbc-jit")
        sched.observe(8, 32, 32, SCHEME, elapsed_s=ops * 1e-9,
                      engine="bpbc")
        batch = sched.plan_batch(_batch(rng))
        assert batch.engine_hint == "bpbc"

    def test_plan_batch_unobserved_keeps_preference_order(self, rng):
        sched = AdaptiveScheduler(slo_ms=100.0,
                                  engines=("bpbc-jit", "bpbc"))
        assert sched.plan_batch(_batch(rng)).engine_hint == "bpbc-jit"

    def test_width_hint_is_minimal_sufficient_fanout(self, rng):
        sched = AdaptiveScheduler(slo_ms=100.0, shard_workers=8)
        # A 125 ms single-worker batch against a 50 ms budget needs
        # ceil(125 / 50) = 3 workers — no more.
        sched.observe(8, 32, 32, SCHEME, elapsed_s=0.125)
        batch = sched.plan_batch(_batch(rng))
        assert batch.shard_width_hint == 3

    def test_cheap_batch_skips_fanout(self, rng):
        sched = AdaptiveScheduler(slo_ms=10_000.0, shard_workers=8)
        batch = sched.plan_batch(_batch(rng, pairs=2, m=8, n=8))
        assert batch.shard_width_hint == 1

    def test_unsharded_pool_gets_no_width_hint(self, rng):
        sched = AdaptiveScheduler(slo_ms=100.0, shard_workers=None)
        batch = sched.plan_batch(_batch(rng))
        assert batch.shard_width_hint is None

    def test_snapshot_round_trips_to_json(self):
        import json

        sched = AdaptiveScheduler(slo_ms=50.0)
        sched.observe(4, 16, 16, SCHEME,
                      elapsed_s=batch_ops(4, 16, 16, SCHEME) * 1e-9)
        snap = json.loads(json.dumps(sched.snapshot()))
        assert snap["slo_ms"] == 50.0
        assert snap["observations"] == 1
        assert "None" in snap["ns_per_op"]


class TestPriorityQueue:
    def test_higher_classes_drain_first_fifo_within(self, rng):
        q = RequestQueue(maxsize=16)
        for prio, tag in [(0, "a"), (2, "b"), (0, "c"), (1, "d"),
                          (2, "e")]:
            req = _req(rng, 8, 8, priority=prio)
            req._tag = tag
            q.put(req)
        drained = [r._tag
                   for _ in range(5)
                   for r in q.drain(max_items=1, max_wait=0.0)]
        assert drained == ["b", "e", "d", "a", "c"]

    def test_default_priority_preserves_fifo(self, rng):
        q = RequestQueue(maxsize=16)
        for tag in "abc":
            req = _req(rng, 8, 8)
            req._tag = tag
            q.put(req)
        got = [r._tag for r in q.drain(max_items=3, max_wait=0.0)]
        assert got == ["a", "b", "c"]

    def test_capacity_spans_all_classes(self, rng):
        from repro.serve.errors import QueueFullError

        q = RequestQueue(maxsize=2)
        q.put(_req(rng, 8, 8, priority=0))
        q.put(_req(rng, 8, 8, priority=0))
        with pytest.raises(QueueFullError):
            q.put(_req(rng, 8, 8, priority=5))


class TestEndToEnd:
    def test_slo_service_is_bit_identical(self, rng):
        pairs = [(_codes(rng, rng.integers(8, 40)),
                  _codes(rng, rng.integers(8, 40))) for _ in range(24)]
        service = AlignmentService(workers=1, max_wait_ms=1.0,
                                   slo_ms=30_000.0, cache_size=0)
        service.start()
        try:
            futures = [service.submit(q, s) for q, s in pairs]
            scores = [f.result(timeout=60.0).score for f in futures]
        finally:
            service.stop()
        expected = [sw_max_score(q, s, DEFAULT_SCHEME)
                    for q, s in pairs]
        assert scores == expected
        snap = service.stats.snapshot()
        assert snap["scheduler"]["observations"] > 0
        assert snap["scheduled_batches"] > 0

    def test_impossible_slo_rejects_with_typed_error(self, rng):
        service = AlignmentService(workers=1, max_wait_ms=1.0,
                                   slo_ms=1e-6, cache_size=0)
        service.start()
        try:
            # The first request rides the cold-start pass — and its
            # batch teaches the scheduler the engine's real rate (the
            # pool observes *before* resolving futures, so result()
            # returning means the rate has landed)...
            first = service.submit(_codes(rng, 64), _codes(rng, 64))
            assert first.result(timeout=60.0).score >= 0
            # ...after which nothing can meet a 1 ns SLO.
            with pytest.raises(AdmissionRejected):
                service.submit(_codes(rng, 64), _codes(rng, 64))
            snap = service.stats.snapshot()
        finally:
            service.stop()
        assert snap["admission_rejected"] == 1
        assert snap["requests_rejected"] == 1
