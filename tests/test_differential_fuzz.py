"""Seeded differential fuzzing: ~2,000 random pairs across engines.

:mod:`tests.test_differential` proves the engines agree on small
hypothesis-driven shapes; this module is the volume complement — a
seeded stream of ~2,080 random DNA pairs (lengths 1..200, biased
small so the pure-Python gold stays fast) plus degenerate families
(length-1, all-one-base, ``x == y``), scored by every max-score
engine and by the sharded process-pool backend, at a rotating set of
scoring schemes.

Reproducing a failure
---------------------
Every assertion message carries the run seed, the scheme, the group
and pair index, and the offending sequences.  The seed defaults to a
fixed constant (so the tier-1 run is deterministic) and is overridden
by the ``REPRO_FUZZ_SEED`` environment variable — CI's nightly fuzz
job rotates it.  To replay a CI failure locally::

    REPRO_FUZZ_SEED=<seed from the failure message> \
        python -m pytest tests/test_differential_fuzz.py

Pairs are grouped into rectangular (m, n) groups of 40 so the batch
engines run batched, exactly as production callers drive them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.encoding import decode, encode_batch_bit_transposed
from repro.core.sw_bpbc import bpbc_sw_wavefront
from repro.serve.engine_pool import ENGINES
from repro.serve.packer import pack_requests
from repro.serve.queue import AlignmentRequest
from repro.shard import ShardExecutor
from repro.swa.numpy_batch import sw_batch_max_scores
from repro.swa.parallel import sw_matrix_wavefront
from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_matrix

#: Default seed for deterministic tier-1 runs; CI's fuzz job rotates
#: it via the environment (see module docstring).
DEFAULT_SEED = 20260806

SEED = int(os.environ.get("REPRO_FUZZ_SEED", DEFAULT_SEED))

#: Scoring schemes rotated across groups (match, mismatch, gap).
SCHEMES = (
    ScoringScheme(2, 1, 1),   # the paper's Table II parameters
    ScoringScheme(1, 1, 1),
    ScoringScheme(3, 2, 2),
    ScoringScheme(5, 4, 3),
)

GROUPS = 52
GROUP_PAIRS = 40
MAX_LEN = 200
WORD_BITS = 64

#: Degenerate families injected on a fixed cadence.
KINDS = ("random", "len1", "same_base", "equal")


@dataclass(frozen=True)
class FuzzGroup:
    """One rectangular batch of fuzz pairs plus its gold scores."""

    index: int
    kind: str
    scheme: ScoringScheme
    X: np.ndarray          # (GROUP_PAIRS, m) uint8
    Y: np.ndarray          # (GROUP_PAIRS, n) uint8
    gold: np.ndarray       # (GROUP_PAIRS,) int64


def _biased_len(rng: np.random.Generator) -> int:
    """Length in 1..MAX_LEN, cubically biased toward short."""
    return 1 + int((MAX_LEN - 1) * rng.random() ** 3)


def _make_group(index: int, rng: np.random.Generator) -> FuzzGroup:
    kind = KINDS[index % len(KINDS)] if index % 4 == 3 else "random"
    if index % 13 == 5:
        kind = KINDS[1 + index % 3]  # extra degenerate coverage
    scheme = SCHEMES[index % len(SCHEMES)]
    if kind == "len1":
        m, n = 1, _biased_len(rng)
    else:
        m, n = _biased_len(rng), _biased_len(rng)
    if kind == "same_base":
        base = int(rng.integers(0, 4))
        X = np.full((GROUP_PAIRS, m), base, dtype=np.uint8)
        Y = np.full((GROUP_PAIRS, n), base, dtype=np.uint8)
    else:
        X = rng.integers(0, 4, size=(GROUP_PAIRS, m), dtype=np.uint8)
        Y = rng.integers(0, 4, size=(GROUP_PAIRS, n), dtype=np.uint8)
    if kind == "equal":
        n = m
        Y = X.copy()
    gold = np.asarray(
        [int(sw_matrix(X[p], Y[p], scheme).max())
         for p in range(GROUP_PAIRS)], dtype=np.int64)
    return FuzzGroup(index=index, kind=kind, scheme=scheme,
                     X=X, Y=Y, gold=gold)


@pytest.fixture(scope="module")
def fuzz_groups() -> list[FuzzGroup]:
    """The full seeded workload, gold-scored once for all tests."""
    rng = np.random.default_rng(SEED)
    return [_make_group(i, rng) for i in range(GROUPS)]


def _explain(engine: str, group: FuzzGroup,
             scores: np.ndarray) -> str:
    """A failure message sufficient to reproduce one bad pair."""
    bad = np.flatnonzero(np.asarray(scores) != group.gold)
    p = int(bad[0]) if bad.size else -1
    return (
        f"{engine} disagrees with gold on {bad.size} of "
        f"{GROUP_PAIRS} pairs.\n"
        f"  seed={SEED} (rerun: REPRO_FUZZ_SEED={SEED})\n"
        f"  group={group.index} kind={group.kind} "
        f"shape=({group.X.shape[1]}, {group.Y.shape[1]})\n"
        f"  scheme={group.scheme}\n"
        f"  first bad pair={p}: "
        f"got {int(scores[p])} want {int(group.gold[p])}\n"
        f"  x={decode(group.X[p])}\n"
        f"  y={decode(group.Y[p])}"
    )


def test_workload_shape(fuzz_groups):
    """The stream holds >= 2,000 pairs and every advertised family."""
    assert GROUPS * GROUP_PAIRS >= 2000
    kinds = {g.kind for g in fuzz_groups}
    assert kinds == set(KINDS)
    schemes = {g.scheme for g in fuzz_groups}
    assert schemes == set(SCHEMES)


def test_wavefront_dp_agrees(fuzz_groups):
    for g in fuzz_groups:
        scores = np.asarray(
            [int(sw_matrix_wavefront(g.X[p], g.Y[p], g.scheme).max())
             for p in range(GROUP_PAIRS)])
        assert np.array_equal(scores, g.gold), \
            _explain("swa.parallel", g, scores)


def test_numpy_batch_agrees(fuzz_groups):
    for g in fuzz_groups:
        scores = sw_batch_max_scores(g.X, g.Y, g.scheme)
        assert np.array_equal(scores, g.gold), \
            _explain("swa.numpy_batch", g, scores)


def test_bpbc_wavefront_agrees(fuzz_groups):
    for g in fuzz_groups:
        XH, XL = encode_batch_bit_transposed(g.X, WORD_BITS)
        YH, YL = encode_batch_bit_transposed(g.Y, WORD_BITS)
        scores = bpbc_sw_wavefront(XH, XL, YH, YL, g.scheme,
                                   WORD_BITS).max_scores[:GROUP_PAIRS]
        assert np.array_equal(scores, g.gold), \
            _explain("core.sw_bpbc", g, scores)


def test_cell_evaluators_bit_identical(fuzz_groups):
    """generic / folded / compiled produce bit-identical score planes
    on every fuzz group — the compiled (:mod:`repro.jit`) evaluator is
    a pure lowering, not an approximation."""
    for g in fuzz_groups:
        XH, XL = encode_batch_bit_transposed(g.X, WORD_BITS)
        YH, YL = encode_batch_bit_transposed(g.Y, WORD_BITS)
        results = {
            cell: bpbc_sw_wavefront(XH, XL, YH, YL, g.scheme,
                                    WORD_BITS, cell=cell)
            for cell in ("generic", "folded", "compiled")
        }
        ref = results["generic"]
        assert np.array_equal(
            ref.max_scores[:GROUP_PAIRS], g.gold), \
            _explain("core.sw_bpbc[generic]", g,
                     ref.max_scores[:GROUP_PAIRS])
        for cell in ("folded", "compiled"):
            r = results[cell]
            assert np.array_equal(r.score_planes, ref.score_planes), (
                f"cell={cell!r} score planes differ from generic.\n"
                f"  seed={SEED} (rerun: REPRO_FUZZ_SEED={SEED})\n"
                f"  group={g.index} kind={g.kind} "
                f"shape=({g.X.shape[1]}, {g.Y.shape[1]})\n"
                f"  scheme={g.scheme}"
            )


def test_serve_bpbc_jit_engine_agrees(fuzz_groups):
    """The ``bpbc-jit`` serve engine, fed sentinel-padded mixed-shape
    batches — the compiled evaluator on the 3-plane path, exactly as
    the alignment service drives it."""
    engine = ENGINES["bpbc-jit"]
    for scheme in SCHEMES:
        groups = [g for g in fuzz_groups if g.scheme == scheme]
        requests, gold_of = [], {}
        for g in groups:
            for p in range(GROUP_PAIRS):
                req = AlignmentRequest(
                    query=g.X[p], subject=g.Y[p], scheme=scheme,
                    threshold=None, deadline=None, future=None,
                    enqueued_at=0.0)
                requests.append(req)
                gold_of[id(req)] = int(g.gold[p])
        for batch in pack_requests(requests, granularity=64):
            scores = np.asarray(engine(batch, WORD_BITS))
            want = np.asarray([gold_of[id(r)] for r in batch.requests])
            bad = np.flatnonzero(scores != want)
            assert bad.size == 0, (
                f"serve engine bpbc-jit disagrees with gold on "
                f"{bad.size} of {batch.pairs} pairs "
                f"(padded={batch.padded}, scheme={scheme}, "
                f"seed={SEED}; rerun: REPRO_FUZZ_SEED={SEED}); "
                f"first bad lane={int(bad[0])}: "
                f"got {int(scores[bad[0]])} want {int(want[bad[0]])}"
            )


def test_sharded_backend_agrees(fuzz_groups):
    """The process-pool backend, fed the pairs as one ragged stream
    per scheme — mixed shapes in one run, exactly the hostile case
    for the shard-side binning."""
    with ShardExecutor(workers=2, word_bits=WORD_BITS) as ex:
        for scheme in SCHEMES:
            groups = [g for g in fuzz_groups if g.scheme == scheme]
            xs = [g.X[p] for g in groups for p in range(GROUP_PAIRS)]
            ys = [g.Y[p] for g in groups for p in range(GROUP_PAIRS)]
            gold = np.concatenate([g.gold for g in groups])
            scores = ex.run(xs, ys, scheme).scores
            bad = np.flatnonzero(scores != gold)
            assert bad.size == 0, (
                f"repro.shard disagrees with gold on {bad.size} of "
                f"{len(xs)} pairs at scheme={scheme} "
                f"(seed={SEED}; rerun: REPRO_FUZZ_SEED={SEED}); "
                f"first bad stream index={int(bad[0])}: "
                f"got {int(scores[bad[0]])} want {int(gold[bad[0]])} "
                f"x={decode(xs[int(bad[0])])} "
                f"y={decode(ys[int(bad[0])])}"
            )
