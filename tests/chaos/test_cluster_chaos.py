"""Cluster chaos: kill a real node mid-batch, recover bit-identically.

The headline contract of ``repro.cluster``: with a 3-node subprocess
harness and a seeded :class:`FaultPlan` SIGKILLing one node mid-batch
(site ``cluster.node.drop`` drives the harness drop hook), the
coordinator's scores are bit-identical to a fault-free *single-node*
run — or, when nothing can score (every breaker open, no fallback), a
typed :class:`ClusterDegradedError` naming the shed pairs.  A silent
wrong score is the one forbidden outcome.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (ClusterCoordinator, ClusterDegradedError,
                           LocalCluster, RemoteNode, TopologyError)
from repro.core.encoding import decode
from repro.resilience.faults import FaultPlan
from repro.swa.scoring import DEFAULT_SCHEME
from repro.workloads.dna import random_strand

from .conftest import CHAOS_SEED


def _pairs(rng, count=24):
    return [(decode(random_strand(rng, int(m))),
             decode(random_strand(rng, int(n))))
            for m, n in rng.integers(8, 48, size=(count, 2))]


def _single_node_reference(pairs):
    """The fault-free single-node run the cluster must match."""
    from repro.serve import AlignmentServer, AlignmentService
    from repro.serve.client import ServeClient

    service = AlignmentService(workers=1, max_wait_ms=1.0)
    try:
        service.start()
        server = AlignmentServer(service, host="127.0.0.1", port=0)
    except OSError as exc:  # pragma: no cover - sandboxed environments
        service.stop()
        pytest.skip(f"cannot bind localhost sockets here: {exc}")
    with server:
        host, port = server.address
        with ServeClient(host, port) as client:
            responses = client.align_many(pairs)
    service.stop()
    assert all(r["ok"] for r in responses)
    return [int(r["score"]) for r in responses]


def test_node_killed_mid_batch_recovers_bit_identically(rng):
    pairs = _pairs(rng)
    expected = _single_node_reference(pairs)
    lc = LocalCluster(n=3, startup_timeout_s=120.0)
    try:
        lc.start()
    except (TopologyError, OSError) as exc:
        lc.stop()
        pytest.skip(f"cannot spawn serve subprocesses here: {exc}")
    try:
        with lc.coordinator(deadline_s=60.0) as coord:
            plan = FaultPlan.single("cluster.node.drop",
                                    seed=CHAOS_SEED, times=1)
            with plan:
                got = coord.score_batch(pairs)
            # The fault genuinely fired and genuinely killed a node.
            assert plan.fire_counts()["cluster.node.drop"] == 1
            dead = [s.name for s in lc.specs if not lc.alive(s.name)]
            assert len(dead) == 1
            # Bit-identical to the fault-free single-node run.
            assert list(got) == expected
            status = coord.status()["cluster"]
            assert status["rerouted"] >= 1
            assert status["routed"] + status["degraded"] == len(pairs)
            # The survivors keep serving follow-up batches.
            again = coord.score_batch(pairs)
            assert list(again) == expected
    finally:
        lc.stop()


def test_every_breaker_open_sheds_with_typed_error(rng):
    """No reachable node and no fallback: the coordinator must *say*
    which pairs it shed, not invent scores for them."""
    pairs = _pairs(rng, count=6)
    dead = [RemoteNode(f"n{i}", "127.0.0.1", 1, connect_timeout_s=0.2,
                       failure_threshold=1) for i in range(3)]
    for node in dead:
        node.breaker.record_failure()   # all open before the batch
        assert node.breaker.state == "open"
    with ClusterCoordinator(dead, deadline_s=5.0,
                            fallback=None) as coord:
        with pytest.raises(ClusterDegradedError) as excinfo:
            coord.score_batch(pairs)
    assert excinfo.value.pair_indices == tuple(range(len(pairs)))
    assert coord.status()["cluster"]["shed"] == len(pairs)


def test_breaker_open_degrades_to_fallback_bit_identically(rng):
    """Same dead cluster, but with the in-process fallback chain: the
    degraded scores equal the healthy reference — degradation costs
    capacity, never correctness."""
    from repro.swa.numpy_batch import sw_batch_max_scores

    pairs = _pairs(rng, count=6)
    dead = [RemoteNode(f"n{i}", "127.0.0.1", 1, connect_timeout_s=0.2,
                       failure_threshold=1) for i in range(3)]
    with ClusterCoordinator(dead, deadline_s=10.0) as coord:
        got = coord.score_batch(pairs)
    from repro.serve.service import _as_codes

    expected = [int(sw_batch_max_scores(
        _as_codes(q)[None, :], _as_codes(s)[None, :],
        DEFAULT_SCHEME)[0]) for q, s in pairs]
    assert list(got) == expected
    assert coord.status()["cluster"]["degraded"] == len(pairs)
    assert isinstance(got, np.ndarray)
