"""Tests for repro.core.circuits: the §IV-A bitwise arithmetic.

Every circuit is cross-validated against plain integer arithmetic over
all lanes, and its measured operation count is asserted against the
closed-form formulas (which the docstrings relate to the paper's
Lemmas 2-5 and Theorem 6).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitops import BitOpsError, OpCounter, unpack_lanes
from repro.core.bitsliced import BitSlicedUInt
from repro.core.circuits import (
    add_b,
    add_b_ops,
    greater_than,
    greater_than_ops,
    matching_b,
    matching_b_ops_bound,
    matching_b_ops_exact,
    max_b,
    max_b_ops,
    splat_constant,
    ssub_b,
    ssub_b_ops,
    sw_cell,
    sw_cell_ops_exact,
    sw_cell_ops_paper,
)

from ..conftest import MAIN_WIDTHS

S_VALUES = (1, 2, 3, 5, 8, 9, 12)


def _pack(vals, s, w):
    return BitSlicedUInt.from_ints(np.asarray(vals), s, w).data


def _unpack(planes, w, count):
    return BitSlicedUInt(np.stack(planes), w).to_ints(count)


class TestSplatConstant:
    def test_values(self):
        planes = splat_constant(0b101, 3, 32)
        assert planes[0] == np.uint32(0xFFFFFFFF)
        assert planes[1] == 0
        assert planes[2] == np.uint32(0xFFFFFFFF)

    def test_overflow_rejected(self):
        with pytest.raises(BitOpsError):
            splat_constant(8, 3, 32)
        with pytest.raises(BitOpsError):
            splat_constant(-1, 3, 32)

    def test_broadcasts_against_lane_arrays(self, rng):
        a = rng.integers(0, 16, 50)
        A = _pack(a, 4, 32)
        C = splat_constant(5, 4, 32)
        got = _unpack(add_b(list(A), C), 32, 50)
        np.testing.assert_array_equal(got, (a + 5) % 16)


class TestGreaterThan:
    @pytest.mark.parametrize("w", MAIN_WIDTHS)
    @pytest.mark.parametrize("s", S_VALUES)
    def test_matches_integer_compare(self, rng, w, s):
        P = 130
        a = rng.integers(0, 1 << s, P)
        b = rng.integers(0, 1 << s, P)
        flag = greater_than(_pack(a, s, w), _pack(b, s, w))
        bits = unpack_lanes(flag[None, :], w, count=P)[0]
        # Flag is 1 iff a >= b (ties resolve to 1; see module docs).
        np.testing.assert_array_equal(bits, (a >= b).astype(np.uint8))

    @pytest.mark.parametrize("s", S_VALUES)
    def test_op_count(self, rng, s):
        c = OpCounter()
        a = _pack(rng.integers(0, 1 << s, 10), s, 32)
        greater_than(a, a, c)
        assert c.ops == greater_than_ops(s) == 5 * s - 2

    def test_width_mismatch_raises(self):
        with pytest.raises(BitOpsError):
            greater_than([np.uint32(0)] * 3, [np.uint32(0)] * 2)

    def test_empty_raises(self):
        with pytest.raises(BitOpsError):
            greater_than([], [])


class TestMaxB:
    @pytest.mark.parametrize("w", MAIN_WIDTHS)
    @pytest.mark.parametrize("s", S_VALUES)
    def test_matches_integer_max(self, rng, w, s):
        P = 200
        a = rng.integers(0, 1 << s, P)
        b = rng.integers(0, 1 << s, P)
        got = _unpack(max_b(_pack(a, s, w), _pack(b, s, w)), w, P)
        np.testing.assert_array_equal(got, np.maximum(a, b))

    @pytest.mark.parametrize("s", S_VALUES)
    def test_lemma2_op_count(self, rng, s):
        c = OpCounter()
        a = _pack(rng.integers(0, 1 << s, 10), s, 32)
        max_b(a, a, c)
        assert c.ops == max_b_ops(s) == 9 * s - 2  # Lemma 2, exact

    def test_idempotent(self, rng):
        a = rng.integers(0, 256, 64)
        A = _pack(a, 8, 32)
        np.testing.assert_array_equal(_unpack(max_b(A, A), 32, 64), a)


class TestAddB:
    @pytest.mark.parametrize("w", MAIN_WIDTHS)
    @pytest.mark.parametrize("s", S_VALUES)
    def test_matches_integer_add_mod(self, rng, w, s):
        P = 200
        a = rng.integers(0, 1 << s, P)
        b = rng.integers(0, 1 << s, P)
        got = _unpack(add_b(_pack(a, s, w), _pack(b, s, w)), w, P)
        np.testing.assert_array_equal(got, (a + b) % (1 << s))

    @pytest.mark.parametrize("s", S_VALUES)
    def test_op_count_6s_minus_4(self, rng, s):
        """Lemma 3 says 6s-5 but its carry init is wrong (a0^b0 instead
        of a0&b0); the corrected adder costs one more operation."""
        c = OpCounter()
        a = _pack(rng.integers(0, 1 << s, 10), s, 32)
        add_b(a, a, c)
        assert c.ops == add_b_ops(s)
        if s > 1:
            assert c.ops == 6 * s - 4

    def test_carry_init_regression(self):
        """a0 = b0 = 1 must carry into bit 1 — the exact case the
        paper's listing gets wrong."""
        got = _unpack(add_b(_pack([1], 3, 32), _pack([1], 3, 32)), 32, 1)
        assert got[0] == 2

    def test_carry_chain_full_length(self):
        # 0b0111 + 1 = 0b1000: carry must ripple through every bit.
        got = _unpack(add_b(_pack([7], 4, 32), _pack([1], 4, 32)), 32, 1)
        assert got[0] == 8


class TestSSubB:
    @pytest.mark.parametrize("w", MAIN_WIDTHS)
    @pytest.mark.parametrize("s", S_VALUES)
    def test_matches_saturating_subtract(self, rng, w, s):
        P = 200
        a = rng.integers(0, 1 << s, P)
        b = rng.integers(0, 1 << s, P)
        got = _unpack(ssub_b(_pack(a, s, w), _pack(b, s, w)), w, P)
        np.testing.assert_array_equal(got, np.maximum(a - b, 0))

    @pytest.mark.parametrize("s", S_VALUES)
    def test_lemma4_op_count(self, rng, s):
        c = OpCounter()
        a = _pack(rng.integers(0, 1 << s, 10), s, 32)
        ssub_b(a, a, c)
        assert c.ops == ssub_b_ops(s) == 9 * s - 4  # Lemma 4, exact

    def test_saturation_to_zero(self):
        got = _unpack(ssub_b(_pack([3], 4, 32), _pack([9], 4, 32)), 32, 1)
        assert got[0] == 0

    def test_exact_difference(self):
        got = _unpack(ssub_b(_pack([9], 4, 32), _pack([9], 4, 32)), 32, 1)
        assert got[0] == 0


class TestMatchingB:
    @pytest.mark.parametrize("w", MAIN_WIDTHS)
    def test_matches_w_function(self, rng, w):
        s, c1, c2, P = 9, 2, 1, 300
        C = rng.integers(0, (1 << s) - c1, P)
        x = rng.integers(0, 4, P)
        y = rng.integers(0, 4, P)
        got = _unpack(
            matching_b(_pack(C, s, w), _pack(x, 2, w), _pack(y, 2, w),
                       c1, c2, w),
            w, P,
        )
        want = np.where(x == y, C + c1, np.maximum(C - c2, 0))
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("s", (4, 8, 9, 12))
    def test_op_count_and_lemma5_bound(self, rng, s):
        c = OpCounter()
        C = _pack(rng.integers(0, 4, 10), s, 32)
        x = _pack(rng.integers(0, 4, 10), 2, 32)
        matching_b(C, x, x, 2, 1, 32, c)
        assert c.ops == matching_b_ops_exact(s, 2)
        assert c.ops <= matching_b_ops_bound(s)  # Lemma 5

    def test_char_width_mismatch_raises(self):
        C = _pack([0], 4, 32)
        with pytest.raises(BitOpsError):
            matching_b(C, _pack([1], 2, 32), _pack([1], 3, 32), 2, 1, 32)


class TestSWCell:
    @pytest.mark.parametrize("w", MAIN_WIDTHS)
    def test_matches_recurrence(self, rng, w):
        s, c1, c2, gap, P = 9, 2, 1, 1, 300
        A = rng.integers(0, (1 << s) - c1, P)
        B = rng.integers(0, (1 << s) - c1, P)
        C = rng.integers(0, (1 << s) - c1, P)
        x = rng.integers(0, 4, P)
        y = rng.integers(0, 4, P)
        got = _unpack(
            sw_cell(_pack(A, s, w), _pack(B, s, w), _pack(C, s, w),
                    _pack(x, 2, w), _pack(y, 2, w), gap, c1, c2, w),
            w, P,
        )
        w_xy = np.where(x == y, c1, -c2)
        want = np.maximum.reduce(
            [np.zeros(P, dtype=np.int64), A - gap, B - gap, C + w_xy]
        )
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("s", (4, 8, 9))
    def test_theorem6_op_count(self, rng, s):
        c = OpCounter()
        A = _pack(rng.integers(0, 4, 10), s, 32)
        x = _pack(rng.integers(0, 4, 10), 2, 32)
        sw_cell(A, A, A, x, x, 1, 2, 1, 32, c)
        assert c.ops == sw_cell_ops_exact(s, 2) == 46 * s - 16 + 4
        # Theorem 6's stated 48s-18 is an upper bound for s >= 2 e + ...
        assert c.ops <= sw_cell_ops_paper(s) + 2  # within the paper's +-1

    def test_result_nonnegative_even_from_zeros(self):
        z = _pack([0], 4, 32)
        x = _pack([1], 2, 32)
        y = _pack([2], 2, 32)
        got = _unpack(sw_cell(z, z, z, x, y, 1, 2, 1, 32), 32, 1)
        assert got[0] == 0

    def test_match_from_zero_gives_c1(self):
        z = _pack([0], 4, 32)
        x = _pack([3], 2, 32)
        got = _unpack(sw_cell(z, z, z, x, x, 1, 2, 1, 32), 32, 1)
        assert got[0] == 2


@settings(max_examples=40, deadline=None)
@given(
    s=st.integers(2, 12),
    seed=st.integers(0, 2**31),
    data=st.data(),
)
def test_circuit_algebra_property(s, seed, data):
    """max/add/ssub over random widths and values always agree with
    integer arithmetic — the core BPBC soundness property."""
    rng = np.random.default_rng(seed)
    P = data.draw(st.integers(1, 80))
    a = rng.integers(0, 1 << s, P)
    b = rng.integers(0, 1 << s, P)
    A, B = _pack(a, s, 64), _pack(b, s, 64)
    np.testing.assert_array_equal(_unpack(max_b(A, B), 64, P),
                                  np.maximum(a, b))
    np.testing.assert_array_equal(_unpack(add_b(A, B), 64, P),
                                  (a + b) % (1 << s))
    np.testing.assert_array_equal(_unpack(ssub_b(A, B), 64, P),
                                  np.maximum(a - b, 0))
