"""Experiment: Table III — the anti-diagonal wavefront schedule.

Prints the step ``t`` at which each cell of the Table II example is
computed, and verifies the two schedule invariants the paper's
parallel algorithm rests on: every cell's dependencies are scheduled
strictly earlier, and each diagonal's cells are mutually independent.
"""

from __future__ import annotations


from ..perfmodel.paper_data import TABLE2_X, TABLE2_Y
from ..swa.parallel import diagonal_cells, wavefront_schedule
from .report import render_table

__all__ = ["run", "compute"]


def compute(m: int | None = None, n: int | None = None) -> dict:
    """Schedule matrix plus dependency/coverage checks."""
    m = m if m is not None else len(TABLE2_X)
    n = n if n is not None else len(TABLE2_Y)
    sched = wavefront_schedule(m, n)
    deps_ok = True
    for i in range(m):
        for j in range(n):
            for di, dj in ((-1, 0), (0, -1), (-1, -1)):
                pi, pj = i + di, j + dj
                if pi >= 0 and pj >= 0 and sched[pi, pj] >= sched[i, j]:
                    deps_ok = False
    covered = sum(len(diagonal_cells(m, n, t)) for t in range(m + n - 1))
    return {
        "schedule": sched,
        "deps_ok": deps_ok,
        "coverage_ok": covered == m * n,
        "steps": m + n - 1,
    }


def run(verbose: bool = True) -> str:
    """Render the Table III schedule (printed 1-based like the paper)."""
    r = compute()
    sched = r["schedule"]
    header = [""] + list(TABLE2_Y)
    rows = [[list(TABLE2_X)[i]] + [int(v) + 1 for v in sched[i]]
            for i in range(sched.shape[0])]
    table = render_table(
        header, rows,
        title="Table III: wavefront step t per cell (1-based, as printed)",
    )
    table += (
        f"\nsteps = {r['steps']} (m + n - 1); dependencies scheduled "
        f"earlier: {r['deps_ok']}; every cell covered exactly once: "
        f"{r['coverage_ok']}"
    )
    if verbose:
        print(table)
    return table
