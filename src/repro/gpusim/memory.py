"""Simulated GPU memories with access-pattern accounting.

:class:`GlobalMemory` models the device DRAM: named typed buffers with
bounds checking and, per warp-wide access, a count of the 128-byte
transaction segments touched — perfectly coalesced accesses produce
one segment per 32 four-byte lanes, strided ones up to 32.

:class:`SharedMemory` models one block's on-chip scratchpad: a word
array divided across 32 banks; a warp access hitting the same bank at
different word addresses serialises, and the conflict degree is
recorded (paper §I discusses both hazards as the key to CUDA
performance, which is why the simulator accounts for them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .errors import MemoryFault

__all__ = ["MemoryStats", "GlobalMemory", "SharedMemory"]


@dataclass
class MemoryStats:
    """Aggregated access statistics for one memory object."""

    loads: int = 0
    stores: int = 0
    load_transactions: int = 0
    store_transactions: int = 0
    bank_conflict_cycles: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0

    def merge(self, other: "MemoryStats") -> None:
        """Accumulate ``other`` into this object."""
        self.loads += other.loads
        self.stores += other.stores
        self.load_transactions += other.load_transactions
        self.store_transactions += other.store_transactions
        self.bank_conflict_cycles += other.bank_conflict_cycles
        self.bytes_loaded += other.bytes_loaded
        self.bytes_stored += other.bytes_stored


class GlobalMemory:
    """Named, typed device buffers with coalescing accounting.

    Buffers are allocated with :meth:`alloc` (or adopted from host
    arrays with :meth:`from_host`) and accessed per element.  Warp-wide
    accesses should go through :meth:`warp_load` / :meth:`warp_store`
    so the transaction count reflects coalescing; scalar accesses count
    one transaction each.
    """

    def __init__(self, capacity_bytes: int | None = None,
                 segment_bytes: int = 128) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._capacity = capacity_bytes
        self._segment = segment_bytes
        self.stats = MemoryStats()

    # -- allocation ---------------------------------------------------
    def alloc(self, name: str, shape, dtype) -> np.ndarray:
        """Allocate a zeroed device buffer; returns the backing array."""
        if name in self._buffers:
            raise MemoryFault(f"buffer {name!r} already allocated")
        arr = np.zeros(shape, dtype=dtype)
        self._check_capacity(extra=arr.nbytes)
        self._buffers[name] = arr
        return arr

    def from_host(self, name: str, host: np.ndarray) -> np.ndarray:
        """Copy a host array into a new device buffer (cudaMemcpy H2D)."""
        if name in self._buffers:
            raise MemoryFault(f"buffer {name!r} already allocated")
        self._check_capacity(extra=host.nbytes)
        self._buffers[name] = np.array(host, copy=True)
        return self._buffers[name]

    def free(self, name: str) -> None:
        """Release a buffer."""
        self._buffers.pop(name, None)

    def buffer(self, name: str) -> np.ndarray:
        """Direct handle to a buffer (host-side inspection)."""
        try:
            return self._buffers[name]
        except KeyError:
            raise MemoryFault(f"no buffer named {name!r}") from None

    def _check_capacity(self, extra: int) -> None:
        if self._capacity is None:
            return
        used = sum(b.nbytes for b in self._buffers.values())
        if used + extra > self._capacity:
            raise MemoryFault(
                f"device memory exhausted: {used + extra} bytes needed, "
                f"{self._capacity} available"
            )

    # -- element access ------------------------------------------------
    def load(self, name: str, index) -> object:
        """Scalar load (one transaction)."""
        buf = self.buffer(name)
        try:
            value = buf[index]
        except IndexError:
            raise MemoryFault(
                f"load out of bounds: {name}[{index}] (shape {buf.shape})"
            ) from None
        self.stats.loads += 1
        self.stats.load_transactions += 1
        self.stats.bytes_loaded += buf.itemsize
        return value

    def store(self, name: str, index, value) -> None:
        """Scalar store (one transaction)."""
        buf = self.buffer(name)
        try:
            buf[index] = value
        except IndexError:
            raise MemoryFault(
                f"store out of bounds: {name}[{index}] (shape {buf.shape})"
            ) from None
        self.stats.stores += 1
        self.stats.store_transactions += 1
        self.stats.bytes_stored += buf.itemsize

    # -- warp-wide access ----------------------------------------------
    def _transactions(self, buf: np.ndarray, flat_indices) -> int:
        byte_addrs = np.asarray(flat_indices, dtype=np.int64) * buf.itemsize
        segments = np.unique(byte_addrs // self._segment)
        return len(segments)

    def warp_load(self, name: str, flat_indices) -> np.ndarray:
        """Load one element per lane (flat indices); counts coalescing."""
        buf = self.buffer(name)
        flat = np.asarray(flat_indices, dtype=np.int64)
        if flat.size and (flat.min() < 0 or flat.max() >= buf.size):
            raise MemoryFault(
                f"warp load out of bounds on {name!r} "
                f"(size {buf.size}, indices {flat.min()}..{flat.max()})"
            )
        self.stats.loads += int(flat.size)
        self.stats.load_transactions += self._transactions(buf, flat)
        self.stats.bytes_loaded += int(flat.size) * buf.itemsize
        return buf.reshape(-1)[flat]

    def warp_store(self, name: str, flat_indices, values) -> None:
        """Store one element per lane (flat indices); counts coalescing."""
        buf = self.buffer(name)
        flat = np.asarray(flat_indices, dtype=np.int64)
        if flat.size and (flat.min() < 0 or flat.max() >= buf.size):
            raise MemoryFault(
                f"warp store out of bounds on {name!r} "
                f"(size {buf.size}, indices {flat.min()}..{flat.max()})"
            )
        buf.reshape(-1)[flat] = values
        self.stats.stores += int(flat.size)
        self.stats.store_transactions += self._transactions(buf, flat)
        self.stats.bytes_stored += int(flat.size) * buf.itemsize


class SharedMemory:
    """One block's shared memory: a word array with bank accounting.

    Words are 4 bytes; word ``a`` lives in bank ``a % banks``.  A warp
    access costs ``max(count of distinct words per bank)`` cycles; the
    excess over 1 is recorded as conflict cycles.
    """

    def __init__(self, n_words: int, banks: int = 32,
                 capacity_bytes: int | None = None) -> None:
        if capacity_bytes is not None and n_words * 4 > capacity_bytes:
            raise MemoryFault(
                f"shared allocation of {n_words * 4} bytes exceeds the "
                f"{capacity_bytes}-byte block limit"
            )
        self._data = np.zeros(n_words, dtype=np.uint64)
        self._banks = banks
        self.stats = MemoryStats()

    def __len__(self) -> int:
        return len(self._data)

    def _account(self, indices, is_store: bool) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= len(self._data)):
            raise MemoryFault(
                f"shared memory access out of bounds "
                f"({idx.min()}..{idx.max()} of {len(self._data)})"
            )
        words = np.unique(idx)
        banks = words % self._banks
        _, counts = np.unique(banks, return_counts=True)
        degree = int(counts.max()) if counts.size else 1
        self.stats.bank_conflict_cycles += degree - 1
        if is_store:
            self.stats.stores += int(idx.size)
            self.stats.bytes_stored += int(idx.size) * 4
        else:
            self.stats.loads += int(idx.size)
            self.stats.bytes_loaded += int(idx.size) * 4

    def load(self, index: int) -> int:
        """Single-lane load."""
        self._account([index], is_store=False)
        return int(self._data[index])

    def store(self, index: int, value: int) -> None:
        """Single-lane store."""
        self._account([index], is_store=True)
        self._data[index] = value

    def warp_load(self, indices) -> np.ndarray:
        """Warp-wide load with bank-conflict accounting."""
        self._account(indices, is_store=False)
        return self._data[np.asarray(indices, dtype=np.int64)].copy()

    def warp_store(self, indices, values) -> None:
        """Warp-wide store with bank-conflict accounting."""
        self._account(indices, is_store=True)
        self._data[np.asarray(indices, dtype=np.int64)] = values
