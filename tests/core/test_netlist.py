"""Tests for repro.core.netlist: gate-level synthesis and simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitsliced import BitSlicedUInt
from repro.core.circuits import (
    matching_b,
    sw_cell,
    sw_cell_ops_exact,
)
from repro.core.netlist import (
    Netlist,
    NetlistError,
    build_sw_cell_best_netlist,
    build_sw_cell_netlist,
    synth_add,
    synth_matching,
    synth_max,
    synth_ssub,
)


def _planes(vals, s, w=32):
    return list(BitSlicedUInt.from_ints(np.asarray(vals), s, w).data)


def _ints(planes, w, count):
    return BitSlicedUInt(np.stack(planes), w).to_ints(count)


class TestNetlistBasics:
    def test_input_and_eval(self):
        net = Netlist()
        a = net.input_bus("a", 2)
        b = net.input_bus("b", 2)
        net.set_outputs([net.AND(a[0], b[0]), net.XOR(a[1], b[1])])
        out = net.evaluate({"a": _planes([0b11], 2),
                            "b": _planes([0b01], 2)})
        got = _ints(out, 32, 1)
        assert got[0] == 0b11 & 0b01 | ((0b1 ^ 0b0) << 1)

    def test_duplicate_bus_rejected(self):
        net = Netlist()
        net.input_bus("a", 2)
        with pytest.raises(NetlistError):
            net.input_bus("a", 2)

    def test_missing_input_rejected(self):
        net = Netlist()
        a = net.input_bus("a", 1)
        net.set_outputs(a)
        with pytest.raises(NetlistError):
            net.evaluate({})

    def test_wrong_plane_count_rejected(self):
        net = Netlist()
        a = net.input_bus("a", 2)
        net.set_outputs(a)
        with pytest.raises(NetlistError):
            net.evaluate({"a": _planes([1], 1)})

    def test_no_outputs_rejected(self):
        net = Netlist()
        net.input_bus("a", 1)
        with pytest.raises(NetlistError):
            net.evaluate({"a": _planes([1], 1)})

    def test_const_bus_overflow(self):
        net = Netlist()
        with pytest.raises(NetlistError):
            net.const_bus(4, 2)


class TestPeephole:
    def test_and_with_const(self):
        net = Netlist()
        a = net.input_bus("a", 1)
        assert net.AND(a[0], net.const(True)) == a[0]
        assert net._gates[net.AND(a[0], net.const(False))].kind == \
            "CONST0"

    def test_xor_with_const1_is_not(self):
        net = Netlist()
        a = net.input_bus("a", 1)
        g = net.XOR(a[0], net.const(True))
        assert net._gates[g].kind == "NOT"

    def test_double_not_cancels(self):
        net = Netlist()
        a = net.input_bus("a", 1)
        assert net.NOT(net.NOT(a[0])) == a[0]

    def test_idempotent_and_or(self):
        net = Netlist()
        a = net.input_bus("a", 1)
        assert net.AND(a[0], a[0]) == a[0]
        assert net.OR(a[0], a[0]) == a[0]

    def test_xor_self_is_zero(self):
        net = Netlist()
        a = net.input_bus("a", 1)
        assert net._gates[net.XOR(a[0], a[0])].kind == "CONST0"

    def test_cse_shares_gates(self):
        net = Netlist()
        a = net.input_bus("a", 1)
        b = net.input_bus("b", 1)
        g1 = net.AND(a[0], b[0])
        g2 = net.AND(b[0], a[0])  # commuted
        assert g1 == g2


class TestSynthAgainstCircuits:
    @pytest.mark.parametrize("s", [1, 3, 8, 9])
    def test_max_matches(self, rng, s):
        P = 150
        a = rng.integers(0, 1 << s, P)
        b = rng.integers(0, 1 << s, P)
        net = Netlist()
        A = net.input_bus("a", s)
        B = net.input_bus("b", s)
        net.set_outputs(synth_max(net, A, B))
        out = net.evaluate({"a": _planes(a, s), "b": _planes(b, s)})
        np.testing.assert_array_equal(_ints(out, 32, P),
                                      np.maximum(a, b))

    @pytest.mark.parametrize("s", [1, 3, 8])
    def test_add_matches(self, rng, s):
        P = 150
        a = rng.integers(0, 1 << s, P)
        b = rng.integers(0, 1 << s, P)
        net = Netlist()
        A = net.input_bus("a", s)
        B = net.input_bus("b", s)
        net.set_outputs(synth_add(net, A, B))
        out = net.evaluate({"a": _planes(a, s), "b": _planes(b, s)})
        np.testing.assert_array_equal(_ints(out, 32, P),
                                      (a + b) % (1 << s))

    @pytest.mark.parametrize("s", [1, 3, 8])
    def test_ssub_matches(self, rng, s):
        P = 150
        a = rng.integers(0, 1 << s, P)
        b = rng.integers(0, 1 << s, P)
        net = Netlist()
        A = net.input_bus("a", s)
        B = net.input_bus("b", s)
        net.set_outputs(synth_ssub(net, A, B))
        out = net.evaluate({"a": _planes(a, s), "b": _planes(b, s)})
        np.testing.assert_array_equal(_ints(out, 32, P),
                                      np.maximum(a - b, 0))

    def test_matching_matches_circuit(self, rng):
        s, P = 9, 200
        C = rng.integers(0, (1 << s) - 2, P)
        x = rng.integers(0, 4, P)
        y = rng.integers(0, 4, P)
        net = Netlist()
        Cb = net.input_bus("c", s)
        xb = net.input_bus("x", 2)
        yb = net.input_bus("y", 2)
        net.set_outputs(synth_matching(net, Cb, xb, yb, 2, 1))
        out = net.evaluate({"c": _planes(C, s), "x": _planes(x, 2),
                            "y": _planes(y, 2)})
        ref = matching_b(_planes(C, s), _planes(x, 2), _planes(y, 2),
                         2, 1, 32)
        np.testing.assert_array_equal(np.stack(out), np.stack(ref))

    def test_sw_cell_matches_circuit_and_gold(self, rng):
        s, P = 9, 300
        A = rng.integers(0, (1 << s) - 2, P)
        B = rng.integers(0, (1 << s) - 2, P)
        C = rng.integers(0, (1 << s) - 2, P)
        x = rng.integers(0, 4, P)
        y = rng.integers(0, 4, P)
        net = build_sw_cell_netlist(s, gap=1, c1=2, c2=1)
        out = net.evaluate({
            "up": _planes(A, s), "left": _planes(B, s),
            "diag": _planes(C, s), "x": _planes(x, 2),
            "y": _planes(y, 2),
        })
        ref = sw_cell(_planes(A, s), _planes(B, s), _planes(C, s),
                      _planes(x, 2), _planes(y, 2), 1, 2, 1, 32)
        np.testing.assert_array_equal(np.stack(out), np.stack(ref))
        w_xy = np.where(x == y, 2, -1)
        want = np.maximum.reduce([np.zeros(P, dtype=np.int64),
                                  A - 1, B - 1, C + w_xy])
        np.testing.assert_array_equal(_ints(out, 32, P), want)

    def test_64bit_evaluation(self, rng):
        s, P = 5, 100
        a = rng.integers(0, 1 << s, P)
        b = rng.integers(0, 1 << s, P)
        net = Netlist()
        A = net.input_bus("a", s)
        B = net.input_bus("b", s)
        net.set_outputs(synth_max(net, A, B))
        out = net.evaluate({"a": _planes(a, s, 64),
                            "b": _planes(b, s, 64)}, word_bits=64)
        np.testing.assert_array_equal(_ints(out, 64, P),
                                      np.maximum(a, b))


class TestGateCounts:
    def test_constant_folding_shrinks_sw_cell(self):
        """With gap/c1/c2 as circuit constants, the folded netlist
        needs fewer gates than the generic straight-line op count —
        quantifying the optimisation a tuned CUDA kernel gets."""
        s = 8
        net = build_sw_cell_netlist(s, gap=1, c1=2, c2=1)
        folded = net.logic_gate_count()
        generic = sw_cell_ops_exact(s, 2)
        assert folded < generic
        # The fold is substantial: at least 20% fewer operations.
        assert folded < 0.8 * generic

    def test_depth_dominated_by_ripple_chains(self):
        net = build_sw_cell_netlist(8, 1, 2, 1)
        # Two comparator chains + subtractor in series: depth grows
        # linearly in s; sanity-band the value.
        assert 20 <= net.depth() <= 120

    def test_gate_counts_by_kind(self):
        net = build_sw_cell_netlist(4, 1, 2, 1)
        counts = net.gate_counts()
        assert counts["INPUT"] == 3 * 4 + 2 * 2
        assert counts.get("AND", 0) > 0
        assert counts.get("XOR", 0) > 0

    def test_max_gate_count_close_to_lemma2(self):
        """Without constants in play, synth_max's distinct-gate count
        is within CSE savings of Lemma 2's 9s-2 straight-line ops."""
        s = 8
        net = Netlist()
        A = net.input_bus("a", s)
        B = net.input_bus("b", s)
        net.set_outputs(synth_max(net, A, B))
        logic = net.logic_gate_count()
        assert logic <= 9 * s - 2
        assert logic >= 7 * s  # CSE cannot shrink it below ~7s


class TestNetlistMemoisation:
    def test_same_object_per_parameter_tuple(self):
        """Synthesis is memoised: equal parameters return the *same*
        netlist object (treat it as read-only)."""
        a = build_sw_cell_netlist(8, 1, 2, 1)
        b = build_sw_cell_netlist(8, 1, 2, 1)
        assert a is b

    def test_numpy_ints_normalise_to_same_entry(self):
        a = build_sw_cell_netlist(8, 1, 2, 1)
        b = build_sw_cell_netlist(np.int64(8), np.uint8(1),
                                  np.int32(2), np.int64(1))
        assert a is b

    def test_distinct_parameters_distinct_objects(self):
        a = build_sw_cell_netlist(8, 1, 2, 1)
        b = build_sw_cell_netlist(8, 1, 2, 2)
        c = build_sw_cell_netlist(8, 1, 2, 1, simplify=False)
        assert a is not b
        assert a is not c

    def test_best_netlist_cached_and_correct(self, rng):
        """The fused cell + running-max netlist is memoised too, and
        its outputs are (cell planes, updated best planes)."""
        s, P = 6, 120
        assert build_sw_cell_best_netlist(s, 1, 2, 1) \
            is build_sw_cell_best_netlist(s, 1, 2, 1)
        net = build_sw_cell_best_netlist(s, 1, 2, 1)
        hi = (1 << s) - 2
        A, B, C, best = (rng.integers(0, hi, P) for _ in range(4))
        x = rng.integers(0, 4, P)
        y = rng.integers(0, 4, P)
        out = net.evaluate({
            "up": _planes(A, s), "left": _planes(B, s),
            "diag": _planes(C, s), "x": _planes(x, 2),
            "y": _planes(y, 2), "best": _planes(best, s),
        })
        assert len(out) == 2 * s
        cell = _ints(out[:s], 32, P)
        ref = _ints(sw_cell(_planes(A, s), _planes(B, s), _planes(C, s),
                            _planes(x, 2), _planes(y, 2), 1, 2, 1, 32),
                    32, P)
        np.testing.assert_array_equal(cell, ref)
        np.testing.assert_array_equal(_ints(out[s:], 32, P),
                                      np.maximum(best, ref))


@settings(max_examples=25, deadline=None)
@given(s=st.integers(1, 10), seed=st.integers(0, 2**31),
       gap=st.integers(0, 3), c1=st.integers(1, 3), c2=st.integers(0, 3))
def test_sw_netlist_property(s, seed, gap, c1, c2):
    """The folded netlist equals the hand circuit for any constants
    that fit the width."""
    if max(c1, c2, gap) >> s:
        return
    rng = np.random.default_rng(seed)
    P = 64
    hi = max(1, (1 << s) - c1)
    A = rng.integers(0, hi, P)
    B = rng.integers(0, hi, P)
    C = rng.integers(0, hi, P)
    x = rng.integers(0, 4, P)
    y = rng.integers(0, 4, P)
    net = build_sw_cell_netlist(s, gap, c1, c2)
    out = net.evaluate({"up": _planes(A, s), "left": _planes(B, s),
                        "diag": _planes(C, s), "x": _planes(x, 2),
                        "y": _planes(y, 2)})
    ref = sw_cell(_planes(A, s), _planes(B, s), _planes(C, s),
                  _planes(x, 2), _planes(y, 2), gap, c1, c2, 32)
    np.testing.assert_array_equal(np.stack(out), np.stack(ref))
