"""Tests for repro.experiments: every table/figure harness runs and
asserts its own reproduction claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments import (figure1, figure2, table1, table2, table3,
                               table4, table5)
from repro.experiments.report import fmt, render_table


class TestReport:
    def test_render_basic(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.50" in out
        assert "30" in out

    def test_fmt(self):
        assert fmt(1.234, 1) == "1.2"
        assert fmt("x") == "x"
        assert fmt(7) == "7"


class TestTable1:
    def test_rows_cover_paper(self):
        rows = table1.rows()
        assert [r["s"] for r in rows] == [32, 16, 8, 7, 6, 5, 4, 3, 2]
        exact = [r for r in rows if r["ops_ours"] == r["ops_paper"]]
        assert len(exact) == 6

    def test_run_renders(self):
        out = table1.run(verbose=False)
        assert "127" in out and "560" in out


class TestTable2:
    def test_all_engines_match_paper(self):
        r = table2.compute()
        np.testing.assert_array_equal(r["sequential"], r["paper"])
        np.testing.assert_array_equal(r["wavefront"], r["paper"])
        np.testing.assert_array_equal(r["bpbc"], r["paper"])
        assert r["gpu_max"] == 8
        assert r["max_score"] == 8

    def test_run_renders(self):
        out = table2.run(verbose=False)
        assert "max score = 8 (paper: 8)" in out
        assert "False" not in out


class TestTable3:
    def test_schedule_invariants(self):
        r = table3.compute()
        assert r["deps_ok"] and r["coverage_ok"]
        assert r["steps"] == 11

    def test_larger_shapes(self):
        r = table3.compute(m=17, n=23)
        assert r["deps_ok"] and r["coverage_ok"]

    def test_run_renders(self):
        out = table3.run(verbose=False)
        assert "11" in out


class TestTable4:
    def test_analytic_errors_small_on_swa(self):
        a = table4.analytic_table()
        for fam, e in a["errors"].items():
            if fam.endswith("/swa") and "wordwise" not in fam:
                assert e < 0.05

    def test_measured_engines_agree(self):
        rows = table4.measured_table(n_values=(64,), pairs=96, m=16)
        assert rows[0]["scores_agree"]

    def test_measured_breakdown_fields(self):
        rows = table4.measured_table(n_values=(64,), pairs=64, m=8)
        b = rows[0]["bitwise32"]
        assert set(b) >= {"w2b", "swa", "b2w", "total"}
        assert b["total"] >= b["swa"]


class TestTable5:
    def test_analytic_speedups(self):
        rows = table5.analytic_rows()
        for r in rows:
            assert r["speedup_model"] == pytest.approx(
                r["speedup_paper"], rel=0.06
            )

    def test_measured_bitwise_wins_at_scale(self):
        rows = table5.measured_rows(n_values=(128,), pairs=2048, m=64)
        assert rows[0]["speedup"] > 1.0


class TestFigures:
    def test_figure1_final_stage_is_transpose(self):
        stages = figure1.stages_symbolic()
        assert len(stages) == 4
        final = stages[-1]
        assert all(final[w, b] == f"{b},{w}"
                   for w in range(8) for b in range(8))

    def test_figure1_matches_paper_panel2(self):
        # Figure 1 second panel, word A[0]: 4,3 4,2 4,1 4,0 0,3 0,2 0,1 0,0
        st1 = figure1.stages_symbolic()[1]
        assert [st1[0, b] for b in range(7, -1, -1)] == [
            "4,3", "4,2", "4,1", "4,0", "0,3", "0,2", "0,1", "0,0"
        ]

    def test_figure2_kernel_consistency(self):
        r = figure2.compute(m=4, n=7, pairs=16)
        assert r["scores_ok"]
        assert r["report"].swa.barriers == r["expected_barriers"]

    def test_figure2_trace_covers_all_cells(self):
        r = figure2.compute(m=4, n=7, pairs=16)
        cells = [c for e in r["trace"] for c in e["cells"]]
        assert len(cells) == 4 * 7


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4", "table5",
            "figure1", "figure2", "ablations",
        }
