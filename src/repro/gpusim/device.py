"""Device descriptions for the SIMT simulator and the analytic model.

The specs carry the numbers the paper's evaluation depends on: SM /
core counts and clock for the GPU side, single-thread issue rate for
the CPU side, and the PCIe bandwidth that governs the H2G/G2H columns
of Table IV.  The figures for the paper's hardware are taken from the
paper itself where stated (e.g. "GeForce GTX TITAN X has 28 streaming
multiprocessors with 128 cores each") and from vendor datasheets
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DeviceSpec",
    "CpuSpec",
    "GTX_TITAN_X",
    "GTX_280",
    "CORE_I7_6700",
]


@dataclass(frozen=True)
class DeviceSpec:
    """A CUDA-like device for simulation and analytic timing.

    Attributes
    ----------
    name:
        Marketing name, for reports.
    sm_count / cores_per_sm:
        Streaming multiprocessors and CUDA cores per SM.
    clock_ghz:
        Core clock in GHz.
    warp_size:
        Threads per warp (32 for every CUDA device).
    shared_mem_banks:
        Number of shared-memory banks (bank-conflict accounting).
    shared_mem_bytes:
        Shared memory per block, bytes.
    max_threads_per_block:
        Launch-configuration limit.
    global_mem_bytes:
        Device DRAM capacity.
    mem_bandwidth_gbs:
        Device DRAM bandwidth, GB/s.
    pcie_gbs:
        Effective host-device transfer bandwidth, GB/s (governs the
        H2G and G2H columns of Table IV).
    coalesce_segment_bytes:
        Size of one global-memory transaction segment.
    """

    name: str
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    warp_size: int = 32
    shared_mem_banks: int = 32
    shared_mem_bytes: int = 48 * 1024
    max_threads_per_block: int = 1024
    global_mem_bytes: int = 12 * 1024**3
    mem_bandwidth_gbs: float = 336.5
    pcie_gbs: float = 6.0
    coalesce_segment_bytes: int = 128

    @property
    def total_cores(self) -> int:
        """Total CUDA cores across the device."""
        return self.sm_count * self.cores_per_sm

    @property
    def peak_int_ops_per_sec(self) -> float:
        """Peak simple integer/logic operations per second (1 op per
        core per clock)."""
        return self.total_cores * self.clock_ghz * 1e9


@dataclass(frozen=True)
class CpuSpec:
    """A single CPU thread for the analytic model.

    ``ops_per_cycle`` is the *effective* sustained bitwise-op
    throughput of the scalar reference implementation, not the
    architectural issue width; it is the one free parameter the
    Table IV model calibrates from a single paper measurement.
    """

    name: str
    clock_ghz: float
    ops_per_cycle: float = 1.0

    @property
    def ops_per_sec(self) -> float:
        """Sustained simple operations per second on one thread."""
        return self.clock_ghz * 1e9 * self.ops_per_cycle


#: The paper's GPU (§VI): "GeForce GTX TITAN X has 28 streaming
#: multiprocessors with 128 cores each" — we reproduce the paper's
#: stated configuration.
GTX_TITAN_X = DeviceSpec(
    name="GeForce GTX TITAN X",
    sm_count=28,
    cores_per_sm=128,
    clock_ghz=1.0,
    mem_bandwidth_gbs=336.5,
    global_mem_bytes=12 * 1024**3,
    pcie_gbs=6.0,
)

#: The GPU of the prior work the paper compares GCUPS against
#: (Munekawa et al., 8.32 GCUPS).
GTX_280 = DeviceSpec(
    name="GeForce GTX 280",
    sm_count=30,
    cores_per_sm=8,
    clock_ghz=1.296,
    shared_mem_bytes=16 * 1024,
    max_threads_per_block=512,
    global_mem_bytes=1 * 1024**3,
    mem_bandwidth_gbs=141.7,
    pcie_gbs=3.0,
)

#: The paper's CPU: Intel Core i7-6700 (3.6 GHz auto-boost not
#: modelled; sequential algorithms run on a single thread).
CORE_I7_6700 = CpuSpec(name="Intel Core i7-6700", clock_ghz=3.6,
                       ops_per_cycle=1.0)
