"""BPBC affine-gap (Gotoh) wavefront kernel on the SIMT simulator.

The same thread-per-row wavefront as :mod:`repro.kernels.sw_kernel`,
extended to the three-matrix Gotoh recurrence: thread ``i`` owns DP
row ``i`` and keeps its own ``H[i][j-1]`` / ``E[i][j-1]`` in
registers, so only ``H`` and ``F`` cross the thread boundary — the
shared-memory hand-off ships ``2s`` planes per thread (plus ``s`` for
the running-max chain, hence ``shared_words = 3 m s``).  The diagonal
term is the paper's equality gate for DNA schemes and the
substitution mux tree for protein schemes, both through
:func:`repro.core.subst.gotoh_cell_b` — the identical circuit the CPU
engines evaluate, so the kernel is bit-identical to them by
construction and the differential battery pins it against the scalar
Gotoh reference.

Character input is ``eps``-bit plane buffers (``(eps, positions,
groups)``), produced on-device by
:func:`repro.kernels.transpose_kernel.w2b_planes_kernel`.
"""

from __future__ import annotations

from ..core.bitops import word_dtype
from ..core.circuits import max_b, max_b_ops
from ..core.subst import gotoh_cell_b, subst_gotoh_cell_ops_exact
from ..gpusim.kernel import Barrier, ThreadCtx

__all__ = ["gotoh_wavefront_kernel", "gotoh_shared_words_needed"]


def gotoh_shared_words_needed(m: int, s: int) -> int:
    """Shared-memory words for one block: ``2 m s`` for the H/F
    hand-off plus ``m s`` for the running-max chain."""
    return 3 * m * s


def gotoh_wavefront_kernel(ctx: ThreadCtx, xp: str, yp: str, out: str,
                           m: int, n: int, s: int, eps: int, scheme,
                           word_bits: int):
    """Kernel body; launch with ``grid_dim = lane_groups``,
    ``block_dim = m``,
    ``shared_words = gotoh_shared_words_needed(m, s)``.

    Global layout: ``xp`` is ``(eps, m, groups)`` and ``yp``
    ``(eps, n, groups)`` character-plane words; ``out`` is
    ``(groups, s)`` bit-sliced maximum scores.  ``scheme`` is an
    :class:`~repro.swa.affine.AffineScheme` or a
    :class:`~repro.core.protein.ProteinScheme` (including the
    degenerate ``gap_open == gap_extend`` linear case).
    """
    from ..core.affine_bpbc import gotoh_cell_ops_exact

    g = ctx.block_idx
    i = ctx.thread_idx
    dt = word_dtype(word_bits)
    zero = dt.type(0)
    go, ge = scheme.gap_open, scheme.gap_extend
    get_wk = getattr(scheme, "weights_key", None)
    if callable(get_wk):
        wk = get_wk()
        c1 = c2 = None
        cell_ops = subst_gotoh_cell_ops_exact(wk, s, eps)
    else:
        wk = None
        c1, c2 = scheme.match_score, scheme.mismatch_penalty
        cell_ops = gotoh_cell_ops_exact(s, eps)

    # x_i is fixed per thread — read its eps planes once.
    x = [dt.type(ctx.gmem.load(xp, (b, i, g))) for b in range(eps)]

    h_left = [zero] * s   # H[i][j-1] (own register)
    e_left = [zero] * s   # E[i][j-1] (own register)
    up = [zero] * s       # H[i-1][j]
    f_up = [zero] * s     # F[i-1][j]
    diag = [zero] * s     # H[i-1][j-1]
    R = [zero] * s        # running maximum of row i
    cell_base = i * 2 * s                    # H planes, then F planes
    rmax_base = (2 * ctx.block_dim + i) * s  # R-chain slots

    for t in range(n + m - 1):
        j = t - i
        cur_h = None
        if 0 <= j <= n - 1:
            y = [dt.type(ctx.gmem.load(yp, (b, j, g)))
                 for b in range(eps)]
            cur_h, cur_e, cur_f = gotoh_cell_b(
                h_left, e_left, up, f_up, diag, x, y, go, ge,
                word_bits, weights=wk, c1=c1, c2=c2)
            ctx.count_ops(cell_ops)
            R = max_b(R, cur_h)
            ctx.count_ops(max_b_ops(s))
            # Publish H and F for thread i + 1.
            for h in range(s):
                ctx.smem.store(cell_base + h, int(cur_h[h]))
                ctx.smem.store(cell_base + s + h, int(cur_f[h]))
            # At the last column, chain the running max downwards
            # (merging the neighbour's R read in the previous round).
            if j == n - 1:
                if i > 0:
                    R = max_b(R, r_prev)  # noqa: F821 - set below
                    ctx.count_ops(max_b_ops(s))
                if i == ctx.block_dim - 1:
                    for h in range(s):
                        ctx.gmem.store(out, (g, h), dt.type(R[h]))
                else:
                    for h in range(s):
                        ctx.smem.store(rmax_base + h, int(R[h]))
        yield Barrier()
        # Consume phase: rotate registers and read the neighbour's
        # fresh H/F planes.
        if cur_h is not None:
            h_left = cur_h
            e_left = cur_e
        diag = up
        j_next = t + 1 - i
        if i > 0 and 0 <= j_next <= n - 1:
            base = (i - 1) * 2 * s
            up = [dt.type(ctx.smem.load(base + h)) for h in range(s)]
            f_up = [dt.type(ctx.smem.load(base + s + h))
                    for h in range(s)]
        elif i == 0:
            up = [zero] * s
            f_up = [zero] * s
            diag = [zero] * s
        # The round before our last column, pick up the neighbour's
        # chained maximum.
        if i > 0 and t + 1 - i == n - 1:
            prev = (2 * ctx.block_dim + i - 1) * s
            r_prev = [dt.type(ctx.smem.load(prev + h))
                      for h in range(s)]
        yield Barrier()
