"""CLI protein paths: score and index round trips through main()."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.alphabet import PROTEIN_X
from repro.core.matrices import BLOSUM50, BLOSUM62
from repro.core.protein import ProteinScheme, subst_gotoh_max_score
from repro.index.fasta import FastaError
from repro.workloads.fasta import FastaRecord, write_fasta


def _random_protein(rng, n: int) -> str:
    return PROTEIN_X.decode(rng.integers(0, 20, size=n))


@pytest.fixture
def protein_pair(tmp_path):
    rng = np.random.default_rng(21)
    queries, subjects = [], []
    for i in range(3):
        q = _random_protein(rng, 12)
        s = _random_protein(rng, 8) + q + _random_protein(rng, 8) \
            if i < 2 else _random_protein(rng, 28)
        queries.append(FastaRecord(f"q{i}", "", q,
                                   alphabet=PROTEIN_X))
        subjects.append(FastaRecord(f"s{i}", "", s,
                                    alphabet=PROTEIN_X))
    qp, sp = tmp_path / "q.fa", tmp_path / "s.fa"
    write_fasta(qp, queries)
    write_fasta(sp, subjects)
    return qp, sp, queries, subjects


class TestScoreProtein:
    def test_pairwise_blosum62_default_gaps(self, protein_pair,
                                            capsys):
        qp, sp, queries, subjects = protein_pair
        assert main(["score", str(qp), str(sp),
                     "--alphabet", "protein"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "query\tsubject\tscore"
        scheme = ProteinScheme(BLOSUM62, gap_open=11, gap_extend=1)
        for line, q, s in zip(lines[1:], queries, subjects):
            qid, sid, score = line.split("\t")
            assert (qid, sid) == (q.id, s.id)
            assert int(score) == subst_gotoh_max_score(
                q.codes, s.codes, scheme)

    def test_custom_matrix_and_gaps(self, protein_pair, capsys):
        qp, sp, queries, subjects = protein_pair
        assert main(["score", str(qp), str(sp),
                     "--alphabet", "protein", "--matrix", "blosum50",
                     "--gap-open", "10", "--gap-extend", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()[1:]
        scheme = ProteinScheme(BLOSUM50, gap_open=10, gap_extend=2)
        for line, q, s in zip(lines, queries, subjects):
            assert int(line.split("\t")[2]) == subst_gotoh_max_score(
                q.codes, s.codes, scheme)

    def test_planted_queries_score_identity_sum(self, protein_pair,
                                                capsys):
        qp, sp, queries, _ = protein_pair
        main(["score", str(qp), str(sp), "--alphabet", "protein"])
        lines = capsys.readouterr().out.strip().splitlines()[1:]
        W = ProteinScheme(BLOSUM62).weights()
        for line, q in zip(lines[:2], queries[:2]):
            # Exact substring: the optimum is at least the diagonal sum.
            assert int(line.split("\t")[2]) >= \
                int(sum(W[c, c] for c in q.codes))

    def test_strict_ambiguity_rejects_b(self, tmp_path, capsys):
        qp, sp = tmp_path / "q.fa", tmp_path / "s.fa"
        write_fasta(qp, [FastaRecord("q0", "", "MKBLE",
                                     alphabet=PROTEIN_X)])
        write_fasta(sp, [FastaRecord("s0", "", "MKALE",
                                     alphabet=PROTEIN_X)])
        with pytest.raises(FastaError, match="ambiguity"):
            main(["score", str(qp), str(sp), "--alphabet", "protein"])
        assert main(["score", str(qp), str(sp), "--alphabet",
                     "protein", "--ambiguous", "mask"]) == 0
        line = capsys.readouterr().out.strip().splitlines()[1]
        masked = PROTEIN_X.encode("MKXLE")
        gold = subst_gotoh_max_score(
            masked, PROTEIN_X.encode("MKALE"),
            ProteinScheme(BLOSUM62, gap_open=11, gap_extend=1))
        assert int(line.split("\t")[2]) == gold


class TestIndexProtein:
    def test_build_and_search_round_trip(self, tmp_path, capsys):
        rng = np.random.default_rng(33)
        entries = [FastaRecord(f"e{i}", "", _random_protein(rng, 120),
                               alphabet=PROTEIN_X)
                   for i in range(3)]
        db = tmp_path / "db.fa"
        write_fasta(db, entries)
        idx_path = tmp_path / "db.idx"
        assert main(["index", "build", str(db), str(idx_path),
                     "--alphabet", "protein"]) == 0
        capsys.readouterr()

        query = entries[1].sequence[40:70]
        qp = tmp_path / "query.fa"
        write_fasta(qp, [FastaRecord("frag", "", query,
                                     alphabet=PROTEIN_X)])
        assert main(["index", "search", str(idx_path), str(qp),
                     "--alphabet", "protein", "--top-k", "1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "query\tentry\tdb_index\tscore"
        qid, entry, _, score = lines[1].split("\t")
        assert (qid, entry) == ("frag", "e1")
        W = ProteinScheme(BLOSUM62).weights()
        codes = PROTEIN_X.encode(query)
        assert int(score) == int(sum(W[c, c] for c in codes))
