"""Minimal FASTA reading/writing for the command-line tools.

A deliberately small, dependency-free parser covering what the CLI
needs: multi-record files, ``>``-headers with ids and optional
descriptions, sequence lines folded at arbitrary widths, case
normalisation, and strict DNA-alphabet validation (the BPBC engines
encode 2-bit bases only).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..core.encoding import ALPHABET, encode

__all__ = ["FastaRecord", "read_fasta", "write_fasta", "records_to_batch"]


class FastaError(ValueError):
    """Raised for malformed FASTA input."""


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: id, optional description, DNA sequence."""

    id: str
    description: str
    sequence: str

    @property
    def codes(self) -> np.ndarray:
        """The sequence as 2-bit codes."""
        return encode(self.sequence)

    def __len__(self) -> int:
        return len(self.sequence)


def _parse(lines: Iterable[str], source: str) -> Iterator[FastaRecord]:
    header: str | None = None
    chunks: list[str] = []
    lineno = 0
    for raw in lines:
        lineno += 1
        line = raw.rstrip("\n\r")
        if not line.strip():
            continue
        if line.startswith(">"):
            if header is not None:
                yield _make_record(header, chunks, source)
            header = line[1:].strip()
            if not header:
                raise FastaError(
                    f"{source}:{lineno}: empty FASTA header"
                )
            chunks = []
        else:
            if header is None:
                raise FastaError(
                    f"{source}:{lineno}: sequence data before any "
                    "'>' header"
                )
            chunks.append(line.strip())
    if header is not None:
        yield _make_record(header, chunks, source)
    elif lineno == 0:
        raise FastaError(f"{source}: empty FASTA input")


def _make_record(header: str, chunks: list[str],
                 source: str) -> FastaRecord:
    seq = "".join(chunks).upper()
    if not seq:
        raise FastaError(f"{source}: record {header!r} has no sequence")
    bad = set(seq) - set(ALPHABET)
    if bad:
        raise FastaError(
            f"{source}: record {header!r} contains non-DNA characters "
            f"{sorted(bad)}"
        )
    parts = header.split(None, 1)
    return FastaRecord(id=parts[0],
                       description=parts[1] if len(parts) > 1 else "",
                       sequence=seq)


def read_fasta(path: str | Path) -> list[FastaRecord]:
    """Parse a FASTA file into records (strict DNA alphabet)."""
    path = Path(path)
    with path.open() as fh:
        records = list(_parse(fh, str(path)))
    if not records:
        raise FastaError(f"{path}: no FASTA records found")
    return records


def write_fasta(path: str | Path, records: Iterable[FastaRecord],
                width: int = 70) -> None:
    """Write records, folding sequence lines at ``width`` columns."""
    if width <= 0:
        raise FastaError(f"fold width must be positive, got {width}")
    path = Path(path)
    with path.open("w") as fh:
        for rec in records:
            header = rec.id if not rec.description else (
                f"{rec.id} {rec.description}"
            )
            fh.write(f">{header}\n")
            for i in range(0, len(rec.sequence), width):
                fh.write(rec.sequence[i:i + width] + "\n")


def records_to_batch(records: list[FastaRecord]) -> np.ndarray:
    """Stack equal-length records into a ``(P, n)`` code matrix."""
    if not records:
        raise FastaError("empty record list")
    n = len(records[0])
    for rec in records:
        if len(rec) != n:
            raise FastaError(
                f"record {rec.id!r} has length {len(rec)}; the batch "
                f"engines need equal lengths ({n} expected). Pad or "
                "split the input."
            )
    return np.stack([rec.codes for rec in records])
