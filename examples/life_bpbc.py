"""Conway's Game of Life by BPBC — the technique's original demo.

    python examples/life_bpbc.py

The paper introduces BPBC through its Game-of-Life predecessor
(§I, ref [13]): one bit per cell, the next-state rule as a
combinational circuit, whole rows advanced per bitwise operation.
Runs a glider across a board with both the BPBC engine and the
plain-integer reference, checks they agree, and prints a few
generations plus the measured speed ratio.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.bitops import pack_lanes, unpack_lanes
from repro.extras.life import (life_step_packed, life_step_reference,
                               run_life)


def render(board: np.ndarray) -> str:
    return "\n".join("".join("#" if c else "." for c in row)
                     for row in board)


def main() -> None:
    board = np.zeros((10, 40), dtype=np.uint8)
    # A glider...
    board[1, 2] = board[2, 3] = board[3, 1] = board[3, 2] = board[3, 3] = 1
    # ...and a blinker to keep it company.
    board[5, 20:23] = 1

    print("generation 0:")
    print(render(board))
    state = board
    for gen in (4, 8):
        state = run_life(board, gen, engine="bpbc")
        ref = run_life(board, gen, engine="reference")
        assert (state == ref).all()
        print(f"\ngeneration {gen} (BPBC == reference):")
        print(render(state))

    # Throughput comparison on a big random board: pack once, then
    # step on packed state (the steady-state regime).
    rng = np.random.default_rng(0)
    big = rng.integers(0, 2, (256, 4096), dtype=np.uint8)
    gens = 10
    packed = pack_lanes(big, 64)
    t0 = time.perf_counter()
    for _ in range(gens):
        packed = life_step_packed(packed, 64)
    t1 = time.perf_counter()
    ref = big
    for _ in range(gens):
        ref = life_step_reference(ref)
    t2 = time.perf_counter()
    got = unpack_lanes(packed, 64, count=big.shape[1])
    assert (got == ref).all()
    print(f"\n256 x 4096 board, {gens} generations: "
          f"BPBC {1e3 * (t1 - t0):.1f} ms vs reference "
          f"{1e3 * (t2 - t1):.1f} ms "
          f"({(t2 - t1) / (t1 - t0):.1f}x) — identical states")


if __name__ == "__main__":
    main()
