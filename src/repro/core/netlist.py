"""Gate-level combinational circuits: the BPBC claim made literal.

The paper's framing is that the SW cell update is "converted into a
circuit simulation".  :mod:`repro.core.circuits` hand-codes that
circuit as straight-line NumPy; this module builds the *actual
netlist* — a DAG of AND/OR/XOR/NOT gates — and simulates it over lane
arrays, one gate evaluation per word for all instances at once.

Why both?  The netlist is the checkable artifact: it can be counted
(gate totals vs the paper's operation lemmas), optimised (constant
folding — what a real CUDA implementation of the paper would do to
the gap/c1/c2 constants), topologically analysed (circuit depth =
the critical path a hardware implementation would pay), and verified
gate-by-gate against both the hand-coded circuits and plain integer
arithmetic.

Main entry points::

    net = Netlist()
    a = net.input_bus("a", 8)
    b = net.input_bus("b", 8)
    q = synth_max(net, a, b)
    net.set_outputs(q)
    out = net.evaluate({"a": planes_a, "b": planes_b})

Synthesisers mirror §IV-A: :func:`synth_greater_equal`,
:func:`synth_max`, :func:`synth_add`, :func:`synth_ssub`,
:func:`synth_matching`, :func:`synth_sw_cell`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from .bitops import BitOpsError, full_mask, word_dtype

__all__ = [
    "Netlist",
    "NetlistError",
    "ArithEvent",
    "WidthIssue",
    "WidthReport",
    "cut_netlist",
    "synth_greater_equal",
    "synth_max",
    "synth_add",
    "synth_ssub",
    "synth_matching",
    "synth_sw_cell",
    "synth_subst_matching",
    "synth_subst_sw_cell",
    "synth_gotoh_cell",
    "build_sw_cell_netlist",
    "build_sw_cell_best_netlist",
    "build_subst_matching_netlist",
    "build_subst_sw_cell_netlist",
    "build_subst_sw_cell_best_netlist",
    "build_gotoh_cell_netlist",
    "build_gotoh_cell_best_netlist",
]


class NetlistError(BitOpsError):
    """Raised for malformed netlists or evaluation inputs."""


#: Gate kinds.  CONST0/CONST1 are sources; NOT has one input; the rest
#: have two.
_ARITY = {"AND": 2, "OR": 2, "XOR": 2, "NOT": 1, "CONST0": 0,
          "CONST1": 0, "INPUT": 0}


@dataclass(frozen=True)
class Gate:
    """One node of the DAG: ``kind`` plus input gate ids."""

    kind: str
    inputs: tuple[int, ...]
    name: str = ""


@dataclass(frozen=True)
class ArithEvent:
    """One bus-level arithmetic step recorded during synthesis.

    The gate DAG is pure Boolean logic — per-gate integer intervals
    are meaningless.  The synthesisers therefore log the *word-level*
    operations they implement (adds, saturating subtractions, maxima,
    multiplexes, constant buses, width extensions, truncations) keyed
    by the gate-id tuples of their operand and result buses.
    :meth:`Netlist.prove_widths` replays this log under interval
    abstraction to prove the chosen score width cannot overflow.

    ``lo``/``hi`` carry the literal range for ``const`` and ``range``
    events (a constant bus, or a bus whose value set is known by
    construction — e.g. the selected substitution weight is in
    ``[0, max_biased]``); they are unused for derived events.
    """

    kind: str                 #: const | range | extend | add | ssub |
    #: max | mux | truncate
    out: tuple[int, ...]      #: result bus gate ids (LSB first)
    a: tuple[int, ...] = ()   #: first operand bus
    b: tuple[int, ...] = ()   #: second operand bus
    lo: int = 0               #: literal lower bound (const/range only)
    hi: int = 0               #: literal upper bound (const/range only)
    note: str = ""            #: synthesiser context for diagnostics


@dataclass(frozen=True)
class WidthIssue:
    """One statically-proven width hazard from :meth:`prove_widths`.

    ``gate`` names the first gate whose value interval escapes the bus
    width: the top plane of an overflowing adder (its carry out has no
    gate to land in) or the first truncated plane that is not provably
    zero.
    """

    kind: str        #: "add-overflow" | "truncation-unsound"
    gate: int        #: offending gate id
    width: int       #: bus width the interval escapes
    lo: int          #: proven lower bound at the hazard
    hi: int          #: proven upper bound at the hazard
    message: str

    def render(self) -> str:
        return f"{self.kind} at gate {self.gate}: {self.message}"


@dataclass
class WidthReport:
    """Interval-analysis result: hazards plus the per-bus hulls."""

    issues: list[WidthIssue]
    intervals: dict[tuple[int, ...], tuple[int, int]]

    @property
    def ok(self) -> bool:
        """True when no width hazard was proven."""
        return not self.issues

    def interval_of(self, bus: Sequence[int]) -> tuple[int, int] | None:
        """The proven ``[lo, hi]`` hull of a bus, if one was derived."""
        return self.intervals.get(tuple(bus))


class Netlist:
    """A combinational circuit under construction.

    Gates are referred to by integer id; buses (multi-bit values) are
    plain lists of gate ids, least-significant bit first — matching
    the bit-plane order used everywhere else in the library.

    ``simplify`` (default on) enables structural hashing and the
    constant/identity peepholes below.  With it *off*, every helper
    call materialises a gate, and the synthesisers mirror the paper's
    straight-line listings literally — so ``logic_gate_count()`` of an
    unsimplified netlist equals the measured op counts of
    :mod:`repro.core.circuits` (the ``46s - 16 + 2e`` family), which
    is what :mod:`repro.analyze.netcheck` asserts.
    """

    def __init__(self, simplify: bool = True) -> None:
        self._simplify = simplify
        self._gates: list[Gate] = []
        self._input_order: list[tuple[str, int]] = []  # (bus, width)
        self._input_ids: dict[str, list[int]] = {}
        self._outputs: list[int] = []
        self._arith: list[ArithEvent] = []
        self._plan_cache: list[tuple] | None = None
        self._const0: int | None = None
        self._const1: int | None = None
        # Structural hashing: (kind, inputs) -> id, so repeated
        # subterms share gates (the counts below are therefore the
        # *distinct* gate counts, a lower bound on the op counts of
        # straight-line code).
        self._cse: dict[tuple[str, tuple[int, ...]], int] = {}

    # -- construction --------------------------------------------------
    def _add(self, kind: str, inputs: tuple[int, ...], name: str = "") -> int:
        if kind not in _ARITY:
            raise NetlistError(f"unknown gate kind {kind!r}")
        if len(inputs) != _ARITY[kind]:
            raise NetlistError(
                f"{kind} gate takes {_ARITY[kind]} inputs, got "
                f"{len(inputs)}"
            )
        for i in inputs:
            if not 0 <= i < len(self._gates):
                raise NetlistError(f"dangling gate input id {i}")
        key = (kind, inputs)
        if self._simplify and kind not in ("INPUT",) and key in self._cse:
            return self._cse[key]
        self._gates.append(Gate(kind, inputs, name))
        gid = len(self._gates) - 1
        if self._simplify and kind != "INPUT":
            self._cse[key] = gid
        return gid

    def input_bus(self, name: str, width: int) -> list[int]:
        """Declare a named input bus of ``width`` bits (LSB first)."""
        if name in self._input_ids:
            raise NetlistError(f"duplicate input bus {name!r}")
        if width <= 0:
            raise NetlistError(f"bus width must be positive, got {width}")
        ids = [self._add("INPUT", (), f"{name}[{h}]")
               for h in range(width)]
        self._input_order.append((name, width))
        self._input_ids[name] = ids
        return ids

    def const(self, bit: bool) -> int:
        """The shared constant-0 / constant-1 gate."""
        if bit:
            if self._const1 is None:
                self._const1 = self._add("CONST1", ())
            return self._const1
        if self._const0 is None:
            self._const0 = self._add("CONST0", ())
        return self._const0

    def const_bus(self, value: int, width: int) -> list[int]:
        """A bus wired to an integer constant (LSB first)."""
        if value < 0 or value >> width:
            raise NetlistError(
                f"constant {value} does not fit in {width} bits"
            )
        bus = [self.const(bool((value >> h) & 1)) for h in range(width)]
        self._record_arith("const", bus, lo=value, hi=value)
        return bus

    def _record_arith(self, kind: str, out: Sequence[int],
                      a: Sequence[int] = (), b: Sequence[int] = (),
                      lo: int = 0, hi: int = 0, note: str = "") -> None:
        """Log one word-level step for :meth:`prove_widths`."""
        self._arith.append(ArithEvent(kind, tuple(out), tuple(a),
                                      tuple(b), lo, hi, note))

    # Gate helpers with light peephole simplification: constant inputs
    # fold away, so synthesising with constant operands yields the
    # small circuits a hand optimiser would write.
    @property
    def simplifying(self) -> bool:
        """Whether peephole folding and CSE are active."""
        return self._simplify

    def NOT(self, a: int) -> int:
        if not self._simplify:
            return self._add("NOT", (a,))
        g = self._gates[a]
        if g.kind == "CONST0":
            return self.const(True)
        if g.kind == "CONST1":
            return self.const(False)
        if g.kind == "NOT":
            return g.inputs[0]
        return self._add("NOT", (a,))

    def AND(self, a: int, b: int) -> int:
        if not self._simplify:
            return self._add("AND", (a, b))
        ka, kb = self._gates[a].kind, self._gates[b].kind
        if ka == "CONST0" or kb == "CONST0":
            return self.const(False)
        if ka == "CONST1":
            return b
        if kb == "CONST1":
            return a
        if a == b:
            return a
        return self._add("AND", (min(a, b), max(a, b)))

    def OR(self, a: int, b: int) -> int:
        if not self._simplify:
            return self._add("OR", (a, b))
        ka, kb = self._gates[a].kind, self._gates[b].kind
        if ka == "CONST1" or kb == "CONST1":
            return self.const(True)
        if ka == "CONST0":
            return b
        if kb == "CONST0":
            return a
        if a == b:
            return a
        return self._add("OR", (min(a, b), max(a, b)))

    def XOR(self, a: int, b: int) -> int:
        if not self._simplify:
            return self._add("XOR", (a, b))
        ka, kb = self._gates[a].kind, self._gates[b].kind
        if ka == "CONST0":
            return b
        if kb == "CONST0":
            return a
        if ka == "CONST1":
            return self.NOT(b)
        if kb == "CONST1":
            return self.NOT(a)
        if a == b:
            return self.const(False)
        return self._add("XOR", (min(a, b), max(a, b)))

    def MUX(self, sel: int, when1: int, when0: int) -> int:
        """``sel ? when1 : when0`` as AND/OR/NOT gates."""
        return self.OR(self.AND(when1, sel),
                       self.AND(when0, self.NOT(sel)))

    def set_outputs(self, bus: Sequence[int]) -> None:
        """Declare the circuit's output bus (LSB first)."""
        for i in bus:
            if not 0 <= i < len(self._gates):
                raise NetlistError(f"output refers to unknown gate {i}")
        self._outputs = list(bus)
        self._plan_cache = None

    # -- analysis --------------------------------------------------------
    @property
    def outputs(self) -> list[int]:
        """The declared output gate ids (LSB first)."""
        return list(self._outputs)

    @property
    def input_buses(self) -> list[tuple[str, int]]:
        """Declared input buses as ``(name, width)`` in order."""
        return list(self._input_order)

    def input_ids(self, name: str) -> list[int]:
        """Gate ids of one input bus."""
        if name not in self._input_ids:
            raise NetlistError(f"unknown input bus {name!r}")
        return list(self._input_ids[name])

    @property
    def gates(self) -> list[Gate]:
        """The gate list (read-only view by convention)."""
        return list(self._gates)

    @property
    def n_gates(self) -> int:
        """Total nodes, including inputs and constants."""
        return len(self._gates)

    def gate_counts(self) -> dict[str, int]:
        """Distinct gates by kind (after CSE and constant folding)."""
        counts: dict[str, int] = {}
        for g in self._gates:
            counts[g.kind] = counts.get(g.kind, 0) + 1
        return counts

    def logic_gate_count(self) -> int:
        """AND/OR/XOR/NOT gates only — comparable to the paper's
        operation counts (each is one bitwise instruction)."""
        c = self.gate_counts()
        return sum(c.get(k, 0) for k in ("AND", "OR", "XOR", "NOT"))

    def depth(self) -> int:
        """Longest input-to-output gate path (circuit latency)."""
        depth = [0] * len(self._gates)
        for gid, g in enumerate(self._gates):
            if g.inputs:
                depth[gid] = 1 + max(depth[i] for i in g.inputs)
        return max((depth[o] for o in self._outputs), default=0)

    def used_gates(self) -> set[int]:
        """Gate ids reachable from the outputs (the live cone)."""
        live: set[int] = set()
        stack = list(self._outputs)
        while stack:
            gid = stack.pop()
            if gid in live:
                continue
            live.add(gid)
            stack.extend(self._gates[gid].inputs)
        return live

    @property
    def arith_events(self) -> list[ArithEvent]:
        """The synthesis-time arithmetic log (construction order)."""
        return list(self._arith)

    def prove_widths(self, input_ranges: dict[str, tuple[int, int]]
                     | None = None) -> WidthReport:
        """Statically prove the synthesised arithmetic cannot escape
        its bus widths, by abstract interpretation over the recorded
        :class:`ArithEvent` log.

        ``input_ranges`` maps input bus names to ``(lo, hi)`` value
        bounds (the engine invariant, e.g. scores in
        ``[0, scheme.max_score(m, n)]``); unnamed buses — and any bus
        an event reads without a derived interval — assume the full
        ``[0, 2**width - 1]`` range, so the analysis is sound but may
        be imprecise, never the reverse.  Two hazards are provable:

        * ``add-overflow`` — an adder's output interval exceeds
          ``2**width - 1``, so its carry out of the top plane is lost
          (the recurrence silently wraps);
        * ``truncation-unsound`` — a bus is truncated to fewer planes
          although a dropped plane is not provably zero (the
          ``subst.py`` extended-width argument fails).

        Interval transfer is exact for the synthesised semantics:
        ``ssub`` saturates at zero, ``max`` takes elementwise bound
        maxima, ``mux`` hulls both arms, ``extend`` preserves the
        value.  If a bus tuple is bound more than once (possible under
        CSE when two synth calls produce structurally identical
        buses), the hull of all bindings is kept.
        """
        iv: dict[tuple[int, ...], tuple[int, int]] = {}
        issues: list[WidthIssue] = []

        def bind(bus: tuple[int, ...], lo: int, hi: int) -> None:
            prev = iv.get(bus)
            if prev is not None:
                lo, hi = min(lo, prev[0]), max(hi, prev[1])
            iv[bus] = (lo, hi)

        ranges = dict(input_ranges or {})
        for name in ranges:
            if name not in self._input_ids:
                raise NetlistError(
                    f"input_ranges names unknown bus {name!r}"
                )
        for name, width in self._input_order:
            cap = (1 << width) - 1
            lo, hi = ranges.get(name, (0, cap))
            bind(tuple(self._input_ids[name]),
                 max(0, int(lo)), min(int(hi), cap))

        def get(bus: tuple[int, ...]) -> tuple[int, int]:
            got = iv.get(bus)
            if got is None:  # unknown source: assume full range
                return 0, (1 << len(bus)) - 1
            return got

        for ev in self._arith:
            w = len(ev.out)
            mask = (1 << w) - 1
            if ev.kind in ("const", "range"):
                bind(ev.out, ev.lo, ev.hi)
            elif ev.kind == "extend":
                lo, hi = get(ev.a)
                bind(ev.out, lo, hi)
            elif ev.kind == "add":
                (alo, ahi), (blo, bhi) = get(ev.a), get(ev.b)
                lo, hi = alo + blo, ahi + bhi
                if hi > mask:
                    gate = ev.out[-1]
                    issues.append(WidthIssue(
                        "add-overflow", gate, w, lo, hi,
                        f"{w}-bit adder result interval [{lo}, {hi}] "
                        f"exceeds 2**{w} - 1 = {mask}; the carry out "
                        f"of top-plane gate {gate} is lost"
                        + (f" ({ev.note})" if ev.note else "")))
                    lo, hi = 0, mask
                bind(ev.out, lo, hi)
            elif ev.kind == "ssub":
                (alo, ahi), (blo, bhi) = get(ev.a), get(ev.b)
                bind(ev.out, max(alo - bhi, 0), max(ahi - blo, 0))
            elif ev.kind == "max":
                (alo, ahi), (blo, bhi) = get(ev.a), get(ev.b)
                bind(ev.out, max(alo, blo), max(ahi, bhi))
            elif ev.kind == "mux":
                (alo, ahi), (blo, bhi) = get(ev.a), get(ev.b)
                bind(ev.out, min(alo, blo), max(ahi, bhi))
            elif ev.kind == "truncate":
                lo, hi = get(ev.a)
                if hi > mask:
                    gate = ev.a[w]
                    issues.append(WidthIssue(
                        "truncation-unsound", gate, w, lo, hi,
                        f"truncation to {w} planes drops gate {gate} "
                        f"whose source interval [{lo}, {hi}] exceeds "
                        f"2**{w} - 1 = {mask}, so the dropped plane "
                        f"is not provably zero"
                        + (f" ({ev.note})" if ev.note else "")))
                    lo = min(lo, mask)
                    hi = mask
                bind(ev.out, lo, hi)
            else:
                raise NetlistError(
                    f"unknown arithmetic event kind {ev.kind!r}"
                )
        return WidthReport(issues, iv)

    # -- evaluation --------------------------------------------------------
    def _plan(self) -> list[tuple]:
        """Cached evaluation plan: live non-input gates in id order
        (ids are created topologically, so id order is a valid
        evaluation order)."""
        if self._plan_cache is None:
            live = self.used_gates()
            self._plan_cache = [
                (g.kind, gid, g.inputs)
                for gid, g in enumerate(self._gates)
                if gid in live and g.kind != "INPUT"
            ]
        return self._plan_cache

    def evaluate(self, inputs: dict[str, Sequence[np.ndarray]],
                 word_bits: int = 32) -> list[np.ndarray]:
        """Simulate the circuit over lane arrays.

        ``inputs`` maps each declared bus name to its bit planes (LSB
        first; arrays or scalars of the word dtype).  Returns the
        output bus planes.  One NumPy bitwise op per live gate — the
        BPBC execution model.
        """
        if not self._outputs:
            raise NetlistError("netlist has no outputs")
        dt = word_dtype(word_bits)
        ones = dt.type(full_mask(word_bits))
        zero = dt.type(0)
        values: list = [None] * len(self._gates)
        for name, width in self._input_order:
            if name not in inputs:
                raise NetlistError(f"missing input bus {name!r}")
            planes = inputs[name]
            if len(planes) != width:
                raise NetlistError(
                    f"bus {name!r} expects {width} planes, got "
                    f"{len(planes)}"
                )
            for gid, plane in zip(self._input_ids[name], planes):
                values[gid] = (np.asarray(plane, dtype=dt)
                               if np.ndim(plane) else dt.type(plane))
        for kind, gid, srcs in self._plan():
            if kind == "AND":
                values[gid] = values[srcs[0]] & values[srcs[1]]
            elif kind == "OR":
                values[gid] = values[srcs[0]] | values[srcs[1]]
            elif kind == "XOR":
                values[gid] = values[srcs[0]] ^ values[srcs[1]]
            elif kind == "NOT":
                values[gid] = ~values[srcs[0]]
            elif kind == "CONST0":
                values[gid] = zero
            else:  # CONST1
                values[gid] = ones
        out = []
        for o in self._outputs:
            if values[o] is None:
                raise NetlistError(
                    f"output gate {o} has no value (missing input?)"
                )
            out.append(values[o])
        return out


# ---------------------------------------------------------------------------
# Synthesisers mirroring §IV-A.
# ---------------------------------------------------------------------------

def _check_same_width(name: str, a: Sequence[int], b: Sequence[int]) -> int:
    if len(a) != len(b) or not a:
        raise NetlistError(
            f"{name}: bus widths differ ({len(a)} vs {len(b)})"
        )
    return len(a)


def synth_greater_equal(net: Netlist, A: Sequence[int],
                        B: Sequence[int]) -> int:
    """1-bit flag ``A >= B`` (complement of the A-B borrow chain)."""
    s = _check_same_width("greater_equal", A, B)
    p = net.AND(net.NOT(A[0]), B[0])
    for i in range(1, s):
        p = net.OR(net.AND(B[i], p),
                   net.AND(net.NOT(A[i]), net.XOR(B[i], p)))
    return net.NOT(p)


def synth_max(net: Netlist, A: Sequence[int],
              B: Sequence[int]) -> list[int]:
    """``max(A, B)`` via the comparator plus a bus-wide mux."""
    s = _check_same_width("max", A, B)
    ge = synth_greater_equal(net, A, B)
    out = [net.MUX(ge, A[i], B[i]) for i in range(s)]
    net._record_arith("max", out, A, B)
    return out


def synth_add(net: Netlist, A: Sequence[int],
              B: Sequence[int]) -> list[int]:
    """Ripple-carry ``(A + B) mod 2**s`` (with the corrected carry
    initialisation; see :func:`repro.core.circuits.add_b`)."""
    s = _check_same_width("add", A, B)
    out = [net.XOR(A[0], B[0])]
    if s == 1:
        net._record_arith("add", out, A, B)
        return out
    p = net.AND(A[0], B[0])
    for i in range(1, s):
        t = net.XOR(B[i], p)
        if net.simplifying:
            out.append(net.XOR(A[i], t))  # shares t with the carry
        else:
            # Literal listing: A ^ B ^ p, recomputing B ^ p — the gate
            # count then equals add_b's measured 6s - 4 operations.
            out.append(net.XOR(net.XOR(A[i], B[i]), p))
        p = net.OR(net.AND(A[i], t), net.AND(B[i], p))
    net._record_arith("add", out, A, B)
    return out


def synth_ssub(net: Netlist, A: Sequence[int],
               B: Sequence[int]) -> list[int]:
    """Saturating ``max(A - B, 0)``: borrow subtractor + zero mask."""
    s = _check_same_width("ssub", A, B)
    out = [net.XOR(A[0], B[0])]
    p = net.AND(net.NOT(A[0]), B[0])
    for i in range(1, s):
        t = net.XOR(B[i], p)
        if net.simplifying:
            out.append(net.XOR(A[i], t))
        else:
            out.append(net.XOR(net.XOR(A[i], B[i]), p))
        p = net.OR(net.AND(net.NOT(A[i]), t), net.AND(B[i], p))
    # NOT(p) inside the loop mirrors ssub_b's per-bit ~p (2s measured
    # ops); under CSE it is a single shared gate, as before.
    masked = [net.AND(q, net.NOT(p)) for q in out]
    net._record_arith("ssub", masked, A, B)
    return masked


def synth_matching(net: Netlist, C: Sequence[int], x: Sequence[int],
                   y: Sequence[int], c1: int, c2: int) -> list[int]:
    """``C + c1`` on character match else ``max(C - c2, 0)``.

    The constants enter as CONST gates, so the adder/subtractor fold
    down — this is the optimisation a production CUDA kernel performs
    and the reason measured GPU rates can beat naive op-count peaks.
    """
    from .circuits import clamp_penalty

    s = len(C)
    R = synth_add(net, C, net.const_bus(c1, s))
    T = synth_ssub(net, C, net.const_bus(clamp_penalty(c2, s), s))
    # Accumulate the mismatch flag from constant 0, as matching_b does
    # (2 measured ops per character bit); the initial OR folds away
    # under simplification.
    e = net.const(False)
    for i in range(len(x)):
        e = net.OR(e, net.XOR(x[i], y[i]))
    out = [net.MUX(e, T[i], R[i]) for i in range(s)]
    net._record_arith("mux", out, T, R, note="matching select")
    return out


def synth_sw_cell(net: Netlist, A: Sequence[int], B: Sequence[int],
                  C: Sequence[int], x: Sequence[int], y: Sequence[int],
                  gap: int, c1: int, c2: int) -> list[int]:
    """The full SW cell ``max(0, A-gap, B-gap, C+w(x,y))``."""
    from .circuits import clamp_penalty

    T = synth_max(net, A, B)
    U = synth_ssub(net, T,
                   net.const_bus(clamp_penalty(gap, len(T)), len(T)))
    T2 = synth_matching(net, C, x, y, c1, c2)
    return synth_max(net, T2, U)


def synth_subst_matching(net: Netlist, C: Sequence[int],
                         x: Sequence[int], y: Sequence[int],
                         weights) -> list[int]:
    """``max(0, C + M[x][y])`` — the substitution mux-tree lookup.

    Gate-for-gate the circuit of
    :func:`repro.core.subst.subst_matching_b`: per-symbol equality
    decodes, per-bit OR/AND weight selection over the biased table,
    then ``ssub(add(C, wb), bias)`` at the overflow-free extended width
    truncated back to ``len(C)`` planes.  With ``simplify=False`` the
    logic-gate count equals
    :func:`repro.core.subst.subst_matching_ops_exact`.
    """
    from .circuits import clamp_penalty
    from .subst import subst_structure

    s = len(C)
    eps = len(x)
    if len(y) != eps or eps == 0:
        raise NetlistError(
            f"character width mismatch: {eps} vs {len(y)} planes"
        )
    st = subst_structure(weights, eps)

    def decode(planes, not_bits, codes):
        notp = {i: net.NOT(planes[i]) for i in not_bits}
        dec = {}
        for a in codes:
            acc = None
            for i in range(eps):
                lit = planes[i] if (a >> i) & 1 else notp[i]
                acc = lit if acc is None else net.AND(acc, lit)
            dec[a] = acc
        return dec

    xdec = decode(x, st.x_not_bits, st.used_rows)
    ydec = decode(y, st.y_not_bits, st.used_cols)
    wsel = []
    for h in range(st.wbits):
        acc = None
        for a, cols in st.rows_by_bit[h]:
            ym = None
            for b in cols:
                ym = ydec[b] if ym is None else net.OR(ym, ydec[b])
            term = net.AND(xdec[a], ym)
            acc = term if acc is None else net.OR(acc, term)
        wsel.append(acc if acc is not None else net.const(False))
    # The mux tree selects a biased weight from the table (or 0 for a
    # pad code) — the analyzer only needs the value *range*.
    net._record_arith("range", wsel, lo=0, hi=st.max_biased,
                      note="selected biased substitution weight")
    s_ext = st.s_ext(s)
    zero = net.const(False)
    C_ext = list(C) + [zero] * (s_ext - s)
    w_ext = wsel + [zero] * (s_ext - st.wbits)
    net._record_arith("extend", C_ext, C, note="C zero-extended")
    net._record_arith("extend", w_ext, wsel, note="weight zero-extended")
    total = synth_add(net, C_ext, w_ext)
    res = synth_ssub(net, total,
                     net.const_bus(clamp_penalty(st.bias, s_ext), s_ext))
    if s_ext > s:
        net._record_arith("truncate", res[:s], res,
                          note="subst result back to s planes")
    return res[:s]


def synth_subst_sw_cell(net: Netlist, A: Sequence[int], B: Sequence[int],
                        C: Sequence[int], x: Sequence[int],
                        y: Sequence[int], gap: int, weights) -> list[int]:
    """Linear-gap SW cell with a substitution-matrix diagonal term."""
    from .circuits import clamp_penalty

    T = synth_max(net, A, B)
    U = synth_ssub(net, T,
                   net.const_bus(clamp_penalty(gap, len(T)), len(T)))
    T2 = synth_subst_matching(net, C, x, y, weights)
    return synth_max(net, T2, U)


def synth_gotoh_cell(net: Netlist, h_left: Sequence[int],
                     e_left: Sequence[int], h_up: Sequence[int],
                     f_up: Sequence[int], h_diag: Sequence[int],
                     x: Sequence[int], y: Sequence[int], gap_open: int,
                     gap_extend: int, c1: int | None = None,
                     c2: int | None = None, weights=None,
                     ) -> tuple[list[int], list[int], list[int]]:
    """One affine (Gotoh) cell; returns the ``(H, E, F)`` buses.

    The diagonal term is the substitution mux tree when ``weights`` is
    given, the paper's equality gate with ``c1``/``c2`` otherwise —
    mirroring :func:`repro.core.subst.gotoh_cell_b` gate for gate.
    """
    from .circuits import clamp_penalty

    s = len(h_left)
    go = net.const_bus(clamp_penalty(gap_open, s), s)
    ge = net.const_bus(clamp_penalty(gap_extend, s), s)
    E = synth_max(net, synth_ssub(net, h_left, go),
                  synth_ssub(net, e_left, ge))
    F = synth_max(net, synth_ssub(net, h_up, go),
                  synth_ssub(net, f_up, ge))
    if weights is not None:
        diag = synth_subst_matching(net, h_diag, x, y, weights)
    else:
        diag = synth_matching(net, h_diag, x, y, int(c1), int(c2))
    H = synth_max(net, synth_max(net, E, F), diag)
    return H, E, F


@lru_cache(maxsize=None)
def _build_sw_cell_netlist_cached(s: int, gap: int, c1: int, c2: int,
                                  eps: int, simplify: bool) -> Netlist:
    net = Netlist(simplify=simplify)
    A = net.input_bus("up", s)
    B = net.input_bus("left", s)
    C = net.input_bus("diag", s)
    x = net.input_bus("x", eps)
    y = net.input_bus("y", eps)
    net.set_outputs(synth_sw_cell(net, A, B, C, x, y, gap, c1, c2))
    return net


def build_sw_cell_netlist(s: int, gap: int, c1: int, c2: int,
                          eps: int = 2, simplify: bool = True) -> Netlist:
    """A ready-to-evaluate SW-cell circuit with buses
    ``up``/``left``/``diag`` (s bits) and ``x``/``y`` (eps bits).

    ``simplify=False`` synthesises the literal straight-line circuit
    (no CSE, no constant folding), whose logic-gate count equals
    :func:`repro.core.circuits.sw_cell_ops_exact`.

    Results are memoised on ``(s, gap, c1, c2, eps, simplify)``:
    repeated engine calls receive the *same* :class:`Netlist` object
    instead of re-synthesising the circuit, so treat it as read-only
    (every shipped consumer only evaluates or inspects it)."""
    return _build_sw_cell_netlist_cached(int(s), int(gap), int(c1),
                                         int(c2), int(eps), bool(simplify))


@lru_cache(maxsize=None)
def _build_sw_cell_best_netlist_cached(s: int, gap: int, c1: int, c2: int,
                                       eps: int) -> Netlist:
    net = Netlist(simplify=True)
    A = net.input_bus("up", s)
    B = net.input_bus("left", s)
    C = net.input_bus("diag", s)
    x = net.input_bus("x", eps)
    y = net.input_bus("y", eps)
    best = net.input_bus("best", s)
    cell = synth_sw_cell(net, A, B, C, x, y, gap, c1, c2)
    new_best = synth_max(net, best, cell)
    net.set_outputs(list(cell) + new_best)
    return net


def build_sw_cell_best_netlist(s: int, gap: int, c1: int, c2: int,
                               eps: int = 2) -> Netlist:
    """The SW cell fused with the running-max update.

    Adds a ``best`` input bus (``s`` bits) and widens the output bus to
    ``2s`` bits: the fresh cell planes followed by ``max(best, cell)``.
    This is the circuit one wavefront step actually needs —
    :mod:`repro.jit` compiles it so the per-diagonal maximum hand-off
    costs no extra evaluator call.  Memoised like
    :func:`build_sw_cell_netlist`; treat the result as read-only."""
    return _build_sw_cell_best_netlist_cached(int(s), int(gap), int(c1),
                                              int(c2), int(eps))


# ---------------------------------------------------------------------------
# Protein / affine builders.  All take ``weights`` as the hashable
# tuple-of-tuples form (repro.core.subst.weights_key), which is what
# lets lru_cache memoise per matrix.
# ---------------------------------------------------------------------------

@lru_cache(maxsize=None)
def _build_subst_matching_netlist_cached(s: int, weights, eps: int,
                                         simplify: bool) -> Netlist:
    net = Netlist(simplify=simplify)
    C = net.input_bus("diag", s)
    x = net.input_bus("x", eps)
    y = net.input_bus("y", eps)
    net.set_outputs(synth_subst_matching(net, C, x, y, weights))
    return net


def build_subst_matching_netlist(s: int, weights, eps: int = 5,
                                 simplify: bool = True) -> Netlist:
    """The bare substitution lookup ``max(0, diag + M[x][y])`` with
    buses ``diag`` (s bits) and ``x``/``y`` (eps bits).

    ``simplify=False`` yields the literal mux-tree circuit whose
    logic-gate count equals
    :func:`repro.core.subst.subst_matching_ops_exact` — the protein
    analogue of the ``19s - 8 + 2e`` pin.  Memoised; treat the result
    as read-only."""
    from .subst import weights_key

    return _build_subst_matching_netlist_cached(
        int(s), weights_key(weights), int(eps), bool(simplify))


@lru_cache(maxsize=None)
def _build_subst_sw_cell_netlist_cached(s: int, gap: int, weights,
                                        eps: int, simplify: bool,
                                        best: bool) -> Netlist:
    net = Netlist(simplify=simplify)
    A = net.input_bus("up", s)
    B = net.input_bus("left", s)
    C = net.input_bus("diag", s)
    x = net.input_bus("x", eps)
    y = net.input_bus("y", eps)
    cell = synth_subst_sw_cell(net, A, B, C, x, y, gap, weights)
    if best:
        b = net.input_bus("best", s)
        net.set_outputs(list(cell) + synth_max(net, b, cell))
    else:
        net.set_outputs(cell)
    return net


def build_subst_sw_cell_netlist(s: int, gap: int, weights, eps: int = 5,
                                simplify: bool = True) -> Netlist:
    """Linear-gap substitution SW cell; same ``up``/``left``/``diag``/
    ``x``/``y`` buses as :func:`build_sw_cell_netlist`, so every layer
    above (engine loop, jit, C backend) treats it as "just a bigger
    netlist".  ``simplify=False`` pins
    :func:`repro.core.subst.subst_sw_cell_ops_exact`.  Memoised."""
    from .subst import weights_key

    return _build_subst_sw_cell_netlist_cached(
        int(s), int(gap), weights_key(weights), int(eps),
        bool(simplify), False)


def build_subst_sw_cell_best_netlist(s: int, gap: int, weights,
                                     eps: int = 5) -> Netlist:
    """The substitution SW cell fused with the running-max update
    (protein counterpart of :func:`build_sw_cell_best_netlist`)."""
    from .subst import weights_key

    return _build_subst_sw_cell_netlist_cached(
        int(s), int(gap), weights_key(weights), int(eps), True, True)


@lru_cache(maxsize=None)
def _build_gotoh_cell_netlist_cached(s: int, go: int, ge: int, c1, c2,
                                     weights, eps: int, simplify: bool,
                                     best: bool) -> Netlist:
    net = Netlist(simplify=simplify)
    h_left = net.input_bus("h_left", s)
    e_left = net.input_bus("e_left", s)
    h_up = net.input_bus("h_up", s)
    f_up = net.input_bus("f_up", s)
    h_diag = net.input_bus("h_diag", s)
    x = net.input_bus("x", eps)
    y = net.input_bus("y", eps)
    H, E, F = synth_gotoh_cell(net, h_left, e_left, h_up, f_up, h_diag,
                               x, y, go, ge, c1=c1, c2=c2,
                               weights=weights)
    if best:
        b = net.input_bus("best", s)
        net.set_outputs(list(H) + list(E) + list(F)
                        + synth_max(net, b, H))
    else:
        net.set_outputs(list(H) + list(E) + list(F))
    return net


def build_gotoh_cell_netlist(s: int, gap_open: int, gap_extend: int,
                             c1: int | None = None, c2: int | None = None,
                             weights=None, eps: int = 2,
                             simplify: bool = True) -> Netlist:
    """One affine (Gotoh) cell as a netlist.

    Buses ``h_left``/``e_left``/``h_up``/``f_up``/``h_diag`` (s bits
    each) and ``x``/``y`` (eps bits); outputs ``H | E | F`` (3s bits).
    Pass ``weights`` (any square int table) for the substitution
    diagonal term, or ``c1``/``c2`` for the DNA equality gate.
    ``simplify=False`` pins
    :func:`repro.core.affine_bpbc.gotoh_cell_ops_exact` /
    :func:`repro.core.subst.subst_gotoh_cell_ops_exact`.  Memoised."""
    from .subst import weights_key

    wk = None if weights is None else weights_key(weights)
    if (wk is None) == (c1 is None or c2 is None):
        raise NetlistError(
            "pass either weights or both c1 and c2 for the gotoh cell"
        )
    c1i = None if c1 is None else int(c1)
    c2i = None if c2 is None else int(c2)
    return _build_gotoh_cell_netlist_cached(
        int(s), int(gap_open), int(gap_extend), c1i, c2i, wk, int(eps),
        bool(simplify), False)


def build_gotoh_cell_best_netlist(s: int, gap_open: int, gap_extend: int,
                                  c1: int | None = None,
                                  c2: int | None = None, weights=None,
                                  eps: int = 2) -> Netlist:
    """The Gotoh cell fused with the running-max update: adds a
    ``best`` input bus and a fourth ``s``-bit output group
    ``max(best, H)`` — the circuit one affine wavefront step needs
    (:mod:`repro.jit` lowers it to the in-place Gotoh step)."""
    from .subst import weights_key

    wk = None if weights is None else weights_key(weights)
    if (wk is None) == (c1 is None or c2 is None):
        raise NetlistError(
            "pass either weights or both c1 and c2 for the gotoh cell"
        )
    c1i = None if c1 is None else int(c1)
    c2i = None if c2 is None else int(c2)
    return _build_gotoh_cell_netlist_cached(
        int(s), int(gap_open), int(gap_extend), c1i, c2i, wk, int(eps),
        True, True)


# ---------------------------------------------------------------------------
# Assume-guarantee decomposition support for repro.analyze.prove.
# ---------------------------------------------------------------------------

def cut_netlist(net: Netlist,
                cuts: dict[str, Sequence[int]]) -> Netlist:
    """Copy ``net`` with the named gate groups replaced by fresh input
    buses — the *cut* step of an assume-guarantee equivalence proof.

    Each ``cuts`` entry maps a new bus name to the gate ids whose
    values the residual circuit should receive as free inputs (LSB
    first).  Everything downstream of a cut gate now reads the new
    input; the cut gate's own fan-in cone becomes dead logic.  Output
    declarations are preserved (cut output gates map to their new
    input gates), so group slicing by position still works.

    Exhaustively verifying the residual over *all* cut-bus values is
    sound — it covers a superset of the values the replaced cone can
    produce.  Two shapes would silently break that argument and raise
    :exc:`NetlistError` instead: a gate id appearing in more than one
    cut bus (the proof would treat one signal as two independent
    variables), and cutting an ``INPUT`` gate (the "cut" would shadow
    an existing free variable).

    The copy is built with ``simplify=False`` so the surviving gate
    structure is exactly the original's; the synthesis-time arithmetic
    log is *not* carried over (a residual is proved exhaustively, not
    by interval analysis).
    """
    gates = net.gates
    seen: set[int] = set()
    for name, ids in cuts.items():
        for gid in ids:
            if gid in seen:
                raise NetlistError(
                    f"gate {gid} appears in more than one cut bus; "
                    f"aliased cut variables make the residual proof "
                    f"unsound"
                )
            if not 0 <= gid < len(gates):
                raise NetlistError(f"cut bus {name!r} names unknown "
                                   f"gate {gid}")
            if gates[gid].kind == "INPUT":
                raise NetlistError(
                    f"cut bus {name!r} would cut INPUT gate {gid}; "
                    f"cut at derived gates only"
                )
            seen.add(gid)
    out = Netlist(simplify=False)
    mapping: dict[int, int] = {}
    for name, width in net.input_buses:
        for old, new in zip(net.input_ids(name),
                            out.input_bus(name, width)):
            mapping[old] = new
    for name, ids in cuts.items():
        for old, new in zip(ids, out.input_bus(name, len(ids))):
            mapping[old] = new
    for gid, g in enumerate(gates):
        if gid in mapping:
            continue
        mapping[gid] = out._add(
            g.kind, tuple(mapping[i] for i in g.inputs), g.name)
    out.set_outputs([mapping[o] for o in net.outputs])
    return out
