"""Serving throughput: micro-batching vs one-request-per-engine-call.

The acceptance claim of the serving subsystem, measured: with
randomly-arriving length-100 DNA pairs at 64-bit words, the
micro-batcher must deliver **>= 4x the requests/sec** of a naive
client that makes one engine call per request, while keeping **mean
lane occupancy >= 50%**.

The naive baseline is exactly what `cli.py score` did for a single
pair before this subsystem existed: encode a ``(1, m)`` batch and run
the BPBC wavefront engine with 63 of 64 lanes idle.  Its rate is
measured over a subsample (each call costs the same regardless of how
many we make — the engine's work scales with diagonals, not occupied
lanes) to keep the benchmark's wall clock sane; the served rate is
measured over the full stream, submission to last-future-resolved.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.filter.screening import bulk_max_scores
from repro.serve import AlignmentService
from repro.workloads.traffic import request_stream

from .conftest import SCHEME

#: Pair length of the acceptance workload.
SERVE_M = 100

#: Requests replayed through the service.
SERVE_REQUESTS = 256

#: Requests timed one-per-engine-call (rate extrapolates; see module
#: docstring).
NAIVE_REQUESTS = 16

WORD_BITS = 64


@pytest.fixture(scope="module")
def serve_stream():
    rng = np.random.default_rng(7)
    return list(request_stream(rng, SERVE_REQUESTS,
                               rate_per_s=50_000.0, m=SERVE_M))


def test_micro_batching_beats_naive_by_4x(serve_stream):
    # -- naive: one engine call per request --------------------------
    t0 = time.perf_counter()
    naive_scores = [
        int(bulk_max_scores(req.query[None, :], req.subject[None, :],
                            SCHEME, word_bits=WORD_BITS)[0])
        for req in serve_stream[:NAIVE_REQUESTS]
    ]
    naive_rate = NAIVE_REQUESTS / (time.perf_counter() - t0)

    # -- served: same pairs arriving as traffic ----------------------
    service = AlignmentService(engine="bpbc", workers=2,
                               word_bits=WORD_BITS, max_queue=4096,
                               max_wait_ms=5.0, cache_size=0)
    with service:
        t0 = time.perf_counter()
        start = t0
        futures = []
        for req in serve_stream:
            # Replay the Poisson arrival process in real time.
            delay = req.at_s - (time.perf_counter() - start)
            if delay > 0:
                time.sleep(delay)
            futures.append(service.submit(req.query, req.subject))
        results = [f.result(timeout=300) for f in futures]
        served_rate = SERVE_REQUESTS / (time.perf_counter() - t0)
    occupancy = service.stats.mean_lane_occupancy

    # Same engine, same pairs: scores must agree bit for bit.
    assert [r.score for r in results[:NAIVE_REQUESTS]] == naive_scores

    speedup = served_rate / naive_rate
    print(f"\nnaive:  {naive_rate:8.1f} req/s  "
          f"(1 pair / engine call)")
    print(f"served: {served_rate:8.1f} req/s  "
          f"({service.stats.batches} batches, "
          f"occupancy {occupancy:.1%}) -> {speedup:.1f}x")
    assert speedup >= 4.0, (
        f"micro-batching speedup {speedup:.2f}x below the 4x bar "
        f"({served_rate:.0f} vs {naive_rate:.0f} req/s)"
    )
    assert occupancy >= 0.5, (
        f"mean lane occupancy {occupancy:.1%} below 50%"
    )


@pytest.mark.benchmark(group="serve")
def test_bench_served_throughput(benchmark):
    """pytest-benchmark view of one 64-request burst through the
    service (submission to last future resolved)."""
    rng = np.random.default_rng(11)
    reqs = list(request_stream(rng, 64, rate_per_s=np.inf, m=SERVE_M))
    service = AlignmentService(engine="bpbc", workers=2,
                               word_bits=WORD_BITS, max_queue=4096,
                               max_wait_ms=5.0, cache_size=0)

    def burst():
        futures = [service.submit(r.query, r.subject) for r in reqs]
        return [f.result(timeout=300) for f in futures]

    with service:
        results = benchmark(burst)
    assert len(results) == 64
