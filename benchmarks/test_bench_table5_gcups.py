"""Benchmarks for Table V: end-to-end GCUPS of the bulk pipeline.

Measures the full score path (encode -> W2B -> bulk SWA -> trim) per
engine; pytest-benchmark's ops/sec column divided into the fixed cell
count gives the machine's GCUPS for each implementation (the paper's
Table V metric).
"""

from __future__ import annotations

import pytest

from repro.filter.screening import bulk_max_scores
from repro.swa.numpy_batch import sw_batch_max_scores

from .conftest import SCHEME


@pytest.mark.benchmark(group="table5-endtoend")
@pytest.mark.parametrize("word_bits", [32, 64])
def test_bulk_pipeline_end_to_end(benchmark, bench_batch, word_bits):
    scores = benchmark(bulk_max_scores, bench_batch.X, bench_batch.Y,
                       SCHEME, word_bits)
    assert scores.shape == (bench_batch.pairs,)
    benchmark.extra_info["cells"] = bench_batch.cells
    benchmark.extra_info["gcups_hint"] = (
        "GCUPS = cells / mean-time / 1e9"
    )


@pytest.mark.benchmark(group="table5-endtoend")
def test_wordwise_end_to_end(benchmark, bench_batch):
    scores = benchmark(sw_batch_max_scores, bench_batch.X,
                       bench_batch.Y, SCHEME)
    assert scores.shape == (bench_batch.pairs,)
    benchmark.extra_info["cells"] = bench_batch.cells
