"""Tests for repro.core.sw_bpbc: the bulk Smith-Waterman engines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitops import BitOpsError, OpCounter
from repro.core.bitsliced import BitSlicedUInt
from repro.core.circuits import max_b_ops, sw_cell_ops_exact
from repro.core.encoding import encode_batch_bit_transposed
from repro.core.sw_bpbc import (
    bpbc_sw_sequential,
    bpbc_sw_wavefront,
    reduce_max_rows,
)
from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_max_score

from ..conftest import ALL_WIDTHS, MAIN_WIDTHS

SCHEME = ScoringScheme(match_score=2, mismatch_penalty=1, gap_penalty=1)


def _planes(rng, P, m, n, w):
    X = rng.integers(0, 4, (P, m), dtype=np.uint8)
    Y = rng.integers(0, 4, (P, n), dtype=np.uint8)
    XH, XL = encode_batch_bit_transposed(X, w)
    YH, YL = encode_batch_bit_transposed(Y, w)
    return X, Y, XH, XL, YH, YL


def _gold(X, Y, scheme=SCHEME):
    return np.array([sw_max_score(x, y, scheme) for x, y in zip(X, Y)])


class TestSequentialEngine:
    @pytest.mark.parametrize("w", ALL_WIDTHS)
    def test_matches_gold(self, rng, w):
        X, Y, XH, XL, YH, YL = _planes(rng, 2 * w + 3, 5, 11, w)
        r = bpbc_sw_sequential(XH, XL, YH, YL, SCHEME, w)
        np.testing.assert_array_equal(r.max_scores[:len(X)], _gold(X, Y))

    def test_full_matrix_matches_gold(self, rng):
        from repro.core.bitsliced import ints_from_slices
        from repro.swa.sequential import sw_matrix

        X, Y, XH, XL, YH, YL = _planes(rng, 4, 4, 7, 32)
        r = bpbc_sw_sequential(XH, XL, YH, YL, SCHEME, 32,
                               keep_matrix=True)
        planes = r.matrix_planes
        for p in range(4):
            want = sw_matrix(X[p], Y[p], SCHEME)
            for i in range(5):
                for j in range(8):
                    got = ints_from_slices(planes[:, i, j, :], 32)[p]
                    assert got == want[i, j], (p, i, j)

    def test_op_count_per_cell(self, rng):
        m, n = 3, 5
        _, _, XH, XL, YH, YL = _planes(rng, 32, m, n, 32)
        c = OpCounter()
        r = bpbc_sw_sequential(XH, XL, YH, YL, SCHEME, 32, counter=c)
        s = r.s
        per_cell = sw_cell_ops_exact(s, 2) + max_b_ops(s)
        assert c.ops == m * n * per_cell

    def test_default_score_width(self, rng):
        _, _, XH, XL, YH, YL = _planes(rng, 8, 6, 9, 32)
        r = bpbc_sw_sequential(XH, XL, YH, YL, SCHEME, 32)
        assert r.s == SCHEME.score_bits(6, 9)

    def test_explicit_score_width(self, rng):
        _, _, XH, XL, YH, YL = _planes(rng, 8, 4, 6, 32)
        r = bpbc_sw_sequential(XH, XL, YH, YL, SCHEME, 32, s=10)
        assert r.s == 10
        assert r.score_planes.shape[0] == 10


class TestWavefrontEngine:
    @pytest.mark.parametrize("w", ALL_WIDTHS)
    def test_matches_gold(self, rng, w):
        X, Y, XH, XL, YH, YL = _planes(rng, w + 5, 6, 14, w)
        r = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, w)
        np.testing.assert_array_equal(r.max_scores[:len(X)], _gold(X, Y))

    def test_matches_sequential_engine(self, rng):
        _, _, XH, XL, YH, YL = _planes(rng, 40, 7, 9, 32)
        r1 = bpbc_sw_sequential(XH, XL, YH, YL, SCHEME, 32)
        r2 = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32)
        np.testing.assert_array_equal(r1.max_scores, r2.max_scores)
        np.testing.assert_array_equal(r1.score_planes, r2.score_planes)

    @pytest.mark.parametrize("m,n", [(1, 1), (1, 8), (8, 1), (3, 3),
                                     (5, 2)])
    def test_degenerate_shapes(self, rng, m, n):
        X, Y, XH, XL, YH, YL = _planes(rng, 10, m, n, 32)
        r = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32)
        np.testing.assert_array_equal(r.max_scores[:10], _gold(X, Y))

    def test_m_longer_than_n(self, rng):
        """The paper assumes m << n; the engine must still be correct
        when the pattern is longer than the text."""
        X, Y, XH, XL, YH, YL = _planes(rng, 10, 12, 4, 32)
        r = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32)
        np.testing.assert_array_equal(r.max_scores[:10], _gold(X, Y))

    def test_identical_sequences_score_c1_m(self, rng):
        m = 6
        X = rng.integers(0, 4, (5, m), dtype=np.uint8)
        XH, XL = encode_batch_bit_transposed(X, 32)
        r = bpbc_sw_wavefront(XH, XL, XH, XL, SCHEME, 32)
        np.testing.assert_array_equal(r.max_scores[:5],
                                      SCHEME.match_score * m)

    def test_alternative_scoring_schemes(self, rng):
        for scheme in (ScoringScheme(1, 1, 1), ScoringScheme(3, 2, 2),
                       ScoringScheme(5, 0, 1), ScoringScheme(2, 4, 3)):
            X, Y, XH, XL, YH, YL = _planes(rng, 20, 5, 9, 32)
            r = bpbc_sw_wavefront(XH, XL, YH, YL, scheme, 32)
            np.testing.assert_array_equal(r.max_scores[:20],
                                          _gold(X, Y, scheme))

    def test_lane_padding_scores_are_full_match(self, rng):
        """Padded lanes hold all-A sequences; their score is c1*min(m,n)
        — callers must trim, and this pins the behaviour."""
        X, Y, XH, XL, YH, YL = _planes(rng, 3, 4, 9, 32)
        r = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32)
        np.testing.assert_array_equal(r.max_scores[3:],
                                      SCHEME.match_score * 4)

    def test_empty_sequences_rejected(self):
        empty = np.zeros((0, 1), dtype=np.uint32)
        with pytest.raises(BitOpsError):
            bpbc_sw_wavefront(empty, empty, empty, empty, SCHEME, 32)

    def test_lane_shape_mismatch_rejected(self, rng):
        _, _, XH, XL, _, _ = _planes(rng, 32, 4, 8, 32)
        _, _, _, _, YH, YL = _planes(rng, 64, 4, 8, 32)
        with pytest.raises(BitOpsError):
            bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32)

    def test_scores_bounded_by_c1_min_mn(self, rng):
        X, Y, XH, XL, YH, YL = _planes(rng, 50, 8, 20, 32)
        r = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32)
        assert (r.max_scores <= SCHEME.match_score * 8).all()
        assert (r.max_scores >= 0).all()


class TestReduceMaxRows:
    @staticmethod
    def _planes_of(rng, rows, lanes=40, bits=6, word_bits=32):
        vals = rng.integers(0, 2**bits, size=(rows, lanes))
        planes = np.stack([
            BitSlicedUInt.from_ints(vals[r], bits, word_bits).data
            for r in range(rows)
        ], axis=1)  # (s, rows, lanes)
        return vals, planes

    @pytest.mark.parametrize("rows", [1, 2, 3, 7, 8, 13])
    def test_matches_numpy_max(self, rng, rows):
        vals, planes = self._planes_of(rng, rows)
        out = reduce_max_rows(planes, 32)
        got = BitSlicedUInt(np.stack(out), 32).to_ints(40)
        np.testing.assert_array_equal(got, vals.max(axis=0))

    @pytest.mark.parametrize("rows", [1, 2, 3, 7, 8, 13])
    def test_in_place_bit_identical(self, rng, rows):
        """in_place=True must produce bit-identical planes to the
        copying path — same op sequence, just no scratch copy."""
        _, planes = self._planes_of(rng, rows)
        scratch = planes.copy()
        ref = reduce_max_rows(planes, 32)
        out = reduce_max_rows(scratch, 32, in_place=True)
        np.testing.assert_array_equal(np.stack(out), np.stack(ref))

    @pytest.mark.parametrize("rows", [2, 5, 8])
    def test_default_leaves_input_untouched(self, rng, rows):
        _, planes = self._planes_of(rng, rows)
        before = planes.copy()
        reduce_max_rows(planes, 32)
        np.testing.assert_array_equal(planes, before)

    def test_single_row_returns_views(self, rng):
        """rows == 1 short-circuits to views of the input — no copy,
        matching the pre-refactor contract."""
        _, planes = self._planes_of(rng, 1)
        out = reduce_max_rows(planes, 32)
        for h, plane in enumerate(out):
            assert np.shares_memory(plane, planes[h])

    @pytest.mark.parametrize("rows", [3, 8, 13])
    def test_counter_sequence_unchanged(self, rng, rows):
        """The in-place rewrite must not change the counted op
        sequence (the paper's op-count model depends on it)."""
        _, planes = self._planes_of(rng, rows)
        c_copy, c_inplace = OpCounter(), OpCounter()
        reduce_max_rows(planes.copy(), 32, counter=c_copy)
        reduce_max_rows(planes.copy(), 32, counter=c_inplace,
                        in_place=True)
        assert c_copy.ops == c_inplace.ops


class TestMonotonicity:
    def test_score_monotone_in_match_score(self, rng):
        X, Y, XH, XL, YH, YL = _planes(rng, 30, 6, 12, 32)
        lo = bpbc_sw_wavefront(XH, XL, YH, YL, ScoringScheme(1, 1, 1),
                               32).max_scores
        hi = bpbc_sw_wavefront(XH, XL, YH, YL, ScoringScheme(3, 1, 1),
                               32).max_scores
        assert (hi >= lo).all()

    def test_score_antitone_in_penalties(self, rng):
        X, Y, XH, XL, YH, YL = _planes(rng, 30, 6, 12, 32)
        soft = bpbc_sw_wavefront(XH, XL, YH, YL, ScoringScheme(2, 0, 0),
                                 32).max_scores
        hard = bpbc_sw_wavefront(XH, XL, YH, YL, ScoringScheme(2, 3, 3),
                                 32).max_scores
        assert (soft >= hard).all()


@settings(max_examples=15, deadline=None)
@given(
    m=st.integers(1, 8),
    n=st.integers(1, 14),
    P=st.integers(1, 70),
    w=st.sampled_from(MAIN_WIDTHS),
    seed=st.integers(0, 2**31),
)
def test_wavefront_equals_gold_property(m, n, P, w, seed):
    """For arbitrary shapes and batches the bulk engine equals the
    scalar gold DP on every instance."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 4, (P, m), dtype=np.uint8)
    Y = rng.integers(0, 4, (P, n), dtype=np.uint8)
    XH, XL = encode_batch_bit_transposed(X, w)
    YH, YL = encode_batch_bit_transposed(Y, w)
    r = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, w)
    np.testing.assert_array_equal(r.max_scores[:P], _gold(X, Y))


class TestFoldedCellEvaluator:
    def test_folded_equals_generic(self, rng):
        _, _, XH, XL, YH, YL = _planes(rng, 70, 6, 12, 32)
        g = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32,
                              cell="generic")
        f = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32,
                              cell="folded")
        np.testing.assert_array_equal(g.max_scores, f.max_scores)
        np.testing.assert_array_equal(g.score_planes, f.score_planes)

    def test_folded_with_other_schemes(self, rng):
        for scheme in (ScoringScheme(1, 1, 1), ScoringScheme(3, 2, 2)):
            X, Y, XH, XL, YH, YL = _planes(rng, 20, 5, 9, 64)
            f = bpbc_sw_wavefront(XH, XL, YH, YL, scheme, 64,
                                  cell="folded")
            np.testing.assert_array_equal(f.max_scores[:20],
                                          _gold(X, Y, scheme))

    def test_folded_rejects_counter(self, rng):
        _, _, XH, XL, YH, YL = _planes(rng, 8, 3, 5, 32)
        with pytest.raises(BitOpsError):
            bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32,
                              counter=OpCounter(), cell="folded")

    def test_unknown_evaluator_rejected(self, rng):
        _, _, XH, XL, YH, YL = _planes(rng, 8, 3, 5, 32)
        with pytest.raises(BitOpsError):
            bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32,
                              cell="simd")


class TestCompiledCellEvaluator:
    """The repro.jit cell evaluators (``cell="compiled*"``)."""

    CELLS = ("compiled", "compiled-numpy")

    @pytest.mark.parametrize("cell", CELLS)
    @pytest.mark.parametrize("w", [32, 64])
    def test_equals_generic(self, rng, cell, w):
        _, _, XH, XL, YH, YL = _planes(rng, 70, 6, 12, w)
        g = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, w,
                              cell="generic")
        c = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, w, cell=cell)
        np.testing.assert_array_equal(g.max_scores, c.max_scores)
        np.testing.assert_array_equal(g.score_planes, c.score_planes)

    def test_c_backend_equals_generic(self, rng):
        from repro.jit import cc_available

        if not cc_available():
            pytest.skip("no C compiler on this machine")
        _, _, XH, XL, YH, YL = _planes(rng, 70, 6, 12, 64)
        g = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 64,
                              cell="generic")
        c = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 64,
                              cell="compiled-c")
        np.testing.assert_array_equal(g.max_scores, c.max_scores)
        np.testing.assert_array_equal(g.score_planes, c.score_planes)

    def test_compiled_with_other_schemes(self, rng):
        for scheme in (ScoringScheme(1, 1, 1), ScoringScheme(3, 2, 2)):
            X, Y, XH, XL, YH, YL = _planes(rng, 20, 5, 9, 64)
            c = bpbc_sw_wavefront(XH, XL, YH, YL, scheme, 64,
                                  cell="compiled")
            np.testing.assert_array_equal(c.max_scores[:20],
                                          _gold(X, Y, scheme))

    @pytest.mark.parametrize("m,n", [(1, 1), (1, 8), (8, 1), (12, 4)])
    def test_compiled_degenerate_shapes(self, rng, m, n):
        X, Y, XH, XL, YH, YL = _planes(rng, 10, m, n, 32)
        r = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32,
                              cell="compiled")
        np.testing.assert_array_equal(r.max_scores[:10], _gold(X, Y))

    def test_compiled_rejects_counter(self, rng):
        _, _, XH, XL, YH, YL = _planes(rng, 8, 3, 5, 32)
        with pytest.raises(BitOpsError):
            bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32,
                              counter=OpCounter(), cell="compiled")

    def test_default_cell_is_compiled(self, rng):
        """With no counter the engine defaults to the compiled
        evaluator; with a counter it falls back to the countable
        generic interpreter."""
        _, _, XH, XL, YH, YL = _planes(rng, 8, 3, 5, 32)
        d = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32)
        g = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32,
                              cell="generic")
        np.testing.assert_array_equal(d.score_planes, g.score_planes)
        c = OpCounter()
        bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, 32, counter=c)
        assert c.ops > 0
