"""Batch wordwise Smith-Waterman — the paper's "wordwise" baseline.

This engine is the conventional formulation the paper compares BPBC
against: every DP value lives in its own machine word (here an
``int32`` array element).  It processes ``P`` independent pairs by
walking anti-diagonals and vectorising over *both* the pattern axis and
the pair axis, which is the strongest wordwise implementation NumPy
allows (a scalar per-cell Python loop would be unfairly slow as a
baseline).

Only maximum scores are tracked — matching the paper's pipeline, which
returns one score per pair and defers traceback to the CPU for pairs
that pass the threshold.
"""

from __future__ import annotations

import numpy as np

from .scoring import ScoringScheme

__all__ = ["sw_batch_max_scores", "sw_batch_score_matrix"]


def sw_batch_max_scores(X: np.ndarray, Y: np.ndarray,
                        scheme: ScoringScheme) -> np.ndarray:
    """Maximum SW score of each pair ``(X[p], Y[p])``.

    ``X`` is ``(P, m)`` and ``Y`` is ``(P, n)`` (code matrices).
    Returns ``(P,)`` int64 scores.  Memory is O(P * m); time is
    O((m + n) * P * m / simd_width).
    """
    X = np.asarray(X)
    Y = np.asarray(Y)
    if X.ndim != 2 or Y.ndim != 2 or X.shape[0] != Y.shape[0]:
        raise ValueError(
            f"expected (P, m) and (P, n) code matrices, got {X.shape} "
            f"and {Y.shape}"
        )
    P, m = X.shape
    n = Y.shape[1]
    c1 = np.int32(scheme.match_score)
    c2 = np.int32(scheme.mismatch_penalty)
    gap = np.int32(scheme.gap_penalty)
    prev2 = np.zeros((P, m), dtype=np.int32)
    prev1 = np.zeros((P, m), dtype=np.int32)
    best = np.zeros(P, dtype=np.int32)
    rows = np.arange(m)
    for t in range(m + n - 1):
        lo = max(0, t - n + 1)
        hi = min(m - 1, t)
        i_idx = rows[lo:hi + 1]
        j_idx = t - i_idx
        up = np.zeros((P, hi - lo + 1), dtype=np.int32)
        diag = np.zeros((P, hi - lo + 1), dtype=np.int32)
        inner = i_idx > 0
        up[:, inner] = prev1[:, i_idx[inner] - 1]
        diag[:, inner] = prev2[:, i_idx[inner] - 1]
        left = prev1[:, i_idx]
        jz = j_idx > 0
        left[:, ~jz] = 0
        diag[:, ~jz] = 0
        w = np.where(X[:, i_idx] == Y[:, j_idx], c1, -c2)
        cur = np.maximum(
            0,
            np.maximum(np.maximum(up - gap, left - gap), diag + w),
        ).astype(np.int32)
        best = np.maximum(best, cur.max(axis=1))
        prev2 = prev1
        nxt = prev1.copy()
        nxt[:, lo:hi + 1] = cur
        prev1 = nxt
    return best.astype(np.int64)


def sw_batch_score_matrix(X: np.ndarray, Y: np.ndarray,
                          scheme: ScoringScheme) -> np.ndarray:
    """Full ``(P, m+1, n+1)`` scoring matrices for small batches.

    Vectorised over pairs, used by tests and by the screening app when
    it needs full matrices for several survivors at once.
    """
    X = np.asarray(X)
    Y = np.asarray(Y)
    P, m = X.shape
    n = Y.shape[1]
    c1 = scheme.match_score
    c2 = scheme.mismatch_penalty
    gap = scheme.gap_penalty
    d = np.zeros((P, m + 1, n + 1), dtype=np.int64)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            w = np.where(X[:, i - 1] == Y[:, j - 1], c1, -c2)
            d[:, i, j] = np.maximum(
                0,
                np.maximum(
                    np.maximum(d[:, i - 1, j] - gap, d[:, i, j - 1] - gap),
                    d[:, i - 1, j - 1] + w,
                ),
            )
    return d
