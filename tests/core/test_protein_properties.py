"""Hypothesis properties of the protein encoding and circuit layers.

Four algebraic statements the substitution-matrix pipeline must hold
for *every* input, not just the fuzz battery's samples:

1. encode/decode round-trips any IUPAC amino-acid string (aliases
   ``U``/``O`` land on their conventional stand-ins C/K);
2. the mux-tree lookup circuit (:func:`repro.core.subst.subst_matching_b`)
   equals direct weight-table indexing for **all** 32 x 32 five-bit
   code pairs — every residue, wildcard, stop, and sentinel pad — for
   shipped and random matrices alike, and its gate count matches the
   analytic :func:`repro.core.subst.subst_matching_ops_exact`;
3. gap costs act monotonically: ``gap_open == gap_extend`` degenerates
   affine Gotoh to the linear SW engine exactly, and raising
   ``gap_open`` never raises a score;
4. symmetric matrices make the score invariant under query/target
   swap.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import PROTEIN_X
from repro.core.bitops import OpCounter, unpack_lanes, word_dtype
from repro.core.encoding import encode_batch_char_planes
from repro.core.matrices import (BLOSUM50, BLOSUM62, MATRICES, PAM250,
                                 SubstitutionMatrix)
from repro.core.protein import (ProteinScheme, padded_weight_table,
                                subst_gotoh_batch_max_scores,
                                subst_gotoh_max_score)
from repro.core.subst import (subst_matching_b, subst_matching_ops_exact,
                              subst_structure)
from repro.core.sw_bpbc import bpbc_sw_wavefront_planes

A = PROTEIN_X.size          # 22
EPS = PROTEIN_X.pad_bits    # 5
WORD_BITS = 64

#: Strings over the canonical letters plus the accepted aliases.
_LETTERS = PROTEIN_X.letters + "U" + "O" + PROTEIN_X.letters.lower()

protein_text = st.text(alphabet=_LETTERS, min_size=1, max_size=40)

protein_codes = st.lists(
    st.integers(0, A - 1), min_size=1, max_size=24,
).map(lambda xs: np.array(xs, dtype=np.uint8))


def random_matrices() -> st.SearchStrategy[SubstitutionMatrix]:
    """Arbitrary symmetric integer matrices with a positive diagonal."""

    def build(seed: int) -> SubstitutionMatrix:
        rng = np.random.default_rng(seed)
        vals = rng.integers(-9, 10, size=(A, A))
        vals = np.minimum(vals, vals.T)
        np.fill_diagonal(vals, rng.integers(1, 10, size=A))
        return SubstitutionMatrix.from_rows(
            f"prop-{seed}", PROTEIN_X.letters, vals)

    return st.integers(0, 2**32 - 1).map(build)


# -- 1. encode/decode round-trip ---------------------------------------------

@settings(max_examples=60, deadline=None)
@given(protein_text)
def test_encode_decode_round_trip(seq):
    codes = PROTEIN_X.encode(seq)
    canonical = "".join(
        PROTEIN_X.aliases.get(c.upper(), c.upper()) for c in seq)
    assert PROTEIN_X.decode(codes) == canonical
    # A second trip through the codec is the identity.
    assert PROTEIN_X.decode(PROTEIN_X.encode(canonical)) == canonical


def test_aliases_map_to_stand_ins():
    assert PROTEIN_X.code("U") == PROTEIN_X.code("C")
    assert PROTEIN_X.code("O") == PROTEIN_X.code("K")


# -- 2. mux tree == direct indexing ------------------------------------------

def _mux_all_pairs(scheme: ProteinScheme) -> None:
    """Evaluate the lookup circuit on every 5-bit code pair at once."""
    side = 1 << EPS
    xs = np.repeat(np.arange(side, dtype=np.uint8), side)
    ys = np.tile(np.arange(side, dtype=np.uint8), side)
    lanes_x = encode_batch_char_planes(xs[:, None], WORD_BITS,
                                       char_bits=EPS)[:, 0]
    lanes_y = encode_batch_char_planes(ys[:, None], WORD_BITS,
                                       char_bits=EPS)[:, 0]
    weights = scheme.weights_key()
    s = max(1, scheme.max_weight).bit_length() + 1
    dt = word_dtype(WORD_BITS)
    C = [np.zeros(lanes_x.shape[1], dtype=dt) for _ in range(s)]
    counter = OpCounter()
    planes = subst_matching_b(C, list(lanes_x), list(lanes_y), weights,
                              WORD_BITS, counter=counter)
    got = sum(
        unpack_lanes(p[None, :], WORD_BITS,
                     count=side * side)[0].astype(np.int64) << b
        for b, p in enumerate(planes)
    )
    table = padded_weight_table(scheme)
    want = np.maximum(0, table[xs.astype(np.intp), ys.astype(np.intp)])
    np.testing.assert_array_equal(
        got, want,
        err_msg=f"mux tree disagrees with direct indexing for "
                f"{scheme.matrix.name}")
    assert counter.ops == subst_matching_ops_exact(weights, s, EPS)


@pytest.mark.parametrize("matrix", [BLOSUM62, BLOSUM50, PAM250],
                         ids=lambda m: m.name)
def test_mux_tree_matches_indexing_shipped(matrix):
    _mux_all_pairs(ProteinScheme(matrix))


@settings(max_examples=15, deadline=None)
@given(random_matrices())
def test_mux_tree_matches_indexing_random(matrix):
    _mux_all_pairs(ProteinScheme(matrix, gap_open=5, gap_extend=2))


@settings(max_examples=15, deadline=None)
@given(random_matrices())
def test_pad_codes_score_matrix_minimum(matrix):
    """Any code outside the alphabet scores the matrix minimum."""
    scheme = ProteinScheme(matrix, gap_open=5, gap_extend=2)
    table = padded_weight_table(scheme)
    assert (table[A:, :] == scheme.min_weight).all()
    assert (table[:, A:] == scheme.min_weight).all()
    key = scheme.weights_key()
    st_ = subst_structure(key, EPS)
    assert st_.bias == max(0, -scheme.min_weight)


# -- 3. gap-cost monotonicity ------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(protein_codes, protein_codes, st.integers(1, 6),
       st.integers(0, 8))
def test_linear_degeneracy_and_open_monotonicity(x, y, ge, extra):
    linear = ProteinScheme(BLOSUM62, gap_open=ge, gap_extend=ge)
    affine = ProteinScheme(BLOSUM62, gap_open=ge + extra, gap_extend=ge)
    lin_score = subst_gotoh_max_score(x, y, linear)
    aff_score = subst_gotoh_max_score(x, y, affine)
    # Opening can only get more expensive: scores never go up.
    assert aff_score <= lin_score
    if extra == 0:
        assert aff_score == lin_score


@settings(max_examples=25, deadline=None)
@given(protein_codes, protein_codes, st.integers(1, 5))
def test_open_equals_extend_matches_linear_engine(x, y, gap):
    """The Gotoh reference at open == extend is the linear SW engine."""
    scheme = ProteinScheme(BLOSUM62, gap_open=gap, gap_extend=gap)
    gold = subst_gotoh_max_score(x, y, scheme)
    Xp = encode_batch_char_planes(x[None, :], 32, char_bits=EPS)
    Yp = encode_batch_char_planes(y[None, :], 32, char_bits=EPS)
    got = bpbc_sw_wavefront_planes(Xp, Yp, scheme, 32,
                                   cell="generic").max_scores[0]
    assert int(got) == gold


# -- 4. query/target swap invariance -----------------------------------------

def test_shipped_matrices_are_symmetric():
    for name, matrix in sorted(MATRICES.items()):
        assert matrix.is_symmetric, name


@settings(max_examples=40, deadline=None)
@given(protein_codes, protein_codes,
       st.sampled_from([BLOSUM62, BLOSUM50, PAM250]))
def test_swap_invariance_symmetric(x, y, matrix):
    scheme = ProteinScheme(matrix, gap_open=8, gap_extend=2)
    fwd = subst_gotoh_batch_max_scores(x[None, :], y[None, :], scheme)
    rev = subst_gotoh_batch_max_scores(y[None, :], x[None, :], scheme)
    assert int(fwd[0]) == int(rev[0])
