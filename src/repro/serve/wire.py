"""Wire-format helpers shared by the serve client and repro.cluster.

The line-JSON protocol describes a scoring scheme with plain request
fields (``match`` / ``mismatch`` / ``gap`` / ``alphabet`` / ``matrix``
/ ``gap_open`` / ``gap_extend``; see :mod:`repro.serve.server`).  The
coordinator holds real scheme *objects*, so it needs the inverse of
the server's ``_scheme_from``: a function mapping a scheme object to
the request fields that make a remote server rebuild an equal scheme.

Sequences travel as strings, so the helpers here also decode code
arrays back to letters through the scheme's alphabet (5-bit protein
codes) or the canonical 2-bit DNA order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scheme_wire_fields", "codes_to_str"]

#: Canonical 2-bit DNA code order (matches repro.core.encoding.encode).
_DNA_LETTERS = "ACGT"


def scheme_wire_fields(scheme) -> dict:
    """Align-request scoring fields that describe ``scheme``.

    Sending these fields with an ``align`` request makes the remote
    server's scheme parser rebuild an object equal to ``scheme`` — the
    round trip the cluster coordinator relies on for cache-key-stable
    routing.  Protein schemes must use a *shipped* substitution matrix
    (the wire carries the matrix by name, not by value).
    """
    from ..core.matrices import MATRICES
    from ..core.protein import ProteinScheme
    from ..swa.affine import AffineScheme
    from ..swa.scoring import ScoringScheme

    if isinstance(scheme, ProteinScheme):
        name = scheme.matrix.name.lower()
        if MATRICES.get(name) != scheme.matrix:
            raise ValueError(
                f"matrix {scheme.matrix.name!r} is not a shipped "
                "matrix; the wire protocol carries matrices by name "
                f"only (shipped: {sorted(MATRICES)})"
            )
        return {"alphabet": "protein", "matrix": name,
                "gap_open": scheme.gap_open,
                "gap_extend": scheme.gap_extend}
    if isinstance(scheme, AffineScheme):
        return {"match": scheme.match_score,
                "mismatch": scheme.mismatch_penalty,
                "gap_open": scheme.gap_open,
                "gap_extend": scheme.gap_extend}
    if isinstance(scheme, ScoringScheme):
        return {"match": scheme.match_score,
                "mismatch": scheme.mismatch_penalty,
                "gap": scheme.gap_penalty}
    raise TypeError(
        f"cannot serialise scheme of type {type(scheme).__name__} "
        "for the wire protocol"
    )


def codes_to_str(codes: np.ndarray, scheme=None) -> str:
    """Decode a 1-D code array back to its letter string.

    Schemes carrying an alphabet (protein) decode through it;
    everything else is 2-bit DNA in canonical ACGT order.
    """
    arr = np.asarray(codes, dtype=np.uint8).reshape(-1)
    alph = getattr(scheme, "alphabet", None)
    letters = _DNA_LETTERS if alph is None else alph.letters
    table = np.frombuffer(letters.encode("ascii"), dtype=np.uint8)
    if arr.size and int(arr.max()) >= table.size:
        raise ValueError(
            f"code {int(arr.max())} out of range for a "
            f"{table.size}-letter alphabet"
        )
    return table[arr].tobytes().decode("ascii")
