"""Shared workloads for the benchmark suite.

Benchmarks regenerate the paper's tables at machine scale: the pair
count is reduced from the paper's 32768 so a single benchmark iteration
stays in the ~100 ms range, but the *shape* claims (who wins, by what
factor) are asserted in the experiment harness and tests, not here —
benchmarks measure, they do not judge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.swa.scoring import ScoringScheme
from repro.workloads.datasets import paper_workload

#: The paper's scoring parameters (Table II).
SCHEME = ScoringScheme(match_score=2, mismatch_penalty=1, gap_penalty=1)

#: Scaled-down stand-in for the paper's 32K pairs.
BENCH_PAIRS = 2048

#: Pattern length (the paper fixes m = 128).
BENCH_M = 128


@pytest.fixture(scope="session")
def bench_batch():
    """One shared workload: 2048 pairs, m = 128, n = 512."""
    return paper_workload(512, pairs=BENCH_PAIRS, m=BENCH_M, seed=42)


@pytest.fixture(scope="session")
def small_batch():
    """Small workload for per-call micro-benchmarks."""
    return paper_workload(128, pairs=256, m=32, seed=43)
