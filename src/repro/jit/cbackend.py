"""Optional C backend: netlist plans lowered to a native wavefront step.

The NumPy backend of :mod:`repro.jit.compiler` still pays one ufunc
dispatch (~1 µs) and three full passes over memory *per gate*.  A real
BPBC implementation evaluates the whole cell circuit in registers and
touches memory once per plane — exactly what a C compiler produces
from the straight-line gate body.  This module emits that C: one
``step`` function per ``(s, eps, scheme, word_bits)`` evaluating the
fused SW-cell + running-max circuit for every active row and lane of
one anti-diagonal, compiles it with the system C compiler
(``$REPRO_CC``, ``cc``, ``gcc`` or ``clang`` — whichever exists), and
loads it through :mod:`ctypes`.

No third-party dependency is involved and nothing here is required:
when no toolchain is present (or a compile fails)
:func:`repro.jit.cells.sw_wavefront_step` silently falls back to the
generated-NumPy backend, which is bit-identical.

Shared objects are cached under ``$REPRO_JIT_CACHE`` (default: a
per-uid, mode-0700 directory inside the system temp dir) keyed by a
SHA-256 of the source, so each circuit compiles once per machine.
Because the cache holds code that gets loaded into the process, the
directory is only trusted when it is a real directory *owned by the
current uid* with no group/other write permission — on a multi-user
machine an attacker who pre-created the predictable path could
otherwise plant a ``.so`` for us to ``dlopen``.  A directory failing
that check is never used; a fresh private per-process directory
(``tempfile.mkdtemp``) silently takes its place.

Memory layout contract (all arrays C-contiguous, the word dtype):

* ``p1``/``p2``: ``(s, m + 1, L)`` row-padded state planes for
  diagonals ``t - 1`` / ``t - 2``; padded row 0 is a permanent zero.
* ``best``: ``(s, m, L)`` running per-row maxima.
* ``xp``/``yp``: ``(eps, m, L)`` / ``(eps, n, L)`` character planes.

The row loop runs **descending** so the in-place write of row ``r + 1``
into ``p2`` (which doubles as the diagonal input buffer) lands after
row ``r + 1`` itself has been read — that is what makes the zero-copy
double-buffering of the wavefront engine sound.
"""

from __future__ import annotations

import atexit
import ctypes
import hashlib
import os
import shutil
import stat
import subprocess
import tempfile
import threading
from functools import lru_cache

from ..core.bitops import check_word_bits
from ..resilience.faults import should_inject
from .compiler import CellPlan, JitError, Ref

__all__ = ["cc_available", "compiler_path", "c_step_source",
           "c_gotoh_step_source", "compile_step", "STEP_SYMBOL",
           "GOTOH_STEP_SYMBOL"]

#: Exported symbol name of every generated step kernel.
STEP_SYMBOL = "repro_sw_step"

#: Exported symbol name of the affine (Gotoh) step kernels.
GOTOH_STEP_SYMBOL = "repro_gotoh_step"

_C_TYPES = {8: "uint8_t", 16: "uint16_t", 32: "uint32_t", 64: "uint64_t"}

_lock = threading.Lock()
_libs: dict[str, ctypes.CDLL] = {}


@lru_cache(maxsize=1)
def compiler_path() -> str | None:
    """Absolute path of the system C compiler, or ``None``."""
    override = os.environ.get("REPRO_CC")
    candidates = (override,) if override else ("cc", "gcc", "clang")
    for cand in candidates:
        if cand:
            found = shutil.which(cand)
            if found:
                return found
    return None


def cc_available() -> bool:
    """Whether the native backend can be used on this machine."""
    return compiler_path() is not None


#: Private per-process fallback cache dir (created lazily, guarded by
#: ``_lock``); used when the preferred path fails :func:`_dir_trusted`.
_fallback_dir: str | None = None


def _dir_trusted(path: str) -> bool:
    """Whether ``path`` is safe to load shared objects from.

    ``os.makedirs(..., exist_ok=True)`` happily accepts a pre-existing
    directory (or symlink to one) created by *another* user, and the
    ``.so`` names inside are predictable hashes — so before trusting
    the cache we require a real directory (no symlink), owned by the
    current uid, with no group/other write bits.
    """
    try:
        st = os.lstat(path)
    except OSError:
        return False
    if not stat.S_ISDIR(st.st_mode):
        return False
    if hasattr(os, "getuid") and st.st_uid != os.getuid():
        return False
    return not st.st_mode & (stat.S_IWGRP | stat.S_IWOTH)


def _cache_dir() -> str:
    global _fallback_dir
    path = os.environ.get("REPRO_JIT_CACHE")
    if not path:
        uid = os.getuid() if hasattr(os, "getuid") else 0
        path = os.path.join(tempfile.gettempdir(), f"repro-jit-{uid}")
    try:
        os.makedirs(path, mode=0o700, exist_ok=True)
    except OSError:
        path = None
    if path is not None and _dir_trusted(path):
        return path
    # Untrusted (foreign-owned, world/group-writable, symlinked) or
    # uncreatable: never load code from it.  Fall back to a private
    # per-process directory — caching degrades, security does not.
    # The directory is removed again at interpreter exit; nothing
    # re-reads it across processes, so leaving it would only litter
    # the temp dir with one orphan per process.
    if _fallback_dir is None:
        _fallback_dir = tempfile.mkdtemp(prefix="repro-jit-")
        atexit.register(_cleanup_fallback_dir)
    return _fallback_dir


def _cleanup_fallback_dir() -> None:
    """Remove the per-process fallback cache dir (atexit; the loaded
    ``.so`` stays mapped, so deleting the file is safe on POSIX)."""
    global _fallback_dir
    path, _fallback_dir = _fallback_dir, None
    if path is not None:
        shutil.rmtree(path, ignore_errors=True)


def c_step_source(plan: CellPlan, s: int, eps: int, word_bits: int) -> str:
    """Emit the C source of the fused wavefront step for ``plan``.

    ``plan`` must come from a netlist with buses ``up``/``left``/
    ``diag``/``best`` (``s`` bits each) and ``x``/``y`` (``eps`` bits)
    and ``2 * s`` outputs: the fresh cell planes followed by the
    updated running-max planes (see
    :func:`repro.core.netlist.build_sw_cell_best_netlist`).
    """
    check_word_bits(word_bits)
    expected = ([("up", h) for h in range(s)]
                + [("left", h) for h in range(s)]
                + [("diag", h) for h in range(s)]
                + [("x", b) for b in range(eps)]
                + [("y", b) for b in range(eps)]
                + [("best", h) for h in range(s)])
    if list(plan.input_layout) != expected:
        raise JitError("plan input layout does not match the fused "
                       "SW-cell/best netlist")
    if len(plan.outputs) != 2 * s:
        raise JitError(
            f"fused plan must have {2 * s} outputs, got {len(plan.outputs)}"
        )

    # Flat input index -> C load expression (strides hoisted below).
    load: list[str] = ([f"up[{h} * ps + l]" for h in range(s)]
                       + [f"left[{h} * ps + l]" for h in range(s)]
                       + [f"diag[{h} * ps + l]" for h in range(s)]
                       + [f"xr[{b} * cs + l]" for b in range(eps)]
                       + [f"yr[{b} * ds + l]" for b in range(eps)]
                       + [f"br[{h} * bs + l]" for h in range(s)])
    used = {r[1] for op in plan.ops for r in op[1:]
            if r is not None and r[0] == "in"}
    used.update(r[1] for r in plan.outputs if r[0] == "in")

    def nm(r: Ref) -> str:
        if r[0] == "in":
            return f"i{r[1]}"
        if r[0] == "op":
            return f"t{r[1]}"
        return "(~(W)0)" if r[1] else "((W)0)"

    body: list[str] = []
    for k in sorted(used):
        body.append(f"const W i{k} = {load[k]};")
    for j, (kind, a, b) in enumerate(plan.ops):
        if kind == "NOT":
            expr = f"~{nm(a)}"
        else:
            sym = {"AND": "&", "OR": "|", "XOR": "^"}[kind]
            expr = f"{nm(a)} {sym} {nm(b)}"  # type: ignore[arg-type]
        body.append(f"const W t{j} = {expr};")
    for h in range(s):
        body.append(f"dst[{h} * ps + l] = {nm(plan.outputs[h])};")
    for h in range(s):
        body.append(f"br[{h} * bs + l] = {nm(plan.outputs[s + h])};")
    inner = "\n                ".join(body)

    return f"""#include <stdint.h>

typedef {_C_TYPES[word_bits]} W;

void {STEP_SYMBOL}(W* restrict p1, W* restrict p2, W* restrict best,
                   const W* restrict xp, const W* restrict yp,
                   long t, long lo, long hi, long m, long n, long L)
{{
    const long ps = (m + 1) * L;   /* state plane stride     */
    const long bs = m * L;         /* best plane stride      */
    const long cs = m * L;         /* x character planes     */
    const long ds = n * L;         /* y character planes     */
    (void)n;
    for (long r = hi; r >= lo; --r) {{
        const W* up   = p1 + r * L;
        const W* left = p1 + (r + 1) * L;
        const W* diag = p2 + r * L;
        W* dst        = p2 + (r + 1) * L;
        const W* xr   = xp + r * L;
        const W* yr   = yp + (t - r) * L;
        W* br         = best + r * L;
        for (long l = 0; l < L; ++l) {{
                {inner}
        }}
    }}
}}
"""


def c_gotoh_step_source(plan: CellPlan, s: int, eps: int,
                        word_bits: int) -> str:
    """Emit the C source of the fused affine (Gotoh) wavefront step.

    ``plan`` must come from a netlist with buses ``h_left``/``e_left``/
    ``h_up``/``f_up``/``h_diag``/``best`` (``s`` bits each) and
    ``x``/``y`` (``eps`` bits) and ``4 * s`` outputs: H, E, F and the
    updated running max (see
    :func:`repro.core.netlist.build_gotoh_cell_best_netlist`).

    State layout mirrors the linear step with two extra in-place plane
    sets: ``h1``/``h2`` double-buffer H exactly like ``p1``/``p2``
    (``h2`` doubles as the diagonal input, hence the descending row
    loop), while ``e``/``f`` are single-buffered — E is read and
    rewritten at padded row ``r + 1`` (same diagonal column shift) and
    F read at ``r``, written at ``r + 1``, which descending order also
    keeps hazard-free.
    """
    check_word_bits(word_bits)
    expected = ([("h_left", h) for h in range(s)]
                + [("e_left", h) for h in range(s)]
                + [("h_up", h) for h in range(s)]
                + [("f_up", h) for h in range(s)]
                + [("h_diag", h) for h in range(s)]
                + [("x", b) for b in range(eps)]
                + [("y", b) for b in range(eps)]
                + [("best", h) for h in range(s)])
    if list(plan.input_layout) != expected:
        raise JitError("plan input layout does not match the fused "
                       "Gotoh-cell/best netlist")
    if len(plan.outputs) != 4 * s:
        raise JitError(
            f"fused gotoh plan must have {4 * s} outputs, got "
            f"{len(plan.outputs)}"
        )

    load: list[str] = ([f"hl[{h} * ps + l]" for h in range(s)]
                       + [f"el[{h} * ps + l]" for h in range(s)]
                       + [f"hu[{h} * ps + l]" for h in range(s)]
                       + [f"fu[{h} * ps + l]" for h in range(s)]
                       + [f"hd[{h} * ps + l]" for h in range(s)]
                       + [f"xr[{b} * cs + l]" for b in range(eps)]
                       + [f"yr[{b} * ds + l]" for b in range(eps)]
                       + [f"br[{h} * bs + l]" for h in range(s)])
    used = {r[1] for op in plan.ops for r in op[1:]
            if r is not None and r[0] == "in"}
    used.update(r[1] for r in plan.outputs if r[0] == "in")

    def nm(r: Ref) -> str:
        if r[0] == "in":
            return f"i{r[1]}"
        if r[0] == "op":
            return f"t{r[1]}"
        return "(~(W)0)" if r[1] else "((W)0)"

    body: list[str] = []
    for k in sorted(used):
        body.append(f"const W i{k} = {load[k]};")
    for j, (kind, a, b) in enumerate(plan.ops):
        if kind == "NOT":
            expr = f"~{nm(a)}"
        else:
            sym = {"AND": "&", "OR": "|", "XOR": "^"}[kind]
            expr = f"{nm(a)} {sym} {nm(b)}"  # type: ignore[arg-type]
        body.append(f"const W t{j} = {expr};")
    for h in range(s):
        body.append(f"dh[{h} * ps + l] = {nm(plan.outputs[h])};")
    for h in range(s):
        body.append(f"de[{h} * ps + l] = {nm(plan.outputs[s + h])};")
    for h in range(s):
        body.append(f"df[{h} * ps + l] = {nm(plan.outputs[2 * s + h])};")
    for h in range(s):
        body.append(f"br[{h} * bs + l] = {nm(plan.outputs[3 * s + h])};")
    inner = "\n                ".join(body)

    return f"""#include <stdint.h>

typedef {_C_TYPES[word_bits]} W;

void {GOTOH_STEP_SYMBOL}(const W* restrict h1, W* restrict h2,
                         W* restrict e, W* restrict f, W* restrict best,
                         const W* restrict xp, const W* restrict yp,
                         long t, long lo, long hi, long m, long n, long L)
{{
    const long ps = (m + 1) * L;   /* state plane stride     */
    const long bs = m * L;         /* best plane stride      */
    const long cs = m * L;         /* x character planes     */
    const long ds = n * L;         /* y character planes     */
    (void)n;
    for (long r = hi; r >= lo; --r) {{
        const W* hl = h1 + (r + 1) * L;
        const W* el = e + (r + 1) * L;
        const W* hu = h1 + r * L;
        const W* fu = f + r * L;
        const W* hd = h2 + r * L;
        W* dh       = h2 + (r + 1) * L;
        W* de       = e + (r + 1) * L;
        W* df       = f + (r + 1) * L;
        const W* xr = xp + r * L;
        const W* yr = yp + (t - r) * L;
        W* br       = best + r * L;
        for (long l = 0; l < L; ++l) {{
                {inner}
        }}
    }}
}}
"""


def _build(source: str, cc: str, so_path: str) -> None:
    src_path = so_path[:-3] + ".c"
    with open(src_path, "w") as fh:
        fh.write(source)
    tmp = f"{so_path}.{os.getpid()}.tmp"
    base = [cc, "-O3", "-shared", "-fPIC", "-o", tmp, src_path]
    attempts = [base[:1] + ["-march=native"] + base[1:], base]
    last = None
    for argv in attempts:
        proc = subprocess.run(argv, capture_output=True, text=True)
        if proc.returncode == 0:
            os.replace(tmp, so_path)
            return
        last = proc
    tail = (last.stderr or "").strip()[-500:] if last is not None else ""
    raise JitError(f"C compilation failed ({cc}): {tail}")


def compile_step(source: str, symbol: str = STEP_SYMBOL,
                 num_ptr_args: int = 5):
    """Compile ``source`` and return the loaded step function.

    ``symbol`` names the exported kernel (:data:`STEP_SYMBOL` for the
    linear step, :data:`GOTOH_STEP_SYMBOL` with ``num_ptr_args=7`` for
    the affine one); every kernel takes ``num_ptr_args`` pointers
    followed by six longs.  Idempotent and cached: the same source
    returns the same :mod:`ctypes` function object for the life of the
    process, and the shared object persists on disk across processes.
    Raises :class:`~repro.jit.compiler.JitError` when no compiler is
    available or the build fails.
    """
    cc = compiler_path()
    if cc is None:
        raise JitError(
            "no C compiler found (set $REPRO_CC or install cc/gcc/clang); "
            "use the NumPy jit backend instead"
        )
    digest = hashlib.sha256(source.encode()).hexdigest()[:24]
    with _lock:
        lib = _libs.get(digest)
        if lib is None:
            if should_inject("jit.cc.compile"):
                raise JitError(
                    "injected fault (site jit.cc.compile): C "
                    "compilation reported as failed"
                )
            so_path = os.path.join(_cache_dir(), f"step-{digest}.so")
            if not os.path.exists(so_path):
                _build(source, cc, so_path)
            if should_inject("jit.cc.load"):
                raise JitError(
                    f"injected fault (site jit.cc.load): refusing to "
                    f"load {so_path}"
                )
            try:
                lib = ctypes.CDLL(so_path)
            except OSError as exc:
                # A stale/corrupt cache entry: rebuild once.
                os.unlink(so_path)
                _build(source, cc, so_path)
                try:
                    lib = ctypes.CDLL(so_path)
                except OSError:
                    raise JitError(f"cannot load {so_path}: {exc}") from exc
            _libs[digest] = lib
    fn = getattr(lib, symbol)
    fn.argtypes = [ctypes.c_void_p] * num_ptr_args + [ctypes.c_long] * 6
    fn.restype = None
    return fn
