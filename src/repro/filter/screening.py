"""Threshold screening: the paper's application of BPBC-SWA (§III).

"The proposed BPBC technique is used [to] identify the input strings
in which the maximum value of the scoring matrix is larger than a
given threshold τ.  Once such strings are identified, a detailed
matching can be computed by a conventional SWA on the CPU."

:func:`screen_pairs` runs the bulk bitwise engine over all pairs and
re-aligns the survivors with the wordwise CPU path, returning full
local alignments for exactly the pairs that pass τ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.encoding import (decode, encode_batch_bit_transposed,
                             encode_batch_char_planes)
from ..core.sw_bpbc import bpbc_sw_wavefront, bpbc_sw_wavefront_planes
from ..swa.affine import AffineScheme
from ..swa.scoring import DEFAULT_SCHEME, ScoringScheme
from ..swa.sequential import sw_matrix
from ..swa.traceback import Alignment, gotoh_align, traceback

__all__ = ["ScreenHit", "ScreenResult", "screen_pairs", "bulk_max_scores"]


@dataclass(frozen=True)
class ScreenHit:
    """One pair that passed the threshold, with its full alignment."""

    pair_index: int
    score: int
    alignment: Alignment


@dataclass
class ScreenResult:
    """Output of a screening run."""

    scores: np.ndarray          # (P,) bulk max scores
    threshold: int
    hits: list[ScreenHit]

    @property
    def survivor_indices(self) -> np.ndarray:
        """Indices of pairs whose score *strictly exceeds* the threshold."""
        return np.flatnonzero(self.scores > self.threshold)

    @property
    def pass_rate(self) -> float:
        """Fraction of pairs strictly exceeding the threshold.

        Derived from the scores (not from ``hits``), so it is correct
        even when the run skipped survivor alignment
        (``align_survivors=False``) and ``hits`` is empty.
        """
        return len(self.survivor_indices) / max(1, len(self.scores))


def bulk_max_scores(X: np.ndarray, Y: np.ndarray,
                    scheme: ScoringScheme | None = None,
                    word_bits: int = 64,
                    chunk_size: int | None = None,
                    workers: int | None = None,
                    recover: bool = True,
                    timeout_s: float | None = None,
                    max_retries: int = 1,
                    transport: str = "auto") -> np.ndarray:
    """Max SW score per pair via the BPBC wavefront engine.

    ``X`` is ``(P, m)`` and ``Y`` ``(P, n)`` wordwise code matrices;
    lane padding is handled (and trimmed) internally.  With
    ``chunk_size`` set, the batch is encoded and scored in slices of
    at most that many pairs, bounding peak memory to one chunk's
    planes instead of one ``(P, m)``-sized allocation.

    ``workers > 1`` shards the batch across a process pool
    (:mod:`repro.shard`); results are identical to the single-process
    path and ``chunk_size`` becomes the per-shard pair cap.  With
    ``recover`` (the default) a shard lost to a worker crash, hang
    (bounded by ``timeout_s``) or engine error is rescored in-process
    on the :class:`~repro.resilience.fallback.EngineFallbackChain` —
    bit-identically — and only an unrecoverable loss raises
    :class:`~repro.resilience.errors.BulkRecoveryError` naming the
    missing pair indices.  ``recover=False`` restores the strict
    behaviour: the first failure raises
    :class:`repro.shard.ShardError`.

    ``transport`` picks the shard transport (``"auto"``/``"shm"``/
    ``"pickle"``, see :class:`repro.shard.ShardExecutor`); results are
    bit-identical on every transport.
    """
    X = np.asarray(X)
    Y = np.asarray(Y)
    if X.ndim != 2 or Y.ndim != 2 or X.shape[0] != Y.shape[0]:
        raise ValueError(
            f"expected (P, m) / (P, n) code matrices, got {X.shape} and "
            f"{Y.shape}"
        )
    scheme = scheme or DEFAULT_SCHEME
    P = X.shape[0]
    if chunk_size is not None and chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if workers is not None and workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    if workers is not None and workers > 1:
        if recover:
            from ..resilience.recovery import shard_scores_with_recovery
            from ..resilience.retry import RetryPolicy

            return shard_scores_with_recovery(
                X, Y, scheme, word_bits=word_bits, workers=workers,
                max_shard_pairs=chunk_size, timeout_s=timeout_s,
                retry=RetryPolicy(max_retries=max_retries),
                transport=transport)
        from ..shard import shard_bulk_max_scores

        return shard_bulk_max_scores(X, Y, scheme, word_bits=word_bits,
                                     workers=workers,
                                     max_shard_pairs=chunk_size,
                                     transport=transport)
    if chunk_size is not None and P > chunk_size:
        scores = np.empty(P, dtype=np.int64)
        for start in range(0, P, chunk_size):
            stop = min(start + chunk_size, P)
            scores[start:stop] = bulk_max_scores(
                X[start:stop], Y[start:stop], scheme, word_bits)
        return scores
    if callable(getattr(scheme, "weights_key", None)):
        # Protein scheme: eps-bit character planes, substitution cell;
        # the affine variant routes to the Gotoh engine.
        eps = scheme.alphabet.pad_bits
        Xp = encode_batch_char_planes(X, word_bits, char_bits=eps)
        Yp = encode_batch_char_planes(Y, word_bits, char_bits=eps)
        if scheme.is_affine:
            from ..core.affine_bpbc import bpbc_gotoh_wavefront_planes

            result = bpbc_gotoh_wavefront_planes(Xp, Yp, scheme,
                                                 word_bits)
        else:
            result = bpbc_sw_wavefront_planes(Xp, Yp, scheme, word_bits)
        return result.max_scores[:P]
    if isinstance(scheme, AffineScheme):
        from ..core.affine_bpbc import bpbc_gotoh_wavefront_planes

        Xp = encode_batch_char_planes(X, word_bits, char_bits=2)
        Yp = encode_batch_char_planes(Y, word_bits, char_bits=2)
        result = bpbc_gotoh_wavefront_planes(Xp, Yp, scheme, word_bits)
        return result.max_scores[:P]
    XH, XL = encode_batch_bit_transposed(X, word_bits)
    YH, YL = encode_batch_bit_transposed(Y, word_bits)
    result = bpbc_sw_wavefront(XH, XL, YH, YL, scheme, word_bits)
    return result.max_scores[:P]


def screen_pairs(X: np.ndarray, Y: np.ndarray, threshold: int,
                 scheme: ScoringScheme | None = None,
                 word_bits: int = 64,
                 align_survivors: bool = True,
                 chunk_size: int | None = None,
                 workers: int | None = None,
                 recover: bool = True,
                 timeout_s: float | None = None,
                 max_retries: int = 1,
                 transport: str = "auto") -> ScreenResult:
    """Bulk-score all pairs; fully align those scoring above ``threshold``.

    The bulk phase never computes tracebacks — exactly the paper's
    division of labour.  Survivor alignments are exact (wordwise CPU
    matrix + traceback) and their scores are asserted to agree with
    the bulk engine's, which doubles as an end-to-end self-check.
    ``workers > 1`` shards the bulk phase across processes, with
    fallback-chain recovery of failed shards unless ``recover=False``
    (see :func:`bulk_max_scores`); survivor alignment stays
    in-process.
    """
    scheme = scheme or DEFAULT_SCHEME
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    scores = bulk_max_scores(X, Y, scheme, word_bits,
                             chunk_size=chunk_size, workers=workers,
                             recover=recover, timeout_s=timeout_s,
                             max_retries=max_retries,
                             transport=transport)
    hits: list[ScreenHit] = []
    if align_survivors:
        protein = callable(getattr(scheme, "weights_key", None))
        affine = protein or isinstance(scheme, AffineScheme)
        for p in np.flatnonzero(scores > threshold):
            if protein:
                x = scheme.alphabet.decode(X[p])
                y = scheme.alphabet.decode(Y[p])
            else:
                x = decode(X[p])
                y = decode(Y[p])
            if affine:
                aln = gotoh_align(x, y, scheme)
            else:
                d = sw_matrix(x, y, scheme)
                aln = traceback(d, x, y, scheme)
            if aln.score != scores[p]:  # pragma: no cover - self check
                raise AssertionError(
                    f"bulk/CPU score mismatch on pair {p}: "
                    f"{scores[p]} vs {aln.score}"
                )
            hits.append(ScreenHit(pair_index=int(p), score=int(scores[p]),
                                  alignment=aln))
    return ScreenResult(scores=scores, threshold=threshold, hits=hits)
