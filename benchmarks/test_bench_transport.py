"""Transport + scheduling acceptance: the PR's two perf claims, measured.

1. **Zero-copy transport** — with a null engine isolating transport
   cost, growing the payload 64x must cost the shm transport clearly
   less than the pickle transport: shm writes sequences into a shared
   segment once and ships O(1) descriptors, while pickle serialises,
   pipes and deserialises every byte.  Scores stay bit-identical to
   the single-process engine on both transports, always asserted.

2. **SLO-aware scheduling** — under a burst the service cannot absorb
   in time, the adaptive scheduler must shed load at admission (typed,
   counted) and thereby hold completed-request p99 far below the
   unscheduled service drowning in its own queue — at identical
   scores for everything it does answer.

As elsewhere in this suite, speedup/latency assertions need real
parallel hardware to be physically meaningful and skip (not pass) on
smaller machines; identity assertions always run.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.filter.screening import bulk_max_scores
from repro.serve import AlignmentService
from repro.shard import ShardExecutor, default_workers, shm_available

from .conftest import SCHEME
from .traffic import replay, request_stream

#: Per-pair sequence length and pair counts of the growth ladder:
#: each rung quadruples total payload (pairs x 2 sides x length).
GROWTH_LENGTH = 512
GROWTH_PAIRS = (16, 64, 256, 1024)

GROWTH_REPEATS = 5
GROWTH_WORKERS = 4

#: The overload burst for the scheduler benchmark: long pairs make
#: every batch expensive enough that a one-worker service genuinely
#: cannot drain the burst inside the SLO — the shape admission
#: control exists for.  A small warm-up teaches the scheduler the
#: engine's real rate first (a cold scheduler deliberately admits),
#: and small batches keep the backlog term sensitive to queue depth.
SCHED_WARMUP = 8
SCHED_WARMUP_RPS = 4.0
SCHED_REQUESTS = 256
SCHED_M = 512
SCHED_SLO_MS = 100.0
SCHED_MAX_BATCH = 8


def _null_engine(X, Y, scheme, word_bits):
    """Transport-cost probe: ships bytes, computes nothing."""
    return np.zeros(len(X), dtype=np.int64)


def _payload(rng, pairs):
    X = rng.integers(0, 4, size=(pairs, GROWTH_LENGTH), dtype=np.uint8)
    Y = rng.integers(0, 4, size=(pairs, GROWTH_LENGTH), dtype=np.uint8)
    return X, Y


def _best_run_ms(ex, X, Y):
    best = float("inf")
    for _ in range(GROWTH_REPEATS):
        t0 = time.perf_counter()
        ex.run(X, Y, SCHEME)
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


@pytest.mark.skipif(not shm_available(),
                    reason="multiprocessing.shared_memory unavailable")
def test_transports_bit_identical():
    rng = np.random.default_rng(31)
    X, Y = _payload(rng, 128)
    base = bulk_max_scores(X, Y, SCHEME)
    for transport in ("shm", "pickle"):
        with ShardExecutor(workers=2, transport=transport) as ex:
            if ex.in_process:
                pytest.skip("requires a multiprocessing pool")
            result = ex.run(X, Y, SCHEME)
        assert np.array_equal(result.scores, base), transport


@pytest.mark.skipif(not shm_available(),
                    reason="multiprocessing.shared_memory unavailable")
@pytest.mark.skipif(
    default_workers() < GROWTH_WORKERS,
    reason=f"needs >= {GROWTH_WORKERS} usable cores for stable "
           "transport timings")
def test_shm_transport_beats_pickle_at_scale():
    rng = np.random.default_rng(37)
    ladder = [_payload(rng, pairs) for pairs in GROWTH_PAIRS]
    times = {}
    for transport in ("pickle", "shm"):
        with ShardExecutor(workers=GROWTH_WORKERS, engine=_null_engine,
                           transport=transport) as ex:
            if ex.in_process:
                pytest.skip("requires a multiprocessing pool")
            ex.run(*ladder[0], SCHEME)  # warm the pool + arena
            times[transport] = [_best_run_ms(ex, X, Y)
                                for X, Y in ladder]
    small, large = GROWTH_PAIRS[0], GROWTH_PAIRS[-1]
    factor = large // small
    growth = {t: ts[-1] / ts[0] for t, ts in times.items()}
    print(f"\npayload x{factor} ({small} -> {large} pairs of "
          f"2x{GROWTH_LENGTH} nt, null engine, "
          f"{GROWTH_WORKERS} workers):")
    for t in ("pickle", "shm"):
        ms = ", ".join(f"{v:7.2f}" for v in times[t])
        print(f"  {t:<7} [{ms}] ms  -> x{growth[t]:.1f} cost growth")
    # The claim, gated loosely enough to survive shared runners: at
    # the top of the ladder shm must be cheaper outright, and its
    # cost growth across the ladder visibly flatter than pickle's.
    assert times["shm"][-1] < times["pickle"][-1], (
        f"shm {times['shm'][-1]:.1f} ms not cheaper than pickle "
        f"{times['pickle'][-1]:.1f} ms at {large} pairs"
    )
    assert growth["shm"] < growth["pickle"], (
        f"shm cost grew x{growth['shm']:.1f} vs pickle "
        f"x{growth['pickle']:.1f} over a x{factor} payload"
    )


def test_adaptive_scheduler_sheds_load_and_holds_p99():
    rng = np.random.default_rng(41)
    warm = list(request_stream(rng, SCHED_WARMUP,
                               rate_per_s=SCHED_WARMUP_RPS, m=SCHED_M))
    burst = list(request_stream(rng, SCHED_REQUESTS,
                                rate_per_s=np.inf, m=SCHED_M))
    expected = bulk_max_scores(np.stack([r.query for r in burst]),
                               np.stack([r.subject for r in burst]),
                               SCHEME)

    static = AlignmentService(engine="bpbc", workers=1,
                              max_wait_ms=2.0, cache_size=0,
                              max_batch=SCHED_MAX_BATCH,
                              max_queue=4096)
    with static:
        replay(static, warm)
        static_report = replay(static, burst, realtime=False)

    adaptive = AlignmentService(engine="bpbc", workers=1,
                                max_wait_ms=2.0, cache_size=0,
                                max_batch=SCHED_MAX_BATCH,
                                max_queue=4096, slo_ms=SCHED_SLO_MS)
    with adaptive:
        # The paced warm-up rides the cold-start admission pass and
        # teaches the scheduler the engine's real ns-per-op rate —
        # gently, so the live p50 reflects uncontended batches; the
        # burst then meets a model with grounded estimates.
        warm_report = replay(adaptive, warm)
        adaptive_report = replay(adaptive, burst, realtime=False)
    sched_snap = adaptive.stats.snapshot()["scheduler"]

    # Identity first: every completed score (both services) matches
    # the single-process reference.  Admission only decides *whether*
    # a pair is scored, never what its score is.
    assert ([r.score for r in static_report.results]
            == expected.tolist())
    assert ([r.score for r in adaptive_report.results]
            == [int(expected[i]) for i in adaptive_report.indices])

    print(f"\nburst of {SCHED_REQUESTS} x {SCHED_M} nt pairs, "
          f"SLO {SCHED_SLO_MS:.0f} ms:")
    print(f"  static:   {static_report.completed:4d} completed, "
          f"p99 {static_report.p99_ms:9.1f} ms, "
          f"goodput {static_report.goodput_rps(SCHED_SLO_MS):7.1f}/s")
    print(f"  adaptive: {adaptive_report.completed:4d} completed "
          f"({adaptive_report.rejected} shed), "
          f"p99 {adaptive_report.p99_ms:9.1f} ms, "
          f"goodput {adaptive_report.goodput_rps(SCHED_SLO_MS):7.1f}/s")

    # Under an overload burst the scheduler must be *doing* something:
    # shedding load typed-and-counted, with the model having learned
    # a real rate from the batches it did run.
    assert adaptive_report.rejected > 0
    assert sched_snap["rejected"] == (warm_report.rejected
                                      + adaptive_report.rejected)
    assert sched_snap["observations"] > 0
    # And the point of shedding: the requests it does serve are not
    # stuck behind a doomed queue.  The static service's tail is the
    # whole burst's drain time; the adaptive tail must sit well under
    # it (2x margin keeps shared-runner noise out of the gate).
    assert adaptive_report.p99_ms * 2 < static_report.p99_ms, (
        f"adaptive p99 {adaptive_report.p99_ms:.1f} ms not clearly "
        f"below static p99 {static_report.p99_ms:.1f} ms"
    )
