"""Step 3: the BPBC Smith-Waterman wavefront kernel (paper §V).

One CUDA block of ``m`` threads computes SWA(X_k, Y_k) for the
``word_bits`` pairs of one lane group.  Thread ``i`` owns DP row ``i``
and walks it left to right; at wavefront step ``t`` it computes
``d[i][t - i]`` from three registers (its own previous cell, and the
two neighbour values received from thread ``i - 1``), evaluates the
bit-sliced SW circuit, hands its fresh value down through shared
memory, and chains a running-maximum register ``R_i`` down the last
column so that the bottom thread finally holds
``max_B{R_0, ..., R_{m-1}}`` and writes it to global memory —
items 1–5 of the paper's §V listing, Figure 2's dataflow.

Each simulated round is: *compute & publish* (write own cell planes,
and running max if at the last column), ``__syncthreads``, *consume*
(read neighbour planes), ``__syncthreads`` (so next round's writes
cannot race this round's reads).
"""

from __future__ import annotations

from ..core.bitops import word_dtype
from ..core.circuits import max_b, max_b_ops, sw_cell, sw_cell_ops_exact
from ..gpusim.errors import GpuSimError
from ..gpusim.kernel import Barrier, Shfl, ThreadCtx
from ..swa.scoring import ScoringScheme

__all__ = ["sw_wavefront_kernel", "sw_wavefront_kernel_shfl",
           "shared_words_needed"]


def shared_words_needed(m: int, s: int) -> int:
    """Shared-memory words for one block: ``m*s`` for the cell-value
    hand-off plus ``m*s`` for the running-max chain."""
    return 2 * m * s


def sw_wavefront_kernel(ctx: ThreadCtx, xh: str, xl: str, yh: str, yl: str,
                        out: str, m: int, n: int, s: int,
                        scheme: ScoringScheme, word_bits: int):
    """Kernel body; launch with ``grid_dim = lane_groups``,
    ``block_dim = m``, ``shared_words = shared_words_needed(m, s)``.

    Global layout: ``xh``/``xl`` are ``(groups, m)`` and ``yh``/``yl``
    ``(groups, n)`` plane words; ``out`` is ``(groups, s)`` bit-sliced
    maximum scores.
    """
    g = ctx.block_idx
    i = ctx.thread_idx
    dt = word_dtype(word_bits)
    zero = dt.type(0)
    gap, c1, c2 = (scheme.gap_penalty, scheme.match_score,
                   scheme.mismatch_penalty)

    # Item 1 of the listing: x_i is fixed per thread — read it once.
    x = [dt.type(ctx.gmem.load(xl, (g, i))),
         dt.type(ctx.gmem.load(xh, (g, i)))]

    left = [zero] * s   # d[i][j-1]
    up = [zero] * s     # d[i-1][j]
    diag = [zero] * s   # d[i-1][j-1]
    R = [zero] * s      # running maximum of row i
    cell_base = i * s           # shared slots for the cell hand-off
    rmax_base = (ctx.block_dim + i) * s  # slots for the R chain

    for t in range(n + m - 1):
        j = t - i
        cur = None
        if 0 <= j <= n - 1:
            # Item 2: read y_{k, t-i} from global memory.
            y = [dt.type(ctx.gmem.load(yl, (g, j))),
                 dt.type(ctx.gmem.load(yh, (g, j)))]
            # Item 3: evaluate the SW circuit and fold the running max.
            cur = sw_cell(up, left, diag, x, y, gap, c1, c2, word_bits)
            ctx.count_ops(sw_cell_ops_exact(s))
            R = max_b(R, cur)
            ctx.count_ops(max_b_ops(s))
            # Item 4 (send half): publish d[i][j] for thread i + 1.
            for h in range(s):
                ctx.smem.store(cell_base + h, int(cur[h]))
            # Item 5 (send half): at the last column, chain the running
            # max down to thread i + 1 (merging the neighbour's R that
            # was read in the previous round).
            if j == n - 1:
                if i > 0:
                    R = max_b(R, r_prev)  # noqa: F821 - set below
                    ctx.count_ops(max_b_ops(s))
                if i == ctx.block_dim - 1:
                    for h in range(s):
                        ctx.gmem.store(out, (g, h), dt.type(R[h]))
                else:
                    for h in range(s):
                        ctx.smem.store(rmax_base + h, int(R[h]))
        yield Barrier()
        # Consume phase: rotate registers and read the neighbour's
        # fresh value (item 4, receive half).
        if cur is not None:
            left = cur
        diag = up
        j_next = t + 1 - i
        if i > 0 and 0 <= j_next <= n - 1:
            up = [dt.type(ctx.smem.load((i - 1) * s + h))
                  for h in range(s)]
        elif i == 0:
            up = [zero] * s
            diag = [zero] * s
        # Item 5, receive half: the round before our last column we pick
        # up the neighbour's chained maximum.
        if i > 0 and t + 1 - i == n - 1:
            r_prev = [dt.type(ctx.smem.load((ctx.block_dim + i - 1) * s + h))
                      for h in range(s)]
        yield Barrier()


def sw_wavefront_kernel_shfl(ctx: ThreadCtx, xh: str, xl: str, yh: str,
                             yl: str, out: str, m: int, n: int, s: int,
                             scheme: ScoringScheme, word_bits: int):
    """Warp-shuffle variant of the wavefront kernel (§V's optimisation).

    "shuffle operations can be employed to transfers values among
    threads in the same warp, thus reducing the number of read and
    write operations to the shared memory."  For ``m <= warp_size``
    the whole block is one warp, so both the cell hand-off and the
    running-max chain ride on ``__shfl_up``-style register exchange;
    the kernel touches shared memory not at all.

    Launch with ``grid_dim = lane_groups``, ``block_dim = m`` (at most
    the warp size), ``shared_words = 0``.
    """
    g = ctx.block_idx
    i = ctx.thread_idx
    if ctx.block_dim > ctx.device.warp_size:
        raise GpuSimError(
            "shuffle kernel requires one warp per block "
            f"(m = {ctx.block_dim} > warp size {ctx.device.warp_size})"
        )
    dt = word_dtype(word_bits)
    zero = dt.type(0)
    gap, c1, c2 = (scheme.gap_penalty, scheme.match_score,
                   scheme.mismatch_penalty)
    x = [dt.type(ctx.gmem.load(xl, (g, i))),
         dt.type(ctx.gmem.load(xh, (g, i)))]
    left = [zero] * s
    up = [zero] * s
    diag = [zero] * s
    R = [zero] * s
    r_prev = [zero] * s
    for t in range(n + m - 1):
        j = t - i
        cur = None
        if 0 <= j <= n - 1:
            y = [dt.type(ctx.gmem.load(yl, (g, j))),
                 dt.type(ctx.gmem.load(yh, (g, j)))]
            cur = sw_cell(up, left, diag, x, y, gap, c1, c2, word_bits)
            ctx.count_ops(sw_cell_ops_exact(s))
            R = max_b(R, cur)
            ctx.count_ops(max_b_ops(s))
            if j == n - 1:
                if i > 0:
                    R = max_b(R, r_prev)
                    ctx.count_ops(max_b_ops(s))
                if i == ctx.block_dim - 1:
                    for h in range(s):
                        ctx.gmem.store(out, (g, h), dt.type(R[h]))
        # Register rotation + shuffle hand-off: every lane ships its s
        # cell planes (and its R planes near the last column) up by
        # one lane; inactive lanes ship zeros/don't-cares.
        send = cur if cur is not None else [zero] * s
        received = []
        for h in range(s):
            got = yield Shfl("up", int(send[h]), 1)
            received.append(dt.type(got))
        if cur is not None:
            left = cur
        diag = up
        j_next = t + 1 - i
        if i > 0 and 0 <= j_next <= n - 1:
            up = received
        elif i == 0:
            up = [zero] * s
            diag = [zero] * s
        # Chain the running max via shuffle one round before each
        # lane's final column.
        r_send = R
        r_recv = []
        for h in range(s):
            got = yield Shfl("up", int(r_send[h]), 1)
            r_recv.append(dt.type(got))
        if i > 0 and t + 1 - i == n - 1:
            r_prev = r_recv
