"""Experiment runner: regenerate every table and figure.

Usage::

    python -m repro.experiments            # everything
    python -m repro.experiments table4     # one experiment
    python -m repro.experiments --fast     # smaller measured runs
"""

from __future__ import annotations

import argparse
import sys

from . import (ablations, figure1, figure2, table1, table2, table3,
               table4, table5)

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS = {
    "table1": lambda fast: table1.run(),
    "table2": lambda fast: table2.run(),
    "table3": lambda fast: table3.run(),
    "table4": lambda fast: table4.run(
        measured_pairs=1024 if fast else 2048,
        measured_n=(256, 512) if fast else (256, 512, 1024),
    ),
    "table5": lambda fast: table5.run(
        measured_pairs=1024 if fast else 2048,
        measured_n=(256, 512) if fast else (256, 512, 1024),
    ),
    "figure1": lambda fast: figure1.run(),
    "figure2": lambda fast: figure2.run(),
    "ablations": lambda fast: ablations.run(),
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("names", nargs="*",
                        choices=[*EXPERIMENTS, []],
                        help="experiments to run (default: all)")
    parser.add_argument("--fast", action="store_true",
                        help="smaller measured workloads")
    args = parser.parse_args(argv)
    names = args.names or list(EXPERIMENTS)
    for name in names:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        EXPERIMENTS[name](args.fast)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
