"""The cluster coordinator: route, reroute, degrade — never lie.

:class:`ClusterCoordinator` fronts N ``repro.serve`` nodes.  Each pair
routes by consistent hash of its result-cache key
(:func:`~repro.cluster.hashring.route_digest`), so a repeated pair
lands on the node whose LRU already holds its score; ``replication``
names how many distinct nodes are acceptable owners before routing
falls through to the rest of the ring.

Failure handling is a ladder, and every rung preserves the resilience
contract (bit-identical scores or a typed error):

1. **Reroute** — a transport failure (connect refused, node died
   mid-batch, truncated frame) moves the unanswered pairs to the next
   node in their preference order, reusing the *same* idempotent
   request IDs so a retry that already landed is replayed from the
   server's idempotency index, not scored twice.  Responses read
   before the failure are credited as-is.
2. **Back off** — each node has a
   :class:`~repro.resilience.breaker.CircuitBreaker`; open-circuit
   nodes are skipped at routing time and rejoin via health probes.
3. **Degrade** — when a pair runs out of routes (every node failed or
   open-circuit, or the deadline passed), it is scored *in process* on
   an :class:`~repro.resilience.fallback.EngineFallbackChain` — the
   engines are bit-identical, so a degraded score equals a healthy
   cluster's score.
4. **Shed, loudly** — with no fallback available, the leftover pairs
   raise :class:`~repro.cluster.errors.ClusterDegradedError` naming
   their indices.  A silent wrong (or missing) score is the one
   forbidden outcome.

The seeded ``cluster.route.mispick`` fault site lives here: firing it
routes a pair to a non-owner, which must cost cache locality only.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..resilience.faults import should_inject
from ..serve.client import fresh_request_ids
from ..serve.service import _as_codes
from ..serve.wire import codes_to_str, scheme_wire_fields
from ..swa.scoring import DEFAULT_SCHEME
from .errors import ClusterDegradedError, ClusterError, NodeUnavailable
from .hashring import HashRing, route_digest
from .node import RemoteNode

__all__ = ["ClusterCoordinator"]


class ClusterCoordinator:
    """Route alignment batches across serve nodes with failover.

    Parameters
    ----------
    nodes:
        :class:`~repro.cluster.node.RemoteNode` handles (or
        ``(name, host, port)`` tuples).
    replication:
        Distinct preferred owners per key.  The first is the cache
        owner; the rest absorb its traffic without a full reshuffle.
    vnodes:
        Virtual points per node on the hash ring.
    deadline_s:
        Default per-batch wall-clock budget; past it, unanswered pairs
        take the degrade ladder instead of retrying forever.
    fallback:
        ``"auto"`` (default) lazily builds the shared in-process
        :func:`~repro.resilience.fallback.default_chain` on first
        degrade; pass a chain to use it, or ``None`` to shed with
        :class:`ClusterDegradedError` instead of degrading.
    """

    def __init__(self, nodes, *, replication: int = 2, vnodes: int = 64,
                 deadline_s: float = 30.0, fallback="auto",
                 word_bits: int = 64, clock=time.monotonic) -> None:
        if replication <= 0:
            raise ValueError(
                f"replication must be positive, got {replication}")
        handles = [n if isinstance(n, RemoteNode) else RemoteNode(*n)
                   for n in nodes]
        if not handles:
            raise ValueError("a cluster needs at least one node")
        names = [n.name for n in handles]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names}")
        self._nodes = {n.name: n for n in handles}
        self.ring = HashRing(names, vnodes=vnodes)
        self.replication = min(replication, len(handles))
        self.deadline_s = deadline_s
        self.word_bits = word_bits
        self._clock = clock
        self._fallback_spec = fallback
        self._fallback = fallback if fallback not in ("auto", None) \
            else None
        self._lock = threading.Lock()
        self.routed = 0
        self.rerouted = 0
        self.degraded = 0
        self.shed = 0
        self.mispicks = 0
        self.batches = 0
        self._probe_stop: threading.Event | None = None
        self._probe_thread: threading.Thread | None = None

    # -- routing --------------------------------------------------------
    def owners(self, query, subject, scheme=None) -> list[str]:
        """The replica set (owner first) for one pair — introspection
        for ``cluster route`` and the locality tests."""
        fields = scheme_wire_fields(scheme or DEFAULT_SCHEME)
        digest = route_digest(query, subject, fields)
        return self.ring.nodes_for(digest, self.replication)

    def _preference(self, digest: int) -> list[str]:
        """Full failover order for a key: owner, replicas, the rest.

        The ``cluster.route.mispick`` site rotates the list so a
        non-owner comes first — scores must not notice, only the
        owner's cache hit rate does.
        """
        pref = self.ring.preference(digest)
        if len(pref) > 1 and should_inject("cluster.route.mispick"):
            pref = pref[1:] + pref[:1]
            with self._lock:
                self.mispicks += 1
        return pref

    # -- scoring --------------------------------------------------------
    def score_batch(self, pairs, scheme=None, *,
                    deadline_s: float | None = None,
                    request_ids=None) -> np.ndarray:
        """Exact max scores for ``pairs``, ``(P,) int64``.

        Pairs are ``(query, subject)`` strings or code arrays.  Every
        returned score is bit-identical to a single-node run; pairs
        that could not be scored anywhere raise
        :class:`ClusterDegradedError` naming their indices.
        """
        scheme = scheme or DEFAULT_SCHEME
        pairs = [(self._as_text(q, scheme), self._as_text(s, scheme))
                 for q, s in pairs]
        n = len(pairs)
        scores = np.zeros(n, dtype=np.int64)
        if n == 0:
            return scores
        if request_ids is None:
            request_ids = fresh_request_ids(n)
        elif len(request_ids) != n:
            raise ValueError(
                f"{len(request_ids)} request_ids for {n} pairs")
        fields = scheme_wire_fields(scheme)
        prefs = [self._preference(route_digest(q, s, fields))
                 for q, s in pairs]
        cursor = [0] * n           # position in prefs[i] to try next
        answered = np.zeros(n, dtype=bool)
        deadline = self._clock() + (self.deadline_s if deadline_s is None
                                    else deadline_s)
        with self._lock:
            self.batches += 1
        pending = list(range(n))
        while pending:
            out_of_time = self._clock() >= deadline
            groups: dict[str, list[int]] = {}
            exhausted: list[int] = []
            for i in pending:
                target = None
                while cursor[i] < len(prefs[i]):
                    name = prefs[i][cursor[i]]
                    if not out_of_time and \
                            self._nodes[name].breaker.state != "open":
                        target = name
                        break
                    cursor[i] += 1
                if target is None:
                    exhausted.append(i)
                else:
                    groups.setdefault(target, []).append(i)
            if exhausted:
                self._degrade(pairs, exhausted, scheme, scores,
                              answered)
            for name, idxs in groups.items():
                node = self._nodes[name]
                requests = [
                    {"op": "align", "id": i, "req": request_ids[i],
                     "query": pairs[i][0], "subject": pairs[i][1],
                     **fields}
                    for i in idxs
                ]
                try:
                    responses = node.send_batch(requests,
                                                deadline=deadline)
                except NodeUnavailable as exc:
                    landed = self._credit(exc.partial, scores, answered,
                                          cursor, prefs)
                    node.record_failure()
                    moved = len(idxs) - landed
                    with self._lock:
                        self.routed += landed
                        self.rerouted += moved
                    for i in idxs:
                        if not answered[i] and \
                                cursor[i] < len(prefs[i]) and \
                                prefs[i][cursor[i]] == name:
                            cursor[i] += 1
                    continue
                node.breaker.record_success()
                landed = self._credit(responses, scores, answered,
                                      cursor, prefs)
                with self._lock:
                    self.routed += landed
                    self.rerouted += len(idxs) - landed
            pending = [i for i in pending if not answered[i]]
        return scores

    @staticmethod
    def _as_text(seq, scheme) -> str:
        """Wire sequences are strings; decode code arrays on the way."""
        if isinstance(seq, str):
            return seq
        return codes_to_str(seq, scheme)

    def _credit(self, responses, scores, answered, cursor, prefs) -> int:
        """Record successful responses; returns how many landed.

        A server-side ``bad_request`` is deterministic — every node
        would refuse it — so it surfaces immediately as a typed
        :class:`ClusterError`.  Transient refusals (``queue_full``,
        ``deadline``) advance the pair to its next candidate instead.
        """
        landed = 0
        for resp in responses:
            i = resp.get("id")
            if not isinstance(i, int) or not 0 <= i < len(answered):
                continue
            if resp.get("ok"):
                if not answered[i]:
                    scores[i] = int(resp["score"])
                    answered[i] = True
                    landed += 1
                continue
            kind = resp.get("kind", "error")
            if kind == "bad_request":
                raise ClusterError(
                    f"pair {i} rejected as bad_request: "
                    f"{resp.get('error', 'unknown')}")
            if cursor[i] < len(prefs[i]):
                cursor[i] += 1
        return landed

    def _ensure_fallback(self):
        if self._fallback is None and self._fallback_spec == "auto":
            from ..resilience.fallback import default_chain

            self._fallback = default_chain(self.word_bits)
        return self._fallback

    def _degrade(self, pairs, idxs, scheme, scores, answered) -> None:
        """Score ``idxs`` in process, or shed them with a typed error.

        The fallback engines are bit-identical to the remote nodes'
        (pinned by the differential fuzz suite), so a degraded score
        *is* the cluster's score — degradation costs capacity, never
        correctness.
        """
        chain = self._ensure_fallback()
        if chain is None:
            with self._lock:
                self.shed += len(idxs)
            raise ClusterDegradedError(
                f"{len(idxs)} pair(s) shed: every node failed or "
                "open-circuit before the deadline and no in-process "
                "fallback is configured", idxs)
        from ..resilience.errors import FallbackExhaustedError

        for i in idxs:
            q = _as_codes(pairs[i][0], scheme)
            s = _as_codes(pairs[i][1], scheme)
            try:
                got, _engine = chain.score(q[None, :], s[None, :],
                                           scheme, self.word_bits)
            except FallbackExhaustedError as exc:
                remaining = [j for j in idxs if not answered[j]]
                with self._lock:
                    self.shed += len(remaining)
                raise ClusterDegradedError(
                    f"{len(remaining)} pair(s) shed: every node and "
                    "every in-process engine failed", remaining,
                    cause=exc) from exc
            scores[i] = int(got[0])
            answered[i] = True
            with self._lock:
                self.degraded += 1

    # -- health probes --------------------------------------------------
    def probe_once(self) -> dict[str, bool]:
        """Probe every node once; returns name -> healthy."""
        return {name: node.probe()
                for name, node in self._nodes.items()}

    def start_probes(self, interval_s: float = 0.5) -> None:
        """Run the probe loop on a daemon thread until :meth:`close`.

        Probes are what let an open-circuit node *rejoin*: a good ping
        closes its breaker, and routing starts offering it traffic
        again.
        """
        if self._probe_thread is not None:
            return
        stop = threading.Event()

        def loop() -> None:
            while not stop.wait(interval_s):
                self.probe_once()

        self._probe_stop = stop
        self._probe_thread = threading.Thread(
            target=loop, name="cluster-probes", daemon=True)
        self._probe_thread.start()

    def close(self) -> None:
        """Stop the probe loop (idempotent)."""
        if self._probe_stop is not None:
            self._probe_stop.set()
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=5.0)
        self._probe_stop = None
        self._probe_thread = None

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reporting ------------------------------------------------------
    def status(self) -> dict:
        """JSON-able cluster + per-node stats snapshot."""
        with self._lock:
            cluster = {
                "nodes": len(self._nodes),
                "replication": self.replication,
                "batches": self.batches,
                "routed": self.routed,
                "rerouted": self.rerouted,
                "degraded": self.degraded,
                "shed": self.shed,
                "mispicks": self.mispicks,
            }
        return {
            "cluster": cluster,
            "per_node": [self._nodes[name].snapshot()
                         for name in sorted(self._nodes)],
        }
