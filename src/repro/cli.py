"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``score``
    Bulk-score FASTA query/subject pairs with the BPBC engine; TSV to
    stdout (id, id, score).
``screen``
    The paper's τ-threshold workflow: bulk-score, then align and print
    the survivors.
``match``
    Exact or k-mismatch bulk string matching (§II and its extension).
``index build`` / ``index search``
    Tiered billion-character database search: stream FASTA into an
    on-disk minimizer index, then search it through the three-tier
    pipeline (seed prefilter -> BPBC bulk screen -> full traceback;
    see docs/SEARCH.md).
``experiments``
    Regenerate the paper's tables and figures.
``serve``
    Run the micro-batching alignment server (newline-JSON over TCP;
    pair it with ``python -m repro.serve.client``).
``analyze``
    Static/dynamic analysis of the shipped kernels and netlists: the
    race detector, the barrier-divergence lint, and the netlist
    op-count verifier.  Exits non-zero on any finding.

Queries and subjects are matched up pairwise (record i against record
i); use ``--all-vs-all`` in ``score``/``screen`` to cross every query
with every subject instead.  All-vs-all never materialises the cross
product: pair indices are generated lazily and scored in
``--chunk-size`` slices, so a 1k x 1k screen streams through bounded
memory.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .core.bitops import unpack_lanes
from .core.approx_matching import bpbc_k_mismatch
from .core.encoding import encode_batch_bit_transposed
from .filter.screening import screen_pairs
from .index.fasta import iter_fasta, read_fasta, records_to_batch
from .swa.scoring import ScoringScheme
from .swa.traceback import format_alignment

__all__ = ["main"]


def _scheme_from_args(args):
    """Build the scoring scheme the flags describe.

    ``--alphabet protein`` selects substitution-matrix Gotoh scoring
    (``--matrix``, ``--gap-open``/``--gap-extend`` defaulting to
    11/1); ``--gap-open``/``--gap-extend`` on DNA select affine gaps;
    otherwise the paper's linear scheme from ``--match``/``--mismatch``
    /``--gap``.
    """
    gap_open = getattr(args, "gap_open", None)
    gap_extend = getattr(args, "gap_extend", None)
    if getattr(args, "alphabet", "dna") == "protein":
        from .core.matrices import matrix_by_name
        from .core.protein import ProteinScheme

        return ProteinScheme(
            matrix=matrix_by_name(getattr(args, "matrix", "blosum62")),
            gap_open=11 if gap_open is None else gap_open,
            gap_extend=1 if gap_extend is None else gap_extend,
        )
    if gap_open is not None or gap_extend is not None:
        from .swa.affine import AffineScheme

        return AffineScheme(
            match_score=args.match, mismatch_penalty=args.mismatch,
            gap_open=args.gap if gap_open is None else gap_open,
            gap_extend=1 if gap_extend is None else gap_extend,
        )
    return ScoringScheme(match_score=args.match,
                         mismatch_penalty=args.mismatch,
                         gap_penalty=args.gap)


def _add_alphabet_args(p: argparse.ArgumentParser) -> None:
    from .core.matrices import MATRICES

    p.add_argument("--alphabet", choices=("dna", "protein"),
                   default="dna",
                   help="sequence alphabet (protein selects "
                        "substitution-matrix Gotoh scoring; default "
                        "dna)")
    p.add_argument("--matrix", default="blosum62",
                   choices=sorted(MATRICES),
                   help="protein substitution matrix "
                        "(default blosum62)")
    p.add_argument("--gap-open", type=int, default=None,
                   help="affine gap-open cost (protein default 11; "
                        "enables affine gaps for DNA)")
    p.add_argument("--gap-extend", type=int, default=None,
                   help="affine gap-extend cost (default 1)")
    p.add_argument("--ambiguous", default="strict",
                   choices=("strict", "replace", "mask", "skip"),
                   help="FASTA ambiguity-code policy (default strict "
                        "= reject; mask rewrites protein B/Z/J to X)")


def _add_scoring_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--match", type=int, default=2,
                   help="match score c1 (default 2)")
    p.add_argument("--mismatch", type=int, default=1,
                   help="mismatch penalty c2 (default 1)")
    p.add_argument("--gap", type=int, default=1,
                   help="linear gap penalty (default 1)")
    _add_alphabet_args(p)
    p.add_argument("--word-bits", type=int, default=64,
                   choices=(8, 16, 32, 64),
                   help="lane word width (default 64)")
    p.add_argument("--chunk-size", type=int, default=4096,
                   help="pairs scored per engine slice (bounds peak "
                        "memory; default 4096)")
    p.add_argument("--workers", type=int, default=1,
                   help="shard the bulk phase across this many "
                        "processes (default 1 = in-process)")
    p.add_argument("--transport", default="auto",
                   choices=("auto", "shm", "pickle"),
                   help="shard transport (needs --workers > 1): shm = "
                        "zero-copy shared memory, pickle = classic "
                        "pipe; auto sizes per run (default)")
    p.add_argument("--max-retries", type=int, default=1,
                   help="fallback-chain rescore retries when a shard "
                        "fails (default 1; needs --workers > 1)")
    p.add_argument("--no-recover", dest="recover", action="store_false",
                   help="fail fast on shard loss instead of rescoring "
                        "failed shards on the fallback chain")


def _load_sides(args) -> tuple[list, list]:
    """Read both FASTA files, validating counts for pairwise mode."""
    alphabet = getattr(args, "alphabet", "dna")
    ambiguous = getattr(args, "ambiguous", "strict")
    queries = read_fasta(args.queries, ambiguous=ambiguous,
                         alphabet=alphabet)
    subjects = read_fasta(args.subjects, ambiguous=ambiguous,
                          alphabet=alphabet)
    if not getattr(args, "all_vs_all", False) and \
            len(queries) != len(subjects):
        raise SystemExit(
            f"error: {len(queries)} queries vs {len(subjects)} "
            "subjects; pairwise mode needs equal counts "
            "(or pass --all-vs-all)"
        )
    return queries, subjects


def _workers_from_args(args) -> int | None:
    """Validate ``--workers``; ``None`` means stay in-process."""
    if args.workers <= 0:
        raise SystemExit(
            f"error: --workers must be positive, got {args.workers}"
        )
    return args.workers if args.workers > 1 else None


def _iter_pair_chunks(n_queries: int, n_subjects: int, chunk_size: int):
    """Lazily yield ``(query_idx, subject_idx)`` arrays covering the
    |Q| x |S| cross product in row-major chunks of ``chunk_size``
    pairs — no million-element Python lists, ever."""
    if chunk_size <= 0:
        raise SystemExit(
            f"error: --chunk-size must be positive, got {chunk_size}"
        )
    total = n_queries * n_subjects
    for start in range(0, total, chunk_size):
        flat = np.arange(start, min(start + chunk_size, total),
                         dtype=np.int64)
        yield flat // n_subjects, flat % n_subjects


def _cmd_score(args) -> int:
    from .filter.screening import bulk_max_scores

    queries, subjects = _load_sides(args)
    scheme = _scheme_from_args(args)
    workers = _workers_from_args(args)
    out = sys.stdout
    out.write("query\tsubject\tscore\n")
    if args.all_vs_all:
        Q = records_to_batch(queries)
        S = records_to_batch(subjects)
        # One shard pool shared across every chunk of the cross
        # product, so --workers amortises its startup cost.
        executor = None
        if workers is not None:
            from .shard import ShardExecutor

            executor = ShardExecutor(workers=workers,
                                     word_bits=args.word_bits,
                                     transport=args.transport)
        try:
            for qi, si in _iter_pair_chunks(len(queries), len(subjects),
                                            args.chunk_size):
                if executor is not None:
                    result = executor.run(
                        Q[qi], S[si], scheme,
                        errors="return" if args.recover else "raise")
                    if args.recover and result.errors:
                        from .resilience.recovery import recover_failures
                        from .resilience.retry import RetryPolicy

                        recover_failures(
                            result, Q[qi], S[si], scheme,
                            word_bits=args.word_bits,
                            retry=RetryPolicy(
                                max_retries=args.max_retries))
                    scores = result.scores
                else:
                    scores = bulk_max_scores(Q[qi], S[si], scheme,
                                             word_bits=args.word_bits)
                for a, b, sc in zip(qi, si, scores):
                    out.write(f"{queries[a].id}\t{subjects[b].id}\t"
                              f"{int(sc)}\n")
        finally:
            if executor is not None:
                executor.close()
    else:
        scores = bulk_max_scores(records_to_batch(queries),
                                 records_to_batch(subjects), scheme,
                                 word_bits=args.word_bits,
                                 chunk_size=args.chunk_size,
                                 workers=workers,
                                 recover=args.recover,
                                 max_retries=args.max_retries,
                                 transport=args.transport)
        for qr, sr, sc in zip(queries, subjects, scores):
            out.write(f"{qr.id}\t{sr.id}\t{int(sc)}\n")
    return 0


def _cmd_screen(args) -> int:
    queries, subjects = _load_sides(args)
    scheme = _scheme_from_args(args)
    workers = _workers_from_args(args)
    if args.all_vs_all:
        n_subjects = len(subjects)
        Q = records_to_batch(queries)
        S = records_to_batch(subjects)
        total = len(queries) * n_subjects
        hits = []  # (global pair index, ScreenHit)
        for qi, si in _iter_pair_chunks(len(queries), n_subjects,
                                        args.chunk_size):
            result = screen_pairs(Q[qi], S[si], args.threshold, scheme,
                                  word_bits=args.word_bits,
                                  workers=workers,
                                  recover=args.recover,
                                  max_retries=args.max_retries,
                                  transport=args.transport)
            base = int(qi[0]) * n_subjects + int(si[0])
            hits.extend((base + h.pair_index, h) for h in result.hits)
    else:
        result = screen_pairs(records_to_batch(queries),
                              records_to_batch(subjects),
                              args.threshold, scheme,
                              word_bits=args.word_bits,
                              chunk_size=args.chunk_size,
                              workers=workers,
                              recover=args.recover,
                              max_retries=args.max_retries,
                              transport=args.transport)
        total = len(queries)
        hits = [(h.pair_index, h) for h in result.hits]
        n_subjects = 1
    print(f"{len(hits)} of {total} pairs exceed "
          f"tau={args.threshold} ({len(hits) / max(1, total):.1%})")
    for gp, hit in sorted(hits, key=lambda item: -item[1].score):
        if args.all_vs_all:
            qid = queries[gp // n_subjects].id
            sid = subjects[gp % n_subjects].id
        else:
            qid, sid = queries[gp].id, subjects[gp].id
        print(f"\n{qid} vs {sid}")
        print(format_alignment(hit.alignment))
    return 0


def _cmd_match(args) -> int:
    patterns = read_fasta(args.patterns)
    texts = read_fasta(args.texts)
    if len(patterns) != len(texts):
        raise SystemExit(
            f"error: {len(patterns)} patterns vs {len(texts)} texts"
        )
    X = records_to_batch(patterns)
    Y = records_to_batch(texts)
    P = len(patterns)
    XH, XL = encode_batch_bit_transposed(X, args.word_bits)
    YH, YL = encode_batch_bit_transposed(Y, args.word_bits)
    hits = bpbc_k_mismatch(XH, XL, YH, YL, args.k, args.word_bits)
    bits = unpack_lanes(hits, args.word_bits, count=P)  # (offsets, P)
    print("pattern\ttext\tk\toffsets")
    for p in range(P):
        offs = ",".join(str(j) for j in np.flatnonzero(bits[:, p]))
        print(f"{patterns[p].id}\t{texts[p].id}\t{args.k}\t"
              f"{offs or '-'}")
    return 0


def _cmd_experiments(args) -> int:
    from .experiments import main as exp_main

    argv = list(args.names)
    if args.fast:
        argv.append("--fast")
    return exp_main(argv)


def _cmd_serve(args) -> int:
    from .serve.server import AlignmentServer
    from .serve.service import AlignmentService

    service = AlignmentService(
        engine=args.engine, workers=args.workers,
        word_bits=args.word_bits, max_queue=args.max_queue,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        bin_granularity=args.bin_granularity,
        cache_size=args.cache_size,
        shard_workers=(args.shard_workers if args.shard_workers > 1
                       else None),
        resilience=args.resilient,
        max_retries=args.max_retries,
        slo_ms=args.slo_ms,
        transport=args.transport,
    )
    with service:
        server = AlignmentServer(service, host=args.host,
                                 port=args.port,
                                 default_scheme=_scheme_from_args(args))
        host, port = server.address
        print(f"serving on {host}:{port} "
              f"(engine={args.engine}, workers={args.workers}, "
              f"word_bits={args.word_bits}, "
              f"alphabet={args.alphabet}); Ctrl-C to stop",
              file=sys.stderr)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            print(service.stats.render(), file=sys.stderr)
    return 0


def _nodes_from_topology(path):
    """Topology file -> RemoteNode handles for already-running nodes."""
    from .cluster import RemoteNode, load_topology

    specs = load_topology(path)
    bad = [s.name for s in specs if s.port == 0]
    if bad:
        raise SystemExit(
            f"error: topology nodes {bad} have port 0 (ephemeral); "
            "connecting to running nodes needs concrete ports — "
            "use 'cluster serve' output, or pin ports in the file")
    return [RemoteNode(s.name, s.host, s.port) for s in specs]


def _cmd_cluster_serve(args) -> int:
    import time as _time

    from .cluster import LocalCluster, load_topology

    specs = load_topology(args.topology) if args.topology else None
    cluster = LocalCluster(specs, n=args.nodes)
    with cluster:
        resolved = {"nodes": []}
        for spec in cluster.specs:
            host, port = cluster.address(spec.name)
            resolved["nodes"].append(
                {"name": spec.name, "host": host, "port": port,
                 "engine": spec.engine, "workers": spec.workers})
            print(f"node {spec.name} serving on {host}:{port} "
                  f"(engine={spec.engine})", file=sys.stderr)
        # The resolved topology (concrete ports) goes to stdout so it
        # can be piped to a file for 'cluster route' / 'cluster status'.
        print(json.dumps(resolved, indent=2))
        sys.stdout.flush()
        print("cluster up; Ctrl-C to stop", file=sys.stderr)
        try:
            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            pass
    return 0


def _cmd_cluster_route(args) -> int:
    from .cluster import ClusterCoordinator, LocalCluster

    queries = read_fasta(args.queries, ambiguous=args.ambiguous,
                         alphabet=args.alphabet)
    subjects = read_fasta(args.subjects, ambiguous=args.ambiguous,
                          alphabet=args.alphabet)
    if args.all_vs_all:
        index_pairs = [(a, b) for a in range(len(queries))
                       for b in range(len(subjects))]
    else:
        if len(queries) != len(subjects):
            raise SystemExit(
                f"error: {len(queries)} queries vs {len(subjects)} "
                "subjects; pairwise mode needs equal counts "
                "(or pass --all-vs-all)")
        index_pairs = list(zip(range(len(queries)),
                               range(len(subjects))))
    pairs = [(queries[a].sequence, subjects[b].sequence)
             for a, b in index_pairs]
    scheme = _scheme_from_args(args)

    def run(coordinator) -> int:
        scores = coordinator.score_batch(pairs, scheme,
                                         deadline_s=args.deadline_s)
        print("query\tsubject\tscore\towner")
        for (a, b), score in zip(index_pairs, scores):
            owner = coordinator.owners(queries[a].sequence,
                                       subjects[b].sequence,
                                       scheme)[0]
            print(f"{queries[a].id}\t{subjects[b].id}\t{score}\t"
                  f"{owner}")
        if args.status:
            print(json.dumps(coordinator.status(), indent=2),
                  file=sys.stderr)
        return 0

    if args.topology:
        with ClusterCoordinator(_nodes_from_topology(args.topology),
                                replication=args.replication) as coord:
            return run(coord)
    with LocalCluster(n=args.local) as cluster:
        with cluster.coordinator(replication=args.replication) as coord:
            return run(coord)


def _cmd_cluster_status(args) -> int:
    from .cluster import ClusterCoordinator

    with ClusterCoordinator(_nodes_from_topology(args.topology),
                            replication=args.replication) as coord:
        health = coord.probe_once()
        status = coord.status()
        status["healthy"] = health
        print(json.dumps(status, indent=2))
    return 0 if all(health.values()) else 1


def _cmd_index_build(args) -> int:
    from .index import build_index

    if args.shard_chars <= 0:
        raise SystemExit(
            f"error: --shard-chars must be positive, got "
            f"{args.shard_chars}")
    k = args.k if args.k is not None else \
        (16 if args.alphabet == "dna" else 6)
    records = iter_fasta(args.fasta, ambiguous=args.ambiguous,
                         alphabet=args.alphabet)
    idx = build_index(records, args.out, k=k,
                      w=args.minimizer_window,
                      shard_chars=args.shard_chars,
                      alphabet=args.alphabet)
    print(f"built {args.out}: {idx.n_entries} entries, "
          f"{idx.n_chars} chars in {idx.n_shards} shards "
          f"(k={idx.k}, w={idx.w})", file=sys.stderr)
    if args.verify:
        idx.verify()
        print("integrity check passed", file=sys.stderr)
    return 0


def _cmd_index_search(args) -> int:
    from .index import DatabaseIndex, TieredSearch

    workers = _workers_from_args(args)
    idx = DatabaseIndex.open(args.index)
    queries = read_fasta(args.queries, ambiguous=args.ambiguous,
                         alphabet=args.alphabet)
    searcher = TieredSearch(
        idx, scheme=_scheme_from_args(args),
        word_bits=args.word_bits, min_seeds=args.min_seeds,
        threshold=args.threshold, window=args.window,
        max_batch_pairs=args.chunk_size, workers=workers,
        resilient=args.recover, verify=args.verify)
    result = searcher.search([rec.sequence for rec in queries],
                             top_k=args.top_k, align=args.align)
    out = sys.stdout
    out.write("query\tentry\tdb_index\tscore\n")
    for hit in result.hits:
        out.write(f"{queries[hit.query_index].id}\t{hit.entry_id}\t"
                  f"{hit.db_index}\t{hit.score}\n")
    if args.align:
        for hit in result.hits:
            out.write(f"\n{queries[hit.query_index].id} vs "
                      f"{hit.entry_id} "
                      f"(entry chars {hit.alignment.y_start}.."
                      f"{hit.alignment.y_end})\n")
            out.write(format_alignment(hit.alignment) + "\n")
    if args.stats:
        print(result.stats.render(), file=sys.stderr)
    return 0


def _resolve_kernel(spec: str):
    """Resolve ``--kernel module:attr`` to a plan or kernel function."""
    import importlib

    mod_name, _, attr = spec.partition(":")
    if not mod_name or not attr:
        raise SystemExit(
            f"error: --kernel expects 'module:attr', got {spec!r}"
        )
    try:
        mod = importlib.import_module(mod_name)
        return getattr(mod, attr)
    except (ImportError, AttributeError) as exc:
        raise SystemExit(f"error: cannot resolve {spec!r}: {exc}")


def _cmd_analyze(args) -> int:
    from .analyze import (KernelLaunchPlan, Report, analyze_contracts,
                          analyze_kernels, analyze_netlists, analyze_plan,
                          analyze_prove, lint_kernel)

    report = Report()
    if args.kernel:
        for spec in args.kernel:
            target = _resolve_kernel(spec)
            if isinstance(target, KernelLaunchPlan):
                report.extend(analyze_plan(target))
            elif callable(target):
                report.extend(lint_kernel(target))
            else:
                raise SystemExit(
                    f"error: {spec!r} is neither a KernelLaunchPlan "
                    "nor a kernel function"
                )
    run_all = args.all or not (args.kernels or args.netlists
                               or args.kernel or args.contracts
                               or args.prove)
    if args.kernels or run_all:
        report.extend(analyze_kernels())
    if args.netlists or run_all:
        report.extend(analyze_netlists())
    if args.contracts or run_all:
        report.extend(analyze_contracts())
    if args.prove:
        report.extend(analyze_prove())
    if args.format == "json":
        print(report.to_json(verbose=args.verbose, indent=2))
    else:
        print(report.render(verbose=args.verbose))
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Bitwise Parallel Bulk Computation for "
                    "Smith-Waterman (IPDPS-W 2017 reproduction)",
    )
    parser.add_argument(
        "--fault-plan", metavar="PATH", default=None,
        help="run the command under a deterministic fault-injection "
             "plan (JSON file of seeded per-site rules; see "
             "docs/RESILIENCE.md)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("score", help="bulk-score FASTA pairs")
    p.add_argument("queries", help="FASTA file of query sequences")
    p.add_argument("subjects", help="FASTA file of subject sequences")
    p.add_argument("--all-vs-all", action="store_true",
                   help="cross every query with every subject")
    _add_scoring_args(p)
    p.set_defaults(func=_cmd_score)

    p = sub.add_parser("screen",
                       help="threshold screening with alignments")
    p.add_argument("queries")
    p.add_argument("subjects")
    p.add_argument("--threshold", "-t", type=int, required=True,
                   help="report pairs scoring above this tau")
    p.add_argument("--all-vs-all", action="store_true")
    _add_scoring_args(p)
    p.set_defaults(func=_cmd_screen)

    p = sub.add_parser("match", help="bulk (k-mismatch) string search")
    p.add_argument("patterns", help="FASTA file of patterns")
    p.add_argument("texts", help="FASTA file of texts")
    p.add_argument("-k", type=int, default=0,
                   help="allowed mismatches (default 0 = exact)")
    p.add_argument("--word-bits", type=int, default=64,
                   choices=(8, 16, 32, 64))
    p.set_defaults(func=_cmd_match)

    p = sub.add_parser("experiments",
                       help="regenerate the paper's tables/figures")
    p.add_argument("names", nargs="*", default=[])
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser(
        "index",
        help="build and search an on-disk tiered index "
             "(see docs/SEARCH.md)")
    isub = p.add_subparsers(dest="index_command", required=True)

    pb = isub.add_parser("build",
                         help="stream FASTA into a sharded index")
    pb.add_argument("fasta", help="FASTA file of database sequences")
    pb.add_argument("out", help="index directory to create")
    pb.add_argument("--k", type=int, default=None,
                    help="k-mer size for the minimizer seeds "
                         "(default 16 for DNA, 6 for protein)")
    pb.add_argument("--minimizer-window", type=int, default=8,
                    metavar="W",
                    help="k-mers per minimizer window (default 8)")
    pb.add_argument("--shard-chars", type=int, default=1 << 24,
                    help="characters per shard; bounds peak memory of "
                         "build and search (default 16Mi)")
    pb.add_argument("--alphabet", choices=("dna", "protein"),
                    default="dna",
                    help="database alphabet (default dna)")
    pb.add_argument("--ambiguous", default="strict",
                    choices=("strict", "replace", "mask", "skip"),
                    help="ambiguity-code policy (default strict = "
                         "reject; mask rewrites protein B/Z/J to X)")
    pb.add_argument("--verify", action="store_true",
                    help="CRC-check every shard after writing")
    pb.set_defaults(func=_cmd_index_build)

    ps = isub.add_parser(
        "search",
        help="three-tier search: minimizer prefilter -> BPBC screen "
             "-> traceback")
    ps.add_argument("index", help="index directory (from 'index build')")
    ps.add_argument("queries", help="FASTA file of query sequences")
    ps.add_argument("--threshold", "-t", type=int, default=0,
                    help="report entries scoring strictly above this "
                         "tau (default 0)")
    ps.add_argument("--min-seeds", type=int, default=1,
                    help="minimum shared minimizers for an entry to "
                         "be screened (default 1; 0 = exact brute "
                         "force)")
    ps.add_argument("--window", type=int, default=None,
                    help="tier-1 text window chars (default: sized "
                         "from the longest query; too-small values "
                         "are an error)")
    ps.add_argument("--top-k", type=int, default=None,
                    help="keep only the best K hits per query")
    ps.add_argument("--no-align", dest="align", action="store_false",
                    help="skip tier-2 tracebacks (scores only)")
    ps.add_argument("--stats", action="store_true",
                    help="print per-tier survivor counts and "
                         "wall-clock to stderr")
    ps.add_argument("--verify", action="store_true",
                    help="CRC-check each shard while searching")
    _add_scoring_args(ps)
    ps.set_defaults(func=_cmd_index_search)

    p = sub.add_parser(
        "serve",
        help="run the micro-batching alignment server "
             "(client: python -m repro.serve.client)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7421,
                   help="TCP port (0 = ephemeral; default 7421)")
    p.add_argument("--engine", default="bpbc",
                   choices=("bpbc", "bpbc-jit", "numpy", "gpusim",
                            "resilient"),
                   help="scoring backend (default bpbc; bpbc-jit pins "
                        "the repro.jit compiled cell evaluator; "
                        "resilient scores through the engine fallback "
                        "chain)")
    p.add_argument("--workers", type=int, default=2,
                   help="engine worker threads (default 2)")
    p.add_argument("--shard-workers", type=int, default=1,
                   help="shard each batch across this many processes "
                        "(bpbc/bpbc-jit/numpy engines; default 1 = off)")
    p.add_argument("--word-bits", type=int, default=64,
                   choices=(8, 16, 32, 64))
    p.add_argument("--max-queue", type=int, default=1024,
                   help="pending-request bound; beyond it submissions "
                        "are rejected (default 1024)")
    p.add_argument("--max-batch", type=int, default=None,
                   help="lanes per micro-batch (default: word bits)")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="latency trigger for partial batches "
                        "(default 2 ms)")
    p.add_argument("--bin-granularity", type=int, default=16,
                   help="length-bin rounding; sequences padded by < "
                        "this many sentinel positions (default 16)")
    p.add_argument("--cache-size", type=int, default=4096,
                   help="result-cache entries, 0 disables "
                        "(default 4096)")
    p.add_argument("--resilient", action="store_true",
                   help="attach the engine fallback chain: batches the "
                        "primary engine fails are rescored instead of "
                        "failed, breaker state shows in stats")
    p.add_argument("--max-retries", type=int, default=1,
                   help="rescue retries per failed batch "
                        "(default 1; needs --resilient)")
    p.add_argument("--slo-ms", type=float, default=None,
                   help="latency SLO in ms: enables the adaptive "
                        "scheduler (admission control, batch shaping, "
                        "engine/width hints; default off)")
    p.add_argument("--transport", default="auto",
                   choices=("auto", "shm", "pickle"),
                   help="shard transport for --shard-workers > 1 "
                        "(shm = zero-copy shared memory; default auto)")
    p.add_argument("--match", type=int, default=2,
                   help="default-scheme match score (default 2)")
    p.add_argument("--mismatch", type=int, default=1,
                   help="default-scheme mismatch penalty (default 1)")
    p.add_argument("--gap", type=int, default=1,
                   help="default-scheme linear gap penalty (default 1)")
    _add_alphabet_args(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "cluster",
        help="multi-node serving: boot a local cluster, route "
             "batches with failover, or probe node health")
    csub = p.add_subparsers(dest="cluster_command", required=True)

    pc = csub.add_parser(
        "serve",
        help="spawn serve nodes from a topology (or N ephemeral "
             "nodes) and keep them up; resolved topology JSON goes "
             "to stdout")
    pc.add_argument("--topology", default=None,
                    help="TOML/JSON topology file (default: --nodes "
                         "ephemeral bpbc nodes)")
    pc.add_argument("--nodes", type=int, default=3,
                    help="node count when no topology file is given "
                         "(default 3)")
    pc.set_defaults(func=_cmd_cluster_serve)

    pc = csub.add_parser(
        "route",
        help="score FASTA pairs through a coordinator with "
             "consistent-hash routing and node failover (TSV out)")
    pc.add_argument("queries", help="FASTA file of query sequences")
    pc.add_argument("subjects", help="FASTA file of subjects")
    pc.add_argument("--topology", default=None,
                    help="connect to running nodes from this "
                         "topology file (concrete ports)")
    pc.add_argument("--local", type=int, default=3,
                    help="without --topology: spawn this many "
                         "transient local nodes (default 3)")
    pc.add_argument("--all-vs-all", action="store_true",
                    help="cross every query with every subject")
    pc.add_argument("--replication", type=int, default=2,
                    help="preferred owners per cache key (default 2)")
    pc.add_argument("--deadline-s", type=float, default=30.0,
                    help="per-batch reroute budget before degrading "
                         "to the in-process fallback (default 30)")
    pc.add_argument("--status", action="store_true",
                    help="print cluster stats JSON to stderr after")
    pc.add_argument("--match", type=int, default=2,
                    help="match score c1 (default 2)")
    pc.add_argument("--mismatch", type=int, default=1,
                    help="mismatch penalty c2 (default 1)")
    pc.add_argument("--gap", type=int, default=1,
                    help="linear gap penalty (default 1)")
    _add_alphabet_args(pc)
    pc.set_defaults(func=_cmd_cluster_route)

    pc = csub.add_parser(
        "status",
        help="probe every node in a topology and print the "
             "cluster + per-node stats snapshot (exit 1 if any "
             "node is unhealthy)")
    pc.add_argument("--topology", required=True,
                    help="TOML/JSON topology file (concrete ports)")
    pc.add_argument("--replication", type=int, default=2,
                    help="preferred owners per cache key (default 2)")
    pc.set_defaults(func=_cmd_cluster_status)

    p = sub.add_parser(
        "analyze",
        help="race-detect, lint, and verify kernels and netlists")
    p.add_argument("--kernels", action="store_true",
                   help="lint + race-trace the shipped kernels")
    p.add_argument("--netlists", action="store_true",
                   help="verify SW-cell netlists against the op-count "
                        "table")
    p.add_argument("--contracts", action="store_true",
                   help="lint cross-layer contracts (fault-site "
                        "literals vs the catalogue, engine-name "
                        "registries vs each other)")
    p.add_argument("--prove", action="store_true",
                   help="exhaustively prove every shipped cell netlist "
                        "bit-exact against the scalar reference at "
                        "small widths, and the score_bits pairings "
                        "overflow-sound (seconds; not part of --all)")
    p.add_argument("--all", action="store_true",
                   help="run every fast pass — kernels, netlists, "
                        "contracts (default when no flag given)")
    p.add_argument("--kernel", action="append", default=[],
                   metavar="MODULE:ATTR",
                   help="analyze a specific kernel function or "
                        "KernelLaunchPlan (repeatable)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (default text)")
    p.add_argument("--verbose", action="store_true", default=True,
                   help="print notes as well as findings (default)")
    p.add_argument("--quiet", dest="verbose", action="store_false",
                   help="print only errors and warnings")
    p.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.fault_plan is None:
        return args.func(args)
    # Chaos mode: the whole command runs under the installed plan
    # (shard executors forward it into their worker processes).
    from .resilience.faults import FaultPlan

    with FaultPlan.from_file(args.fault_plan):
        return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
