"""Coordinator behaviour over in-process serve nodes.

These tests run real TCP round trips but keep the nodes in-process
(threaded servers on ephemeral ports) — the subprocess harness has its
own suite (``test_harness.py``) and the chaos battery
(``tests/chaos/test_cluster_chaos.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (ClusterCoordinator, ClusterDegradedError,
                           RemoteNode)
from repro.resilience.faults import FaultPlan
from repro.serve import AlignmentServer, AlignmentService
from repro.serve.client import fresh_request_ids
from repro.swa.scoring import DEFAULT_SCHEME, ScoringScheme
from repro.swa.sequential import sw_matrix

PAIRS = [("ACGTACGT", "ACGTTGCA"), ("GATTACA", "GATTACA"),
         ("AAAACCCC", "AAAATCCC"), ("ACACACAC", "CACACACA"),
         ("TTTTTTTT", "TTTTTTTT"), ("ACGT", "TGCA")]

EXPECTED = [int(sw_matrix(q, s, DEFAULT_SCHEME).max())
            for q, s in PAIRS]


@pytest.fixture
def trio():
    """Three running in-process serve nodes + their service handles."""
    services, servers, nodes = [], [], []
    try:
        for i in range(3):
            service = AlignmentService(workers=1, max_wait_ms=1.0)
            service.start()
            services.append(service)
            server = AlignmentServer(service, host="127.0.0.1", port=0)
            server.__enter__()
            servers.append(server)
            host, port = server.address
            nodes.append(RemoteNode(f"n{i}", host, port,
                                    reset_after_s=0.2))
    except OSError as exc:  # pragma: no cover - sandboxed environments
        for server in servers:
            server.__exit__(None, None, None)
        for service in services:
            service.stop()
        pytest.skip(f"cannot bind localhost sockets here: {exc}")
    yield nodes, services
    for server in servers:
        server.__exit__(None, None, None)
    for service in services:
        service.stop()


def test_scores_match_reference(trio):
    nodes, _ = trio
    with ClusterCoordinator(nodes) as coord:
        got = coord.score_batch(PAIRS)
    assert list(got) == EXPECTED
    assert got.dtype == np.int64
    status = coord.status()["cluster"]
    assert status["routed"] == len(PAIRS)
    assert status["rerouted"] == status["degraded"] == 0


def test_empty_batch(trio):
    nodes, _ = trio
    with ClusterCoordinator(nodes) as coord:
        assert coord.score_batch([]).shape == (0,)


def test_routing_is_cache_local(trio):
    """A repeated pair lands on the same node, whose LRU answers it:
    cluster-wide cache hits grow with replays."""
    nodes, services = trio
    with ClusterCoordinator(nodes, replication=1) as coord:
        coord.score_batch(PAIRS)
        hits_before = sum(s.cache.hits for s in services)
        coord.score_batch(PAIRS)
        hits_after = sum(s.cache.hits for s in services)
    assert hits_after - hits_before == len(PAIRS)


def test_owners_are_stable_and_replicated(trio):
    nodes, _ = trio
    with ClusterCoordinator(nodes, replication=2) as coord:
        owners = coord.owners("ACGTACGT", "ACGTTGCA")
        assert len(owners) == 2
        assert owners == coord.owners("ACGTACGT", "ACGTTGCA")


def test_dead_node_reroutes_bit_identically(trio):
    nodes, _ = trio
    # Point one node at a dead port: connects fail organically.
    nodes[0] = RemoteNode(nodes[0].name, nodes[0].host, 1,
                          connect_timeout_s=0.5)
    with ClusterCoordinator(nodes, deadline_s=20.0) as coord:
        got = coord.score_batch(PAIRS)
    assert list(got) == EXPECTED
    status = coord.status()["cluster"]
    assert status["routed"] == len(PAIRS)
    # Only pairs owned by the dead node rerouted; the breaker tripped
    # after failure_threshold attempts at most.
    assert status["rerouted"] >= 1


def test_all_nodes_down_degrades_in_process(trio):
    nodes, _ = trio
    dead = [RemoteNode(n.name, n.host, 1, connect_timeout_s=0.2,
                       failure_threshold=1) for n in nodes]
    with ClusterCoordinator(dead, deadline_s=10.0) as coord:
        got = coord.score_batch(PAIRS)
    assert list(got) == EXPECTED
    status = coord.status()["cluster"]
    assert status["degraded"] == len(PAIRS)
    assert status["shed"] == 0


def test_shed_without_fallback_is_typed(trio):
    nodes, _ = trio
    dead = [RemoteNode(n.name, n.host, 1, connect_timeout_s=0.2,
                       failure_threshold=1) for n in nodes]
    with ClusterCoordinator(dead, deadline_s=10.0,
                            fallback=None) as coord:
        with pytest.raises(ClusterDegradedError) as excinfo:
            coord.score_batch(PAIRS)
    assert excinfo.value.pair_indices == tuple(range(len(PAIRS)))
    assert coord.status()["cluster"]["shed"] == len(PAIRS)


def test_request_ids_are_reused_across_reroutes(trio):
    """Explicit request IDs thread through: replaying the same batch
    with the same IDs is answered from the idempotency index."""
    nodes, _ = trio
    ids = fresh_request_ids(len(PAIRS))
    with ClusterCoordinator(nodes) as coord:
        first = coord.score_batch(PAIRS, request_ids=ids)
        again = coord.score_batch(PAIRS, request_ids=ids)
    assert list(first) == list(again) == EXPECTED
    per_node = coord.status()["per_node"]
    assert sum(n["duplicates"] for n in per_node) == len(PAIRS)


def test_request_ids_length_mismatch():
    node = RemoteNode("a", "127.0.0.1", 1)
    coord = ClusterCoordinator([node])
    with pytest.raises(ValueError, match="request_ids"):
        coord.score_batch(PAIRS, request_ids=["only-one"])


def test_mispick_costs_locality_not_correctness(trio):
    nodes, _ = trio
    with ClusterCoordinator(nodes) as coord:
        with FaultPlan.single("cluster.route.mispick"):
            got = coord.score_batch(PAIRS)
    assert list(got) == EXPECTED
    assert coord.status()["cluster"]["mispicks"] == len(PAIRS)


def test_probes_reopen_a_recovered_node(trio):
    nodes, _ = trio
    victim = nodes[0]
    for _ in range(3):
        victim.breaker.record_failure()
    assert victim.breaker.state == "open"
    with ClusterCoordinator(nodes) as coord:
        health = coord.probe_once()
    assert all(health.values())
    assert victim.breaker.state == "closed"


def test_probe_loop_runs_and_stops(trio):
    import time

    nodes, _ = trio
    coord = ClusterCoordinator(nodes)
    coord.start_probes(interval_s=0.05)
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if all(n.probes_ok > 0 for n in nodes):
            break
        time.sleep(0.02)
    coord.close()
    assert all(n.probes_ok > 0 for n in nodes)


def test_non_default_scheme_travels_the_wire(trio):
    nodes, _ = trio
    scheme = ScoringScheme(match_score=3, mismatch_penalty=2,
                           gap_penalty=2)
    expected = [int(sw_matrix(q, s, scheme).max()) for q, s in PAIRS]
    with ClusterCoordinator(nodes) as coord:
        got = coord.score_batch(PAIRS, scheme)
    assert list(got) == expected


def test_protein_scheme_travels_the_wire(trio):
    from repro.core.matrices import BLOSUM62
    from repro.core.protein import (ProteinScheme,
                                    subst_gotoh_batch_max_scores)

    nodes, _ = trio
    scheme = ProteinScheme(BLOSUM62, gap_open=11, gap_extend=1)
    pairs = [("MKVLAT", "MKVLAT"), ("HEAGAWGHEE", "PAWHEAE")]
    expected = []
    for q, s in pairs:
        x = scheme.alphabet.encode(q)[None, :]
        y = scheme.alphabet.encode(s)[None, :]
        expected.append(int(subst_gotoh_batch_max_scores(x, y,
                                                         scheme)[0]))
    with ClusterCoordinator(nodes) as coord:
        got = coord.score_batch(pairs, scheme)
    assert list(got) == expected


def test_constructor_validation():
    with pytest.raises(ValueError, match="at least one node"):
        ClusterCoordinator([])
    with pytest.raises(ValueError, match="replication"):
        ClusterCoordinator([RemoteNode("a", "127.0.0.1", 1)],
                           replication=0)
    with pytest.raises(ValueError, match="duplicate"):
        ClusterCoordinator([RemoteNode("a", "127.0.0.1", 1),
                            RemoteNode("a", "127.0.0.1", 2)])
