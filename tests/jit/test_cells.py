"""Tests for repro.jit.cells: cached cell factories and step kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitsliced import BitSlicedUInt
from repro.core.netlist import build_sw_cell_netlist
from repro.jit import (
    CStep,
    JitError,
    NumpyStep,
    cc_available,
    compiled_sw_cell,
    sw_wavefront_step,
)
from repro.jit.cbackend import STEP_SYMBOL

needs_cc = pytest.mark.skipif(not cc_available(),
                              reason="no C compiler on this machine")


def _planes(vals, s, w=64):
    return list(BitSlicedUInt.from_ints(np.asarray(vals), s, w).data)


class TestCompiledSwCell:
    def test_memoised_same_object(self):
        assert compiled_sw_cell(8, 1, 2, 1) is compiled_sw_cell(8, 1, 2, 1)

    def test_numpy_ints_normalise(self):
        a = compiled_sw_cell(8, 1, 2, 1, word_bits=64)
        b = compiled_sw_cell(np.int64(8), np.uint8(1), np.int32(2),
                             np.int64(1), word_bits=np.int64(64))
        assert a is b

    def test_distinct_word_bits_distinct_objects(self):
        assert compiled_sw_cell(8, 1, 2, 1, word_bits=32) \
            is not compiled_sw_cell(8, 1, 2, 1, word_bits=64)

    def test_matches_netlist_evaluate(self, rng):
        s, P = 8, 150
        cell = compiled_sw_cell(s, 1, 2, 1, word_bits=64)
        net = build_sw_cell_netlist(s, 1, 2, 1)
        hi = (1 << s) - 2
        ins = {
            "up": _planes(rng.integers(0, hi, P), s),
            "left": _planes(rng.integers(0, hi, P), s),
            "diag": _planes(rng.integers(0, hi, P), s),
            "x": _planes(rng.integers(0, 4, P), 2),
            "y": _planes(rng.integers(0, 4, P), 2),
        }
        np.testing.assert_array_equal(
            np.stack(cell.evaluate(ins)),
            np.stack(net.evaluate(ins, word_bits=64)))


class TestSwWavefrontStep:
    def test_memoised_same_object(self):
        assert sw_wavefront_step(6, 1, 2, 1, 2, 64) \
            is sw_wavefront_step(6, 1, 2, 1, 2, 64)

    def test_unknown_backend_rejected(self):
        with pytest.raises(JitError):
            sw_wavefront_step(6, 1, 2, 1, 2, 64, backend="cuda")

    def test_numpy_backend(self):
        step = sw_wavefront_step(6, 1, 2, 1, 2, 64, backend="numpy")
        assert isinstance(step, NumpyStep)
        assert step.backend == "numpy"
        assert step.source.startswith("def ")

    @needs_cc
    def test_c_backend(self):
        step = sw_wavefront_step(6, 1, 2, 1, 2, 64, backend="c")
        assert isinstance(step, CStep)
        assert step.backend == "c"
        assert STEP_SYMBOL in step.source
        assert callable(step.fn)

    def test_auto_backend_resolves(self):
        step = sw_wavefront_step(7, 1, 2, 1, 2, 64, backend="auto")
        expected = CStep if cc_available() else NumpyStep
        assert isinstance(step, expected)
