"""Asynchronous micro-batching alignment service over the BPBC engines.

The batch engines of :mod:`repro.core` score 64 pairs per lane word —
but only if someone *fills* the lanes.  This package is that someone:
a continuously running service that accepts individual ``(query,
subject, scheme, tau)`` requests, micro-batches them on a
size-or-latency trigger, length-bins and lane-packs them, fans batches
out to a worker pool over a pluggable engine, memoises exact scores in
an LRU, and reports occupancy/latency statistics.

Layers (each its own module):

* :mod:`~repro.serve.queue` — bounded request queue, futures,
  deadlines, backpressure.
* :mod:`~repro.serve.packer` — length binning and lane packing.
* :mod:`~repro.serve.engine_pool` — worker threads, engine registry.
* :mod:`~repro.serve.cache` — keyed LRU over exact scores.
* :mod:`~repro.serve.scheduler` — SLO-aware adaptive scheduling:
  cost-model latency prediction, admission control, dispatch hints.
* :mod:`~repro.serve.stats` — service counters and percentiles.
* :mod:`~repro.serve.service` — the :class:`AlignmentService` facade.
* :mod:`~repro.serve.server` / :mod:`~repro.serve.client` — a
  line-JSON TCP front end (``python -m repro serve``) and its client
  (``python -m repro.serve.client``).
"""

from .cache import ResultCache, cache_key
from .engine_pool import (ENGINES, EnginePool, ShardedEngine,
                          resolve_engine)
from .errors import (AdmissionRejected, DeadlineExceededError,
                     EngineFailedError, QueueFullError, ServeError,
                     ServiceStoppedError)
from .packer import PackedBatch, bin_requests, pack_requests
from .queue import AlignmentRequest, AlignmentResult, RequestQueue
from .scheduler import AdaptiveScheduler
from .server import DEFAULT_PORT, AlignmentServer
from .service import AlignmentService
from .stats import ServiceStats

__all__ = [
    "AlignmentService",
    "AlignmentServer",
    "AlignmentRequest",
    "AlignmentResult",
    "RequestQueue",
    "PackedBatch",
    "pack_requests",
    "bin_requests",
    "EnginePool",
    "ShardedEngine",
    "ENGINES",
    "resolve_engine",
    "ResultCache",
    "cache_key",
    "ServiceStats",
    "AdaptiveScheduler",
    "ServeError",
    "QueueFullError",
    "AdmissionRejected",
    "DeadlineExceededError",
    "ServiceStoppedError",
    "EngineFailedError",
    "DEFAULT_PORT",
]
