"""Experiment: Figure 1 — the three stages of the 8x8 bit transpose.

Reconstructs the paper's figure by tracking, for a symbolic 8x8
matrix whose (i, j) entry is labelled ``i,j``, where every element
sits after each swap round — and verifies the final stage is the
exact transpose.
"""

from __future__ import annotations

import numpy as np

from ..core.transpose import transpose_schedule
from .report import render_table

__all__ = ["run", "stages_symbolic"]


def stages_symbolic() -> list[np.ndarray]:
    """Symbolic element positions after each 8x8 transpose step.

    Returns four ``(8, 8)`` arrays of ``"i,j"`` labels: initial state
    and the state after each of the three swap rounds (the panels of
    Figure 1).  Entry ``[w, b]`` is the label of the element currently
    held in bit ``b`` of word ``w``.
    """
    state = np.empty((8, 8), dtype=object)
    for i in range(8):
        for j in range(8):
            state[i, j] = f"{i},{j}"
    stages = [state.copy()]
    for step in transpose_schedule(8):
        for op in step:
            for b in range(8):
                if (op.mask >> b) & 1:
                    hb = b + op.k
                    a_hi = state[op.i, hb]
                    state[op.i, hb] = state[op.j, b]
                    state[op.j, b] = a_hi
        stages.append(state.copy())
    return stages


def run(verbose: bool = True) -> str:
    """Render Figure 1's four panels."""
    stages = stages_symbolic()
    names = ["initial", "after step 1 (k=4)", "after step 2 (k=2)",
             "after step 3 (k=1)"]
    parts = []
    for name, st in zip(names, stages):
        rows = [[f"A[{w}]"] + [st[w, b] for b in range(7, -1, -1)]
                for w in range(8)]
        parts.append(render_table(
            ["word"] + [f"bit{b}" for b in range(7, -1, -1)], rows,
            title=f"Figure 1 — {name}"))
    final = stages[-1]
    transposed_ok = all(final[w, b] == f"{b},{w}"
                        for w in range(8) for b in range(8))
    out = "\n\n".join(parts) + (
        f"\n\nfinal state is the exact transpose: {transposed_ok}"
    )
    if verbose:
        print(out)
    return out
