"""Tests for repro.index.search: the three-tier pipeline."""

from __future__ import annotations

import pytest

from repro.core.encoding import decode
from repro.filter.database import search_database
from repro.index.search import TieredSearch, search_index
from repro.index.store import build_index
from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_max_score
from repro.workloads.dna import random_strand

SCHEME = ScoringScheme(2, 1, 1)


@pytest.fixture
def db(rng):
    """25 random entries with a query planted into three of them."""
    entries = [random_strand(rng, int(n))
               for n in rng.integers(150, 600, size=25)]
    query = random_strand(rng, 32)
    entries[4][10:42] = query
    entries[9][110:142] = query
    mutated = query.copy()
    mutated[::6] = (mutated[::6] + 1) % 4  # ~6 substitutions
    entries[20][100:132] = mutated
    return entries, query


@pytest.fixture
def indexed(tmp_path, db):
    entries, query = db
    idx = build_index(((f"e{i}", s) for i, s in enumerate(entries)),
                      tmp_path / "idx", k=10, w=5, shard_chars=2000)
    return idx, entries, query


class TestTier0:
    def test_planted_entries_found(self, indexed):
        idx, entries, query = indexed
        res = TieredSearch(idx, scheme=SCHEME, min_seeds=1,
                           threshold=40).search([query])
        found = {h.db_index for h in res.hits}
        assert {4, 9} <= found

    def test_prefilter_prunes(self, indexed):
        idx, entries, query = indexed
        res = TieredSearch(idx, scheme=SCHEME, min_seeds=2,
                           threshold=40).search([query])
        t0 = res.stats.tier("tier0 minimizer prefilter")
        assert t0.candidates_in == len(entries)
        assert 0 < t0.candidates_out < len(entries)

    def test_query_shorter_than_k_rejected(self, indexed):
        idx, _, _ = indexed
        with pytest.raises(ValueError, match="shorter"):
            TieredSearch(idx, scheme=SCHEME).search(["ACGT"])
        # ... but fine in exact mode.
        res = TieredSearch(idx, scheme=SCHEME, min_seeds=0,
                           threshold=7).search(["ACGT"], align=False)
        assert res.stats.queries == 1


class TestExactness:
    def test_scores_are_exact(self, indexed):
        """Tier-1 windowing must never clip a planted alignment."""
        idx, entries, query = indexed
        res = TieredSearch(idx, scheme=SCHEME, min_seeds=1,
                           threshold=30).search([query])
        for h in res.hits:
            want = sw_max_score(decode(query), decode(entries[h.db_index]),
                                SCHEME)
            assert h.score == want

    def test_min_seeds_zero_equals_brute_force(self, indexed):
        idx, entries, query = indexed
        res = TieredSearch(idx, scheme=SCHEME, min_seeds=0,
                           threshold=0).search([query], align=False)
        brute = search_database([query], entries, SCHEME)
        tiered = {(h.query_index, h.db_index): h.score
                  for h in res.hits}
        for b in brute:
            key = (b.query_index, b.db_index)
            # threshold=0 reports strictly positive scores only.
            if b.score > 0:
                assert tiered[key] == b.score
            else:
                assert key not in tiered
        assert len(tiered) == sum(1 for b in brute if b.score > 0)

    def test_alignment_matches_score_and_coordinates(self, indexed):
        idx, entries, query = indexed
        res = TieredSearch(idx, scheme=SCHEME, min_seeds=2,
                           threshold=50).search([query])
        assert res.hits
        for h in res.hits:
            assert h.alignment.score == h.score
            y0, y1 = h.alignment.y_start, h.alignment.y_end
            entry = entries[h.db_index]
            assert 0 <= y0 < y1 <= len(entry)
            # The aligned text region really is at those coordinates.
            region = decode(entry[y0:y1])
            assert h.alignment.aligned_y.replace("-", "") == region

    def test_hit_straddling_window_boundary(self, tmp_path, rng):
        """A planted hit crossing a tier-1 window edge must be exact
        (the overlap soundness carried over from windows_for)."""
        query = random_strand(rng, 24)
        entry = random_strand(rng, 4000)
        # Worst case: plant right where the default window would cut.
        entry[1990:2014] = query
        idx = build_index([("x", entry)], tmp_path / "idx", k=8, w=4)
        res = TieredSearch(idx, scheme=SCHEME, min_seeds=1,
                           threshold=40, window=200).search([query])
        assert res.hits and res.hits[0].score == 48


class TestApi:
    def test_threshold_strictly_above(self, indexed):
        idx, entries, query = indexed
        exact = TieredSearch(idx, scheme=SCHEME, min_seeds=0,
                             threshold=0).search([query], align=False)
        scores = sorted(h.score for h in exact.hits)
        tau = scores[len(scores) // 2]
        res = TieredSearch(idx, scheme=SCHEME, min_seeds=0,
                           threshold=tau).search([query], align=False)
        assert all(h.score > tau for h in res.hits)
        assert len(res.hits) == sum(1 for s in scores if s > tau)

    def test_top_k_and_ranking(self, indexed):
        idx, entries, query = indexed
        res = TieredSearch(idx, scheme=SCHEME, min_seeds=0,
                           threshold=0).search([query], top_k=3,
                                               align=False)
        assert len(res.hits) == 3
        assert [h.score for h in res.hits] == sorted(
            (h.score for h in res.hits), reverse=True)
        best = max(sw_max_score(decode(query), decode(e), SCHEME)
                   for e in entries)
        assert res.hits[0].score == best

    def test_multiple_queries(self, indexed):
        idx, entries, query = indexed
        q2 = entries[7][:40].copy()
        res = TieredSearch(idx, scheme=SCHEME, min_seeds=2,
                           threshold=40).search([query, q2])
        by_q = {h.query_index for h in res.hits}
        assert by_q == {0, 1}
        assert any(h.query_index == 1 and h.db_index == 7
                   for h in res.hits)

    def test_search_index_convenience_and_path(self, indexed):
        idx, entries, query = indexed
        res = search_index(str(idx.path), [query], top_k=1,
                           scheme=SCHEME, min_seeds=1, threshold=40)
        assert res.hits[0].score == 64

    def test_entry_ids_on_hits(self, indexed):
        idx, entries, query = indexed
        res = TieredSearch(idx, scheme=SCHEME, min_seeds=2,
                           threshold=50).search([query])
        for h in res.hits:
            assert h.entry_id == f"e{h.db_index}"

    def test_unsound_window_rejected(self, indexed):
        idx, _, query = indexed
        with pytest.raises(ValueError, match="unsound"):
            TieredSearch(idx, scheme=SCHEME,
                         window=10).search([query])

    def test_validation(self, indexed):
        idx, _, query = indexed
        with pytest.raises(ValueError):
            TieredSearch(idx, min_seeds=-1)
        with pytest.raises(ValueError):
            TieredSearch(idx, threshold=-1)
        with pytest.raises(ValueError):
            TieredSearch(idx, max_batch_pairs=0)
        with pytest.raises(ValueError):
            TieredSearch(idx, workers=0)
        with pytest.raises(ValueError):
            TieredSearch(idx).search([])
        with pytest.raises(ValueError):
            TieredSearch(idx).search([query], top_k=0)

    def test_stats_shape(self, indexed):
        idx, entries, query = indexed
        res = TieredSearch(idx, scheme=SCHEME, min_seeds=1,
                           threshold=40).search([query])
        names = [t.name for t in res.stats.tiers]
        assert names == ["tier0 minimizer prefilter",
                         "tier1 bpbc screen", "tier2 traceback"]
        assert res.stats.shards_searched == idx.n_shards
        assert res.stats.engine_batches
        rendered = res.stats.render()
        assert "tier1" in rendered and "ms" in rendered


class TestExecutionModes:
    def test_non_resilient_matches(self, indexed):
        idx, entries, query = indexed
        a = TieredSearch(idx, scheme=SCHEME, min_seeds=1, threshold=30,
                         resilient=False).search([query], align=False)
        b = TieredSearch(idx, scheme=SCHEME, min_seeds=1, threshold=30,
                         resilient=True).search([query], align=False)
        assert ([(h.db_index, h.score) for h in a.hits]
                == [(h.db_index, h.score) for h in b.hits])

    def test_workers_match(self, indexed):
        idx, entries, query = indexed
        a = TieredSearch(idx, scheme=SCHEME, min_seeds=1,
                         threshold=30).search([query], align=False)
        b = TieredSearch(idx, scheme=SCHEME, min_seeds=1, threshold=30,
                         workers=2,
                         max_batch_pairs=8).search([query], align=False)
        assert ([(h.db_index, h.score) for h in a.hits]
                == [(h.db_index, h.score) for h in b.hits])

    def test_small_batch_pairs_match(self, indexed):
        idx, entries, query = indexed
        a = TieredSearch(idx, scheme=SCHEME, min_seeds=0, threshold=0,
                         max_batch_pairs=3).search([query], align=False)
        b = TieredSearch(idx, scheme=SCHEME, min_seeds=0,
                         threshold=0).search([query], align=False)
        assert ([(h.db_index, h.score) for h in a.hits]
                == [(h.db_index, h.score) for h in b.hits])

    def test_verify_mode_searches_clean_index(self, indexed):
        idx, entries, query = indexed
        res = TieredSearch(idx, scheme=SCHEME, min_seeds=2,
                           threshold=50, verify=True).search([query])
        assert res.hits
