"""Benchmarks for Table I: full vs reduced bit-matrix transpose.

The paper's Table I claims the reduced schedule cuts the 32x32
transpose from 560 operations (s = 32) to 127 (s = 2).  These
benchmarks measure the corresponding wall-clock on batches of blocks,
per reduced width, plus the W2B conversion path built on top.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoding import (encode_batch_bit_transposed,
                                 encode_batch_via_bit_matrix)
from repro.core.transpose import (transpose_bits, transpose_bits_reduced,
                                  untranspose_bits_reduced)

BLOCKS = 256


def _blocks(s: int, word_bits: int = 32) -> np.ndarray:
    rng = np.random.default_rng(1)
    return rng.integers(0, 1 << s, size=(BLOCKS, word_bits),
                        dtype=np.uint64).astype(np.uint32)


@pytest.mark.benchmark(group="table1-transpose32")
def test_full_transpose_32(benchmark):
    data = _blocks(32)
    benchmark(transpose_bits, data, 32)


@pytest.mark.benchmark(group="table1-transpose32")
@pytest.mark.parametrize("s", [16, 8, 4, 2])
def test_reduced_transpose_32(benchmark, s):
    data = _blocks(s)
    benchmark(transpose_bits_reduced, data, 32, s)


@pytest.mark.benchmark(group="table1-untranspose")
@pytest.mark.parametrize("s", [8, 2])
def test_reduced_untranspose_32(benchmark, s):
    planes = transpose_bits_reduced(_blocks(s), 32, s)
    benchmark(untranspose_bits_reduced, planes, 32, s)


@pytest.mark.benchmark(group="table1-w2b")
def test_w2b_direct_packing(benchmark):
    rng = np.random.default_rng(2)
    codes = rng.integers(0, 4, size=(1024, 256), dtype=np.uint8)
    benchmark(encode_batch_bit_transposed, codes, 32)


@pytest.mark.benchmark(group="table1-w2b")
def test_w2b_via_bit_matrix(benchmark):
    rng = np.random.default_rng(2)
    codes = rng.integers(0, 4, size=(1024, 256), dtype=np.uint8)
    benchmark(encode_batch_via_bit_matrix, codes, 32)
