"""Benchmarks for Table IV: SWA engine running time, per implementation.

Machine-scale analogue of the paper's main table: the bitwise BPBC
engine at 32 and 64-bit word widths against the wordwise baseline, on
identical workloads, plus the W2B/B2W conversion steps separately
(the table's column structure).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitops import lane_count, word_dtype
from repro.core.encoding import encode_batch_bit_transposed
from repro.core.sw_bpbc import bpbc_sw_wavefront
from repro.core.transpose import untranspose_bits_reduced
from repro.swa.numpy_batch import sw_batch_max_scores

from .conftest import SCHEME


def _planes(batch, w):
    XH, XL = encode_batch_bit_transposed(batch.X, w)
    YH, YL = encode_batch_bit_transposed(batch.Y, w)
    return XH, XL, YH, YL


@pytest.mark.benchmark(group="table4-swa")
@pytest.mark.parametrize("word_bits", [32, 64])
def test_bitwise_swa(benchmark, bench_batch, word_bits):
    XH, XL, YH, YL = _planes(bench_batch, word_bits)
    result = benchmark(bpbc_sw_wavefront, XH, XL, YH, YL, SCHEME,
                       word_bits)
    assert result.max_scores.shape[0] >= bench_batch.pairs


@pytest.mark.benchmark(group="table4-swa")
def test_wordwise_swa(benchmark, bench_batch):
    scores = benchmark(sw_batch_max_scores, bench_batch.X,
                       bench_batch.Y, SCHEME)
    assert scores.shape == (bench_batch.pairs,)


@pytest.mark.benchmark(group="table4-w2b")
@pytest.mark.parametrize("word_bits", [32, 64])
def test_w2b_step(benchmark, bench_batch, word_bits):
    def convert():
        encode_batch_bit_transposed(bench_batch.X, word_bits)
        encode_batch_bit_transposed(bench_batch.Y, word_bits)

    benchmark(convert)


@pytest.mark.benchmark(group="table4-b2w")
@pytest.mark.parametrize("word_bits", [32, 64])
def test_b2w_step(benchmark, bench_batch, word_bits):
    XH, XL, YH, YL = _planes(bench_batch, word_bits)
    result = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, word_bits)
    s = result.s
    groups = lane_count(bench_batch.pairs, word_bits)
    dt = word_dtype(word_bits)
    padded = np.zeros((groups, word_bits), dtype=dt)
    padded[:, :s] = result.score_planes.T
    benchmark(untranspose_bits_reduced, padded, word_bits, s)
