"""Tests for repro.core.encoding: DNA codes and layout conversions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitops import BitOpsError, OpCounter
from repro.core.encoding import (
    CHAR_BITS,
    CODE_OF,
    decode,
    decode_batch_bit_transposed,
    encode,
    encode_batch,
    encode_batch_bit_transposed,
    encode_batch_via_bit_matrix,
    pack_2bit,
    unpack_2bit,
)

from ..conftest import ALL_WIDTHS

dna_strings = st.text(alphabet="ACGT", min_size=1, max_size=64)


class TestScalarCodec:
    def test_paper_encoding(self):
        # "A = 00, G = 10, C = 11, and T = 01"
        assert CODE_OF["A"] == 0b00
        assert CODE_OF["G"] == 0b10
        assert CODE_OF["C"] == 0b11
        assert CODE_OF["T"] == 0b01
        assert CHAR_BITS == 2

    def test_roundtrip(self):
        s = "ATTCGGCATAG"
        assert decode(encode(s)) == s

    def test_lowercase_accepted(self):
        np.testing.assert_array_equal(encode("acgt"), encode("ACGT"))

    def test_invalid_base_rejected(self):
        with pytest.raises(BitOpsError):
            encode("ATXG")

    def test_decode_range_check(self):
        with pytest.raises(BitOpsError):
            decode(np.array([0, 4]))

    @given(dna_strings)
    def test_roundtrip_property(self, s):
        assert decode(encode(s)) == s


class TestBatchCodec:
    def test_encode_batch(self):
        m = encode_batch(["ACGT", "TTTT"])
        assert m.shape == (2, 4)
        np.testing.assert_array_equal(m[1], CODE_OF["T"])

    def test_ragged_batch_rejected(self):
        with pytest.raises(BitOpsError):
            encode_batch(["ACG", "AC"])

    def test_empty_batch_rejected(self):
        with pytest.raises(BitOpsError):
            encode_batch([])


class TestBitTranspose:
    @pytest.mark.parametrize("w", ALL_WIDTHS)
    def test_roundtrip(self, rng, w):
        P, n = 45, 33
        codes = rng.integers(0, 4, size=(P, n), dtype=np.uint8)
        H, L = encode_batch_bit_transposed(codes, w)
        assert H.shape == (n, -(-P // w))
        back = decode_batch_bit_transposed(H, L, w, count=P)
        np.testing.assert_array_equal(back, codes)

    def test_plane_semantics(self):
        codes = np.array([[0b10], [0b01], [0b11]], dtype=np.uint8)
        H, L = encode_batch_bit_transposed(codes, 32)
        assert H[0, 0] == 0b101  # high bits of instances 2,1,0
        assert L[0, 0] == 0b110

    @pytest.mark.parametrize("w", ALL_WIDTHS)
    def test_via_bit_matrix_agrees(self, rng, w):
        """The paper's register-level transpose path must produce the
        same planes as the direct packing."""
        for P, n in [(1, 1), (w, 5), (w + 3, 17), (3 * w, 2)]:
            codes = rng.integers(0, 4, size=(P, n), dtype=np.uint8)
            H1, L1 = encode_batch_bit_transposed(codes, w)
            H2, L2 = encode_batch_via_bit_matrix(codes, w)
            np.testing.assert_array_equal(H1, H2)
            np.testing.assert_array_equal(L1, L2)

    def test_via_bit_matrix_counts_127_ops_per_block(self, rng):
        """One 32x32 reduced s=2 transpose (127 ops) per position per
        lane group — the W2B cost the paper states."""
        c = OpCounter()
        codes = rng.integers(0, 4, size=(32, 10), dtype=np.uint8)
        encode_batch_via_bit_matrix(codes, 32, counter=c)
        assert c.ops == 127  # counted once per schedule (vectorised)

    def test_rejects_non_2bit_codes(self):
        with pytest.raises(BitOpsError):
            encode_batch_bit_transposed(np.array([[4]]), 32)

    def test_rejects_1d(self):
        with pytest.raises(BitOpsError):
            encode_batch_bit_transposed(np.zeros(4, dtype=np.uint8), 32)

    def test_plane_shape_mismatch_rejected(self):
        H = np.zeros((3, 1), dtype=np.uint32)
        L = np.zeros((4, 1), dtype=np.uint32)
        with pytest.raises(BitOpsError):
            decode_batch_bit_transposed(H, L, 32)

    def test_padding_lanes_are_zero(self, rng):
        codes = rng.integers(0, 4, size=(5, 6), dtype=np.uint8)
        H, L = encode_batch_bit_transposed(codes, 32)
        # Lanes 5..31 must be zero (code A) in every position.
        mask = np.uint32((0xFFFFFFFF << 5) & 0xFFFFFFFF)
        assert not (H & mask).any()
        assert not (L & mask).any()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 70), st.integers(1, 40),
           st.sampled_from(ALL_WIDTHS), st.integers(0, 2**31))
    def test_roundtrip_property(self, P, n, w, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 4, size=(P, n), dtype=np.uint8)
        H, L = encode_batch_bit_transposed(codes, w)
        np.testing.assert_array_equal(
            decode_batch_bit_transposed(H, L, w, count=P), codes
        )


class TestPacked2Bit:
    def test_roundtrip(self, rng):
        codes = rng.integers(0, 4, size=(7, 13), dtype=np.uint8)
        packed = pack_2bit(codes)
        assert packed.shape == (7, 4)  # ceil(13/4) bytes
        np.testing.assert_array_equal(unpack_2bit(packed, 13), codes)

    def test_quarter_memory(self, rng):
        codes = rng.integers(0, 4, size=(1, 400), dtype=np.uint8)
        assert pack_2bit(codes).nbytes * 4 == codes.nbytes

    def test_range_check(self):
        with pytest.raises(BitOpsError):
            pack_2bit(np.array([5], dtype=np.uint8))

    def test_unpack_too_many(self):
        with pytest.raises(BitOpsError):
            unpack_2bit(np.zeros(2, dtype=np.uint8), 9)

    def test_worked_example(self):
        # "ATCG" = codes 0,1,3,2 -> byte 0b10_11_01_00.
        packed = pack_2bit(encode("ATCG"))
        assert packed[0] == 0b10110100
