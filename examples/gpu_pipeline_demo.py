"""The five-step GPU pipeline (§V) on the SIMT simulator.

    python examples/gpu_pipeline_demo.py

Launches the paper's H2G -> W2B -> SWA -> B2W -> G2H pipeline on the
simulated GTX TITAN X, prints the per-kernel cost profile (instruction
counts, memory transactions, barriers, bank conflicts), and feeds the
measured operation counts into the analytic model to estimate what the
run would cost on the paper's real hardware.
"""

from __future__ import annotations

import numpy as np

from repro import ScoringScheme, run_gpu_pipeline
from repro.gpusim.device import GTX_TITAN_X
from repro.perfmodel.model import Table4Model
from repro.swa.numpy_batch import sw_batch_max_scores
from repro.workloads.datasets import paper_workload


def main() -> None:
    scheme = ScoringScheme(match_score=2, mismatch_penalty=1,
                           gap_penalty=1)
    batch = paper_workload(n=48, pairs=64, m=12, seed=3)
    print(f"simulating the 5-step pipeline for {batch.pairs} pairs "
          f"(m={batch.m}, n={batch.n}) on {GTX_TITAN_X.name} "
          f"({GTX_TITAN_X.total_cores} cores)...")

    scores, report = run_gpu_pipeline(batch.X, batch.Y, scheme,
                                      word_bits=32)
    gold = sw_batch_max_scores(batch.X, batch.Y, scheme)
    assert (scores == gold).all()
    print("scores verified against the CPU gold engine: OK\n")

    print(f"score width s = {report.s} bits; "
          f"{report.cell_updates} DP cell updates")
    print(f"Step 1 (H2G): {report.h2g_bytes} bytes")
    for name, stats in (("Step 2 (W2B)", report.w2b),
                        ("Step 3 (SWA)", report.swa),
                        ("Step 4 (B2W)", report.b2w)):
        print(f"{name}: {stats.blocks} blocks x <= {stats.threads} "
              f"threads, {stats.instructions} instructions, "
              f"{stats.barriers} barriers, "
              f"{stats.gmem.load_transactions} load / "
              f"{stats.gmem.store_transactions} store transactions, "
              f"{stats.smem.bank_conflict_cycles} bank-conflict cycles")
    print(f"Step 5 (G2H): {report.g2h_bytes} bytes")

    # What would this cost on the paper's hardware?  The calibrated
    # model's GPU rate converts instruction counts to time.
    model = Table4Model()
    rate = model.rates["bitwise32/gpu/swa"].value
    est_ms = report.swa.instructions / rate * 1e3
    print(f"\nanalytic estimate for the SWA kernel on the paper's "
          f"TITAN X: {est_ms * 1e3:.2f} us "
          f"(calibrated rate {rate:.2e} ops/s)")


if __name__ == "__main__":
    main()
