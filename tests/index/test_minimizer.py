"""Tests for repro.index.minimizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.minimizer import (MAX_K, hash_kmers, kmer_values,
                                   minimizers)


class TestKmerValues:
    def test_matches_bruteforce(self, rng):
        codes = rng.integers(0, 4, size=50).astype(np.uint8)
        k = 5
        vals = kmer_values(codes, k)
        assert vals.shape == (46,)
        for i in range(46):
            want = 0
            for c in codes[i:i + k]:
                want = (want << 2) | int(c)
            assert int(vals[i]) == want

    def test_short_sequence_empty(self):
        assert kmer_values(np.zeros(3, dtype=np.uint8), 4).size == 0

    def test_k_bounds(self):
        codes = np.zeros(40, dtype=np.uint8)
        with pytest.raises(ValueError):
            kmer_values(codes, 0)
        with pytest.raises(ValueError):
            kmer_values(codes, MAX_K + 1)
        assert kmer_values(codes, MAX_K).size == 40 - MAX_K + 1

    def test_max_k_uses_full_word(self):
        codes = np.full(MAX_K, 3, dtype=np.uint8)  # all-C k-mer
        assert int(kmer_values(codes, MAX_K)[0]) == (1 << 64) - 1

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            kmer_values(np.zeros((2, 8), dtype=np.uint8), 4)


class TestHash:
    def test_injective_on_distinct_kmers(self, rng):
        vals = rng.integers(0, 1 << 30, size=1000).astype(np.uint64)
        vals = np.unique(vals)
        assert np.unique(hash_kmers(vals)).size == vals.size

    def test_deterministic(self):
        v = np.arange(16, dtype=np.uint64)
        np.testing.assert_array_equal(hash_kmers(v), hash_kmers(v))

    def test_poly_a_not_zero(self):
        # Code 0 k-mers (poly-A) must not hash to the global minimum
        # pattern — that would make every window pick the same seed.
        assert int(hash_kmers(np.zeros(1, dtype=np.uint64))[0]) != 0


class TestMinimizers:
    def test_one_per_window(self, rng):
        codes = rng.integers(0, 4, size=200).astype(np.uint8)
        k, w = 8, 5
        pos, vals = minimizers(codes, k, w)
        hashes = hash_kmers(kmer_values(codes, k))
        # Every window of w consecutive k-mers contains a selected
        # position (the defining property of a minimizer scheme).
        selected = set(pos.tolist())
        for start in range(hashes.shape[0] - w + 1):
            assert selected & set(range(start, start + w))
        # And every selected value is the hash at its position.
        np.testing.assert_array_equal(vals, hashes[pos])

    def test_selected_are_window_minima(self, rng):
        codes = rng.integers(0, 4, size=120).astype(np.uint8)
        w = 4
        pos, _ = minimizers(codes, 6, w)
        hashes = hash_kmers(kmer_values(codes, 6))
        n = hashes.shape[0]
        for p in pos.tolist():
            # p must be the minimum of at least one w-window
            # containing it (that is what selected it).
            assert any(
                int(hashes[p]) == int(hashes[s:s + w].min())
                for s in range(max(0, p - w + 1), min(p, n - w) + 1))

    def test_positions_sorted_unique(self, rng):
        codes = rng.integers(0, 4, size=300).astype(np.uint8)
        pos, _ = minimizers(codes, 10, 6)
        assert np.all(np.diff(pos) > 0)

    def test_short_sequences(self):
        pos, vals = minimizers(np.zeros(3, dtype=np.uint8), 8, 4)
        assert pos.size == 0 and vals.size == 0
        # Shorter than a full window: one minimizer, the global min.
        codes = np.array([0, 1, 2, 3, 1], dtype=np.uint8)
        pos, vals = minimizers(codes, 4, 8)
        assert pos.size == 1

    def test_w_validation(self):
        with pytest.raises(ValueError):
            minimizers(np.zeros(10, dtype=np.uint8), 4, 0)

    def test_shared_substring_shares_minimizers(self, rng):
        """The property tier 0 relies on: a long exact shared
        substring yields at least one common (position-shifted)
        minimizer value."""
        core = rng.integers(0, 4, size=64).astype(np.uint8)
        left = rng.integers(0, 4, size=37).astype(np.uint8)
        text = np.concatenate([left, core,
                               rng.integers(0, 4, size=50)]).astype(
                                   np.uint8)
        _, qvals = minimizers(core, 8, 4)
        _, tvals = minimizers(text, 8, 4)
        assert np.intersect1d(qvals, tvals).size > 0


@settings(max_examples=25)
@given(st.integers(1, 12), st.integers(1, 8), st.integers(0, 2 ** 32))
def test_minimizer_cover_property(k, w, seed):
    """For random (k, w, sequence): selections are sorted, in range,
    and cover every window."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 4, size=int(rng.integers(1, 80))).astype(
        np.uint8)
    pos, vals = minimizers(codes, k, w)
    n_kmers = max(0, codes.size - k + 1)
    if n_kmers == 0:
        assert pos.size == 0
        return
    assert pos.size > 0
    assert np.all((pos >= 0) & (pos < n_kmers))
    selected = set(pos.tolist())
    for start in range(max(1, n_kmers - w + 1)):
        assert selected & set(range(start, min(start + w, n_kmers)))
