"""Tests for repro.gpusim.timing: the roofline kernel-time model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.device import GTX_280, GTX_TITAN_X
from repro.gpusim.kernel import KernelStats
from repro.gpusim.memory import MemoryStats
from repro.gpusim.timing import (
    BARRIER_CYCLES,
    estimate_kernel_time,
    estimate_transfer_time,
)


def _stats(instructions=0, threads=32, load_tx=0, store_tx=0,
           conflicts=0, barriers=0) -> KernelStats:
    s = KernelStats(blocks=1, threads=threads,
                    instructions=instructions, barriers=barriers)
    s.gmem = MemoryStats(load_transactions=load_tx,
                         store_transactions=store_tx)
    s.smem = MemoryStats(bank_conflict_cycles=conflicts)
    return s


class TestKernelEstimate:
    def test_compute_bound_kernel(self):
        st = _stats(instructions=10_000_000, threads=3584)
        est = estimate_kernel_time(st, GTX_TITAN_X)
        assert est.bound == "compute"
        # 1e7 instructions over 3584 cores at 1 GHz.
        assert est.compute_s == pytest.approx(1e7 / (3584 * 1e9))

    def test_memory_bound_kernel(self):
        st = _stats(instructions=100, threads=32, load_tx=1_000_000)
        est = estimate_kernel_time(st, GTX_TITAN_X)
        assert est.bound == "memory"
        assert est.memory_s == pytest.approx(
            1_000_000 * 128 / (336.5 * 1e9)
        )

    def test_total_is_roofline_plus_overheads(self):
        st = _stats(instructions=1000, threads=32, load_tx=10,
                    conflicts=5, barriers=2)
        est = estimate_kernel_time(st, GTX_TITAN_X)
        assert est.total_s == pytest.approx(
            max(est.compute_s, est.memory_s)
            + 5 / 1e9 + 2 * BARRIER_CYCLES / 1e9
        )

    def test_oversubscription_scales_time(self):
        base = _stats(instructions=1_000_000, threads=3584)
        over = _stats(instructions=1_000_000, threads=2 * 3584)
        t1 = estimate_kernel_time(base, GTX_TITAN_X).compute_s
        t2 = estimate_kernel_time(over, GTX_TITAN_X).compute_s
        assert t2 > t1

    def test_weaker_device_is_slower(self):
        st = _stats(instructions=1_000_000, threads=512)
        fast = estimate_kernel_time(st, GTX_TITAN_X).total_s
        slow = estimate_kernel_time(st, GTX_280).total_s
        assert slow > fast

    def test_empty_launch_rejected(self):
        with pytest.raises(ValueError):
            estimate_kernel_time(_stats(threads=0), GTX_TITAN_X)

    def test_real_pipeline_stats_work(self, rng):
        from repro.kernels.pipeline import run_gpu_pipeline
        from repro.swa.scoring import ScoringScheme

        X = rng.integers(0, 4, (32, 4), dtype=np.uint8)
        Y = rng.integers(0, 4, (32, 9), dtype=np.uint8)
        _, report = run_gpu_pipeline(X, Y, ScoringScheme(2, 1, 1))
        est = estimate_kernel_time(report.swa, GTX_TITAN_X)
        assert est.total_s > 0
        assert est.bound in ("compute", "memory")


class TestTransferEstimate:
    def test_latency_floor(self):
        assert estimate_transfer_time(0, GTX_TITAN_X) == \
            pytest.approx(10e-6)

    def test_bandwidth_term(self):
        t = estimate_transfer_time(6_000_000_000, GTX_TITAN_X)
        assert t == pytest.approx(10e-6 + 1.0, rel=1e-6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            estimate_transfer_time(-1, GTX_TITAN_X)
