"""Diagnostics and reports for the :mod:`repro.analyze` passes.

Every analysis pass — the race detector, the kernel lint, the netlist
verifier — emits :class:`Diagnostic` records into a shared
:class:`Report`.  A diagnostic carries the pass/rule that produced it
(``rule``), the artifact it concerns (``subject`` — a kernel or
netlist name), a severity, and a human-readable message; optional
``location`` pins it to a source line or memory address.

Severities follow compiler convention:

* ``error`` — a finding: the artifact is (or may be) broken; the CLI
  exits non-zero.
* ``warning`` — suspicious but not necessarily wrong.
* ``note`` — informational output (measured values, pass summaries).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Severity", "Diagnostic", "Report"]


class Severity(enum.Enum):
    """How bad a diagnostic is; orders ``NOTE < WARNING < ERROR``."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    def __lt__(self, other: "Severity") -> bool:
        order = [Severity.NOTE, Severity.WARNING, Severity.ERROR]
        if not isinstance(other, Severity):
            return NotImplemented  # type: ignore[return-value]
        return order.index(self) < order.index(other)


@dataclass(frozen=True)
class Diagnostic:
    """One finding (or note) from an analysis pass."""

    rule: str            # e.g. "race.write-write", "lint.barrier-divergence"
    severity: Severity
    subject: str         # kernel or netlist name
    message: str
    location: str = ""   # "file:line", "shared[12]", "gate 41", ...

    def render(self) -> str:
        """One-line compiler-style rendering."""
        where = f" ({self.location})" if self.location else ""
        return (f"{self.severity.value}: [{self.rule}] {self.subject}: "
                f"{self.message}{where}")

    def to_dict(self) -> dict[str, str]:
        """JSON-ready mapping (severity as its string value)."""
        return {"rule": self.rule, "severity": self.severity.value,
                "subject": self.subject, "message": self.message,
                "location": self.location}


@dataclass
class Report:
    """An ordered collection of diagnostics with exit-code semantics."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        """Append one diagnostic."""
        self.diagnostics.append(diag)

    def extend(self, diags: "Report | list[Diagnostic]") -> None:
        """Append many diagnostics (from a list or another report)."""
        if isinstance(diags, Report):
            diags = diags.diagnostics
        self.diagnostics.extend(diags)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        """All diagnostics of exactly this severity."""
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        """Error-severity findings only."""
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        """Warning-severity findings only."""
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 when :attr:`ok`, 1 otherwise."""
        return 0 if self.ok else 1

    def dedup(self) -> "Report":
        """A new report with exact-duplicate diagnostics removed.

        Order is preserved (first occurrence wins).  Useful when the
        same check runs over overlapping artifact sets — e.g. a
        netlist proven both standalone and as a jit re-ingestion
        source.
        """
        seen: set[Diagnostic] = set()
        out: list[Diagnostic] = []
        for d in self.diagnostics:
            if d not in seen:
                seen.add(d)
                out.append(d)
        return Report(out)

    def to_json(self, verbose: bool = True, indent: int | None = None,
                ) -> str:
        """Machine-readable rendering for ``--format json``.

        Mirrors :meth:`render`: ``verbose=False`` drops notes, errors
        and warnings always appear.  The summary block carries the
        same counts as the text footer plus the exit-code verdict.
        """
        diags = [d for d in self.diagnostics
                 if verbose or d.severity is not Severity.NOTE]
        payload: dict[str, Any] = {
            "diagnostics": [d.to_dict() for d in diags],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "notes": len(self.by_severity(Severity.NOTE)),
                "ok": self.ok,
            },
        }
        return json.dumps(payload, indent=indent)

    def render(self, verbose: bool = True) -> str:
        """Multi-line rendering plus a summary footer.

        ``verbose=False`` hides notes (errors and warnings always
        print).
        """
        lines = [d.render() for d in self.diagnostics
                 if verbose or d.severity is not Severity.NOTE]
        n_err, n_warn = len(self.errors), len(self.warnings)
        n_note = len(self.by_severity(Severity.NOTE))
        lines.append(
            f"analyze: {n_err} error(s), {n_warn} warning(s), "
            f"{n_note} note(s)"
        )
        return "\n".join(lines)
