"""repro.index — tiered billion-character database search.

An on-disk, memory-mapped sequence index (packed 2-bit shards plus a
seeded minimizer posting index, :mod:`repro.index.store`) and the
three-tier search pipeline over it (:mod:`repro.index.search`):
minimizer prefilter -> bulk BPBC screen -> full traceback.  The
canonical FASTA reader/writer lives in :mod:`repro.index.fasta`.

CLI: ``python -m repro index build`` / ``python -m repro index
search``.  See ``docs/SEARCH.md`` for the file format and the
exactness guarantees.
"""

from .fasta import (FastaError, FastaRecord, iter_fasta, read_fasta,
                    records_to_batch, write_fasta)
from .minimizer import hash_kmers, kmer_values, minimizers
from .search import (TieredHit, TieredSearch, TieredSearchResult,
                     search_index)
from .stats import SearchStats, TierStats
from .store import (FORMAT_VERSION, DatabaseIndex, IndexFormatError,
                    IndexIntegrityError, Shard, build_index)

__all__ = [
    "FastaError", "FastaRecord", "iter_fasta", "read_fasta",
    "write_fasta", "records_to_batch",
    "kmer_values", "hash_kmers", "minimizers",
    "FORMAT_VERSION", "IndexFormatError", "IndexIntegrityError",
    "Shard", "DatabaseIndex", "build_index",
    "TieredHit", "TieredSearch", "TieredSearchResult", "search_index",
    "SearchStats", "TierStats",
]
