"""End-to-end integration tests across subsystem boundaries."""

from __future__ import annotations

import numpy as np

from repro.core.encoding import decode
from repro.filter.database import search_database
from repro.filter.screening import screen_pairs
from repro.filter.stats import fit_null_model, suggest_threshold
from repro.kernels.pipeline import run_gpu_pipeline
from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_max_score
from repro.workloads.dna import MutationModel, homologous_pairs
from repro.workloads.fasta import FastaRecord, read_fasta, write_fasta

SCHEME = ScoringScheme(2, 1, 1)


class TestFastaToScreening:
    def test_fasta_roundtrip_into_screen(self, rng, tmp_path):
        """FASTA on disk -> batch -> screening -> alignments whose
        coordinates index back into the original records."""
        X, Y, labels = homologous_pairs(
            rng, 12, 16, 64, related_fraction=0.5,
            model=MutationModel(0, 0, 0),
        )
        qp = tmp_path / "q.fa"
        sp = tmp_path / "s.fa"
        write_fasta(qp, [FastaRecord(f"q{i}", "", decode(X[i]))
                         for i in range(12)])
        write_fasta(sp, [FastaRecord(f"s{i}", "", decode(Y[i]))
                         for i in range(12)])
        Xr = np.stack([r.codes for r in read_fasta(qp)])
        Yr = np.stack([r.codes for r in read_fasta(sp)])
        np.testing.assert_array_equal(Xr, X)
        result = screen_pairs(Xr, Yr, 20, SCHEME)
        for hit in result.hits:
            a = hit.alignment
            subj = decode(Y[hit.pair_index])
            assert subj[a.y_start:a.y_end] == \
                a.aligned_y.replace("-", "")


class TestStatsToSearch:
    def test_threshold_drives_database_search(self, rng):
        """Fit a null model, derive tau, run a ragged database search,
        and check the tau separates planted from random entries."""
        null = fit_null_model(12, 48, SCHEME, samples=256, seed=4)
        tau = suggest_threshold(null, alpha=1e-3)
        q = rng.integers(0, 4, 12, dtype=np.uint8)
        db = []
        planted = []
        for i in range(6):
            entry = rng.integers(0, 4, 40 + 8 * i, dtype=np.uint8)
            if i % 2 == 0:
                pos = int(rng.integers(0, len(entry) - 12))
                entry[pos:pos + 12] = q
                planted.append(i)
            db.append(entry)
        hits = search_database([q], db, SCHEME)
        for hit in hits:
            gold = sw_max_score(q, db[hit.db_index], SCHEME)
            assert hit.score == gold
            if hit.db_index in planted:
                assert hit.score > tau


class TestSimulatorAgainstEngines:
    def test_pipeline_and_host_engine_on_screening_workload(self, rng):
        X, Y, labels = homologous_pairs(
            rng, 33, 8, 24, related_fraction=0.4,
        )
        gpu_scores, report = run_gpu_pipeline(X, Y, SCHEME,
                                              word_bits=32)
        host = screen_pairs(X, Y, 0, SCHEME,
                            align_survivors=False).scores
        np.testing.assert_array_equal(gpu_scores, host)
        assert report.swa.blocks == 2  # ceil(33/32) lane groups


class TestCliOnGeneratedWorkload:
    def test_score_screen_match_agree(self, rng, tmp_path, capsys):
        from repro.cli import main

        X, Y, _ = homologous_pairs(rng, 6, 10, 40,
                                   related_fraction=1.0,
                                   model=MutationModel(0, 0, 0))
        qp = tmp_path / "q.fa"
        sp = tmp_path / "s.fa"
        write_fasta(qp, [FastaRecord(f"q{i}", "", decode(X[i]))
                         for i in range(6)])
        write_fasta(sp, [FastaRecord(f"s{i}", "", decode(Y[i]))
                         for i in range(6)])
        main(["score", str(qp), str(sp)])
        score_lines = capsys.readouterr().out.strip().splitlines()[1:]
        scores = {l.split("\t")[0]: int(l.split("\t")[2])
                  for l in score_lines}
        # Every pair has a planted exact copy: score = 2 * m.
        assert all(v == 20 for v in scores.values())
        main(["match", str(qp), str(sp)])
        match_lines = capsys.readouterr().out.strip().splitlines()[1:]
        assert all(l.split("\t")[3] != "-" for l in match_lines)
