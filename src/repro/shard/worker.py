"""Shard worker: spawn-safe engine construction + packed buffers.

Everything a shard needs to cross a process boundary travels as flat,
cheaply-picklable data: sequences ship as one packed ``uint8`` byte
buffer per side plus an ``int32`` length table (:class:`ShardPayload`),
and scores return as ``int64`` bytes.  No engine state, futures, or
open resources are ever pickled — each worker process constructs its
own engine from a name (or picklable callable) in :func:`init_worker`,
which the pool runs once per worker under *any* start method
(``fork``, ``spawn``, ``forkserver``).

Inside a worker, a shard's (possibly ragged) pairs are grouped into
length bins and sentinel-padded to the longest member of each bin —
the same exactness trick as :mod:`repro.serve.packer` (pad codes
mismatch everything, so padded cells only lose score).  A uniform
rectangular shard therefore takes the unpadded 2-bit fast path and is
numerically *identical*, call for call, to the single-process engine.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

import numpy as np

from ..core.encoding import (QUERY_PAD, SUBJECT_PAD,
                             encode_batch_bit_transposed,
                             encode_batch_char_planes)
from ..core.sw_bpbc import bpbc_sw_wavefront, bpbc_sw_wavefront_planes
from ..resilience.faults import FaultPlan, fault_point
from ..swa.affine import AffineScheme
from ..swa.numpy_batch import sw_batch_max_scores
from ..swa.scoring import ScoringScheme

__all__ = ["ShardPayload", "SHARD_ENGINES", "resolve_shard_engine",
           "as_contiguous_u8", "pack_shard", "unpack_side",
           "score_codes", "score_shard", "init_worker", "run_shard",
           "run_shard_shm"]


def as_contiguous_u8(arr) -> np.ndarray:
    """``arr`` itself when already C-contiguous ``uint8``, else a copy.

    The hot packing paths call this per row; the explicit flag check
    skips NumPy's conversion machinery entirely on the common case
    (rows of an already-contiguous code matrix), and the fallback is
    the same ``ascontiguousarray`` as before — byte-identical output
    either way.
    """
    if isinstance(arr, np.ndarray) and arr.dtype == np.uint8 \
            and arr.flags.c_contiguous:
        return arr
    return np.ascontiguousarray(arr, dtype=np.uint8)


@dataclass(frozen=True)
class ShardPayload:
    """One shard's pairs, flattened for cheap pickling.

    ``xbuf`` / ``ybuf`` concatenate the pairs' code arrays back to
    back; ``xlens`` / ``ylens`` are the ``int32`` length tables that
    split them again.  Scores come back in payload order, which the
    executor maps to submission order through its partition plan.
    """

    shard_id: int
    pairs: int
    xbuf: bytes
    xlens: bytes
    ybuf: bytes
    ylens: bytes


def pack_shard(shard_id: int, xs, ys) -> ShardPayload:
    """Flatten a shard's ragged pair list into a :class:`ShardPayload`."""
    xl = np.asarray([len(x) for x in xs], dtype=np.int32)
    yl = np.asarray([len(y) for y in ys], dtype=np.int32)
    xbuf = (np.concatenate([as_contiguous_u8(x) for x in xs])
            if len(xs) else np.empty(0, np.uint8))
    ybuf = (np.concatenate([as_contiguous_u8(y) for y in ys])
            if len(ys) else np.empty(0, np.uint8))
    return ShardPayload(shard_id=int(shard_id), pairs=len(xl),
                        xbuf=xbuf.tobytes(), xlens=xl.tobytes(),
                        ybuf=ybuf.tobytes(), ylens=yl.tobytes())


def unpack_side(buf: bytes, lens: bytes) -> list[np.ndarray]:
    """Split one side's packed buffer back into per-pair code arrays."""
    lengths = np.frombuffer(lens, dtype=np.int32)
    flat = np.frombuffer(buf, dtype=np.uint8)
    bounds = np.cumsum(lengths)
    if len(flat) != (bounds[-1] if len(bounds) else 0):
        raise ValueError(
            f"corrupt shard payload: {len(flat)} bytes vs "
            f"{int(bounds[-1]) if len(bounds) else 0} expected"
        )
    return np.split(flat, bounds[:-1])


def _score_bpbc(X: np.ndarray, Y: np.ndarray, scheme: ScoringScheme,
                word_bits: int, cell: str | None = None) -> np.ndarray:
    """BPBC wavefront scores for one rectangular (possibly sentinel-
    padded) batch — the same dispatch as the serve engine pool.

    Protein schemes route to the substitution cell (affine variants to
    the Gotoh engine) over ``pad_bits`` character planes; DNA affine
    schemes to the Gotoh engine; everything else takes the paper's
    2-bit (or sentinel-padded 3-bit) linear path.
    """
    if callable(getattr(scheme, "weights_key", None)):
        eps = scheme.alphabet.pad_bits
        Xp = encode_batch_char_planes(X, word_bits, char_bits=eps)
        Yp = encode_batch_char_planes(Y, word_bits, char_bits=eps)
        if scheme.is_affine:
            from ..core.affine_bpbc import bpbc_gotoh_wavefront_planes

            result = bpbc_gotoh_wavefront_planes(Xp, Yp, scheme,
                                                 word_bits, cell=cell)
        else:
            result = bpbc_sw_wavefront_planes(Xp, Yp, scheme, word_bits,
                                              cell=cell)
    elif isinstance(scheme, AffineScheme):
        from ..core.affine_bpbc import bpbc_gotoh_wavefront_planes

        padded = (X.size and X.max() > 3) or (Y.size and Y.max() > 3)
        eps = 3 if padded else 2
        result = bpbc_gotoh_wavefront_planes(
            encode_batch_char_planes(X, word_bits, char_bits=eps),
            encode_batch_char_planes(Y, word_bits, char_bits=eps),
            scheme, word_bits, cell=cell)
    elif (X.size and X.max() > 3) or (Y.size and Y.max() > 3):
        result = bpbc_sw_wavefront_planes(
            encode_batch_char_planes(X, word_bits),
            encode_batch_char_planes(Y, word_bits),
            scheme, word_bits, cell=cell)
    else:
        XH, XL = encode_batch_bit_transposed(X, word_bits)
        YH, YL = encode_batch_bit_transposed(Y, word_bits)
        result = bpbc_sw_wavefront(XH, XL, YH, YL, scheme, word_bits,
                                   cell=cell)
    return result.max_scores[:X.shape[0]]


def _score_bpbc_jit(X: np.ndarray, Y: np.ndarray, scheme: ScoringScheme,
                    word_bits: int) -> np.ndarray:
    # Pinned to the repro.jit compiled evaluator; each worker process
    # warms its own compiled-cell cache once in init_worker's engine.
    return _score_bpbc(X, Y, scheme, word_bits, cell="compiled")


def _score_numpy(X: np.ndarray, Y: np.ndarray, scheme: ScoringScheme,
                 word_bits: int) -> np.ndarray:
    # Sentinel codes never compare equal (and score the matrix minimum
    # through the padded weight table), so padding is exact here too.
    if callable(getattr(scheme, "weights_key", None)):
        from ..core.protein import subst_gotoh_batch_max_scores

        return subst_gotoh_batch_max_scores(X, Y, scheme)
    if isinstance(scheme, AffineScheme):
        from ..swa.affine import gotoh_batch_max_scores

        return gotoh_batch_max_scores(X, Y, scheme)
    return sw_batch_max_scores(X, Y, scheme)


#: Engines a shard worker can construct by name.  Values are callables
#: ``(X, Y, scheme, word_bits) -> (P,) scores`` over rectangular code
#: matrices that may carry sentinel padding.
SHARD_ENGINES = {
    "bpbc": _score_bpbc,
    "bpbc-jit": _score_bpbc_jit,
    "numpy": _score_numpy,
}


def resolve_shard_engine(engine):
    """Engine name or picklable callable -> shard engine callable."""
    if callable(engine):
        return engine
    try:
        return SHARD_ENGINES[engine]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown shard engine {engine!r}; expected one of "
            f"{sorted(SHARD_ENGINES)} or a callable"
        ) from None


def score_codes(engine_fn, xs, ys, scheme: ScoringScheme,
                word_bits: int, bin_granularity: int = 16) -> np.ndarray:
    """Score a ragged pair list through length bins.

    Pairs are grouped by rounded-up ``(m, n)`` (granularity ``g``),
    then each bin is padded only to its *longest member* — so a
    uniform-shape input produces exactly one unpadded engine call and
    mixed lengths waste < ``g`` sentinel positions per sequence.

    Sentinel codes come from the scheme's alphabet when it has one
    (protein pads 22/23), otherwise the classic DNA 4/5.
    """
    P = len(xs)
    out = np.zeros(P, dtype=np.int64)
    alph = getattr(scheme, "alphabet", None)
    qpad = alph.query_pad if alph is not None else QUERY_PAD
    spad = alph.subject_pad if alph is not None else SUBJECT_PAD
    g = bin_granularity
    bins: dict[tuple[int, int], list[int]] = {}
    for p in range(P):
        key = (-(-len(xs[p]) // g) * g, -(-len(ys[p]) // g) * g)
        bins.setdefault(key, []).append(p)
    for rows in bins.values():
        mb = max(len(xs[p]) for p in rows)
        nb = max(len(ys[p]) for p in rows)
        X = np.full((len(rows), mb), qpad, dtype=np.uint8)
        Y = np.full((len(rows), nb), spad, dtype=np.uint8)
        for r, p in enumerate(rows):
            X[r, :len(xs[p])] = xs[p]
            Y[r, :len(ys[p])] = ys[p]
        out[np.asarray(rows)] = engine_fn(X, Y, scheme, word_bits)
    return out


def score_shard(payload: ShardPayload, scheme: ScoringScheme, engine_fn,
                word_bits: int,
                bin_granularity: int = 16) -> tuple[int, np.ndarray, float]:
    """Score one payload; returns ``(shard_id, scores, elapsed_s)``."""
    t0 = time.perf_counter()
    xs = unpack_side(payload.xbuf, payload.xlens)
    ys = unpack_side(payload.ybuf, payload.ylens)
    scores = score_codes(engine_fn, xs, ys, scheme, word_bits,
                         bin_granularity)
    return payload.shard_id, scores, time.perf_counter() - t0


# -- process-pool entry points -----------------------------------------
# One engine per worker process, built by the pool initializer; the
# globals below exist only inside workers.

_ENGINE = None
_WORD_BITS = 64
_BIN_GRANULARITY = 16

#: How long the injected ``shard.worker.hang`` site sleeps — far past
#: any test/run timeout, short enough that a terminated pool reaps it.
_HANG_S = 60.0
#: Injected ``shard.worker.slow`` delay: results stay correct, but a
#: tight run deadline trips.
_SLOW_S = 0.05


def _injected_crash() -> None:  # pragma: no cover - kills the process
    # A hard worker death: no exception, no cleanup, no result.  The
    # parent's only signal is the shard's task never resolving.
    os._exit(23)


def _injected_hang() -> None:
    time.sleep(_HANG_S)


def _injected_slow() -> None:
    time.sleep(_SLOW_S)


def init_worker(engine, word_bits: int, bin_granularity: int,
                fault_plan: FaultPlan | None = None) -> None:
    """Pool initializer: construct this process's engine once.

    Also ignores SIGINT: a Ctrl-C lands on the whole foreground
    process group, and shutdown is the parent's job (it terminates
    the pool) — workers reacting too would just spray tracebacks.

    ``fault_plan`` is the parent's active :class:`FaultPlan` at pool
    construction, shipped explicitly so injection crosses the process
    boundary under *any* start method (``fork`` would inherit it,
    ``spawn`` would not).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    global _ENGINE, _WORD_BITS, _BIN_GRANULARITY
    _ENGINE = resolve_shard_engine(engine)
    _WORD_BITS = word_bits
    _BIN_GRANULARITY = bin_granularity
    if fault_plan is not None:
        fault_plan.install()


def run_shard(payload: ShardPayload,
              scheme: ScoringScheme) -> tuple[int, bytes, float]:
    """Pool task: score one shard with the per-worker engine.

    Returns ``(shard_id, int64 score bytes, elapsed_s)`` — flat data
    only, so the result pickles as cheaply as the payload did.
    """
    fault_point("shard.worker.crash", action=_injected_crash)
    fault_point("shard.worker.hang", action=_injected_hang)
    fault_point("shard.worker.slow", action=_injected_slow)
    fault_point("shard.worker.error")
    shard_id, scores, elapsed = score_shard(
        payload, scheme, _ENGINE, _WORD_BITS, _BIN_GRANULARITY)
    return shard_id, scores.tobytes(), elapsed


def run_shard_shm(ref, scheme: ScoringScheme) -> tuple[int, int, float]:
    """Pool task: score one shard addressed by a shared-memory ref.

    The zero-copy twin of :func:`run_shard`: sequences are read as
    ``np.frombuffer`` views straight out of the executor's shared
    segment and scores are written back into its reply region, so the
    only pickled traffic is the :class:`~repro.shard.shm.ShmShardRef`
    in and this ``(shard_id, pairs, elapsed_s)`` tuple out.  The same
    worker fault sites apply on this path — a chaos plan cannot be
    dodged by switching transports.
    """
    from .shm import attach_segment, read_side, write_scores

    fault_point("shard.worker.crash", action=_injected_crash)
    fault_point("shard.worker.hang", action=_injected_hang)
    fault_point("shard.worker.slow", action=_injected_slow)
    fault_point("shard.worker.error")
    t0 = time.perf_counter()
    buf = attach_segment(ref.segment).buf
    xs = read_side(buf, ref.xlens_off, ref.pairs, ref.xbuf_off,
                   ref.xbuf_bytes)
    ys = read_side(buf, ref.ylens_off, ref.pairs, ref.ybuf_off,
                   ref.ybuf_bytes)
    scores = score_codes(_ENGINE, xs, ys, scheme, _WORD_BITS,
                         _BIN_GRANULARITY)
    write_scores(buf, ref, scores)
    return ref.shard_id, ref.pairs, time.perf_counter() - t0
