"""Tests for repro.gpusim.kernel: lockstep execution, barriers, shuffles,
deadlock detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.device import GTX_280, GTX_TITAN_X
from repro.gpusim.errors import (GpuSimError, KernelDeadlock,
                                 LaunchConfigError)
from repro.gpusim.kernel import Barrier, Shfl, launch_kernel
from repro.gpusim.memory import GlobalMemory


def _gmem_with(name, arr):
    g = GlobalMemory()
    g.from_host(name, np.asarray(arr))
    return g


class TestBasicExecution:
    def test_every_thread_runs(self):
        def kern(ctx):
            ctx.gmem.store("out", ctx.global_thread_idx,
                           ctx.global_thread_idx * 2)
            yield Barrier()

        g = GlobalMemory()
        g.alloc("out", 12, np.int64)
        stats = launch_kernel(kern, 3, 4, g)
        np.testing.assert_array_equal(g.buffer("out"),
                                      np.arange(12) * 2)
        assert stats.blocks == 3
        assert stats.threads == 12

    def test_ctx_indices(self):
        seen = []

        def kern(ctx):
            seen.append((ctx.block_idx, ctx.thread_idx, ctx.lane,
                         ctx.warp))
            yield Barrier()

        launch_kernel(kern, 2, 40, GlobalMemory())
        assert (1, 39, 7, 1) in seen
        assert (0, 0, 0, 0) in seen

    def test_instruction_accounting(self):
        def kern(ctx):
            ctx.count_ops(5)
            yield Barrier()
            ctx.count_ops(2)

        stats = launch_kernel(kern, 2, 3, GlobalMemory())
        assert stats.instructions == 6 * 7

    def test_barrier_ordering(self):
        """Writes before a barrier are visible after it."""
        def kern(ctx):
            ctx.smem.store(ctx.thread_idx, ctx.thread_idx + 1)
            yield Barrier()
            left = ctx.smem.load((ctx.thread_idx - 1) % ctx.block_dim)
            ctx.gmem.store("out", ctx.global_thread_idx, left)
            yield Barrier()

        g = GlobalMemory()
        g.alloc("out", 4, np.int64)
        launch_kernel(kern, 1, 4, g, shared_words=4)
        np.testing.assert_array_equal(g.buffer("out"), [4, 1, 2, 3])

    def test_sequential_blocks_fresh_shared_memory(self):
        def kern(ctx):
            assert ctx.smem.load(0) == 0  # zero-initialised per block
            ctx.smem.store(0, 9)
            yield Barrier()

        launch_kernel(kern, 3, 1, GlobalMemory(), shared_words=1)


class TestLaunchValidation:
    def test_bad_dims(self):
        def kern(ctx):
            yield Barrier()

        with pytest.raises(LaunchConfigError):
            launch_kernel(kern, 0, 4, GlobalMemory())
        with pytest.raises(LaunchConfigError):
            launch_kernel(kern, 1, 0, GlobalMemory())

    def test_block_size_limit(self):
        def kern(ctx):
            yield Barrier()

        with pytest.raises(LaunchConfigError):
            launch_kernel(kern, 1, 513, GlobalMemory(), device=GTX_280)

    def test_shared_memory_limit(self):
        def kern(ctx):
            yield Barrier()

        with pytest.raises(Exception):
            launch_kernel(kern, 1, 1, GlobalMemory(),
                          shared_words=GTX_TITAN_X.shared_mem_bytes)


class TestDeadlockDetection:
    def test_divergent_exit_before_barrier(self):
        """Thread 0 skips the barrier other threads wait on — the
        classic divergent __syncthreads bug, caught not hung."""
        def kern(ctx):
            if ctx.thread_idx == 0:
                return
            yield Barrier()

        with pytest.raises(KernelDeadlock):
            launch_kernel(kern, 1, 4, GlobalMemory())

    def test_unbalanced_barrier_counts(self):
        def kern(ctx):
            yield Barrier()
            if ctx.thread_idx < 2:
                yield Barrier()

        with pytest.raises(KernelDeadlock):
            launch_kernel(kern, 1, 4, GlobalMemory())

    def test_mixed_commands_in_round(self):
        def kern(ctx):
            if ctx.thread_idx == 0:
                yield Barrier()
            else:
                yield Shfl("up", 1)

        with pytest.raises(KernelDeadlock):
            launch_kernel(kern, 1, 2, GlobalMemory())


class TestDeadlockEdgeCases:
    def test_thread_exits_mid_loop_before_barrier(self):
        """Thread 0 leaves a barrier-per-iteration loop early; the
        survivors wait on a barrier it will never issue."""
        def kern(ctx):
            for r in range(4):
                if ctx.thread_idx == 0 and r == 2:
                    return
                yield Barrier()

        with pytest.raises(KernelDeadlock) as exc:
            launch_kernel(kern, 1, 4, GlobalMemory())
        assert "terminated before a barrier" in str(exc.value)

    def test_zero_thread_block_is_launch_error(self):
        def kern(ctx):
            yield Barrier()

        with pytest.raises(LaunchConfigError):
            launch_kernel(kern, 1, 0, GlobalMemory())
        with pytest.raises(LaunchConfigError):
            launch_kernel(kern, 0, 0, GlobalMemory())

    def test_single_thread_block_never_deadlocks(self):
        """With one thread, early exit and lone barriers are both
        trivially synchronised."""
        def early_exit(ctx):
            if ctx.thread_idx == 0:
                return
            yield Barrier()

        stats = launch_kernel(early_exit, 3, 1, GlobalMemory())
        assert stats.barriers == 0

        def lone_barriers(ctx):
            yield Barrier()
            yield Barrier()

        stats = launch_kernel(lone_barriers, 1, 1, GlobalMemory())
        assert stats.barriers == 2

    def test_deadlock_raised_not_hung_with_tracer(self):
        """The deadlock path must fire identically under tracing."""
        from repro.analyze import RaceTracer

        def kern(ctx):
            if ctx.thread_idx == 0:
                return
            yield Barrier()

        with pytest.raises(KernelDeadlock):
            launch_kernel(kern, 1, 2, GlobalMemory(),
                          tracer=RaceTracer("kern"))


class TestShuffle:
    def test_shfl_up(self):
        def kern(ctx):
            got = yield Shfl("up", ctx.thread_idx, 1)
            ctx.gmem.store("out", ctx.global_thread_idx, got)

        g = GlobalMemory()
        g.alloc("out", 8, np.int64)
        launch_kernel(kern, 1, 8, g)
        # Lane 0 keeps its own value; lane k gets k-1.
        np.testing.assert_array_equal(g.buffer("out"),
                                      [0, 0, 1, 2, 3, 4, 5, 6])

    def test_shfl_down_delta2(self):
        def kern(ctx):
            got = yield Shfl("down", ctx.thread_idx, 2)
            ctx.gmem.store("out", ctx.global_thread_idx, got)

        g = GlobalMemory()
        g.alloc("out", 6, np.int64)
        launch_kernel(kern, 1, 6, g)
        np.testing.assert_array_equal(g.buffer("out"),
                                      [2, 3, 4, 5, 4, 5])

    def test_shuffle_is_warp_scoped(self):
        """Lane 0 of warp 1 must not receive from warp 0."""
        def kern(ctx):
            got = yield Shfl("up", ctx.thread_idx, 1)
            ctx.gmem.store("out", ctx.global_thread_idx, got)

        g = GlobalMemory()
        g.alloc("out", 64, np.int64)
        launch_kernel(kern, 1, 64, g)
        out = g.buffer("out")
        assert out[32] == 32  # warp edge keeps own value
        assert out[33] == 32

    def test_divergent_shuffle_rejected(self):
        def kern(ctx):
            if ctx.thread_idx == 0:
                yield Shfl("up", 1, 1)
            else:
                yield Shfl("down", 1, 1)

        with pytest.raises(GpuSimError):
            launch_kernel(kern, 1, 2, GlobalMemory())

    def test_unknown_direction_rejected(self):
        def kern(ctx):
            yield Shfl("sideways", 1, 1)

        with pytest.raises(GpuSimError):
            launch_kernel(kern, 1, 2, GlobalMemory())

    def test_shuffle_count_in_stats(self):
        def kern(ctx):
            yield Shfl("up", 0, 1)

        stats = launch_kernel(kern, 1, 8, GlobalMemory())
        assert stats.shuffles == 8


class TestDeviceSpecs:
    def test_titan_x_matches_paper(self):
        # "GeForce GTX TITAN X has 28 streaming multiprocessors with
        # 128 cores each"
        assert GTX_TITAN_X.sm_count == 28
        assert GTX_TITAN_X.cores_per_sm == 128
        assert GTX_TITAN_X.total_cores == 3584

    def test_peak_ops(self):
        assert GTX_TITAN_X.peak_int_ops_per_sec == pytest.approx(
            3584 * 1e9
        )
