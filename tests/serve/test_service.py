"""End-to-end tests for the micro-batching alignment service.

Covers the subsystem-level guarantees the issue pins: lane-occupancy
accounting, deadline expiry resolving (not hanging), cache hits being
bit-identical to cold runs, and a many-threads concurrency smoke test.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import (AlignmentService, EngineFailedError,
                         QueueFullError, ServiceStoppedError)
from repro.serve.engine_pool import ENGINES
from repro.serve.errors import DeadlineExceededError
from repro.swa.scoring import DEFAULT_SCHEME, ScoringScheme
from repro.swa.sequential import sw_max_score


def random_pair(rng, m=12, n=12):
    return (rng.integers(0, 4, m, dtype=np.uint8),
            rng.integers(0, 4, n, dtype=np.uint8))


class TestScoring:
    def test_scores_match_gold(self, rng):
        with AlignmentService(workers=2, max_wait_ms=1) as svc:
            pairs = [random_pair(rng) for _ in range(30)]
            futures = [svc.submit(q, s) for q, s in pairs]
            for (q, s), fut in zip(pairs, futures):
                assert fut.result(timeout=30).score == \
                    sw_max_score(q, s, DEFAULT_SCHEME)

    def test_accepts_strings_and_thresholds(self):
        with AlignmentService(max_wait_ms=1) as svc:
            r = svc.align("ACGTACGT", "ACGTACGT", threshold=15,
                          result_timeout_s=30)
            assert r.score == 16 and r.passed is True
            r = svc.align("ACGTACGT", "ACGTACGT", threshold=16,
                          result_timeout_s=30)
            assert r.passed is False  # strictly greater than tau

    def test_per_request_schemes_coexist(self, rng):
        heavy = ScoringScheme(3, 2, 2)
        with AlignmentService(max_wait_ms=1) as svc:
            q, s = random_pair(rng, 16, 16)
            f1 = svc.submit(q, s)
            f2 = svc.submit(q, s, scheme=heavy)
            assert f1.result(timeout=30).score == \
                sw_max_score(q, s, DEFAULT_SCHEME)
            assert f2.result(timeout=30).score == \
                sw_max_score(q, s, heavy)

    @pytest.mark.parametrize("engine", ["numpy", "gpusim"])
    def test_alternate_engines(self, rng, engine):
        word_bits = 32 if engine == "gpusim" else 64
        with AlignmentService(engine=engine, max_wait_ms=1,
                              word_bits=word_bits) as svc:
            pairs = [random_pair(rng, 8, 10) for _ in range(5)]
            futures = [svc.submit(q, s) for q, s in pairs]
            for (q, s), fut in zip(pairs, futures):
                assert fut.result(timeout=60).score == \
                    sw_max_score(q, s, DEFAULT_SCHEME)


class TestLaneOccupancy:
    def test_full_batch_counts_full_lanes(self, rng):
        svc = AlignmentService(workers=1, max_batch=64,
                               max_wait_ms=500, cache_size=0)
        with svc:
            pairs = [random_pair(rng, 8, 8) for _ in range(64)]
            futures = [svc.submit(q, s) for q, s in pairs]
            for fut in futures:
                fut.result(timeout=60)
        assert svc.stats.lanes_used == 64
        assert svc.stats.lane_slots == 64
        assert svc.stats.mean_lane_occupancy == 1.0
        assert svc.stats.batches == 1

    def test_single_request_burns_a_lane_word(self, rng):
        svc = AlignmentService(workers=1, max_wait_ms=1, cache_size=0)
        with svc:
            q, s = random_pair(rng)
            svc.submit(q, s).result(timeout=30)
        assert svc.stats.lanes_used == 1
        assert svc.stats.lane_slots == 64
        assert svc.stats.mean_lane_occupancy == pytest.approx(1 / 64)


class TestDeadlines:
    def test_expired_deadline_errors_without_hanging(self, rng):
        with AlignmentService(max_wait_ms=1) as svc:
            q, s = random_pair(rng)
            fut = svc.submit(q, s, timeout_ms=0)  # already expired
            with pytest.raises(DeadlineExceededError):
                fut.result(timeout=30)
        assert svc.stats.expired == 1

    def test_generous_deadline_still_completes(self, rng):
        with AlignmentService(max_wait_ms=1) as svc:
            q, s = random_pair(rng)
            r = svc.submit(q, s, timeout_ms=60_000).result(timeout=30)
            assert r.score == sw_max_score(q, s, DEFAULT_SCHEME)


class TestCache:
    def test_hit_is_bit_identical_to_cold_run(self, rng):
        with AlignmentService(max_wait_ms=1) as svc:
            q, s = random_pair(rng, 20, 20)
            cold = svc.submit(q, s).result(timeout=30)
            assert not cold.cached
            batches_before = svc.stats.batches
            warm = svc.submit(q, s).result(timeout=30)
            assert warm.cached
            assert warm.score == cold.score  # bit-identical
            assert svc.stats.batches == batches_before  # engine skipped
            assert svc.cache.hits == 1

    def test_threshold_reevaluated_on_hits(self, rng):
        with AlignmentService(max_wait_ms=1) as svc:
            q = np.zeros(8, dtype=np.uint8)
            cold = svc.submit(q, q, threshold=100).result(timeout=30)
            warm = svc.submit(q, q, threshold=0).result(timeout=30)
            assert cold.passed is False and warm.passed is True

    def test_cache_disabled(self, rng):
        with AlignmentService(max_wait_ms=1, cache_size=0) as svc:
            q, s = random_pair(rng)
            svc.submit(q, s).result(timeout=30)
            again = svc.submit(q, s).result(timeout=30)
            assert not again.cached


class TestConcurrency:
    def test_many_threads_all_futures_resolve(self, rng):
        """8 submitting threads, jittered lengths, every future must
        resolve to the exact DP score."""
        svc = AlignmentService(workers=2, max_wait_ms=2,
                               bin_granularity=8, cache_size=0)
        results: dict[int, list] = {}
        errors: list[Exception] = []
        seeds = rng.integers(0, 2**31, size=8)

        def client(tid, seed):
            local = np.random.default_rng(seed)
            out = []
            try:
                pairs = [random_pair(local, int(local.integers(10, 25)),
                                     int(local.integers(10, 25)))
                         for _ in range(16)]
                futures = [svc.submit(q, s) for q, s in pairs]
                for (q, s), fut in zip(pairs, futures):
                    out.append((q, s, fut.result(timeout=60)))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
            results[tid] = out

        with svc:
            threads = [threading.Thread(target=client, args=(i, s))
                       for i, s in enumerate(seeds)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive()
        assert not errors
        assert sum(len(v) for v in results.values()) == 8 * 16
        for out in results.values():
            for q, s, r in out:
                assert r.score == sw_max_score(q, s, DEFAULT_SCHEME)


class TestFailureModes:
    def test_submit_on_stopped_service(self, rng):
        svc = AlignmentService()
        with pytest.raises(ServiceStoppedError):
            svc.submit(*random_pair(rng))

    def test_engine_exception_fails_futures(self, rng):
        def broken(batch, word_bits):
            raise RuntimeError("kaboom")

        with AlignmentService(engine=broken, max_wait_ms=1) as svc:
            fut = svc.submit(*random_pair(rng))
            with pytest.raises(EngineFailedError):
                fut.result(timeout=30)
            assert svc.stats.failed == 1

    def test_backpressure_rejects_under_saturation(self, rng):
        release = threading.Event()

        def slow(batch, word_bits):
            release.wait(timeout=60)
            return ENGINES["numpy"](batch, word_bits)

        svc = AlignmentService(engine=slow, workers=1, max_queue=1,
                               max_batch=1, max_wait_ms=0,
                               cache_size=0)
        futures = []
        try:
            with svc:
                with pytest.raises(QueueFullError):
                    for _ in range(64):
                        futures.append(svc.submit(*random_pair(rng)))
                assert svc.stats.rejected == 1
                release.set()
                for fut in futures:
                    fut.result(timeout=60)
        finally:
            release.set()

    def test_invalid_inputs_rejected(self):
        with AlignmentService(max_wait_ms=1) as svc:
            with pytest.raises(Exception):
                svc.submit("", "ACGT")
            with pytest.raises(Exception):
                svc.submit("ACGTX", "ACGT")

    def test_stats_snapshot_shape(self, rng):
        with AlignmentService(max_wait_ms=1) as svc:
            svc.submit(*random_pair(rng)).result(timeout=30)
            snap = svc.stats.snapshot()
        for key in ("requests_submitted", "requests_completed",
                    "mean_lane_occupancy", "latency_p50_ms",
                    "latency_p99_ms", "queue_depth", "batches"):
            assert key in snap
        assert "\n" in svc.stats.render()
