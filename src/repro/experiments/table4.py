"""Experiment: Table IV — running time of the SWA implementations.

Two complementary reproductions:

1. **Analytic, paper scale** — the calibrated operation-count model of
   :mod:`repro.perfmodel.model` regenerates all 21 rows (3 blocks x 7
   text lengths) of Table IV from the n = 1024 / n = 65536 rows and
   the circuit/transpose operation counts; middle rows are genuine
   predictions.
2. **Measured, machine scale** — the real NumPy engines (bitwise lane-
   parallel vs wordwise batch) are timed on this machine at a reduced
   pair count, with the same W2B / SWA / B2W breakdown, to demonstrate
   the bitwise-beats-wordwise shape on hardware we actually have.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.encoding import encode_batch_bit_transposed
from ..core.sw_bpbc import bpbc_sw_wavefront
from ..core.transpose import untranspose_bits_reduced
from ..core.bitops import lane_count, word_dtype
from ..perfmodel.model import Table4Model
from ..perfmodel.paper_data import N_VALUES, PAPER_TABLE4
from ..swa.numpy_batch import sw_batch_max_scores
from ..swa.scoring import ScoringScheme
from ..workloads.datasets import paper_workload
from .report import render_table

__all__ = ["run", "analytic_table", "measure_cpu_bitwise",
           "measure_cpu_wordwise", "measured_table"]

SCHEME = ScoringScheme(match_score=2, mismatch_penalty=1, gap_penalty=1)


def analytic_table() -> dict:
    """Model-predicted Table IV plus per-column worst relative errors."""
    model = Table4Model()
    return {
        "model": model,
        "predicted": model.table4(),
        "errors": model.relative_errors(),
    }


def measure_cpu_bitwise(n: int, pairs: int, m: int, word_bits: int,
                        seed: int = 0,
                        cell: str | None = None) -> dict[str, float]:
    """Wall-clock W2B / SWA / B2W breakdown of the bitwise NumPy engine.

    ``cell`` selects the circuit evaluator (see
    :func:`repro.core.sw_bpbc.bpbc_sw_wavefront_planes`), e.g.
    ``"generic"`` for the paper-literal interpreter or ``"compiled"``
    for the :mod:`repro.jit` path the engine defaults to.
    """
    batch = paper_workload(n, pairs=pairs, m=m, seed=seed)
    t0 = time.perf_counter()
    XH, XL = encode_batch_bit_transposed(batch.X, word_bits)
    YH, YL = encode_batch_bit_transposed(batch.Y, word_bits)
    t1 = time.perf_counter()
    result = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, word_bits,
                               cell=cell)
    t2 = time.perf_counter()
    # B2W: reduced untranspose of the bit-sliced scores per lane group.
    s = result.s
    groups = lane_count(pairs, word_bits)
    dt = word_dtype(word_bits)
    padded = np.zeros((groups, word_bits), dtype=dt)
    padded[:, :s] = result.score_planes.T
    wordwise = untranspose_bits_reduced(padded, word_bits, s)
    t3 = time.perf_counter()
    scores = wordwise.reshape(-1)[:pairs].astype(np.int64)
    return {
        "w2b": (t1 - t0) * 1e3,
        "swa": (t2 - t1) * 1e3,
        "b2w": (t3 - t2) * 1e3,
        "total": (t3 - t0) * 1e3,
        "scores": scores,
        "cells": batch.cells,
    }


def measure_cpu_wordwise(n: int, pairs: int, m: int,
                         seed: int = 0) -> dict[str, float]:
    """Wall-clock timing of the wordwise NumPy batch engine."""
    batch = paper_workload(n, pairs=pairs, m=m, seed=seed)
    t0 = time.perf_counter()
    scores = sw_batch_max_scores(batch.X, batch.Y, SCHEME)
    t1 = time.perf_counter()
    ms = (t1 - t0) * 1e3
    return {"swa": ms, "total": ms, "scores": scores,
            "cells": batch.cells}


def measured_table(n_values=(256, 512, 1024), pairs: int = 2048,
                   m: int = 128) -> list[dict]:
    """Scaled-down measured Table IV rows on this machine.

    The engines score identical workloads; rows carry the same
    breakdown columns as the paper plus agreement checks.  Bitwise
    engines run twice at 64 bits: once with the paper-literal
    interpreted circuit (``cell="generic"``) and once with the
    :mod:`repro.jit` compiled evaluator — the measured gap is the
    interpretation overhead the jit removes.
    """
    rows = []
    for n in n_values:
        b32 = measure_cpu_bitwise(n, pairs, m, 32, cell="generic")
        b64 = measure_cpu_bitwise(n, pairs, m, 64, cell="generic")
        j64 = measure_cpu_bitwise(n, pairs, m, 64, cell="compiled")
        ww = measure_cpu_wordwise(n, pairs, m)
        agree = bool((b32["scores"] == ww["scores"]).all()
                     and (b64["scores"] == ww["scores"]).all()
                     and (j64["scores"] == ww["scores"]).all())
        rows.append({"n": n, "bitwise32": b32, "bitwise64": b64,
                     "bitwise64_jit": j64, "wordwise": ww,
                     "scores_agree": agree})
    return rows


def run(verbose: bool = True, measured_pairs: int = 2048,
        measured_n=(256, 512, 1024)) -> str:
    """Render both Table IV reproductions."""
    parts = []
    a = analytic_table()
    pred = a["predicted"]
    for block in ("bitwise32", "bitwise64", "wordwise32"):
        for device in ("cpu", "gpu"):
            cols = list(PAPER_TABLE4[block][device].keys())
            headers = ["n"] + [f"{c} (model)" for c in cols] + \
                      [f"{c} (paper)" for c in cols]
            rows = []
            for i, n in enumerate(N_VALUES):
                row = [n]
                row += [pred[block][device][c][i] for c in cols]
                row += [PAPER_TABLE4[block][device][c][i] for c in cols]
                rows.append(row)
            parts.append(render_table(
                headers, rows,
                title=f"Table IV [{block} / {device.upper()}] (ms, 32K "
                      "pairs, m=128) — model vs paper"))
    err_rows = [[fam, f"{e * 100:.1f}%"]
                for fam, e in sorted(a["errors"].items())]
    parts.append(render_table(["column family", "max rel err (predicted "
                               "rows)"], err_rows,
                              title="Model prediction error vs paper"))

    meas = measured_table(measured_n, pairs=measured_pairs)
    headers = ["n", "b32 w2b", "b32 swa", "b32 b2w", "b64 w2b", "b64 swa",
               "b64 b2w", "jit64 swa", "wordwise swa", "b64 speedup",
               "jit64 speedup", "agree"]
    rows = []
    for r in meas:
        rows.append([
            r["n"], r["bitwise32"]["w2b"], r["bitwise32"]["swa"],
            r["bitwise32"]["b2w"], r["bitwise64"]["w2b"],
            r["bitwise64"]["swa"], r["bitwise64"]["b2w"],
            r["bitwise64_jit"]["swa"],
            r["wordwise"]["swa"],
            r["wordwise"]["total"] / r["bitwise64"]["total"],
            r["wordwise"]["total"] / r["bitwise64_jit"]["total"],
            r["scores_agree"],
        ])
    parts.append(render_table(
        headers, rows,
        title=f"Measured on this machine (ms, {measured_pairs} pairs, "
              "m=128): bitwise lane-parallel (interpreted vs jit) vs "
              "wordwise"))
    out = "\n\n".join(parts)
    if verbose:
        print(out)
    return out
