"""Concurrency stress: 16 producers against the bounded queue.

The queue's contract under contention: every request either enters
the queue (and its future later resolves exactly once) or is rejected
with ``QueueFullError`` (and its future never resolves) — nothing is
lost, nothing is delivered twice, and the shed count adds up.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np

from repro.serve import AlignmentService
from repro.serve.errors import QueueFullError
from repro.serve.queue import AlignmentRequest, RequestQueue
from repro.swa.scoring import DEFAULT_SCHEME

PRODUCERS = 16
PER_PRODUCER = 200
QUEUE_SIZE = 64


def _tagged_request(tag: int) -> AlignmentRequest:
    # The threshold field doubles as a unique tag: the consumer echoes
    # it back as the score, so delivery is traceable end to end.
    return AlignmentRequest(
        query=np.zeros(4, dtype=np.uint8),
        subject=np.zeros(4, dtype=np.uint8),
        scheme=DEFAULT_SCHEME, threshold=tag, deadline=None,
        future=Future(), enqueued_at=time.monotonic(),
    )


def test_sixteen_producers_no_lost_or_duplicated_futures():
    queue = RequestQueue(maxsize=QUEUE_SIZE)
    accepted: list[list[AlignmentRequest]] = [[] for _ in range(PRODUCERS)]
    rejected: list[list[AlignmentRequest]] = [[] for _ in range(PRODUCERS)]
    consumed: list[int] = []
    stop = threading.Event()
    start = threading.Barrier(PRODUCERS + 1)

    def producer(tid: int) -> None:
        start.wait()
        for i in range(PER_PRODUCER):
            req = _tagged_request(tid * PER_PRODUCER + i)
            try:
                queue.put(req)
            except QueueFullError:
                rejected[tid].append(req)
            else:
                accepted[tid].append(req)

    def consumer() -> None:
        start.wait()
        while not stop.is_set() or len(queue):
            for req in queue.drain(32, 0.001, stop=stop):
                req.resolve(req.threshold)
                consumed.append(req.threshold)

    threads = [threading.Thread(target=producer, args=(t,))
               for t in range(PRODUCERS)]
    threads.append(threading.Thread(target=consumer))
    for t in threads:
        t.start()
    for t in threads[:-1]:
        t.join(timeout=60)
    stop.set()
    threads[-1].join(timeout=60)
    assert not any(t.is_alive() for t in threads)

    n_accepted = sum(len(a) for a in accepted)
    n_rejected = sum(len(r) for r in rejected)
    assert n_accepted + n_rejected == PRODUCERS * PER_PRODUCER
    assert n_accepted >= QUEUE_SIZE  # the queue did absorb work

    # Exactly the accepted tags were consumed — once each.
    accepted_tags = sorted(r.threshold for a in accepted for r in a)
    assert sorted(consumed) == accepted_tags
    assert len(set(consumed)) == len(consumed)
    assert len(queue) == 0

    # Every accepted future resolved with its own tag; no rejected
    # future was ever touched.
    for reqs in accepted:
        for req in reqs:
            assert req.future.done()
            assert req.future.result(timeout=0).score == req.threshold
    for reqs in rejected:
        for req in reqs:
            assert not req.future.done()


def test_service_level_backpressure_accounting():
    """The same contract one layer up: concurrent ``submit`` against a
    small service either returns a future that resolves or raises
    ``QueueFullError``, and the stats ledger balances."""
    service = AlignmentService(engine="bpbc", workers=2, max_queue=32,
                               max_wait_ms=0.5, cache_size=0)
    futures: list[Future] = []
    counts = {"rejected": 0}
    lock = threading.Lock()
    start = threading.Barrier(PRODUCERS)
    rng = np.random.default_rng(5)
    query = rng.integers(0, 4, 8, dtype=np.uint8)
    subject = rng.integers(0, 4, 8, dtype=np.uint8)

    def producer() -> None:
        start.wait()
        for _ in range(25):
            try:
                f = service.submit(query, subject)
            except QueueFullError:
                with lock:
                    counts["rejected"] += 1
            else:
                with lock:
                    futures.append(f)

    with service:
        threads = [threading.Thread(target=producer)
                   for _ in range(PRODUCERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        results = [f.result(timeout=60) for f in futures]

    submitted = PRODUCERS * 25
    assert len(futures) + counts["rejected"] == submitted
    assert len({r.score for r in results}) <= 1  # one pair, one score
    snap = service.stats.snapshot()
    assert snap["requests_submitted"] == submitted
    assert snap["requests_rejected"] == counts["rejected"]
    assert snap["requests_completed"] == len(futures)
    assert snap["requests_failed"] == 0 and snap["requests_expired"] == 0
