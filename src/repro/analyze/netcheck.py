"""Netlist verification: structure lint and gate-count assertions.

Three layers:

:func:`verify_netlist`
    Structural lint of one :class:`~repro.core.netlist.Netlist` DAG —
    missing/mis-sized outputs, dead logic gates (built but not in the
    output cone), unused input bits, and circuit depth against an
    optional budget.  Dangling gate references and arity violations
    cannot occur post-construction (``Netlist._add`` rejects them), so
    the lint focuses on what *can* go wrong in a well-formed DAG.

:func:`check_sw_cell_counts`
    The headline reproduction check: synthesise the SW cell with
    ``simplify=False`` — the literal straight-line circuit of paper
    §IV-A — and assert its logic-gate count equals
    :func:`repro.core.circuits.sw_cell_ops_exact` (the ``46s - 16 +
    2e`` family) for each requested width.  Each netlist is then
    differentially evaluated against the hand-coded
    :func:`repro.core.circuits.sw_cell` on deterministic pseudo-random
    planes, so the count check cannot pass on a circuit that computes
    the wrong function.

:func:`check_compiled_cells`
    The :mod:`repro.jit` layer: compile the folded cell for each
    width, parse the generated straight-line source with :mod:`ast`,
    assert the scheduled op count never exceeds the folded gate count,
    and differentially evaluate the compiled cell against the
    hand-coded circuit.

:func:`check_protein_cells`
    The protein layer: for each shipped substitution matrix,
    synthesise the literal substitution SW cell and Gotoh cell, pin
    their gate counts to
    :func:`repro.core.subst.subst_sw_cell_ops_exact` /
    :func:`repro.core.subst.subst_gotoh_cell_ops_exact`, lint the
    DAGs, differentially evaluate them against the hand-coded
    circuits, and finally run the bit-plane Gotoh engine on random
    residue pairs against the word-wise scalar Gotoh reference.
"""

from __future__ import annotations

import ast
from typing import Sequence

import numpy as np

from ..core import circuits
from ..core.netlist import Netlist, NetlistError, build_sw_cell_netlist
from .report import Diagnostic, Report, Severity

__all__ = ["verify_netlist", "check_sw_cell_counts",
           "check_compiled_cells", "check_protein_cells"]

_LOGIC_KINDS = frozenset({"AND", "OR", "XOR", "NOT"})


def verify_netlist(net: Netlist, name: str,
                   expected_outputs: int | None = None,
                   expected_logic_gates: int | None = None,
                   max_depth: int | None = None,
                   truncation_expected: bool = False) -> list[Diagnostic]:
    """Lint one netlist DAG; return diagnostics (empty = clean).

    ``expected_outputs`` asserts the output bus width,
    ``expected_logic_gates`` the AND/OR/XOR/NOT total, ``max_depth``
    bounds the critical path.  Dead logic gates and unused input bits
    are warnings — legal, but they mean the synthesiser emitted work
    no output depends on.  ``truncation_expected`` demotes the
    dead-gates finding to a note: substitution mux trees run their
    arithmetic at the biased width ``s_ext`` and keep only the low
    ``s`` planes, so stranded top-plane gates are by construction,
    not a defect.
    """
    out: list[Diagnostic] = []

    def diag(rule: str, severity: Severity, message: str,
             location: str = "") -> None:
        out.append(Diagnostic(rule=rule, severity=severity, subject=name,
                              message=message, location=location))

    outputs = net.outputs
    if not outputs:
        diag("netlist.no-outputs", Severity.ERROR,
             "netlist declares no outputs; it computes nothing")
        return out
    if expected_outputs is not None and len(outputs) != expected_outputs:
        diag("netlist.width-mismatch", Severity.ERROR,
             f"output bus is {len(outputs)} bits wide, expected "
             f"{expected_outputs}")

    live = net.used_gates()
    gates = net.gates
    dead_logic = [gid for gid, g in enumerate(gates)
                  if g.kind in _LOGIC_KINDS and gid not in live]
    if dead_logic:
        shown = ", ".join(str(g) for g in dead_logic[:8])
        more = "..." if len(dead_logic) > 8 else ""
        msg = (f"{len(dead_logic)} logic gate(s) unreachable from the "
               f"outputs (ids {shown}{more})")
        if truncation_expected:
            diag("netlist.dead-gates", Severity.NOTE,
                 msg + " (expected: s_ext-wide mux-tree arithmetic "
                 "truncated to s planes)")
        else:
            diag("netlist.dead-gates", Severity.WARNING, msg)
    unused_inputs = [
        f"{bus}[{h}]"
        for bus, _width in net.input_buses
        for h, gid in enumerate(net.input_ids(bus))
        if gid not in live
    ]
    if unused_inputs:
        shown = ", ".join(unused_inputs[:8])
        more = "..." if len(unused_inputs) > 8 else ""
        diag("netlist.unused-inputs", Severity.WARNING,
             f"{len(unused_inputs)} input bit(s) feed no output: "
             f"{shown}{more}")

    n_logic = net.logic_gate_count()
    if expected_logic_gates is not None and n_logic != expected_logic_gates:
        diag("netlist.gate-count", Severity.ERROR,
             f"{n_logic} logic gates, expected {expected_logic_gates}")

    depth = net.depth()
    if max_depth is not None and depth > max_depth:
        diag("netlist.depth", Severity.ERROR,
             f"critical path is {depth} gates, budget {max_depth}")
    else:
        diag("netlist.depth", Severity.NOTE,
             f"{n_logic} logic gates, critical path {depth}")
    return out


def _differential_check(net: Netlist, name: str, s: int, eps: int,
                        gap: int, c1: int, c2: int,
                        word_bits: int = 32,
                        lanes: int = 8, seed: int = 7) -> list[Diagnostic]:
    """Evaluate the netlist vs the hand-coded circuit on random planes."""
    rng = np.random.default_rng(seed)
    dt = np.uint32 if word_bits == 32 else np.uint64

    def planes(n: int) -> list[np.ndarray]:
        return [rng.integers(0, 1 << 16, size=lanes).astype(dt)
                ^ (rng.integers(0, 1 << 16, size=lanes).astype(dt) << 16)
                for _ in range(n)]

    A, B, C = planes(s), planes(s), planes(s)
    x, y = planes(eps), planes(eps)
    want = circuits.sw_cell(A, B, C, x, y, gap, c1, c2, word_bits)
    try:
        got = net.evaluate(
            {"up": A, "left": B, "diag": C, "x": x, "y": y},
            word_bits=word_bits)
    except NetlistError as exc:
        return [Diagnostic(
            rule="netlist.eval-failed", severity=Severity.ERROR,
            subject=name, message=f"evaluation raised: {exc}")]
    bad = [h for h in range(s)
           if not np.array_equal(np.asarray(got[h]), np.asarray(want[h]))]
    if bad:
        return [Diagnostic(
            rule="netlist.differential", severity=Severity.ERROR,
            subject=name,
            message="netlist disagrees with circuits.sw_cell on "
                    f"output plane(s) {bad}")]
    return [Diagnostic(
        rule="netlist.differential", severity=Severity.NOTE, subject=name,
        message=f"matches circuits.sw_cell on {lanes} random lane "
                f"words (seed {seed})")]


def check_sw_cell_counts(s_values: Sequence[int] = (4, 8, 16),
                         gap: int = 1, c1: int = 2, c2: int = 1,
                         eps: int = 2) -> Report:
    """Verify SW-cell netlists against the paper's op-count table.

    For each ``s``: synthesise the literal (``simplify=False``) cell,
    assert its gate count equals ``46s - 16 + 2e`` exactly, lint the
    DAG, and differentially evaluate it; then synthesise the
    *simplified* cell and note how far folding shrinks it (the
    optimisation headroom a real CUDA kernel exploits).
    """
    rep = Report()
    for s in s_values:
        name = f"sw_cell[s={s}]"
        expected = circuits.sw_cell_ops_exact(s, eps)
        try:
            literal = build_sw_cell_netlist(s, gap, c1, c2, eps=eps,
                                            simplify=False)
        except NetlistError as exc:
            rep.add(Diagnostic(
                rule="netlist.synth-failed", severity=Severity.ERROR,
                subject=name, message=f"synthesis raised: {exc}"))
            continue
        got = literal.logic_gate_count()
        if got != expected:
            rep.add(Diagnostic(
                rule="netlist.op-count", severity=Severity.ERROR,
                subject=name,
                message=f"literal netlist has {got} logic gates; the "
                        "measured op count (46s - 16 + 2e) is "
                        f"{expected}"))
        else:
            rep.add(Diagnostic(
                rule="netlist.op-count", severity=Severity.NOTE,
                subject=name,
                message=f"literal gate count {got} == 46*{s} - 16 + "
                        f"2*{eps}"))
        rep.extend(verify_netlist(literal, name, expected_outputs=s))
        rep.extend(_differential_check(literal, name, s, eps, gap, c1, c2))

        folded = build_sw_cell_netlist(s, gap, c1, c2, eps=eps,
                                       simplify=True)
        rep.extend(verify_netlist(folded, f"{name} (folded)",
                                  expected_outputs=s))
        rep.add(Diagnostic(
            rule="netlist.folding", severity=Severity.NOTE,
            subject=name,
            message=f"constant folding + CSE: {got} -> "
                    f"{folded.logic_gate_count()} gates"))
    return rep


def check_compiled_cells(s_values: Sequence[int] = (4, 8, 16),
                         gap: int = 1, c1: int = 2, c2: int = 1,
                         eps: int = 2, word_bits: int = 32) -> Report:
    """Verify the :mod:`repro.jit` compiled SW cells and their source.

    For each ``s``: compile the folded cell netlist to a straight-line
    NumPy evaluator, parse the generated source with :mod:`ast` (the
    compiler's output must always be valid Python), assert the
    scheduled op count never exceeds the folded gate count (the jit's
    CSE pass may only shrink the circuit), and differentially evaluate
    the compiled cell against the hand-coded
    :func:`repro.core.circuits.sw_cell` on deterministic pseudo-random
    planes.
    """
    from ..jit import JitError, compile_netlist

    rep = Report()
    for s in s_values:
        name = f"compiled_sw_cell[s={s}]"
        folded = build_sw_cell_netlist(s, gap, c1, c2, eps=eps,
                                       simplify=True)
        try:
            compiled = compile_netlist(folded, word_bits)
        except JitError as exc:
            rep.add(Diagnostic(
                rule="jit.compile-failed", severity=Severity.ERROR,
                subject=name, message=f"compilation raised: {exc}"))
            continue
        try:
            ast.parse(compiled.source)
        except SyntaxError as exc:
            rep.add(Diagnostic(
                rule="jit.source-syntax", severity=Severity.ERROR,
                subject=name,
                message=f"generated source does not parse: {exc}"))
            continue
        rep.add(Diagnostic(
            rule="jit.source-syntax", severity=Severity.NOTE,
            subject=name,
            message=f"generated source parses "
                    f"({len(compiled.source.splitlines())} lines, "
                    f"{compiled.n_slots} pooled temporaries)"))
        n_gates = folded.logic_gate_count()
        if compiled.n_ops > n_gates:
            rep.add(Diagnostic(
                rule="jit.op-count", severity=Severity.ERROR,
                subject=name,
                message=f"compiled plan has {compiled.n_ops} ops but "
                        f"the folded netlist only {n_gates} gates; "
                        "the jit pipeline must not grow the circuit"))
        else:
            rep.add(Diagnostic(
                rule="jit.op-count", severity=Severity.NOTE,
                subject=name,
                message=f"scheduled ops {compiled.n_ops} <= folded "
                        f"gate count {n_gates}"))
        rng = np.random.default_rng(11)
        dt = np.uint32 if word_bits == 32 else np.uint64
        lanes = 8

        def planes(k: int) -> list[np.ndarray]:
            return [rng.integers(0, 1 << 16, size=lanes).astype(dt)
                    ^ (rng.integers(0, 1 << 16, size=lanes).astype(dt)
                       << 16)
                    for _ in range(k)]

        A, B, C = planes(s), planes(s), planes(s)
        x, y = planes(eps), planes(eps)
        want = circuits.sw_cell(A, B, C, x, y, gap, c1, c2, word_bits)
        got = compiled.evaluate(
            {"up": A, "left": B, "diag": C, "x": x, "y": y})
        bad = [h for h in range(s)
               if not np.array_equal(np.asarray(got[h]),
                                     np.asarray(want[h]))]
        if bad:
            rep.add(Diagnostic(
                rule="jit.differential", severity=Severity.ERROR,
                subject=name,
                message="compiled cell disagrees with "
                        f"circuits.sw_cell on output plane(s) {bad}"))
        else:
            rep.add(Diagnostic(
                rule="jit.differential", severity=Severity.NOTE,
                subject=name,
                message=f"matches circuits.sw_cell on {lanes} random "
                        "lane words (seed 11)"))
    return rep


def check_protein_cells(s_values: Sequence[int] = (6, 8),
                        matrix_names: Sequence[str] = ("blosum62",
                                                       "blosum50",
                                                       "pam250"),
                        gap_open: int = 11, gap_extend: int = 1,
                        word_bits: int = 32) -> Report:
    """Verify the protein substitution-matrix cells.

    For each shipped matrix and each ``s``: synthesise the literal
    (``simplify=False``) substitution SW cell and Gotoh cell, pin
    their logic-gate counts to the structure-derived
    ``subst_*_ops_exact`` accessors, lint both DAGs, and
    differentially evaluate each against its hand-coded circuit on
    deterministic pseudo-random planes.  One engine-level check per
    matrix then scores random residue pairs through the bit-plane
    Gotoh engine and compares against the word-wise scalar Gotoh
    reference — the count pins cannot pass on circuits that compute
    the wrong function, and the engine check cannot pass on a correct
    cell wired wrongly into the wavefront.
    """
    from ..core import subst
    from ..core.affine_bpbc import bpbc_gotoh_wavefront_planes
    from ..core.encoding import encode_batch_char_planes
    from ..core.matrices import matrix_by_name
    from ..core.netlist import (build_gotoh_cell_netlist,
                                build_subst_sw_cell_netlist)
    from ..core.protein import ProteinScheme, subst_gotoh_batch_max_scores

    rep = Report()
    dt = np.uint32 if word_bits == 32 else np.uint64

    for mname in matrix_names:
        scheme = ProteinScheme(matrix=matrix_by_name(mname),
                               gap_open=gap_open, gap_extend=gap_extend)
        weights = scheme.weights()
        eps = scheme.alphabet.pad_bits
        for s in s_values:
            rng = np.random.default_rng(1000 + s)
            lanes = 8

            def planes(k: int) -> list[np.ndarray]:
                return [rng.integers(0, 1 << 16, size=lanes).astype(dt)
                        ^ (rng.integers(0, 1 << 16,
                                        size=lanes).astype(dt) << 16)
                        for _ in range(k)]

            # -- linear substitution SW cell -------------------------
            name = f"subst_sw_cell[{mname},s={s}]"
            expected = subst.subst_sw_cell_ops_exact(weights, s, eps)
            try:
                literal = build_subst_sw_cell_netlist(
                    s, gap_extend, weights, eps=eps, simplify=False)
            except NetlistError as exc:
                rep.add(Diagnostic(
                    rule="netlist.synth-failed", severity=Severity.ERROR,
                    subject=name, message=f"synthesis raised: {exc}"))
                continue
            got_n = literal.logic_gate_count()
            if got_n != expected:
                rep.add(Diagnostic(
                    rule="netlist.op-count", severity=Severity.ERROR,
                    subject=name,
                    message=f"literal netlist has {got_n} logic gates; "
                            f"subst_sw_cell_ops_exact is {expected}"))
            else:
                rep.add(Diagnostic(
                    rule="netlist.op-count", severity=Severity.NOTE,
                    subject=name,
                    message=f"literal gate count {got_n} == "
                            "subst_sw_cell_ops_exact"))
            rep.extend(verify_netlist(literal, name, expected_outputs=s,
                                      truncation_expected=True))
            A, B, C = planes(s), planes(s), planes(s)
            x, y = planes(eps), planes(eps)
            want = subst.subst_sw_cell(A, B, C, x, y, gap_extend,
                                       weights, word_bits)
            got = literal.evaluate(
                {"up": A, "left": B, "diag": C, "x": x, "y": y},
                word_bits=word_bits)
            bad = [h for h in range(s)
                   if not np.array_equal(np.asarray(got[h]),
                                         np.asarray(want[h]))]
            rep.add(Diagnostic(
                rule="netlist.differential",
                severity=Severity.ERROR if bad else Severity.NOTE,
                subject=name,
                message=(f"netlist disagrees with subst_sw_cell on "
                         f"output plane(s) {bad}" if bad else
                         f"matches subst_sw_cell on {lanes} random "
                         "lane words")))

            # -- affine (Gotoh) substitution cell --------------------
            name = f"subst_gotoh_cell[{mname},s={s}]"
            expected = subst.subst_gotoh_cell_ops_exact(weights, s, eps)
            literal = build_gotoh_cell_netlist(
                s, gap_open, gap_extend, weights=weights, eps=eps,
                simplify=False)
            got_n = literal.logic_gate_count()
            if got_n != expected:
                rep.add(Diagnostic(
                    rule="netlist.op-count", severity=Severity.ERROR,
                    subject=name,
                    message=f"literal netlist has {got_n} logic gates; "
                            f"subst_gotoh_cell_ops_exact is {expected}"))
            else:
                rep.add(Diagnostic(
                    rule="netlist.op-count", severity=Severity.NOTE,
                    subject=name,
                    message=f"literal gate count {got_n} == "
                            "subst_gotoh_cell_ops_exact"))
            rep.extend(verify_netlist(literal, name,
                                      expected_outputs=3 * s,
                                      truncation_expected=True))
            hl, el, hu, fu, hd = (planes(s) for _ in range(5))
            x, y = planes(eps), planes(eps)
            H, E, F = subst.gotoh_cell_b(hl, el, hu, fu, hd, x, y,
                                         gap_open, gap_extend,
                                         word_bits, weights=weights)
            want = list(H) + list(E) + list(F)
            got = literal.evaluate(
                {"h_left": hl, "e_left": el, "h_up": hu, "f_up": fu,
                 "h_diag": hd, "x": x, "y": y}, word_bits=word_bits)
            bad = [h for h in range(3 * s)
                   if not np.array_equal(np.asarray(got[h]),
                                         np.asarray(want[h]))]
            rep.add(Diagnostic(
                rule="netlist.differential",
                severity=Severity.ERROR if bad else Severity.NOTE,
                subject=name,
                message=(f"netlist disagrees with gotoh_cell_b on "
                         f"output plane(s) {bad}" if bad else
                         f"matches gotoh_cell_b on {lanes} random "
                         "lane words")))

        # -- engine vs scalar Gotoh reference ------------------------
        name = f"gotoh_engine[{mname}]"
        rng = np.random.default_rng(97)
        P, m, n = 4, 10, 12
        X = rng.integers(0, 20, size=(P, m)).astype(np.uint8)
        Y = rng.integers(0, 20, size=(P, n)).astype(np.uint8)
        Xp = encode_batch_char_planes(X, word_bits, char_bits=eps)
        Yp = encode_batch_char_planes(Y, word_bits, char_bits=eps)
        engine = bpbc_gotoh_wavefront_planes(
            Xp, Yp, scheme, word_bits).max_scores[:P]
        ref = subst_gotoh_batch_max_scores(X, Y, scheme)
        if not np.array_equal(np.asarray(engine, dtype=np.int64),
                              np.asarray(ref, dtype=np.int64)):
            rep.add(Diagnostic(
                rule="netlist.engine-differential",
                severity=Severity.ERROR, subject=name,
                message=f"bit-plane Gotoh engine scores {list(engine)} "
                        f"differ from the scalar reference {list(ref)}"))
        else:
            rep.add(Diagnostic(
                rule="netlist.engine-differential",
                severity=Severity.NOTE, subject=name,
                message=f"bit-plane Gotoh engine matches the scalar "
                        f"Gotoh reference on {P} random pairs"))
    return rep
