"""Tests for repro.core.string_matching (paper §II)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitops import BitOpsError, OpCounter
from repro.core.encoding import encode, encode_batch_bit_transposed
from repro.core.string_matching import (
    bpbc_string_matching,
    bpbc_string_matching_strings,
    match_offsets,
    straightforward_string_matching,
)

from ..conftest import ALL_WIDTHS

dna = st.text(alphabet="ACGT", min_size=1, max_size=30)


class TestStraightforward:
    def test_paper_intro_example(self):
        # §II: X=ATTCG, Y=AAATTCGGGA -> d = 110111 (wait: the paper
        # prints 110111 for n-m+1 = 6 offsets; match at offset 2).
        d = straightforward_string_matching(encode("ATTCG"),
                                            encode("AAATTCGGGA"))
        np.testing.assert_array_equal(d, [1, 1, 0, 1, 1, 1])

    def test_no_match(self):
        d = straightforward_string_matching(encode("GG"), encode("ATAT"))
        assert (d == 1).all()

    def test_all_match(self):
        d = straightforward_string_matching(encode("AA"), encode("AAAA"))
        assert (d == 0).all()

    def test_pattern_longer_than_text_rejected(self):
        with pytest.raises(BitOpsError):
            straightforward_string_matching(encode("AAAA"), encode("AA"))

    def test_empty_pattern_rejected(self):
        with pytest.raises(BitOpsError):
            straightforward_string_matching(np.array([]), encode("AA"))


class TestBPBCMatching:
    def test_paper_4bit_worked_example(self):
        """§II's 4-pair worked example.

        The paper prints d = 0100, 0101, 1110, 1100 — which is the
        bitwise COMPLEMENT of what its own listing computes (the
        listing ORs mismatch flags into d, so bit k of d[j] is 0 on a
        match; the printed words have 1 on a match).  We assert the
        algorithm-faithful values and note the erratum.
        """
        patterns = ["ATCGA", "TCGAC", "AAAAA", "TTTTT"]
        texts = ["AATCGACA", "AATCGACA", "AAAAAAAA", "AATTTTTT"]
        d = bpbc_string_matching_strings(patterns, texts, word_bits=8)
        # d rows are per-pair mismatch flags over offsets.
        np.testing.assert_array_equal(d, [
            [1, 0, 1, 1],   # ATCGA matches AATCGACA at offset 1
            [1, 1, 0, 1],   # TCGAC matches at offset 2
            [0, 0, 0, 0],   # AAAAA matches everywhere in AAAAAAAA
            [1, 1, 0, 0],   # TTTTT matches at offsets 2 and 3
        ])
        # Rebuild the paper's d[j] words (bit k = pair k): the printed
        # example is their complement.
        words = [int("".join(str(b) for b in d[::-1, j]), 2)
                 for j in range(d.shape[1])]
        paper_printed = [0b0100, 0b0101, 0b1110, 0b1100]
        assert [w ^ 0b1111 for w in words] == paper_printed

    @pytest.mark.parametrize("w", ALL_WIDTHS)
    def test_matches_straightforward(self, rng, w):
        P, m, n = 50, 4, 20
        X = rng.integers(0, 4, (P, m), dtype=np.uint8)
        Y = rng.integers(0, 4, (P, n), dtype=np.uint8)
        XH, XL = encode_batch_bit_transposed(X, w)
        YH, YL = encode_batch_bit_transposed(Y, w)
        d = bpbc_string_matching(XH, XL, YH, YL, w)
        from repro.core.bitops import unpack_lanes

        bits = unpack_lanes(d, w, count=P)  # (offsets, P)
        for p in range(P):
            ref = straightforward_string_matching(X[p], Y[p])
            np.testing.assert_array_equal(bits[:, p], ref)

    def test_op_count_is_4mn(self, rng):
        """4 bitwise ops per (i, j) — O(mn) total, independent of how
        many pairs ride along (the BPBC selling point)."""
        m, n = 3, 10
        X = rng.integers(0, 4, (64, m), dtype=np.uint8)
        Y = rng.integers(0, 4, (64, n), dtype=np.uint8)
        XH, XL = encode_batch_bit_transposed(X, 32)
        YH, YL = encode_batch_bit_transposed(Y, 32)
        c = OpCounter()
        bpbc_string_matching(XH, XL, YH, YL, 32, counter=c)
        assert c.ops == 4 * m * (n - m + 1)

    def test_match_offsets(self):
        assert match_offsets("TCG", "ATCGTCGA") == [1, 4]
        assert match_offsets("GGG", "ATATAT") == []

    def test_pattern_longer_raises(self, rng):
        X = rng.integers(0, 4, (8, 5), dtype=np.uint8)
        Y = rng.integers(0, 4, (8, 3), dtype=np.uint8)
        XH, XL = encode_batch_bit_transposed(X, 8)
        YH, YL = encode_batch_bit_transposed(Y, 8)
        with pytest.raises(BitOpsError):
            bpbc_string_matching(XH, XL, YH, YL, 8)

    def test_mismatched_pair_counts_rejected(self):
        with pytest.raises(BitOpsError):
            bpbc_string_matching_strings(["AC"], ["ACGT", "ACGT"])

    @settings(max_examples=30, deadline=None)
    @given(dna, dna)
    def test_offsets_match_python_find(self, pattern, text):
        """BPBC offsets == all occurrences str.find would report."""
        if len(pattern) > len(text):
            return
        got = match_offsets(pattern, text)
        want = [j for j in range(len(text) - len(pattern) + 1)
                if text[j:j + len(pattern)] == pattern]
        assert got == want
