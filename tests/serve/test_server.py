"""Socket round-trip tests for the TCP server and client."""

from __future__ import annotations

import json
import socket

import pytest

from repro.serve import AlignmentServer, AlignmentService
from repro.serve.client import ClientError, ServeClient
from repro.swa.scoring import DEFAULT_SCHEME, ScoringScheme
from repro.swa.sequential import sw_max_score
from repro.workloads.dna import random_strand
from repro.core.encoding import decode


@pytest.fixture
def served():
    """A running service + server on an ephemeral localhost port."""
    service = AlignmentService(workers=2, max_wait_ms=1,
                               bin_granularity=8)
    try:
        service.start()
        server = AlignmentServer(service, host="127.0.0.1", port=0)
    except OSError as exc:  # pragma: no cover - sandboxed environments
        service.stop()
        pytest.skip(f"cannot bind localhost sockets here: {exc}")
    with server:
        host, port = server.address
        yield host, port, service
    service.stop()


class TestRoundTrip:
    def test_ping_and_stats(self, served):
        host, port, _ = served
        with ServeClient(host, port) as client:
            assert client.ping()
            snap = client.stats()
            assert "requests_submitted" in snap

    def test_align_matches_gold(self, served, rng):
        host, port, _ = served
        q = decode(random_strand(rng, 24))
        s = decode(random_strand(rng, 30))
        with ServeClient(host, port) as client:
            resp = client.align(q, s)
        assert resp["ok"]
        from repro.core.encoding import encode
        assert resp["score"] == sw_max_score(encode(q), encode(s),
                                             DEFAULT_SCHEME)

    def test_pipelined_batch_and_threshold(self, served, rng):
        host, port, service = served
        pairs = [(decode(random_strand(rng, 16)),
                  decode(random_strand(rng, 16))) for _ in range(20)]
        pairs.append(("ACGTACGT", "ACGTACGT"))
        with ServeClient(host, port) as client:
            responses = client.align_many(pairs, threshold=15)
        assert len(responses) == len(pairs)
        assert all(r["ok"] for r in responses)
        assert responses[-1]["score"] == 16
        assert responses[-1]["passed"] is True
        # Pipelining must have shared lanes: fewer batches than pairs.
        assert service.stats.batches < len(pairs)

    def test_custom_scheme_over_the_wire(self, served, rng):
        host, port, _ = served
        from repro.core.encoding import encode
        q = decode(random_strand(rng, 12))
        s = decode(random_strand(rng, 12))
        with ServeClient(host, port) as client:
            resp = client.align(q, s, match=3, mismatch=2, gap=2)
        assert resp["score"] == sw_max_score(
            encode(q), encode(s), ScoringScheme(3, 2, 2))

    def test_bad_requests_are_answered_not_dropped(self, served):
        host, port, _ = served
        with socket.create_connection((host, port), timeout=5) as sock:
            fh = sock.makefile("rwb")
            fh.write(b"this is not json\n")
            fh.write(json.dumps({"op": "nope"}).encode() + b"\n")
            fh.write(json.dumps({"op": "align", "query": "ACGT"})
                     .encode() + b"\n")
            fh.write(json.dumps({"query": "ACGT", "subject": "AXGT"})
                     .encode() + b"\n")
            fh.flush()
            responses = [json.loads(fh.readline()) for _ in range(4)]
        kinds = [r.get("kind") for r in responses]
        assert all(not r["ok"] for r in responses)
        assert kinds[0] == "bad_request"      # malformed JSON
        assert kinds[1] == "bad_request"      # unknown op
        assert kinds[2] == "bad_request"      # missing subject
        assert kinds[3] == "error"            # invalid DNA base

    def test_error_mid_pipeline_preserves_neighbours(self, served, rng):
        host, port, _ = served
        good = decode(random_strand(rng, 10))
        with ServeClient(host, port) as client:
            responses = client.align_many(
                [(good, good), ("BADBASE!", good), (good, good)])
        assert responses[0]["ok"] and responses[2]["ok"]
        assert not responses[1]["ok"]
        assert responses[0]["score"] == responses[2]["score"]

    def test_client_error_raising_helper(self, served):
        host, port, _ = served
        with ServeClient(host, port) as client:
            with pytest.raises(ClientError) as err:
                client._check({"ok": False, "error": "x",
                               "kind": "queue_full"})
            assert err.value.kind == "queue_full"
