"""repro.jit — compile the BPBC cell circuit instead of interpreting it.

The paper's claim is that the SW recurrence *is* a circuit; this
package takes that literally and compiles the circuit:

* :mod:`repro.jit.compiler` — `Netlist` → straight-line generated
  NumPy (``compile()``/``exec``), CSE + liveness-pooled in-place
  temporaries, zero heap allocations after warmup.
* :mod:`repro.jit.cbackend` — the same plan → C → shared object via
  the system compiler, entirely optional.
* :mod:`repro.jit.cells` — LRU-cached factories: `compiled_sw_cell`
  and the fused cell+running-max `sw_wavefront_step` the wavefront
  engine drives via ``cell="compiled"``.

Select it anywhere a cell evaluator is accepted::

    bpbc_sw_wavefront(XH, XL, YH, YL, scheme, 64, cell="compiled")

or per backend with ``"compiled-c"`` / ``"compiled-numpy"``.
"""

from .cbackend import cc_available
from .cells import (CStep, GotohNumpyStep, NumpyStep, compiled_sw_cell,
                    gotoh_wavefront_step, subst_wavefront_step,
                    sw_wavefront_step)
from .compiler import (CellPlan, CompiledNetlist, JitError, compile_netlist,
                       netlist_from_source, plan_netlist)

__all__ = [
    "JitError",
    "CellPlan",
    "CompiledNetlist",
    "plan_netlist",
    "compile_netlist",
    "netlist_from_source",
    "compiled_sw_cell",
    "sw_wavefront_step",
    "subst_wavefront_step",
    "gotoh_wavefront_step",
    "NumpyStep",
    "CStep",
    "GotohNumpyStep",
    "cc_available",
]
