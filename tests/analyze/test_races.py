"""Tests for the dynamic race detector (repro.analyze.races)."""

from __future__ import annotations

import numpy as np

from repro.analyze import RaceTracer, trace_launch
from repro.gpusim import Barrier, GlobalMemory

from .fixtures import (divergent_plan, racy_global_kernel,
                       racy_global_plan, racy_shared_kernel,
                       racy_shared_plan)


def _out_gmem(n=4):
    g = GlobalMemory()
    g.alloc("out", (n,), np.uint32)
    return g


class TestSharedRaces:
    def test_neighbour_read_without_barrier_flagged(self):
        rep = trace_launch(racy_shared_kernel, 1, 4, _out_gmem(),
                           "out", shared_words=4)
        assert not rep.ok
        assert any(d.rule == "race.read-write" for d in rep.errors)
        msg = next(d for d in rep.errors
                   if d.rule == "race.read-write").message
        assert "shared[" in msg and "no barrier between" in msg

    def test_report_names_both_threads(self):
        rep = trace_launch(racy_shared_kernel, 1, 4, _out_gmem(),
                           "out", shared_words=4)
        msg = rep.errors[0].message
        # Both parties appear with their block/thread/epoch coordinates.
        assert msg.count("block 0/thread") == 2
        assert "(epoch 0)" in msg

    def test_barrier_clears_the_conflict(self):
        def fixed(ctx, out):
            t = ctx.thread_idx
            ctx.smem.store(t, t + 1)
            yield Barrier()
            v = ctx.smem.load((t + 1) % ctx.block_dim)
            ctx.gmem.store(out, t, np.uint32(v))
            yield Barrier()

        rep = trace_launch(fixed, 1, 4, _out_gmem(), "out",
                           shared_words=4)
        assert rep.ok

    def test_write_write_same_slot(self):
        def clash(ctx, out):
            ctx.smem.store(0, ctx.thread_idx)
            yield Barrier()
            ctx.gmem.store(out, ctx.thread_idx,
                           np.uint32(ctx.smem.load(0)))
            yield Barrier()

        rep = trace_launch(clash, 1, 4, _out_gmem(), "out",
                           shared_words=4)
        assert any(d.rule == "race.write-write" for d in rep.errors)


class TestGlobalRaces:
    def test_same_block_write_write(self):
        rep = trace_launch(racy_global_kernel, 1, 4, _out_gmem(), "out")
        assert any(d.rule == "race.write-write" for d in rep.errors)

    def test_cross_block_conflict_despite_epochs(self):
        """Blocks never sync with each other: a barrier inside each
        block must not order accesses across blocks."""
        def kern(ctx, out):
            yield Barrier()
            ctx.gmem.store(out, 0, np.uint32(ctx.block_idx))
            yield Barrier()

        rep = trace_launch(kern, 2, 1, _out_gmem(), "out")
        assert any(d.rule == "race.write-write" for d in rep.errors)
        assert any("block 0" in d.message and "block 1" in d.message
                   for d in rep.errors)

    def test_distinct_addresses_are_clean(self):
        def kern(ctx, out):
            ctx.gmem.store(out, ctx.global_thread_idx,
                           np.uint32(ctx.thread_idx))
            yield Barrier()

        rep = trace_launch(kern, 2, 2, _out_gmem(), "out")
        assert rep.ok

    def test_concurrent_reads_are_clean(self):
        def kern(ctx, out):
            ctx.gmem.load(out, 0)
            yield Barrier()

        rep = trace_launch(kern, 2, 4, _out_gmem(), "out")
        assert rep.ok


class TestTracerMechanics:
    def test_dedup_one_finding_per_conflicting_pair(self):
        """Each conflicting (thread pair, buffer) is reported once,
        however many accesses repeat the conflict."""
        def noisy(ctx, out):
            for _ in range(5):
                ctx.gmem.store(out, 0, np.uint32(ctx.thread_idx))
            yield Barrier()

        rep = trace_launch(noisy, 1, 4, _out_gmem(), "out")
        # Writers arrive in thread order, so the racing pairs are the
        # chained (0,1), (1,2), (2,3) — one finding each, not 5x.
        assert len(rep.errors) == 3

    def test_max_findings_cap_with_note(self):
        rep = trace_launch(racy_global_kernel, 4, 8, _out_gmem(), "out",
                           max_findings=2)
        assert len(rep.errors) == 2
        assert any(d.rule == "race.suppressed"
                   for d in rep.diagnostics)

    def test_launch_failure_becomes_diagnostic(self):
        rep = trace_launch(divergent_plan.kernel, 1, 4, _out_gmem(),
                           "out")
        assert any(d.rule == "race.launch-failed" for d in rep.errors)
        assert "KernelDeadlock" in rep.errors[-1].message

    def test_tracer_protocol_shape(self):
        from repro.gpusim import AccessTracer

        assert isinstance(RaceTracer(), AccessTracer)


class TestFixturePlans:
    def test_racy_plans_fail(self):
        from repro.analyze import analyze_plan

        assert not analyze_plan(racy_shared_plan).ok
        assert not analyze_plan(racy_global_plan).ok
        assert not analyze_plan(divergent_plan).ok
