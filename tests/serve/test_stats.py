"""ServiceStats: percentile windows, rollover, and the new scheduler
counters.

The percentile reservoirs are bounded deques — the tests pin the three
regimes that matter operationally: empty (no division by zero, zeros
out), single sample (both percentiles collapse to it), and rollover
(old samples leave the window, so a recovered service stops reporting
its bad past).
"""

from __future__ import annotations

import json

import pytest

from repro.serve.stats import ServiceStats


class TestLatencyPercentiles:
    def test_empty_window_reports_zero(self):
        stats = ServiceStats()
        assert stats.latency_percentiles() == (0.0, 0.0)
        assert stats.shard_time_percentiles() == (0.0, 0.0)
        assert stats.batch_time_percentiles() == (0.0, 0.0)

    def test_single_sample_collapses_both_percentiles(self):
        stats = ServiceStats()
        stats.record_completed(0.25)
        p50, p99 = stats.latency_percentiles()
        assert p50 == pytest.approx(250.0)
        assert p99 == pytest.approx(250.0)

    def test_p99_tracks_the_tail(self):
        stats = ServiceStats()
        for _ in range(99):
            stats.record_completed(0.001)
        stats.record_completed(1.0)
        p50, p99 = stats.latency_percentiles()
        assert p50 == pytest.approx(1.0)
        # Linear interpolation between ranks 99 and 100 pulls the
        # 1000 ms outlier into the tail estimate.
        assert p99 > 10.0 * p50

    def test_window_rolls_over(self):
        stats = ServiceStats(latency_window=8)
        for _ in range(8):
            stats.record_completed(10.0)  # a terrible past
        for _ in range(8):
            stats.record_completed(0.001)  # a recovered present
        p50, p99 = stats.latency_percentiles()
        assert p99 == pytest.approx(1.0)  # the past left the window

    def test_batch_times_only_recorded_when_timed(self):
        stats = ServiceStats()
        stats.record_batch(8, 64)  # untimed dispatch: lanes only
        assert stats.batch_time_percentiles() == (0.0, 0.0)
        stats.record_batch(8, 64, elapsed_s=0.002)
        p50, _ = stats.batch_time_percentiles()
        assert p50 == pytest.approx(2.0)
        assert stats.batches == 2


class TestSchedulerCounters:
    def test_admission_and_scheduling_counters(self):
        stats = ServiceStats()
        stats.record_admission_rejected()
        stats.record_scheduled("bpbc-jit")
        stats.record_scheduled("bpbc-jit")
        stats.record_scheduled(None)  # unhinted batch still counts
        snap = stats.snapshot()
        assert snap["admission_rejected"] == 1
        assert snap["scheduled_batches"] == 3
        assert snap["sched_engine_hints"] == {"bpbc-jit": 2}

    def test_scheduler_gauge_appears_in_snapshot(self):
        stats = ServiceStats()
        assert "scheduler" not in stats.snapshot()
        stats.set_scheduler_gauge(lambda: {"slo_ms": 5.0})
        snap = stats.snapshot()
        assert snap["scheduler"] == {"slo_ms": 5.0}
        json.dumps(snap)  # the whole snapshot stays JSON-able

    def test_render_includes_new_counters(self):
        stats = ServiceStats()
        stats.record_admission_rejected()
        text = stats.render()
        assert "admission_rejected" in text
        assert "batch_p99_ms" in text
