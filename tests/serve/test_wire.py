"""Wire-format helpers: scheme objects round-trip as request fields."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matrices import BLOSUM62, SubstitutionMatrix
from repro.core.protein import ProteinScheme
from repro.serve.server import _scheme_from
from repro.serve.wire import codes_to_str, scheme_wire_fields
from repro.swa.affine import AffineScheme
from repro.swa.scoring import ScoringScheme


@pytest.mark.parametrize("scheme", [
    ScoringScheme(match_score=2, mismatch_penalty=1, gap_penalty=1),
    ScoringScheme(match_score=3, mismatch_penalty=2, gap_penalty=2),
    AffineScheme(match_score=2, mismatch_penalty=1, gap_open=5,
                 gap_extend=1),
    ProteinScheme(BLOSUM62, gap_open=11, gap_extend=1),
])
def test_fields_round_trip_through_server_parser(scheme):
    """The coordinator's serialisation must rebuild an equal scheme on
    the server side — that is what keeps routing cache-key-stable."""
    fields = scheme_wire_fields(scheme)
    assert _scheme_from(dict(fields), None) == scheme


def test_unshipped_matrix_is_rejected():
    bespoke = SubstitutionMatrix(
        name="bespoke", residues=BLOSUM62.residues,
        values=BLOSUM62.values)
    scheme = ProteinScheme(bespoke, gap_open=11, gap_extend=1)
    with pytest.raises(ValueError, match="shipped"):
        scheme_wire_fields(scheme)


def test_unknown_scheme_type_is_typed():
    with pytest.raises(TypeError, match="serialise"):
        scheme_wire_fields(object())


def test_codes_to_str_dna():
    codes = np.array([0, 1, 2, 3, 0], dtype=np.uint8)
    assert codes_to_str(codes) == "ACGTA"


def test_codes_to_str_protein():
    scheme = ProteinScheme(BLOSUM62, gap_open=11, gap_extend=1)
    text = "MKVLAT"
    codes = scheme.alphabet.encode(text)
    assert codes_to_str(codes, scheme) == text


def test_codes_to_str_out_of_range():
    with pytest.raises(ValueError, match="out of range"):
        codes_to_str(np.array([7], dtype=np.uint8))
