"""One chaos scenario per registered fault site — no site untested.

``SCENARIOS`` maps every name in :data:`repro.resilience.faults.SITES`
to a scenario asserting the suite-wide contract: under the injected
fault the caller gets either results bit-identical to a fault-free
run, or a *typed* error naming what failed — never a silent wrong
score.  A completeness test pins ``set(SCENARIOS) == set(SITES)`` so
adding a site without a chaos scenario fails CI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience.errors import (BulkRecoveryError,
                                     FallbackExhaustedError)
from repro.resilience.faults import SITES, FaultPlan, InjectedFault
from repro.resilience.fallback import EngineFallbackChain
from repro.resilience.recovery import shard_scores_with_recovery
from repro.swa.numpy_batch import sw_batch_max_scores
from repro.swa.scoring import DEFAULT_SCHEME


def _batch(rng, pairs=8, m=16, n=16):
    X = rng.integers(0, 4, size=(pairs, m)).astype(np.uint8)
    Y = rng.integers(0, 4, size=(pairs, n)).astype(np.uint8)
    return X, Y


# -- shard.worker.* ----------------------------------------------------

def _pool_or_skip():
    from repro.shard.executor import ShardExecutor

    with ShardExecutor(workers=2) as ex:
        if ex.in_process:
            pytest.skip("requires a multiprocessing pool")


def _shard_recovers(rng, site, *, times=None, timeout_s=None):
    """Fault a pool worker; the recovered scores must be bit-identical
    to the fault-free reference (recovery rescored lost shards on the
    in-process fallback chain)."""
    _pool_or_skip()
    X, Y = _batch(rng, pairs=8)
    expected = sw_batch_max_scores(X, Y, DEFAULT_SCHEME)
    with FaultPlan.single(site, times=times):
        got = shard_scores_with_recovery(X, Y, workers=2,
                                         max_shard_pairs=4,
                                         timeout_s=timeout_s)
    assert np.array_equal(got, expected)


def _scenario_worker_crash(rng, seed):
    _shard_recovers(rng, "shard.worker.crash", times=1, timeout_s=3.0)


def _scenario_worker_hang(rng, seed):
    _shard_recovers(rng, "shard.worker.hang", times=1, timeout_s=1.0)


def _scenario_worker_error(rng, seed):
    # Permanent: every shard raises in-worker, all pairs recovered.
    _shard_recovers(rng, "shard.worker.error", timeout_s=10.0)


def _scenario_worker_slow(rng, seed):
    # Slowdown must never change scores; with a generous deadline the
    # run completes normally and needs no recovery at all.
    _shard_recovers(rng, "shard.worker.slow", timeout_s=30.0)


# -- shard.shm.* -------------------------------------------------------

def _shm_executor(rng):
    from repro.shard import shm_available
    from repro.shard.executor import ShardExecutor

    if not shm_available():
        pytest.skip("shared memory unavailable on this machine")
    # The plan must already be active here: workers learn their fault
    # plan through pool initargs, so callers construct the executor
    # inside the FaultPlan context.
    ex = ShardExecutor(workers=2, transport="shm", timeout_s=30.0)
    if ex.in_process:
        ex.close()
        pytest.skip("requires a multiprocessing pool")
    return ex


def _scenario_shm_attach(rng, seed):
    X, Y = _batch(rng, pairs=8)
    expected = sw_batch_max_scores(X, Y, DEFAULT_SCHEME)
    with FaultPlan.single("shard.shm.attach", times=1):
        with _shm_executor(rng) as ex:
            result = ex.run(X, Y, DEFAULT_SCHEME)
            fallbacks = ex.shm_fallbacks
    # The failed mapping was retried over the pickle transport —
    # bit-identically — and the executor counted the degradation.
    assert np.array_equal(result.scores, expected)
    assert fallbacks >= 1


def _scenario_shm_unlink(rng, seed):
    from repro.shard.shm import ShmArena

    X, Y = _batch(rng, pairs=8)
    expected = sw_batch_max_scores(X, Y, DEFAULT_SCHEME)
    with FaultPlan.single("shard.shm.unlink", times=1):
        with _shm_executor(rng) as ex:
            result = ex.run(X, Y, DEFAULT_SCHEME)
        # Executor close retires the arena; the injected unlink
        # failure leaks the segment but must not raise or taint the
        # already-settled scores.
    assert np.array_equal(result.scores, expected)
    # Direct arena check: the failed unlink is *counted*, never raised.
    xs = [np.zeros(4, np.uint8)]
    with FaultPlan.single("shard.shm.unlink", times=1):
        arena = ShmArena(capacity=1 << 12)
        arena.begin_run([(0, xs, xs)])
        arena.close()
        assert arena.unlink_failures == 1


def _scenario_sched_mispredict(rng, seed):
    from repro.serve import AdmissionRejected, AlignmentService
    from repro.swa.sequential import sw_matrix

    pairs = [("ACGTACGTACGT", "TGCACGTATGCA") for _ in range(4)]
    service = AlignmentService(workers=1, max_wait_ms=1.0,
                               slo_ms=250.0, cache_size=0)
    service.start()
    try:
        with FaultPlan.single("serve.sched.mispredict"):
            for q, s in pairs:
                try:
                    result = service.align(q, s)
                except AdmissionRejected:
                    # The inflated estimate turned admission
                    # conservative — load was shed with a typed error,
                    # not scored wrongly.
                    continue
                # Admitted requests still score bit-identically.
                assert result.score == sw_matrix(
                    q, s, DEFAULT_SCHEME).max()
    finally:
        service.stop()


# -- serve.sock.* ------------------------------------------------------

def _served():
    from repro.serve import AlignmentServer, AlignmentService

    service = AlignmentService(workers=1, max_wait_ms=1.0)
    try:
        service.start()
        server = AlignmentServer(service, host="127.0.0.1", port=0)
    except OSError as exc:  # pragma: no cover - sandboxed environments
        service.stop()
        pytest.skip(f"cannot bind localhost sockets here: {exc}")
    return service, server


def _scenario_sock_drop(rng, seed):
    from repro.serve.client import ClientError, ServeClient

    service, server = _served()
    with server:
        host, port = server.address
        with FaultPlan.single("serve.sock.drop"):
            with ServeClient(host, port) as client:
                with pytest.raises(ClientError) as excinfo:
                    client.align("ACGTACGT", "ACGTACGT")
    service.stop()
    # A dropped connection is a clean EOF on a frame boundary — the
    # client reports the typed "closed" kind, never a partial score.
    assert excinfo.value.kind == "closed"


def _scenario_sock_truncate(rng, seed):
    from repro.serve.client import ServeClient
    from repro.serve.errors import ServeProtocolError

    service, server = _served()
    with server:
        host, port = server.address
        with FaultPlan.single("serve.sock.truncate"):
            with ServeClient(host, port) as client:
                with pytest.raises(ServeProtocolError) as excinfo:
                    client.align("ACGTACGT", "ACGTACGT")
    service.stop()
    # Half a frame arrived: the error names how many bytes did.
    assert excinfo.value.bytes_read > 0


# -- jit.cc.* ----------------------------------------------------------

def _jit_fault(site):
    from repro.jit import JitError, cc_available
    from repro.jit import cbackend, cells

    if not cc_available():
        pytest.skip("no C compiler on this machine")
    args = (4, 1, 2, 1, 2, 64)
    # Both dispatch caches would satisfy the call before the injection
    # site is reached; clear them (and clear again afterwards so the
    # faulted lowering never leaks into other tests).
    cells._step_cached.cache_clear()
    cbackend._libs.clear()
    try:
        with FaultPlan.single(site):
            step = cells.sw_wavefront_step(*args, backend="auto")
            assert step.backend == "numpy"  # demoted, bit-identical
        cells._step_cached.cache_clear()
        with FaultPlan.single(site):
            with pytest.raises(JitError, match=site):
                cells.sw_wavefront_step(*args, backend="c")
    finally:
        cells._step_cached.cache_clear()
        cbackend._libs.clear()


def _scenario_cc_compile(rng, seed):
    _jit_fault("jit.cc.compile")


def _scenario_cc_load(rng, seed):
    _jit_fault("jit.cc.load")


# -- gpusim ------------------------------------------------------------

def _scenario_gpusim_memory(rng, seed):
    from repro.gpusim.errors import MemoryFault
    from repro.gpusim.memory import GlobalMemory

    gmem = GlobalMemory()
    gmem.alloc("scores", 8, np.int64)
    with FaultPlan.single("gpusim.memory.fault", times=2):
        with pytest.raises(MemoryFault, match="gpusim.memory.fault"):
            gmem.store("scores", 0, 7)
        with pytest.raises(MemoryFault, match="gpusim.memory.fault"):
            gmem.load("scores", 0)
    # The fault never silently corrupted the buffer.
    assert gmem.load("scores", 0) == 0


# -- index.* -----------------------------------------------------------

def _tiny_index(rng, tmp):
    from repro.index.store import build_index
    from repro.workloads.dna import random_strand

    entries = [random_strand(rng, int(n))
               for n in rng.integers(100, 300, size=8)]
    query = random_strand(rng, 24)
    entries[3][20:44] = query
    idx = build_index(((f"e{i}", s) for i, s in enumerate(entries)),
                      tmp / "idx", k=8, w=4, shard_chars=600)
    return idx, query


def _scenario_index_shard_open(rng, seed):
    import tempfile
    from pathlib import Path

    from repro.index.store import IndexIntegrityError

    with tempfile.TemporaryDirectory() as tmp:
        idx, _ = _tiny_index(rng, Path(tmp))
        with FaultPlan.single("index.shard.open", times=1):
            with pytest.raises(IndexIntegrityError,
                               match="index.shard.open"):
                idx.open_shard(0)
            # times=1 spent: the same shard opens cleanly afterwards.
            idx.open_shard(0).close()


def _scenario_index_shard_verify(rng, seed):
    import tempfile
    from pathlib import Path

    from repro.index.store import IndexIntegrityError

    with tempfile.TemporaryDirectory() as tmp:
        idx, _ = _tiny_index(rng, Path(tmp))
        with FaultPlan.single("index.shard.verify", times=1):
            with pytest.raises(IndexIntegrityError,
                               match="index.shard.verify"):
                idx.verify()
        # The reported corruption was injected, not real: a clean
        # re-verify of the untouched files passes.
        idx.verify()


def _scenario_index_tier1_screen(rng, seed):
    import tempfile
    from pathlib import Path

    from repro.index.search import TieredSearch

    with tempfile.TemporaryDirectory() as tmp:
        idx, query = _tiny_index(rng, Path(tmp))
        search = TieredSearch(idx, scheme=DEFAULT_SCHEME, min_seeds=1,
                              threshold=20, resilient=True)
        clean = search.search([query], align=False)
        with FaultPlan.single("index.tier1.screen", times=1):
            hit = search.search([query], align=False)
        # Rescued on the fallback chain: bit-identical hits, and the
        # stats name the rescue so operators can see it happened.
        assert ([(h.db_index, h.score) for h in hit.hits]
                == [(h.db_index, h.score) for h in clean.hits])
        assert any("rescued" in e for e in hit.stats.engine_batches)
        # Non-resilient searches surface the typed fault instead.
        brittle = TieredSearch(idx, scheme=DEFAULT_SCHEME, min_seeds=1,
                               threshold=20, resilient=False)
        with FaultPlan.single("index.tier1.screen", times=1):
            with pytest.raises(InjectedFault):
                brittle.search([query], align=False)


def _scenario_index_tier2_align(rng, seed):
    import tempfile
    from pathlib import Path

    from repro.index.search import TieredSearch

    with tempfile.TemporaryDirectory() as tmp:
        idx, query = _tiny_index(rng, Path(tmp))
        search = TieredSearch(idx, scheme=DEFAULT_SCHEME, min_seeds=1,
                              threshold=20)
        clean = search.search([query])
        with FaultPlan.single("index.tier2.align", times=1):
            hit = search.search([query])
        # One transient alignment failure is absorbed by the retry.
        assert ([(h.db_index, h.score, h.alignment.aligned_x)
                 for h in hit.hits]
                == [(h.db_index, h.score, h.alignment.aligned_x)
                    for h in clean.hits])
        # A permanent fault exhausts the retry and propagates typed.
        with FaultPlan.single("index.tier2.align"):
            with pytest.raises(InjectedFault):
                search.search([query])


# -- cluster.* ---------------------------------------------------------

_CLUSTER_PAIRS = [("ACGTACGT", "ACGTTGCA"), ("GATTACA", "GATTACA"),
                  ("AAAACCCC", "AAAATCCC"), ("ACACACAC", "CACACACA")]


def _cluster_nodes(stack, n=3):
    """n in-process serve nodes (threads, ephemeral ports) registered
    for teardown on the ExitStack; skips where sockets are refused."""
    from repro.cluster import RemoteNode

    nodes = []
    for i in range(n):
        service, server = _served()
        stack.enter_context(server)
        stack.callback(service.stop)
        host, port = server.address
        nodes.append(RemoteNode(f"n{i}", host, port))
    return nodes


def _cluster_expected():
    from repro.swa.sequential import sw_matrix

    return [int(sw_matrix(q, s, DEFAULT_SCHEME).max())
            for q, s in _CLUSTER_PAIRS]


def _cluster_recovers(site, *, times=1):
    """Fault the cluster path; scores must stay bit-identical to the
    scalar reference.  Returns the coordinator for counter checks."""
    from contextlib import ExitStack

    from repro.cluster import ClusterCoordinator

    expected = _cluster_expected()
    with ExitStack() as stack:
        nodes = _cluster_nodes(stack, 3)
        coord = ClusterCoordinator(nodes, deadline_s=20.0)
        with FaultPlan.single(site, times=times):
            got = coord.score_batch(_CLUSTER_PAIRS)
    assert list(got) == expected
    return coord


def _scenario_cluster_connect(rng, seed):
    # A refused connect reroutes the whole group to a replica.
    coord = _cluster_recovers("cluster.node.connect", times=1)
    assert coord.status()["cluster"]["rerouted"] >= 1


def _scenario_cluster_drop(rng, seed):
    # The connection dies after requests were written; the retry
    # reuses its request IDs, so work that landed is replayed (from
    # the idempotency index) rather than scored twice.
    coord = _cluster_recovers("cluster.node.drop", times=1)
    assert coord.status()["cluster"]["rerouted"] >= 1


def _scenario_cluster_probe_flap(rng, seed):
    # A lying health probe may open a breaker — capacity shrinks, but
    # the next batch still scores bit-identically on the other nodes.
    from contextlib import ExitStack

    from repro.cluster import ClusterCoordinator

    expected = _cluster_expected()
    with ExitStack() as stack:
        nodes = _cluster_nodes(stack, 3)
        coord = ClusterCoordinator(nodes, deadline_s=20.0)
        with FaultPlan.single("cluster.probe.flap", times=1):
            health = coord.probe_once()
        assert sum(1 for ok in health.values() if not ok) == 1
        got = coord.score_batch(_CLUSTER_PAIRS)
    assert list(got) == expected


def _scenario_cluster_route_mispick(rng, seed):
    # Permanent mispick: every pair routes to a non-owner.  Only cache
    # locality may suffer; the scores cannot.
    coord = _cluster_recovers("cluster.route.mispick", times=None)
    assert coord.status()["cluster"]["mispicks"] == len(_CLUSTER_PAIRS)


# -- engine.*.fail -----------------------------------------------------

def _engine_demotes(rng, name):
    chain = EngineFallbackChain()
    if name not in chain.engines:
        pytest.skip(f"engine {name!r} unavailable on this machine")
    if len(chain.engines) < 2:
        pytest.skip("needs a second engine to demote to")
    X, Y = _batch(rng)
    expected = sw_batch_max_scores(X, Y, DEFAULT_SCHEME)
    with FaultPlan.single(f"engine.{name}.fail"):
        scores, engine = chain.score(X, Y)
    assert engine != name
    assert np.array_equal(scores, expected)


def _scenario_engine_compiled_c(rng, seed):
    _engine_demotes(rng, "compiled-c")


def _scenario_engine_compiled_numpy(rng, seed):
    _engine_demotes(rng, "compiled-numpy")


def _scenario_engine_bpbc(rng, seed):
    _engine_demotes(rng, "bpbc")


def _scenario_engine_numpy(rng, seed):
    # numpy is the floor of the default chain: a demotion test would
    # never reach it, so fault it alone and require typed exhaustion.
    chain = EngineFallbackChain(engines=("numpy",), self_test=False)
    X, Y = _batch(rng, pairs=4, m=12, n=12)
    with FaultPlan.single("engine.numpy.fail"):
        with pytest.raises(FallbackExhaustedError) as excinfo:
            chain.score(X, Y)
    assert isinstance(excinfo.value.attempts["numpy"], InjectedFault)


SCENARIOS = {
    "cluster.node.connect": _scenario_cluster_connect,
    "cluster.node.drop": _scenario_cluster_drop,
    "cluster.probe.flap": _scenario_cluster_probe_flap,
    "cluster.route.mispick": _scenario_cluster_route_mispick,
    "engine.bpbc.fail": _scenario_engine_bpbc,
    "engine.compiled-c.fail": _scenario_engine_compiled_c,
    "engine.compiled-numpy.fail": _scenario_engine_compiled_numpy,
    "engine.numpy.fail": _scenario_engine_numpy,
    "gpusim.memory.fault": _scenario_gpusim_memory,
    "index.shard.open": _scenario_index_shard_open,
    "index.shard.verify": _scenario_index_shard_verify,
    "index.tier1.screen": _scenario_index_tier1_screen,
    "index.tier2.align": _scenario_index_tier2_align,
    "jit.cc.compile": _scenario_cc_compile,
    "jit.cc.load": _scenario_cc_load,
    "serve.sched.mispredict": _scenario_sched_mispredict,
    "serve.sock.drop": _scenario_sock_drop,
    "serve.sock.truncate": _scenario_sock_truncate,
    "shard.shm.attach": _scenario_shm_attach,
    "shard.shm.unlink": _scenario_shm_unlink,
    "shard.worker.crash": _scenario_worker_crash,
    "shard.worker.hang": _scenario_worker_hang,
    "shard.worker.slow": _scenario_worker_slow,
    "shard.worker.error": _scenario_worker_error,
}


def test_every_registered_site_has_a_scenario():
    assert set(SCENARIOS) == set(SITES)


@pytest.mark.parametrize("site", sorted(SITES))
def test_site(site, rng, chaos_seed):
    SCENARIOS[site](rng, chaos_seed)


def test_unrecoverable_loss_names_every_pair(rng):
    """Workers *and* every chain engine faulted: the caller must get a
    typed BulkRecoveryError naming the lost pair indices — the one
    case where nothing can hide the loss behind a wrong score."""
    _pool_or_skip()
    # Build the chain before the plan so construction self-tests pass.
    chain = EngineFallbackChain()
    X, Y = _batch(rng, pairs=8)
    plan = FaultPlan([{"site": "shard.worker.error"}]
                     + [{"site": f"engine.{name}.fail"}
                        for name in chain.engines])
    with plan:
        with pytest.raises(BulkRecoveryError) as excinfo:
            shard_scores_with_recovery(X, Y, workers=2,
                                       max_shard_pairs=4,
                                       timeout_s=10.0, chain=chain)
    assert excinfo.value.pair_indices == tuple(range(8))


def test_protein_scheme_demotes_bit_identically(rng):
    """A protein (substitution-matrix, affine) scheme rides the same
    fallback chain: faulting the top engine demotes, and the recovered
    scores stay bit-identical to the scalar Gotoh reference."""
    from repro.core.matrices import BLOSUM62
    from repro.core.protein import (ProteinScheme,
                                    subst_gotoh_batch_max_scores)

    chain = EngineFallbackChain()
    if len(chain.engines) < 2:
        pytest.skip("needs a second engine to demote to")
    scheme = ProteinScheme(BLOSUM62, gap_open=11, gap_extend=1)
    X = rng.integers(0, 20, size=(8, 16)).astype(np.uint8)
    Y = rng.integers(0, 20, size=(8, 16)).astype(np.uint8)
    expected = subst_gotoh_batch_max_scores(X, Y, scheme)
    top = chain.engines[0]
    with FaultPlan.single(f"engine.{top}.fail"):
        scores, engine = chain.score(X, Y, scheme=scheme)
    assert engine != top
    assert np.array_equal(scores, expected)


def test_protein_scheme_numpy_floor_is_gotoh(rng):
    """The chain's wordwise floor must dispatch protein schemes to the
    substitution Gotoh reference, not the DNA match/mismatch engine."""
    from repro.core.matrices import PAM250
    from repro.core.protein import (ProteinScheme,
                                    subst_gotoh_batch_max_scores)

    chain = EngineFallbackChain(engines=("numpy",), self_test=False)
    scheme = ProteinScheme(PAM250, gap_open=10, gap_extend=2)
    X = rng.integers(0, 20, size=(4, 12)).astype(np.uint8)
    Y = rng.integers(0, 20, size=(4, 12)).astype(np.uint8)
    scores, engine = chain.score(X, Y, scheme=scheme)
    assert engine == "numpy"
    assert np.array_equal(scores,
                          subst_gotoh_batch_max_scores(X, Y, scheme))
