"""Static lint for SIMT kernel generator functions.

The pass parses a kernel's source (kernels are Python generator
functions over a :class:`~repro.gpusim.kernel.ThreadCtx`) and checks
the three hazards the simulator can only catch at run time — or not at
all:

``lint.barrier-divergence``
    A synchronisation yield (``yield Barrier()`` / ``yield Shfl``)
    whose execution count depends on a *thread-varying* condition.  Two
    threads of one block would then reach different synchronisation
    rounds — the divergent-``__syncthreads`` bug that hangs real
    hardware.  The check is path-sensitive: a barrier under a
    thread-dependent branch is fine when every divergent path issues
    the same synchronisation sequence (the guard-and-exit idiom
    ``if tid >= total: yield Barrier(); return`` lints clean).

``lint.shfl-nonconst-delta``
    A ``Shfl`` whose ``delta`` is not a compile-time constant: lanes
    of one warp could disagree, which the executor rejects at run time.

``lint.smem-uniform-store`` / ``lint.smem-stripe-write``
    A shared-memory store at a thread-*uniform* index (every thread
    writes the same word — a guaranteed write-write race), or at an
    index computed by subtracting from / wrapping a thread-dependent
    value (writing a *neighbour's* stripe, the pattern that turns the
    owner-computes convention into a race).

**Taint model.**  ``ctx.thread_idx``, ``ctx.global_thread_idx``,
``ctx.lane`` and ``ctx.warp`` are thread-varying; ``ctx.block_idx``,
``ctx.block_dim``, kernel parameters and constants are uniform across
a block.  Taint propagates through assignments, loop targets, and
assignments under tainted control flow.

**Suppression.**  Append ``# analyze: skip`` to the offending source
line to silence any finding it anchors (documented in
``docs/ANALYSIS.md``).
"""

from __future__ import annotations

import ast
import inspect
import itertools
import textwrap
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable

from .report import Diagnostic, Severity

__all__ = ["lint_kernel", "KernelLintError"]

#: ThreadCtx attributes that vary per thread within a block.
_THREAD_ATTRS = frozenset(
    {"thread_idx", "global_thread_idx", "lane", "warp"})

#: Cap on enumerated control-flow paths before the pass gives up.
_MAX_PATHS = 2048

_SUPPRESS_MARK = "analyze: skip"


class KernelLintError(ValueError):
    """The linted object is not an analysable kernel function."""


# ---------------------------------------------------------------------------
# Taint analysis
# ---------------------------------------------------------------------------

class _Taint:
    """Forward may-taint over a kernel body (names only, no kills)."""

    def __init__(self, ctx_name: str) -> None:
        self.ctx_name = ctx_name
        self.names: set[str] = set()

    def expr_tainted(self, node: ast.AST) -> bool:
        """Does this expression (possibly) vary across threads?"""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in self.names:
                return True
            if isinstance(sub, ast.Attribute) \
                    and sub.attr in _THREAD_ATTRS \
                    and isinstance(sub.value, ast.Name) \
                    and sub.value.id == self.ctx_name:
                return True
        return False

    def _bind(self, target: ast.AST) -> None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                self.names.add(sub.id)

    def _visit(self, stmts: list[ast.stmt], control: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                value = stmt.value
                tainted = control or (value is not None
                                      and self.expr_tainted(value))
                if isinstance(stmt, ast.Assign):
                    targets: list[ast.AST] = list(stmt.targets)
                else:
                    targets = [stmt.target]
                if isinstance(stmt, ast.AugAssign):
                    # x op= e keeps x's own taint regardless.
                    tainted = tainted or self.expr_tainted(stmt.target)
                if tainted:
                    for t in targets:
                        self._bind(t)
            elif isinstance(stmt, ast.For):
                if control or self.expr_tainted(stmt.iter):
                    self._bind(stmt.target)
                body_control = control or self.expr_tainted(stmt.iter)
                self._visit(stmt.body, body_control)
                self._visit(stmt.orelse, body_control)
            elif isinstance(stmt, ast.While):
                body_control = control or self.expr_tainted(stmt.test)
                self._visit(stmt.body, body_control)
                self._visit(stmt.orelse, body_control)
            elif isinstance(stmt, ast.If):
                branch_control = control or self.expr_tainted(stmt.test)
                self._visit(stmt.body, branch_control)
                self._visit(stmt.orelse, branch_control)
            elif isinstance(stmt, (ast.With, ast.Try)):
                self._visit(getattr(stmt, "body", []), control)

    def run(self, body: list[ast.stmt]) -> None:
        """Fixpoint: repeat the forward pass until no new names taint."""
        while True:
            before = len(self.names)
            self._visit(body, control=False)
            if len(self.names) == before:
                return


# ---------------------------------------------------------------------------
# Synchronisation-divergence analysis
# ---------------------------------------------------------------------------

@dataclass
class _Path:
    """One control-flow path: its sync signature and decisions."""

    #: Sync signature: counts of direct barriers ('B'), shuffles
    #: ('S'), bare yields ('Y'), and per-loop symbols ('L<id>').
    sig: Counter = field(default_factory=Counter)
    #: Outcome taken at each *uniform* branch node (id -> bool).
    uniform: dict[int, bool] = field(default_factory=dict)
    #: (node id, lineno, outcome) of each *tainted* branch taken.
    tainted: list[tuple[int, int, bool]] = field(default_factory=list)
    done: bool = False

    def fork(self) -> "_Path":
        return _Path(Counter(self.sig), dict(self.uniform),
                     list(self.tainted), self.done)


def _sync_kind(value: ast.expr | None) -> str | None:
    """Classify a yielded expression: 'B'arrier, 'S'hfl, or 'Y' other."""
    if value is None:
        return "Y"
    if isinstance(value, ast.Call):
        fn = value.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else "")
        if name == "Barrier":
            return "B"
        if name == "Shfl":
            return "S"
    return "Y"


def _yield_in(node: ast.AST) -> ast.Yield | None:
    """The Yield expression directly inside a statement, if any."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Yield):
            return sub
    return None


def _contains_sync(stmts: list[ast.stmt]) -> bool:
    return any(_yield_in(s) is not None for s in stmts)


class _SyncAnalysis:
    """Path-sensitive synchronisation-count analysis of one function."""

    def __init__(self, taint: _Taint, subject: str,
                 suppressed: Callable[[int], bool]) -> None:
        self.taint = taint
        self.subject = subject
        self.suppressed = suppressed
        self.findings: list[Diagnostic] = []
        self.overflowed = False

    # -- path enumeration ---------------------------------------------
    def _enumerate(self, stmts: list[ast.stmt]) -> list[_Path]:
        paths = [_Path()]
        for stmt in stmts:
            if all(p.done for p in paths):
                break
            next_paths: list[_Path] = []
            for p in paths:
                if p.done:
                    next_paths.append(p)
                else:
                    next_paths.extend(self._step(p, stmt))
                if len(next_paths) > _MAX_PATHS:
                    self.overflowed = True
                    return next_paths[:_MAX_PATHS]
            paths = next_paths
        return paths

    def _step(self, path: _Path, stmt: ast.stmt) -> list[_Path]:
        y = _yield_in(stmt) if isinstance(
            stmt, (ast.Expr, ast.Assign, ast.AugAssign, ast.AnnAssign)
        ) else None
        if y is not None:
            kind = _sync_kind(y.value)
            if kind:
                path.sig[kind] += 1
            return [path]
        if isinstance(stmt, (ast.Return, ast.Raise)):
            path.done = True
            return [path]
        if isinstance(stmt, ast.If):
            tainted = self.taint.expr_tainted(stmt.test)
            out: list[_Path] = []
            for branch, body in ((True, stmt.body), (False, stmt.orelse)):
                forked = path.fork()
                if tainted:
                    forked.tainted.append((id(stmt), stmt.lineno, branch))
                else:
                    forked.uniform[id(stmt)] = branch
                sub = self._enumerate(body)
                for s in sub:
                    merged = forked.fork()
                    merged.sig.update(s.sig)
                    merged.uniform.update(s.uniform)
                    merged.tainted.extend(s.tainted)
                    merged.done = s.done
                    out.append(merged)
            return out
        if isinstance(stmt, (ast.For, ast.While)):
            header = stmt.iter if isinstance(stmt, ast.For) else stmt.test
            has_sync = _contains_sync(list(ast.walk(stmt)))
            if self.taint.expr_tainted(header):
                if has_sync and not self.suppressed(stmt.lineno):
                    self.findings.append(Diagnostic(
                        rule="lint.barrier-divergence",
                        severity=Severity.ERROR,
                        subject=self.subject,
                        message="synchronisation inside a loop whose "
                                "trip count depends on the thread "
                                "index: threads would issue different "
                                "numbers of sync rounds",
                        location=f"line {stmt.lineno}",
                    ))
                return [path]
            # Uniform loop: all threads run it the same number of
            # times.  Check the body independently for internal
            # divergence; the loop as a whole contributes one opaque
            # uniform symbol if it synchronises at all.
            self.check(stmt.body)
            if has_sync:
                path.sig[f"L{stmt.lineno}"] += 1
            return [path]
        if isinstance(stmt, (ast.With, ast.Try)):
            return self._enumerate_into(path, getattr(stmt, "body", []))
        return [path]

    def _enumerate_into(self, path: _Path,
                        body: list[ast.stmt]) -> list[_Path]:
        out = []
        for s in self._enumerate(body):
            merged = path.fork()
            merged.sig.update(s.sig)
            merged.uniform.update(s.uniform)
            merged.tainted.extend(s.tainted)
            merged.done = s.done
            out.append(merged)
        return out

    # -- divergence check ---------------------------------------------
    def check(self, stmts: list[ast.stmt]) -> None:
        """Enumerate paths of ``stmts`` and report divergent pairs.

        Two paths can be taken *simultaneously* by two threads of one
        block iff they agree on every uniform branch both evaluated.
        If such a pair issues different synchronisation signatures,
        the block deadlocks (or worse) — report the first tainted
        branch where the two paths part ways.
        """
        paths = self._enumerate(stmts)
        reported: set[int] = set()
        for a, b in itertools.combinations(paths, 2):
            if a.sig == b.sig:
                continue
            if any(a.uniform.get(k) != v for k, v in b.uniform.items()
                   if k in a.uniform):
                continue  # require a uniform branch to disagree: never
            # First tainted decision where the two paths differ.
            diff = [d for d in a.tainted + b.tainted
                    if d not in a.tainted or d not in b.tainted]
            if not diff:
                continue  # identical decisions cannot diverge
            node_id, lineno, _ = diff[0]
            if node_id in reported or self.suppressed(lineno):
                continue
            reported.add(node_id)
            a_counts = dict(a.sig)
            b_counts = dict(b.sig)
            self.findings.append(Diagnostic(
                rule="lint.barrier-divergence",
                severity=Severity.ERROR,
                subject=self.subject,
                message="a thread-dependent branch changes the "
                        "synchronisation sequence: one side issues "
                        f"{a_counts or 'no syncs'}, the other "
                        f"{b_counts or 'no syncs'}",
                location=f"line {lineno}",
            ))


# ---------------------------------------------------------------------------
# Shuffle and shared-store checks
# ---------------------------------------------------------------------------

def _is_const(node: ast.expr) -> bool:
    try:
        ast.literal_eval(node)
        return True
    except (ValueError, TypeError, SyntaxError):
        return False


def _check_shuffles(fndef: ast.FunctionDef, taint: _Taint, subject: str,
                    suppressed: Callable[[int], bool]
                    ) -> list[Diagnostic]:
    out = []
    for node in ast.walk(fndef):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else "")
        if name != "Shfl":
            continue
        delta: ast.expr | None = None
        if len(node.args) >= 3:
            delta = node.args[2]
        for kw in node.keywords:
            if kw.arg == "delta":
                delta = kw.value
        if delta is None or _is_const(delta):
            continue
        if suppressed(node.lineno):
            continue
        out.append(Diagnostic(
            rule="lint.shfl-nonconst-delta",
            severity=Severity.ERROR, subject=subject,
            message="Shfl delta is not a compile-time constant: lanes "
                    "of a warp could issue different deltas, which "
                    "the executor rejects",
            location=f"line {node.lineno}",
        ))
    return out


def _smem_store_index(node: ast.Call, ctx_name: str) -> ast.expr | None:
    """The index operand of a ``ctx.smem.store``/``warp_store`` call."""
    fn = node.func
    if not (isinstance(fn, ast.Attribute)
            and fn.attr in ("store", "warp_store")):
        return None
    base = fn.value
    if not (isinstance(base, ast.Attribute) and base.attr == "smem"
            and isinstance(base.value, ast.Name)
            and base.value.id == ctx_name):
        return None
    return node.args[0] if node.args else None


def _check_smem_stores(fndef: ast.FunctionDef, taint: _Taint,
                       subject: str,
                       suppressed: Callable[[int], bool]
                       ) -> list[Diagnostic]:
    out = []
    for node in ast.walk(fndef):
        if not isinstance(node, ast.Call):
            continue
        idx = _smem_store_index(node, taint.ctx_name)
        if idx is None or suppressed(node.lineno):
            continue
        if not taint.expr_tainted(idx):
            out.append(Diagnostic(
                rule="lint.smem-uniform-store",
                severity=Severity.ERROR, subject=subject,
                message="shared-memory store at a thread-uniform "
                        "index: every thread of the block writes the "
                        "same word (write-write race)",
                location=f"line {node.lineno}",
            ))
            continue
        for sub in ast.walk(idx):
            if isinstance(sub, ast.BinOp) \
                    and isinstance(sub.op, (ast.Sub, ast.Mod)) \
                    and (taint.expr_tainted(sub.left)
                         or taint.expr_tainted(sub.right)):
                op = "subtracting from" if isinstance(sub.op, ast.Sub) \
                    else "wrapping"
                out.append(Diagnostic(
                    rule="lint.smem-stripe-write",
                    severity=Severity.ERROR, subject=subject,
                    message="shared-memory store at an index computed "
                            f"by {op} a thread-dependent value: this "
                            "writes another thread's stripe "
                            "(owner-computes violation)",
                    location=f"line {node.lineno}",
                ))
                break
    return out


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def lint_kernel(kernel: Callable[..., Any],
                name: str | None = None) -> list[Diagnostic]:
    """Statically lint one kernel generator function.

    Returns the diagnostics (empty list = clean).  Raises
    :class:`KernelLintError` if ``kernel``'s source cannot be
    retrieved or parsed (lambdas, C extensions, exec-generated code).
    """
    subject = name or getattr(kernel, "__name__", str(kernel))
    try:
        source = textwrap.dedent(inspect.getsource(kernel))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError) as exc:
        raise KernelLintError(
            f"cannot lint {subject}: {exc}"
        ) from exc
    fndef = next((n for n in tree.body
                  if isinstance(n, ast.FunctionDef)), None)
    if fndef is None:
        raise KernelLintError(f"{subject}: no function definition found")
    if not fndef.args.args:
        raise KernelLintError(f"{subject}: kernel takes no ThreadCtx")

    lines = source.splitlines()

    def suppressed(lineno: int) -> bool:
        if 1 <= lineno <= len(lines):
            return _SUPPRESS_MARK in lines[lineno - 1]
        return False

    taint = _Taint(fndef.args.args[0].arg)
    taint.run(fndef.body)

    sync = _SyncAnalysis(taint, subject, suppressed)
    sync.check(fndef.body)
    findings = list(sync.findings)
    if sync.overflowed:
        findings.append(Diagnostic(
            rule="lint.path-overflow", severity=Severity.WARNING,
            subject=subject,
            message=f"more than {_MAX_PATHS} control-flow paths; "
                    "barrier-divergence analysis truncated",
        ))
    findings.extend(_check_shuffles(fndef, taint, subject, suppressed))
    findings.extend(_check_smem_stores(fndef, taint, subject, suppressed))
    return findings
