"""Amino-acid substitution matrices for the protein BPBC pipeline.

The paper's ``matching_B`` gate scores a character pair as ``+c1`` on
equality and ``-c2`` otherwise — fine for DNA, useless for protein
search, where every serious engine (SWAPHI, SSW, the striped-profile
family in PAPERS.md) scores residue pairs through a substitution
matrix.  This module ships the three classic matrices (BLOSUM62,
BLOSUM50, PAM250 — the NCBI 24-letter tables including the B/Z
ambiguity rows, X and the stop ``*``) and accepts arbitrary integer
matrices; :mod:`repro.core.subst` turns any of them into the
bit-sliced lookup circuit.

A :class:`SubstitutionMatrix` is frozen and hashable (values are
tuples of tuples), so it can key the ``lru_cache`` of the netlist
builders directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["SubstitutionMatrix", "BLOSUM62", "BLOSUM50", "PAM250",
           "MATRICES", "matrix_by_name"]


@dataclass(frozen=True)
class SubstitutionMatrix:
    """An integer residue-pair scoring matrix.

    ``residues[i]`` names row/column ``i`` of ``values``; lookups by
    character resolve through :meth:`score`.  ``values`` must be a
    square tuple of tuples of ints — hashable, so a matrix can key a
    netlist cache.
    """

    name: str
    residues: str
    values: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        k = len(self.residues)
        if k == 0:
            raise ValueError("matrix needs at least one residue")
        if len(set(self.residues)) != k:
            raise ValueError(f"duplicate residues in {self.residues!r}")
        if len(self.values) != k or any(len(r) != k for r in self.values):
            raise ValueError(
                f"matrix {self.name!r} must be {k}x{k} to match its "
                f"residue string"
            )

    @classmethod
    def from_rows(cls, name: str, residues: str,
                  rows) -> "SubstitutionMatrix":
        """Build from any nested int iterable (e.g. a NumPy array)."""
        values = tuple(tuple(int(v) for v in row) for row in rows)
        return cls(name=name, residues=residues, values=values)

    def score(self, a: str, b: str) -> int:
        """Score of one residue pair by character (case-folded)."""
        ia = self.residues.find(a.upper())
        ib = self.residues.find(b.upper())
        if ia < 0 or ib < 0:
            missing = a if ia < 0 else b
            raise KeyError(
                f"residue {missing!r} not in matrix {self.name}"
            )
        return self.values[ia][ib]

    @property
    def min_score(self) -> int:
        return min(min(row) for row in self.values)

    @property
    def max_score(self) -> int:
        return max(max(row) for row in self.values)

    @property
    def is_symmetric(self) -> bool:
        k = len(self.residues)
        return all(self.values[i][j] == self.values[j][i]
                   for i in range(k) for j in range(i + 1, k))

    def weights_for(self, letters: str) -> np.ndarray:
        """Dense ``(A, A)`` int64 weight table over an alphabet.

        ``letters[i]`` is the character with code ``i`` (the
        :class:`repro.core.alphabet.Alphabet` order); every letter must
        be a residue of this matrix.
        """
        idx = []
        for ch in letters:
            k = self.residues.find(ch.upper())
            if k < 0:
                raise KeyError(
                    f"alphabet letter {ch!r} not in matrix {self.name}"
                )
            idx.append(k)
        vals = np.array(self.values, dtype=np.int64)
        ix = np.array(idx)
        return vals[np.ix_(ix, ix)]

    def weights_key_for(self, letters: str) -> tuple[tuple[int, ...], ...]:
        """Hashable form of :meth:`weights_for` (netlist cache key)."""
        return _weights_key(self, letters)


@lru_cache(maxsize=64)
def _weights_key(matrix: SubstitutionMatrix,
                 letters: str) -> tuple[tuple[int, ...], ...]:
    w = matrix.weights_for(letters)
    return tuple(tuple(int(v) for v in row) for row in w)


#: NCBI residue order shared by the three shipped matrices.
_NCBI_ORDER = "ARNDCQEGHILKMFPSTWYVBZX*"


def _m(name: str, text: str) -> SubstitutionMatrix:
    rows = [tuple(int(v) for v in line.split())
            for line in text.strip().splitlines()]
    mat = SubstitutionMatrix(name=name, residues=_NCBI_ORDER,
                             values=tuple(rows))
    assert mat.is_symmetric, f"shipped matrix {name} must be symmetric"
    return mat


BLOSUM62 = _m("blosum62", """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
-2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
-1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
-4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
""")

BLOSUM50 = _m("blosum50", """
 5 -2 -1 -2 -1 -1 -1  0 -2 -1 -2 -1 -1 -3 -1  1  0 -3 -2  0 -2 -1 -1 -5
-2  7 -1 -2 -4  1  0 -3  0 -4 -3  3 -2 -3 -3 -1 -1 -3 -1 -3 -1  0 -1 -5
-1 -1  7  2 -2  0  0  0  1 -3 -4  0 -2 -4 -2  1  0 -4 -2 -3  4  0 -1 -5
-2 -2  2  8 -4  0  2 -1 -1 -4 -4 -1 -4 -5 -1  0 -1 -5 -3 -4  5  1 -1 -5
-1 -4 -2 -4 13 -3 -3 -3 -3 -2 -2 -3 -2 -2 -4 -1 -1 -5 -3 -1 -3 -3 -2 -5
-1  1  0  0 -3  7  2 -2  1 -3 -2  2  0 -4 -1  0 -1 -1 -1 -3  0  4 -1 -5
-1  0  0  2 -3  2  6 -3  0 -4 -3  1 -2 -3 -1 -1 -1 -3 -2 -3  1  5 -1 -5
 0 -3  0 -1 -3 -2 -3  8 -2 -4 -4 -2 -3 -4 -2  0 -2 -3 -3 -4 -1 -2 -2 -5
-2  0  1 -1 -3  1  0 -2 10 -4 -3  0 -1 -1 -2 -1 -2 -3  2 -4  0  0 -1 -5
-1 -4 -3 -4 -2 -3 -4 -4 -4  5  2 -3  2  0 -3 -3 -1 -3 -1  4 -4 -3 -1 -5
-2 -3 -4 -4 -2 -2 -3 -4 -3  2  5 -3  3  1 -4 -3 -1 -2 -1  1 -4 -3 -1 -5
-1  3  0 -1 -3  2  1 -2  0 -3 -3  6 -2 -4 -1  0 -1 -3 -2 -3  0  1 -1 -5
-1 -2 -2 -4 -2  0 -2 -3 -1  2  3 -2  7  0 -3 -2 -1 -1  0  1 -3 -1 -1 -5
-3 -3 -4 -5 -2 -4 -3 -4 -1  0  1 -4  0  8 -4 -3 -2  1  4 -1 -4 -4 -2 -5
-1 -3 -2 -1 -4 -1 -1 -2 -2 -3 -4 -1 -3 -4 10 -1 -1 -4 -3 -3 -2 -1 -2 -5
 1 -1  1  0 -1  0 -1  0 -1 -3 -3  0 -2 -3 -1  5  2 -4 -2 -2  0  0 -1 -5
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  2  5 -3 -2  0  0 -1  0 -5
-3 -3 -4 -5 -5 -1 -3 -3 -3 -3 -2 -3 -1  1 -4 -4 -3 15  2 -3 -5 -2 -3 -5
-2 -1 -2 -3 -3 -1 -2 -3  2 -1 -1 -2  0  4 -3 -2 -2  2  8 -1 -3 -2 -1 -5
 0 -3 -3 -4 -1 -3 -3 -4 -4  4  1 -3  1 -1 -3 -2  0 -3 -1  5 -4 -3 -1 -5
-2 -1  4  5 -3  0  1 -1  0 -4 -4  0 -3 -4 -2  0  0 -5 -3 -4  5  2 -1 -5
-1  0  0  1 -3  4  5 -2  0 -3 -3  1 -1 -4 -1  0 -1 -2 -2 -3  2  5 -1 -5
-1 -1 -1 -1 -2 -1 -1 -2 -1 -1 -1 -1 -1 -2 -2 -1  0 -3 -1 -1 -1 -1 -1 -5
-5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5  1
""")

PAM250 = _m("pam250", """
 2 -2  0  0 -2  0  0  1 -1 -1 -2 -1 -1 -3  1  1  1 -6 -3  0  0  0  0 -8
-2  6  0 -1 -4  1 -1 -3  2 -2 -3  3  0 -4  0  0 -1  2 -4 -2 -1  0 -1 -8
 0  0  2  2 -4  1  1  0  2 -2 -3  1 -2 -3  0  1  0 -4 -2 -2  2  1  0 -8
 0 -1  2  4 -5  2  3  1  1 -2 -4  0 -3 -6 -1  0  0 -7 -4 -2  3  3 -1 -8
-2 -4 -4 -5 12 -5 -5 -3 -3 -2 -6 -5 -5 -4 -3  0 -2 -8  0 -2 -4 -5 -3 -8
 0  1  1  2 -5  4  2 -1  3 -2 -2  1 -1 -5  0 -1 -1 -5 -4 -2  1  3 -1 -8
 0 -1  1  3 -5  2  4  0  1 -2 -3  0 -2 -5 -1  0  0 -7 -4 -2  3  3 -1 -8
 1 -3  0  1 -3 -1  0  5 -2 -3 -4 -2 -3 -5  0  1  0 -7 -5 -1  0  0 -1 -8
-1  2  2  1 -3  3  1 -2  6 -2 -2  0 -2 -2  0 -1 -1 -3  0 -2  1  2 -1 -8
-1 -2 -2 -2 -2 -2 -2 -3 -2  5  2 -2  2  1 -2 -1  0 -5 -1  4 -2 -2 -1 -8
-2 -3 -3 -4 -6 -2 -3 -4 -2  2  6 -3  4  2 -3 -3 -2 -2 -1  2 -3 -3 -1 -8
-1  3  1  0 -5  1  0 -2  0 -2 -3  5  0 -5 -1  0  0 -3 -4 -2  1  0 -1 -8
-1  0 -2 -3 -5 -1 -2 -3 -2  2  4  0  6  0 -2 -2 -1 -4 -2  2 -2 -2 -1 -8
-3 -4 -3 -6 -4 -5 -5 -5 -2  1  2 -5  0  9 -5 -3 -3  0  7 -1 -4 -5 -2 -8
 1  0  0 -1 -3  0 -1  0  0 -2 -3 -1 -2 -5  6  1  0 -6 -5 -1 -1  0 -1 -8
 1  0  1  0  0 -1  0  1 -1 -1 -3  0 -2 -3  1  2  1 -2 -3 -1  0  0  0 -8
 1 -1  0  0 -2 -1  0  0 -1  0 -2  0 -1 -3  0  1  3 -5 -3  0  0 -1  0 -8
-6  2 -4 -7 -8 -5 -7 -7 -3 -5 -2 -3 -4  0 -6 -2 -5 17  0 -6 -5 -6 -4 -8
-3 -4 -2 -4  0 -4 -4 -5  0 -1 -1 -4 -2  7 -5 -3 -3  0 10 -2 -3 -4 -2 -8
 0 -2 -2 -2 -2 -2 -2 -1 -2  4  2 -2  2 -1 -1 -1  0 -6 -2  4 -2 -2 -1 -8
 0 -1  2  3 -4  1  3  0  1 -2 -3  1 -2 -4 -1  0  0 -5 -3 -2  3  2 -1 -8
 0  0  1  3 -5  3  3  0  2 -2 -3  0 -2 -5  0  0 -1 -6 -4 -2  2  3 -1 -8
 0 -1  0 -1 -3 -1 -1 -1 -1 -1 -1 -1 -1 -2 -1  0  0 -4 -2 -1 -1 -1 -1 -8
-8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8  1
""")

#: Shipped matrices by canonical (lower-case) name.
MATRICES: dict[str, SubstitutionMatrix] = {
    m.name: m for m in (BLOSUM62, BLOSUM50, PAM250)
}


def matrix_by_name(name: str) -> SubstitutionMatrix:
    """Look up a shipped matrix by (case-insensitive) name."""
    mat = MATRICES.get(name.lower())
    if mat is None:
        raise KeyError(
            f"unknown substitution matrix {name!r}; shipped: "
            f"{sorted(MATRICES)}"
        )
    return mat
