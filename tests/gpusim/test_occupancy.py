"""Tests for repro.gpusim.occupancy."""

from __future__ import annotations

import pytest

from repro.gpusim.device import GTX_TITAN_X
from repro.gpusim.errors import LaunchConfigError
from repro.gpusim.occupancy import (
    MAXWELL_LIMITS,
    occupancy_for,
    sw_kernel_registers,
)


class TestOccupancy:
    def test_paper_w2b_config_is_full_occupancy(self):
        """§V: 'blocks of 1024 threads each to maximize occupancy' —
        the transpose kernel's tiny register/shared footprint lets two
        such blocks fill an SM completely."""
        occ = occupancy_for(1024, registers_per_thread=32,
                            shared_bytes_per_block=0,
                            device=GTX_TITAN_X)
        assert occ.blocks_per_sm == 2
        assert occ.occupancy == 1.0

    def test_sw_kernel_occupancy(self):
        """The SW kernel at m=128, s=8: 4s+4 = 36 registers/thread and
        2*m*s shared words — still multiple blocks per SM."""
        s, m = 8, 128
        occ = occupancy_for(m, sw_kernel_registers(s),
                            shared_bytes_per_block=2 * m * s * 4,
                            device=GTX_TITAN_X)
        assert occ.blocks_per_sm >= 4
        assert 0.0 < occ.occupancy <= 1.0

    def test_register_limited(self):
        occ = occupancy_for(1024, registers_per_thread=64,
                            shared_bytes_per_block=0,
                            device=GTX_TITAN_X)
        assert occ.limiter == "registers"
        assert occ.blocks_per_sm == 1

    def test_shared_limited(self):
        occ = occupancy_for(64, registers_per_thread=8,
                            shared_bytes_per_block=48 * 1024,
                            device=GTX_TITAN_X)
        assert occ.limiter == "shared"
        assert occ.blocks_per_sm == 2

    def test_warp_limited_small_blocks(self):
        occ = occupancy_for(32, registers_per_thread=8,
                            shared_bytes_per_block=0,
                            device=GTX_TITAN_X)
        # 32-thread blocks: the 32-blocks/SM cap binds before warps.
        assert occ.limiter == "blocks"
        assert occ.blocks_per_sm == 32

    def test_block_too_large_rejected(self):
        with pytest.raises(LaunchConfigError):
            occupancy_for(2048, 8, 0, GTX_TITAN_X)

    def test_register_overflow_rejected(self):
        with pytest.raises(LaunchConfigError):
            occupancy_for(1024, 128, 0, GTX_TITAN_X)

    def test_shared_overflow_rejected(self):
        with pytest.raises(LaunchConfigError):
            occupancy_for(
                64, 8, MAXWELL_LIMITS.shared_mem_bytes + 1, GTX_TITAN_X
            )

    def test_zero_threads_rejected(self):
        with pytest.raises(LaunchConfigError):
            occupancy_for(0, 8, 0, GTX_TITAN_X)

    def test_register_formula(self):
        assert sw_kernel_registers(8) == 36
        assert sw_kernel_registers(9) == 40
