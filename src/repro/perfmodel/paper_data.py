"""The paper's published evaluation numbers (Tables I, IV and V).

Stored verbatim so the experiment harness can print paper-vs-model /
paper-vs-measured comparisons.  All times are milliseconds for 32K
(32768) pairs with m = 128; n is the data-string length.
"""

from __future__ import annotations

__all__ = [
    "N_VALUES",
    "PAIRS",
    "M_PATTERN",
    "PAPER_TABLE1",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE2_MATRIX",
    "TABLE2_X",
    "TABLE2_Y",
]

#: Data-string lengths evaluated in §VI.
N_VALUES = (1024, 2048, 4096, 8192, 16384, 32768, 65536)

#: Number of sequence pairs ("32K pairs").
PAIRS = 32768

#: Pattern length ("pattern strings of a fixed length of m = 128").
M_PATTERN = 128

#: Table I: (total swap, total copy, total operations) per s for the
#: 32 x 32 bit transpose, as printed.  Note: the s = 16 row's printed
#: totals are inconsistent with its own per-step entries (copy 16 then
#: 4 x swap 8 sums to swap 32 / copy 16 / 288 ops, not 16 / 40 / 272);
#: both are recorded.
PAPER_TABLE1: dict[int, dict[str, int]] = {
    32: {"swap": 80, "copy": 0, "operations": 560},
    16: {"swap": 16, "copy": 40, "operations": 272},  # printed (typo)
    8: {"swap": 12, "copy": 24, "operations": 180},
    7: {"swap": 11, "copy": 25, "operations": 177},
    6: {"swap": 8, "copy": 28, "operations": 168},
    5: {"swap": 8, "copy": 27, "operations": 164},
    4: {"swap": 4, "copy": 28, "operations": 140},
    3: {"swap": 1, "copy": 31, "operations": 131},
    2: {"swap": 1, "copy": 30, "operations": 127},
}

#: Step-entry-consistent totals for the s = 16 row of Table I.
PAPER_TABLE1_S16_FROM_STEPS = {"swap": 32, "copy": 16, "operations": 288}

#: Table IV: running time in ms.  Keys: implementation block ->
#: device -> column -> tuple over N_VALUES.
PAPER_TABLE4: dict[str, dict[str, dict[str, tuple[float, ...]]]] = {
    "bitwise32": {
        "cpu": {
            "w2b": (153.89, 306.70, 715.70, 1451.89, 3063.70, 5907.22,
                    8924.32),
            "swa": (10990.03, 21918.45, 45065.72, 90114.62, 180065.17,
                    357122.10, 720876.85),
            "b2w": (0.15, 0.16, 0.15, 0.21, 0.18, 0.26, 0.27),
            "total": (11144.07, 22225.32, 45781.57, 91566.72, 183129.05,
                      363030.58, 729800.04),
        },
        "gpu": {
            "h2g": (5.51, 10.60, 19.01, 38.00, 79.54, 153.31, 299.47),
            "w2b": (0.14, 0.22, 0.32, 0.56, 1.02, 1.85, 3.35),
            "swa": (6.91, 12.61, 24.17, 48.29, 96.56, 196.03, 392.52),
            "b2w": (0.01,) * 7,
            "g2h": (0.08, 0.08, 0.07, 0.07, 0.08, 0.08, 0.08),
            "total": (12.66, 23.52, 43.59, 86.94, 177.21, 351.27, 695.42),
        },
    },
    "bitwise64": {
        "cpu": {
            "w2b": (232.54, 471.38, 944.04, 2051.98, 3890.75, 6593.45,
                    8973.66),
            "swa": (5434.08, 10871.87, 21894.50, 43544.63, 86937.86,
                    174271.58, 348896.24),
            "b2w": (0.09, 0.11, 0.13, 0.14, 0.17, 0.23, 0.24),
            "total": (5666.71, 11343.36, 22838.67, 45596.74, 90828.78,
                      180865.26, 357870.14),
        },
        "gpu": {
            "h2g": (5.71, 10.81, 19.61, 37.89, 76.21, 151.97, 297.54),
            "w2b": (2.76, 5.13, 9.84, 19.22, 37.76, 75.33, 150.59),
            "swa": (10.72, 20.47, 38.43, 75.44, 150.08, 301.07, 605.80),
            "b2w": (0.01,) * 7,
            "g2h": (0.08, 0.08, 0.08, 0.07, 0.08, 0.08, 0.09),
            "total": (19.28, 36.51, 67.97, 132.64, 264.14, 528.46,
                      1054.04),
        },
    },
    "wordwise32": {
        "cpu": {
            "swa": (6803.99, 13590.92, 27169.32, 54358.14, 108680.38,
                    217621.17, 435637.82),
            "total": (6803.99, 13590.92, 27169.32, 54358.14, 108680.38,
                      217621.17, 435637.82),
        },
        "gpu": {
            "h2g": (5.78, 10.46, 20.22, 39.83, 78.52, 156.89, 315.53),
            "swa": (30.66, 52.66, 111.62, 203.41, 446.47, 835.81, 1861.36),
            "g2h": (0.08, 0.07, 0.07, 0.08, 0.08, 0.08, 0.07),
            "total": (36.51, 63.20, 131.91, 243.32, 525.07, 992.78,
                      2176.96),
        },
    },
}

#: Table V: throughput (GCUPS) and speed-up, best wordsize per device
#: (CPU uses 64-bit, GPU uses 32-bit).
PAPER_TABLE5: dict[int, dict[str, float]] = {
    1024: {"cpu_gcups": 0.76, "gpu_gcups": 1877.40, "speedup": 447.6},
    2048: {"cpu_gcups": 0.76, "gpu_gcups": 2022.85, "speedup": 482.3},
    4096: {"cpu_gcups": 0.75, "gpu_gcups": 2197.58, "speedup": 523.9},
    8192: {"cpu_gcups": 0.75, "gpu_gcups": 2199.75, "speedup": 524.5},
    16384: {"cpu_gcups": 0.76, "gpu_gcups": 2149.79, "speedup": 512.5},
    32768: {"cpu_gcups": 0.76, "gpu_gcups": 2159.60, "speedup": 514.9},
    65536: {"cpu_gcups": 0.77, "gpu_gcups": 2158.43, "speedup": 514.6},
}

#: Table II example: X = TACTG, Y = GAACTGA with c1 = 2, c2 = 1, gap = 1.
TABLE2_X = "TACTG"
TABLE2_Y = "GAACTGA"

#: The DP matrix of Table II, including the zero boundary row/column.
PAPER_TABLE2_MATRIX = (
    (0, 0, 0, 0, 0, 0, 0, 0),
    (0, 0, 0, 0, 0, 2, 1, 0),
    (0, 0, 2, 2, 1, 1, 1, 3),
    (0, 0, 1, 1, 4, 3, 2, 2),
    (0, 0, 0, 0, 3, 6, 5, 4),
    (0, 2, 1, 0, 2, 5, 8, 7),
)
