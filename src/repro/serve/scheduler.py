"""SLO-aware adaptive batch scheduling for the alignment service.

The static packer fires on a fixed size-or-latency trigger and hands
every batch to the same engine at the pool's full shard width.  That
is the right default with no latency target, but under an explicit SLO
it leaves two failure modes open: a queue that has already fallen
behind keeps accepting doomed requests, and a tiny batch pays the same
fan-out overhead as a huge one.

:class:`AdaptiveScheduler` closes both with the repo's own cost model.
:mod:`repro.perfmodel` gives the *shape* of a batch's cost — bitwise
operations per packed batch, exactly the count the paper's Table IV
converts to time — and a live EWMA over observed engine timings gives
the machine's current rate (ns per modelled op).  Prediction is then
``ops x rate``, which adapts to the machine, the engine, and drift
(a thermal throttle or noisy neighbour shifts the EWMA within a few
batches) while inheriting the model's extrapolation across shapes:
observing 64x128x512 batches is enough to predict 8x300x300 ones.

Three decisions ride on that estimate:

* **Admission** (:meth:`admit`): a request whose predicted completion
  time — queue backlog plus its own batch — already exceeds the SLO is
  rejected *now* with a typed :class:`~repro.serve.errors.
  AdmissionRejected`, instead of burning engine time on an answer that
  will arrive too late.  The live p50 from ``serve.stats`` is folded
  in as a floor, so a backlog the model cannot see (GC, page cache)
  still tightens admission.
* **Batch shaping** (:meth:`batch_window`): the drain window is sized
  so one predicted batch fits in a fraction of the SLO, instead of
  always waiting for ``max_batch`` lanes.
* **Dispatch hints** (:meth:`plan_batch`): per-batch engine choice
  among bit-identical candidates (learned per-engine rates) and a
  shard ``width`` hint — a batch predicted to finish within budget on
  one worker skips the fan-out overhead entirely.

Fault site ``serve.sched.mispredict`` models a stale or wrong rate:
the estimate is inflated, so admission turns *conservative* (sheds
load it could have served).  Scores are never affected — the scheduler
only ever decides when and where, all engines are bit-identical.
"""

from __future__ import annotations

import threading

from ..perfmodel.opcounts import (WorkloadSpec, score_bits_paper,
                                  swa_bulk_ops)
from ..resilience.faults import should_inject
from ..swa.scoring import DEFAULT_SCHEME as _DEFAULT_SCHEME
from .errors import AdmissionRejected
from .packer import PackedBatch
from .stats import ServiceStats

__all__ = ["AdaptiveScheduler", "batch_ops"]

#: Fraction of the SLO one batch (queueing excluded) may consume.
#: The remainder absorbs queueing, packing, and estimate error.
BATCH_SLO_FRACTION = 0.5

#: EWMA smoothing for observed ns-per-op rates: high enough to track
#: drift within a few batches, low enough to ride out one outlier.
EWMA_ALPHA = 0.2

#: Starting rate before any observation (ns per modelled bitwise op).
#: Deliberately pessimistic — the first real batch corrects it, and
#: until then admission errs towards accepting (see ``admit``).
DEFAULT_NS_PER_OP = 1.0

#: Inflation applied by the ``serve.sched.mispredict`` fault site: the
#: model believes everything is this many times slower than reality.
MISPREDICT_FACTOR = 16.0


def batch_ops(pairs: int, m: int, n: int, scheme,
              word_bits: int = 64) -> int:
    """Modelled bitwise ops for one packed batch.

    ``s`` comes from the paper's score-width rule over the scheme's
    match weight; protein schemes (whose weights are matrix-valued)
    fall back to the same rule over their maximum weight, which keeps
    the estimate monotone in shape — all the scheduler needs.
    """
    c1 = int(getattr(scheme, "match_score", 0) or 0)
    if c1 <= 0:
        # Substitution-matrix schemes: bound by the largest weight.
        weights = getattr(scheme, "weights", None)
        try:
            c1 = max(1, int(weights().max()) if callable(weights)
                     else int(max(map(max, weights))))
        except Exception:
            c1 = 2
    s = score_bits_paper(c1, m)
    spec = WorkloadSpec(pairs=pairs, m=m, n=n, word_bits=word_bits)
    return swa_bulk_ops(spec, s, paper=True)


class AdaptiveScheduler:
    """Latency predictor + admission controller + dispatch planner.

    Parameters
    ----------
    slo_ms:
        The target: a request admitted now should complete within this
        many milliseconds end to end.
    word_bits:
        Lane word width of the service (enters the op counts).
    stats:
        The service's :class:`~repro.serve.stats.ServiceStats`; its
        live p50 floors the admission estimate and scheduler counters
        are recorded into it.  Optional (tests drive the scheduler
        bare).
    max_batch / max_wait_s:
        The static packer's triggers — upper bounds the adaptive
        window never exceeds.
    shard_workers:
        Shard width of the engine (``None``/1 = unsharded); bounds the
        ``width`` dispatch hint.
    engines:
        Bit-identical engine candidates for the per-batch engine hint
        (e.g. ``("bpbc-jit", "bpbc")``).  ``None`` disables engine
        hinting (the pool scores on its configured engine).
    """

    def __init__(self, slo_ms: float, word_bits: int = 64,
                 stats: ServiceStats | None = None,
                 max_batch: int = 64,
                 max_wait_s: float = 2e-3,
                 shard_workers: int | None = None,
                 engines: tuple[str, ...] | None = None) -> None:
        if slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {slo_ms}")
        if max_batch <= 0:
            raise ValueError(
                f"max_batch must be positive, got {max_batch}"
            )
        self.slo_ms = float(slo_ms)
        self.word_bits = word_bits
        self.stats = stats
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.shard_workers = (shard_workers
                              if shard_workers is not None else 1)
        self.engines = tuple(engines) if engines else ()
        self._lock = threading.Lock()
        #: Learned EWMA rates, ns per modelled op.  ``None`` keys the
        #: pool's configured engine (whatever it is); named keys hold
        #: per-candidate rates for the engine hint.
        self._ns_per_op: dict[str | None, float] = {}
        #: Predicted-over-observed log for introspection/tests.
        self.observations = 0
        self.admitted = 0
        self.rejected = 0

    # -- the model ------------------------------------------------------
    def rate(self, engine: str | None = None) -> float:
        """Current ns-per-op estimate for ``engine`` (EWMA).

        Unobserved engines inherit the pool (``None``) rate.  When the
        pool rate itself is unobserved — every batch so far ran under
        a named engine hint — the best learned candidate stands in:
        that is the engine :meth:`plan_batch` would route to, so it is
        what the next batch will actually cost.
        """
        with self._lock:
            r = self._ns_per_op.get(engine)
            if r is None:
                r = self._ns_per_op.get(None)
            if r is None and self._ns_per_op:
                r = min(self._ns_per_op.values())
            return DEFAULT_NS_PER_OP if r is None else r

    def observe(self, pairs: int, m: int, n: int, scheme,
                elapsed_s: float, engine: str | None = None) -> None:
        """Fold one completed batch's timing into the rate EWMA."""
        ops = batch_ops(pairs, m, n, scheme, self.word_bits)
        if ops <= 0 or elapsed_s <= 0:
            return
        sample = elapsed_s * 1e9 / ops
        with self._lock:
            prev = self._ns_per_op.get(
                engine, self._ns_per_op.get(None))
            self._ns_per_op[engine] = (
                sample if prev is None
                else prev + EWMA_ALPHA * (sample - prev))
            self.observations += 1

    def estimate_ms(self, pairs: int, m: int, n: int, scheme,
                    engine: str | None = None,
                    width: int = 1) -> float:
        """Predicted engine time for one batch, in milliseconds.

        ``width``-way sharding divides the compute (the balanced-LPT
        partition keeps shards within a pair of each other) but adds a
        per-shard dispatch constant absorbed into the learned rate.
        Fault site ``serve.sched.mispredict`` inflates the estimate —
        a *conservative* failure: admission sheds load it could have
        served, completed scores stay exact.
        """
        ops = batch_ops(pairs, m, n, scheme, self.word_bits)
        est = ops * self.rate(engine) / max(1, width) / 1e6
        if should_inject("serve.sched.mispredict"):
            est *= MISPREDICT_FACTOR
        return est

    # -- admission ------------------------------------------------------
    def admit(self, m: int, n: int, scheme,
              queue_depth: int = 0) -> float:
        """Admit one request or raise :class:`AdmissionRejected`.

        The request's predicted completion time is its own single-lane
        cost plus the backlog ahead of it (``queue_depth`` requests
        modelled at the same shape — pessimistic for mixed traffic,
        but backlog pessimism is the point of admission control),
        floored by the live p50 when stats are attached.  Before the
        first observation the model-based rejection is suspended (the
        default rate is a guess; rejecting on it would deadlock the
        learning loop) — only the live-p50 floor can reject a cold
        scheduler.  Returns the estimate (ms) so callers can log it.
        """
        width = self.shard_workers
        own = self.estimate_ms(1, m, n, scheme, width=width)
        backlog_batches = -(-max(0, queue_depth) // self.max_batch)
        backlog = backlog_batches * self.estimate_ms(
            self.max_batch, m, n, scheme, width=width)
        est = own + backlog
        p50 = 0.0
        if self.stats is not None:
            p50, _p99 = self.stats.latency_percentiles()
            est = max(est, p50)
        with self._lock:
            cold = not self.observations
        if cold and p50 <= self.slo_ms:
            # Cold start: the default rate is deliberately pessimistic
            # and would reject everything — which would also starve
            # the model of the very batches it needs to learn the real
            # rate.  Err towards accepting until one batch has been
            # observed (the SLO then bites with a grounded estimate);
            # only a live p50 already past the SLO — measured latency,
            # not a guess — overrides the cold-start pass.
            with self._lock:
                self.admitted += 1
            return est
        if est > self.slo_ms:
            with self._lock:
                self.rejected += 1
            raise AdmissionRejected(
                f"predicted completion {est:.2f} ms exceeds the "
                f"{self.slo_ms:.2f} ms SLO "
                f"(queue depth {queue_depth}); shed or retry later"
            )
        with self._lock:
            self.admitted += 1
        return est

    # -- batch shaping --------------------------------------------------
    def batch_window(self, m: int = 128,
                     n: int = 512) -> tuple[int, float]:
        """``(max_items, max_wait_s)`` for the next drain window.

        Sized so one predicted batch of the given representative shape
        fits in ``BATCH_SLO_FRACTION`` of the SLO; the static triggers
        cap both. The wait trigger shrinks with the SLO too — a 10 ms
        SLO cannot afford the default 2 ms collection window plus a
        full batch.
        """
        budget_ms = self.slo_ms * BATCH_SLO_FRACTION
        scheme_ms = self.estimate_ms(1, m, n, _DEFAULT_SCHEME,
                                     width=self.shard_workers)
        if scheme_ms <= 0:
            items = self.max_batch
        else:
            items = max(1, min(self.max_batch,
                               int(budget_ms / scheme_ms)))
        wait = min(self.max_wait_s, self.slo_ms / 1e3 / 4)
        return items, wait

    # -- dispatch hints -------------------------------------------------
    def plan_batch(self, batch: PackedBatch) -> PackedBatch:
        """Attach engine and shard-width hints to a packed batch.

        The engine hint picks the candidate with the lowest learned
        rate (ties and unobserved candidates resolve to the first, the
        configured preference order) — only among ``engines`` the
        caller declared bit-identical.  The width hint is the smallest
        shard fan-out predicted to land the batch inside the batch
        budget; 1 skips fan-out overhead entirely.
        """
        engine = None
        if self.engines:
            rates = [(self.rate(e), i, e)
                     for i, e in enumerate(self.engines)]
            engine = min(rates)[2]
            batch.engine_hint = engine
        if self.shard_workers > 1:
            budget_ms = self.slo_ms * BATCH_SLO_FRACTION
            base = self.estimate_ms(batch.pairs, batch.m, batch.n,
                                    batch.scheme, engine=engine,
                                    width=1)
            width = int(-(-base // budget_ms)) if budget_ms > 0 else 1
            batch.shard_width_hint = min(self.shard_workers,
                                         max(1, width))
        if self.stats is not None:
            self.stats.record_scheduled(batch.engine_hint)
        return batch

    # -- introspection --------------------------------------------------
    def snapshot(self) -> dict:
        """Scheduler state as one JSON-able dict (for stats gauges)."""
        with self._lock:
            rates = {str(k): round(v, 4)
                     for k, v in self._ns_per_op.items()}
            return {
                "slo_ms": self.slo_ms,
                "observations": self.observations,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "ns_per_op": rates,
            }
