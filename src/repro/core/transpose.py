"""Bit-matrix transpose (Hacker's Delight §7.3) with operation counting.

A ``w x w`` bit matrix stored in ``w`` machine words of ``w`` bits each
is transposed by ``log2(w)`` rounds of block swaps (Figure 1 of the
paper).  The paper's Table I additionally counts a *reduced* variant:
when every input word holds an ``s``-bit number (``s < w``), most of
the matrix is known to be zero, so full 7-operation ``swap`` calls can
be replaced by 4-operation ``copy`` calls or skipped entirely.

This module provides

* :func:`transpose_schedule` — the full swap schedule for a width,
* :func:`classify_reduced_schedule` — a forward-liveness / backward-
  neededness dataflow analysis that decides, for each scheduled pair,
  whether it must be a ``swap``, can be a ``copy``, or can be skipped
  (this regenerates Table I),
* :func:`transpose_bits` / :func:`untranspose_bits` — vectorised
  executors for batches of bit matrices, and
* :func:`transpose8x8_stages` — the intermediate states of Figure 1.

Layout convention: ``A`` has shape ``(..., w)``; ``A[..., i]`` is word
``i`` and bit ``j`` of word ``i`` is matrix element ``(i, j)``.  After
transposing, bit ``j`` of word ``i`` is the original element ``(j, i)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .bitops import (
    BitOpsError,
    OpCounter,
    alternating_mask,
    check_word_bits,
    copy_down,
    copy_up,
    full_mask,
    swap,
    word_dtype,
)

__all__ = [
    "PairOp",
    "ClassifiedOp",
    "transpose_schedule",
    "classify_reduced_schedule",
    "count_reduced_ops",
    "table1_row",
    "transpose_bits",
    "untranspose_bits",
    "transpose_bits_reduced",
    "untranspose_bits_reduced",
    "transpose8x8_stages",
    "bit_matrix_from_words",
    "words_from_bit_matrix",
]


@dataclass(frozen=True)
class PairOp:
    """One scheduled exchange between words ``i`` and ``j = i + k``.

    ``k`` is both the index distance and the shift amount; ``mask`` is
    the alternating mask selecting the moving block within each word.
    """

    i: int
    j: int
    k: int
    mask: int
    step: int


@dataclass(frozen=True)
class ClassifiedOp:
    """A :class:`PairOp` after the reduced-schedule dataflow analysis.

    ``kind`` is one of ``"swap"``, ``"copy_up"`` (word ``j``'s block
    moves into word ``i``), ``"copy_down"`` (word ``i``'s block moves
    into word ``j``) or ``"skip"``.
    """

    op: PairOp
    kind: str


@lru_cache(maxsize=None)
def transpose_schedule(word_bits: int) -> tuple[tuple[PairOp, ...], ...]:
    """The full swap schedule for a ``w x w`` bit-matrix transpose.

    Returns one tuple of :class:`PairOp` per step; step ``t`` uses
    shift ``k = w / 2^(t+1)`` and pairs word ``i`` with word ``i + k``
    inside each aligned block of ``2k`` words.  A ``w x w`` transpose
    has ``log2(w)`` steps of ``w / 2`` swaps each (e.g. 5 steps of 16
    swaps for ``w = 32``, hence Lemma 1's ``80 * 7 = 560`` operations).
    """
    check_word_bits(word_bits)
    steps: list[tuple[PairOp, ...]] = []
    k = word_bits // 2
    step = 0
    while k >= 1:
        mask = alternating_mask(word_bits, k)
        ops = []
        for base in range(0, word_bits, 2 * k):
            for off in range(k):
                i = base + off
                ops.append(PairOp(i=i, j=i + k, k=k, mask=mask, step=step))
        steps.append(tuple(ops))
        k //= 2
        step += 1
    return tuple(steps)


def _live_after_swap(live_a: int, live_b: int, k: int, mask: int,
                     word_bits: int) -> tuple[int, int]:
    """Forward liveness transfer of a full ``swap``."""
    fm = full_mask(word_bits)
    hi = (mask << k) & fm
    new_a = (live_a & ~hi) | (((live_b & mask) << k) & fm)
    new_b = (live_b & ~mask) | ((live_a & hi) >> k)
    return new_a & fm, new_b & fm


def _needed_before_swap(need_a: int, need_b: int, k: int, mask: int,
                        word_bits: int) -> tuple[int, int]:
    """Backward neededness transfer of a full ``swap`` (its own inverse)."""
    return _live_after_swap(need_a, need_b, k, mask, word_bits)


def classify_reduced_schedule(
    word_bits: int, s: int
) -> tuple[tuple[ClassifiedOp, ...], ...]:
    """Classify every scheduled pair for ``s``-bit inputs.

    Every input word is assumed to hold an ``s``-bit number (bits
    ``0..s-1`` possibly non-zero, the rest zero) and only the first
    ``s`` output words (rows ``0..s-1`` of the transposed matrix) are
    required.  The classification runs the schedule twice:

    1. *forward*, propagating which bit positions of which words can be
       non-zero (``live``), and
    2. *backward*, propagating which bit positions are still needed to
       produce the required output rows (``needed``).

    A pair where data must move in both directions is a ``swap``; one
    direction only, a ``copy``; neither, a ``skip``.  Operation totals
    derived from this classification reproduce the paper's Table I.
    """
    check_word_bits(word_bits)
    if not 1 <= s <= word_bits:
        raise BitOpsError(f"s must be in [1, {word_bits}], got {s}")
    steps = transpose_schedule(word_bits)
    flat = [op for step in steps for op in step]
    fm = full_mask(word_bits)

    # Forward liveness.
    live = [(1 << s) - 1] * word_bits
    live_before: list[tuple[int, int]] = []
    for op in flat:
        la, lb = live[op.i], live[op.j]
        live_before.append((la, lb))
        live[op.i], live[op.j] = _live_after_swap(
            la, lb, op.k, op.mask, word_bits
        )

    # Backward neededness: output rows 0..s-1 fully needed.
    needed = [fm if i < s else 0 for i in range(word_bits)]
    needed_after: list[tuple[int, int]] = [None] * len(flat)  # type: ignore
    for idx in range(len(flat) - 1, -1, -1):
        op = flat[idx]
        na, nb = needed[op.i], needed[op.j]
        needed_after[idx] = (na, nb)
        needed[op.i], needed[op.j] = _needed_before_swap(
            na, nb, op.k, op.mask, word_bits
        )

    # Classification.
    classified: list[list[ClassifiedOp]] = [[] for _ in steps]
    for idx, op in enumerate(flat):
        la, lb = live_before[idx]
        na, nb = needed_after[idx]
        hi = (op.mask << op.k) & fm
        # Bits that are live in A's high block and needed at B's low block.
        move_ab = ((la & hi) >> op.k) & (nb & op.mask)
        # Bits live in B's low block and needed at A's high block.
        move_ba = (lb & op.mask) & ((na & hi) >> op.k)
        # Bits of A (outside the exchanged block) that must survive in A,
        # and similarly for B: a one-sided move may still need the swap's
        # "keep" semantics, but copy_up keeps A's low block and copy_down
        # keeps B's high block, which is exactly what the schedule needs.
        if move_ab and move_ba:
            kind = "swap"
        elif move_ba:
            kind = "copy_up"
        elif move_ab:
            kind = "copy_down"
        else:
            kind = "skip"
        classified[op.step].append(ClassifiedOp(op=op, kind=kind))
    return tuple(tuple(step) for step in classified)


def count_reduced_ops(word_bits: int, s: int) -> dict[str, object]:
    """Swap/copy/skip totals for the reduced transpose at width ``s``.

    Returns a dict with per-step counts and overall totals, including
    ``total_operations`` under the paper's 7-ops-per-swap /
    4-ops-per-copy accounting (Table I).
    """
    classified = classify_reduced_schedule(word_bits, s)
    per_step = []
    total_swap = total_copy = 0
    for step_ops in classified:
        n_swap = sum(1 for c in step_ops if c.kind == "swap")
        n_copy = sum(1 for c in step_ops if c.kind.startswith("copy"))
        per_step.append({"swap": n_swap, "copy": n_copy})
        total_swap += n_swap
        total_copy += n_copy
    return {
        "word_bits": word_bits,
        "s": s,
        "per_step": per_step,
        "total_swap": total_swap,
        "total_copy": total_copy,
        "total_operations": 7 * total_swap + 4 * total_copy,
    }


def table1_row(s: int) -> dict[str, object]:
    """The Table I row for a ``32 x 32`` transpose of ``s``-bit numbers."""
    return count_reduced_ops(32, s)


def _words_view(A: np.ndarray, word_bits: int) -> np.ndarray:
    dt = word_dtype(word_bits)
    A = np.asarray(A)
    if A.shape[-1] != word_bits:
        raise BitOpsError(
            f"expected trailing axis of {word_bits} words, got shape {A.shape}"
        )
    return A.astype(dt, copy=True)


def transpose_bits(A: np.ndarray, word_bits: int,
                   counter: OpCounter | None = None) -> np.ndarray:
    """Transpose batches of ``w x w`` bit matrices.

    ``A`` has shape ``(..., w)``; every trailing group of ``w`` words is
    one matrix.  Returns a new array; counts one ``swap`` per scheduled
    pair per matrix *column of the batch* is **not** multiplied — the
    counter reflects the per-matrix register-level schedule, matching
    the paper's per-32x32-block accounting.
    """
    out = _words_view(A, word_bits)
    for step in transpose_schedule(word_bits):
        for op in step:
            a, b = swap(out[..., op.i], out[..., op.j], op.k, op.mask,
                        word_bits, counter=counter)
            out[..., op.i] = a
            out[..., op.j] = b
    return out


def untranspose_bits(A: np.ndarray, word_bits: int,
                     counter: OpCounter | None = None) -> np.ndarray:
    """Inverse of :func:`transpose_bits`.

    A square bit-matrix transpose is an involution, but the paper notes
    bit-untranspose "can be done by executing operations performed by
    bit transpose backwards"; we execute the schedule in reverse so the
    reduced variants (which are *not* involutions) share code paths.
    """
    out = _words_view(A, word_bits)
    for step in reversed(transpose_schedule(word_bits)):
        for op in reversed(step):
            a, b = swap(out[..., op.i], out[..., op.j], op.k, op.mask,
                        word_bits, counter=counter)
            out[..., op.i] = a
            out[..., op.j] = b
    return out


def transpose_bits_reduced(A: np.ndarray, word_bits: int, s: int,
                           counter: OpCounter | None = None) -> np.ndarray:
    """Reduced transpose for ``s``-bit inputs (Table I variant).

    Input words must hold values below ``2**s``.  Only the first ``s``
    output words are meaningful (they hold bit-planes ``0..s-1``); the
    remaining words contain don't-care values, exactly as in the
    paper's register-level construction.  Returns the full ``(..., w)``
    array with the trailing ``w - s`` words zeroed for convenience.
    """
    out = _words_view(A, word_bits)
    if s < word_bits:
        limit = word_dtype(word_bits).type((1 << s) - 1)
        if np.any(out & ~limit):
            raise BitOpsError(
                f"reduced transpose requires inputs < 2**{s}"
            )
    for step_ops in classify_reduced_schedule(word_bits, s):
        for c in step_ops:
            op = c.op
            if c.kind == "skip":
                continue
            if c.kind == "swap":
                a, b = swap(out[..., op.i], out[..., op.j], op.k, op.mask,
                            word_bits, counter=counter)
                out[..., op.i] = a
                out[..., op.j] = b
            elif c.kind == "copy_up":
                out[..., op.i] = copy_up(out[..., op.i], out[..., op.j],
                                         op.k, op.mask, word_bits,
                                         counter=counter)
            else:  # copy_down
                out[..., op.j] = copy_down(out[..., op.i], out[..., op.j],
                                           op.k, op.mask, word_bits,
                                           counter=counter)
    out[..., s:] = 0
    return out


def untranspose_bits_reduced(A: np.ndarray, word_bits: int, s: int,
                             counter: OpCounter | None = None) -> np.ndarray:
    """Reduced bit-untranspose: bit-sliced ``s``-bit values back to wordwise.

    This is the paper's B2W step: the input's first ``s`` words are bit
    planes (word ``h`` = bit ``h`` of every instance) and the output's
    ``w`` words each hold one instance's ``s``-bit value.  Implemented
    by running the reduced transpose schedule *backwards* with every
    operation inverted (``swap`` is self-inverse; the two ``copy``
    directions mirror each other), exactly as the paper prescribes
    ("bit-untranspose can be done by executing operations performed by
    bit transpose backwards") — so the operation counts equal Table I's.
    """
    out = _words_view(A, word_bits)
    out[..., s:] = 0
    for step_ops in reversed(classify_reduced_schedule(word_bits, s)):
        for c in reversed(step_ops):
            op = c.op
            if c.kind == "skip":
                continue
            if c.kind == "swap":
                a, b = swap(out[..., op.i], out[..., op.j], op.k, op.mask,
                            word_bits, counter=counter)
                out[..., op.i] = a
                out[..., op.j] = b
            elif c.kind == "copy_up":
                # Forward copy_up moved B's low block into A's high
                # block; its dataflow inverse moves A's high block back
                # down into B.
                out[..., op.j] = copy_down(out[..., op.i], out[..., op.j],
                                           op.k, op.mask, word_bits,
                                           counter=counter)
            else:  # forward copy_down -> inverse copy_up
                out[..., op.i] = copy_up(out[..., op.i], out[..., op.j],
                                         op.k, op.mask, word_bits,
                                         counter=counter)
    mask_val = word_dtype(word_bits).type(
        (1 << s) - 1 if s < word_bits else full_mask(word_bits)
    )
    return out & mask_val


def transpose8x8_stages(A: np.ndarray) -> list[np.ndarray]:
    """Intermediate states of the 8x8 transpose (Figure 1).

    Returns ``[initial, after step 1, after step 2, after step 3]``.
    """
    out = _words_view(A, 8)
    stages = [out.copy()]
    for step in transpose_schedule(8):
        for op in step:
            a, b = swap(out[..., op.i], out[..., op.j], op.k, op.mask, 8)
            out[..., op.i] = a
            out[..., op.j] = b
        stages.append(out.copy())
    return stages


def bit_matrix_from_words(words: np.ndarray, word_bits: int) -> np.ndarray:
    """Expand ``w`` words into a ``w x w`` 0/1 matrix (row ``i`` =
    word ``i``)."""
    dt = word_dtype(word_bits)
    words = np.asarray(words, dtype=dt)
    if words.shape != (word_bits,):
        raise BitOpsError(
            f"expected exactly {word_bits} words, got shape {words.shape}"
        )
    shifts = np.arange(word_bits, dtype=dt)
    return ((words[:, None] >> shifts) & dt.type(1)).astype(np.uint8)


def words_from_bit_matrix(matrix: np.ndarray, word_bits: int) -> np.ndarray:
    """Pack a ``w x w`` 0/1 matrix back into ``w`` words."""
    dt = word_dtype(word_bits)
    matrix = np.asarray(matrix)
    if matrix.shape != (word_bits, word_bits):
        raise BitOpsError(
            f"expected a {word_bits}x{word_bits} matrix, got {matrix.shape}"
        )
    weights = dt.type(1) << np.arange(word_bits, dtype=dt)
    return ((matrix.astype(dt) & dt.type(1)) * weights).sum(
        axis=1, dtype=dt
    )
