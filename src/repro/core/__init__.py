"""The BPBC technique: bit-level primitives, transpose, circuits, engines."""

from .affine_bpbc import bpbc_gotoh_wavefront
from .alphabet import DNA, MURPHY10, PROTEIN, RNA, Alphabet
from .approx_matching import bpbc_count_mismatches, bpbc_k_mismatch
from .bitops import OpCounter
from .bitsliced import BitSlicedUInt
from .netlist import Netlist, build_sw_cell_netlist
from .oblivious import ObliviousProgram, sw_cell_program
from .tstv import TsTvScheme, tstv_cell
from .circuits import add_b, greater_than, matching_b, max_b, ssub_b, sw_cell
from .encoding import decode, encode, encode_batch_bit_transposed
from .string_matching import bpbc_string_matching, match_offsets
from .sw_bpbc import (bpbc_sw_sequential, bpbc_sw_wavefront,
                      bpbc_sw_wavefront_planes)
from .transpose import (count_reduced_ops, table1_row, transpose_bits,
                        transpose_bits_reduced, untranspose_bits,
                        untranspose_bits_reduced)

__all__ = [
    "OpCounter", "BitSlicedUInt",
    "greater_than", "max_b", "add_b", "ssub_b", "matching_b", "sw_cell",
    "encode", "decode", "encode_batch_bit_transposed",
    "bpbc_string_matching", "match_offsets",
    "bpbc_sw_sequential", "bpbc_sw_wavefront",
    "bpbc_sw_wavefront_planes", "bpbc_gotoh_wavefront",
    "Alphabet", "DNA", "RNA", "PROTEIN", "MURPHY10",
    "bpbc_k_mismatch", "bpbc_count_mismatches",
    "Netlist", "build_sw_cell_netlist",
    "ObliviousProgram", "sw_cell_program",
    "TsTvScheme", "tstv_cell",
    "transpose_bits", "untranspose_bits", "transpose_bits_reduced",
    "untranspose_bits_reduced", "count_reduced_ops", "table1_row",
]
