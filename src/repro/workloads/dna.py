"""Synthetic DNA workload generation.

The paper evaluates on random DNA strands; for the screening
application we additionally need pairs with *planted homologies* —
texts containing a mutated copy of (part of) the pattern — so that a
threshold actually separates related from unrelated pairs.  All
generators are seeded and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "random_strands",
    "random_strand",
    "MutationModel",
    "mutate",
    "plant_homology",
    "homologous_pairs",
]


def random_strands(rng: np.random.Generator, count: int,
                   length: int) -> np.ndarray:
    """``(count, length)`` matrix of uniform random base codes."""
    if count <= 0 or length <= 0:
        raise ValueError("count and length must be positive")
    return rng.integers(0, 4, size=(count, length), dtype=np.uint8)


def random_strand(rng: np.random.Generator, length: int) -> np.ndarray:
    """One uniform random strand of base codes."""
    return random_strands(rng, 1, length)[0]


@dataclass(frozen=True)
class MutationModel:
    """Per-base mutation channel applied to a strand copy.

    Probabilities are independent per position: ``sub_rate``
    substitutes a (uniformly different) base, ``del_rate`` drops the
    base, ``ins_rate`` inserts a random base after it.
    """

    sub_rate: float = 0.05
    del_rate: float = 0.0
    ins_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("sub_rate", "del_rate", "ins_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be a probability, got {v}")


def mutate(rng: np.random.Generator, strand: np.ndarray,
           model: MutationModel) -> np.ndarray:
    """Apply the mutation channel; returns a (possibly shorter/longer)
    strand."""
    out: list[int] = []
    for base in strand:
        if model.del_rate and rng.random() < model.del_rate:
            continue
        if model.sub_rate and rng.random() < model.sub_rate:
            out.append(int((base + rng.integers(1, 4)) % 4))
        else:
            out.append(int(base))
        if model.ins_rate and rng.random() < model.ins_rate:
            out.append(int(rng.integers(0, 4)))
    return np.array(out, dtype=np.uint8)


def plant_homology(rng: np.random.Generator, pattern: np.ndarray,
                   text_length: int, model: MutationModel,
                   fragment: float = 1.0) -> tuple[np.ndarray, int]:
    """A random text with a mutated copy of (a fragment of) ``pattern``.

    ``fragment`` is the fraction of the pattern copied (from a random
    start).  Returns ``(text, insert_position)``.
    """
    if not 0.0 < fragment <= 1.0:
        raise ValueError(f"fragment must be in (0, 1], got {fragment}")
    frag_len = max(1, int(round(fragment * len(pattern))))
    start = int(rng.integers(0, len(pattern) - frag_len + 1))
    copy = mutate(rng, pattern[start:start + frag_len], model)
    if len(copy) > text_length:
        copy = copy[:text_length]
    text = random_strands(rng, 1, text_length)[0]
    pos = int(rng.integers(0, text_length - len(copy) + 1))
    text[pos:pos + len(copy)] = copy
    return text, pos


def homologous_pairs(
    rng: np.random.Generator, count: int, m: int, n: int,
    related_fraction: float = 0.5,
    model: MutationModel | None = None,
    fragment: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A screening workload: patterns, texts, and relatedness labels.

    Returns ``(X (count, m), Y (count, n), labels (count,))`` where
    ``labels[p]`` is True iff ``Y[p]`` contains a planted mutated copy
    of (a fragment of) ``X[p]``.
    """
    if not 0.0 <= related_fraction <= 1.0:
        raise ValueError("related_fraction must be a probability")
    model = model or MutationModel()
    X = random_strands(rng, count, m)
    Y = random_strands(rng, count, n)
    labels = rng.random(count) < related_fraction
    for p in np.flatnonzero(labels):
        Y[p], _ = plant_homology(rng, X[p], n, model, fragment)
    return X, Y, labels
