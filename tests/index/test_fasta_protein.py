"""Regression tests for amino-acid FASTA parsing.

The original ambiguity path assumed the DNA alphabet — ``"mask"``
would have rewritten protein ambiguity codes to ``N``, a residue code
(asparagine!), silently corrupting every masked region.  These tests
pin the protein rules: masking maps B/Z/J to the wildcard ``X`` (which
every shipped substitution matrix scores explicitly), ``U``/``O``
alias to C/K, DNA refuses masking outright, and write/read round-trips
preserve content under the protein alphabet.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.alphabet import DNA, PROTEIN_X
from repro.index.fasta import (PROTEIN_AMBIGUITY, FastaError, FastaRecord,
                               iter_fasta, read_fasta, resolve_alphabet,
                               write_fasta)


@pytest.fixture
def protein_file(tmp_path):
    p = tmp_path / "prot.fa"
    p.write_text(
        ">clean hemoglobin fragment\n"
        "MVLSPADKTNVKAAW\n"
        ">ambig has Asx/Glx/Xle\n"
        "MKBZJLE\n"
        ">aliased selenoprotein\n"
        "MUOK\n"
        ">wild explicit wildcard and stop\n"
        "MX*K\n"
    )
    return p


class TestResolveAlphabet:
    def test_names(self):
        assert resolve_alphabet("dna") is DNA
        assert resolve_alphabet("protein") is PROTEIN_X
        assert resolve_alphabet("protein-x") is PROTEIN_X
        assert resolve_alphabet(PROTEIN_X) is PROTEIN_X

    def test_unknown_name_raises(self):
        with pytest.raises(FastaError, match="unknown alphabet"):
            resolve_alphabet("rna2")


class TestProteinMask:
    def test_mask_maps_to_x_never_n(self, protein_file):
        recs = read_fasta(protein_file, ambiguous="mask",
                          alphabet="protein")
        assert recs[1].sequence == "MKXXXLE"
        assert "N" not in recs[1].sequence

    def test_mask_covers_every_protein_ambiguity_code(self, tmp_path):
        p = tmp_path / "all.fa"
        codes = "".join(sorted(PROTEIN_AMBIGUITY))
        p.write_text(f">a\nM{codes}K\n")
        rec = read_fasta(p, ambiguous="mask", alphabet="protein")[0]
        assert rec.sequence == "M" + "X" * len(PROTEIN_AMBIGUITY) + "K"

    def test_dna_mask_refused(self, tmp_path):
        p = tmp_path / "d.fa"
        p.write_text(">a\nACNGT\n")
        with pytest.raises(FastaError, match="no encodable wildcard"):
            read_fasta(p, ambiguous="mask", alphabet="dna")

    def test_x_is_not_an_ambiguity_code(self, protein_file):
        # X encodes directly, so strict mode accepts it untouched.
        recs = read_fasta(protein_file, ambiguous="skip",
                          alphabet="protein")
        assert any(r.sequence == "MX*K" for r in recs)


class TestProteinPolicies:
    def test_strict_raises_on_bzj(self, protein_file):
        with pytest.raises(FastaError, match="ambiguity codes"):
            read_fasta(protein_file, alphabet="protein")

    def test_skip_drops_only_ambiguous(self, protein_file):
        recs = read_fasta(protein_file, ambiguous="skip",
                          alphabet="protein")
        assert [r.id for r in recs] == ["clean", "aliased", "wild"]

    def test_replace_deterministic_and_plausible(self, protein_file):
        a = read_fasta(protein_file, ambiguous="replace",
                       alphabet="protein")[1].sequence
        b = read_fasta(protein_file, ambiguous="replace",
                       alphabet="protein")[1].sequence
        assert a == b
        assert a[0:2] == "MK" and a[5:] == "LE"
        for ch, code in zip(a[2:5], "BZJ"):
            assert ch in PROTEIN_AMBIGUITY[code]

    def test_replace_seed_changes_choice_space(self, tmp_path):
        p = tmp_path / "many.fa"
        p.write_text(">a\n" + "B" * 64 + "\n")
        s0 = read_fasta(p, ambiguous="replace", alphabet="protein",
                        seed=0)[0].sequence
        s1 = read_fasta(p, ambiguous="replace", alphabet="protein",
                        seed=1)[0].sequence
        assert set(s0) <= set("DN") and set(s1) <= set("DN")
        assert s0 != s1  # 2^-64 false-failure odds

    def test_truly_foreign_characters_rejected(self, tmp_path):
        p = tmp_path / "bad.fa"
        p.write_text(">a\nMK7LE\n")
        for policy in ("strict", "replace", "mask", "skip"):
            with pytest.raises(FastaError, match="outside the"):
                read_fasta(p, ambiguous=policy, alphabet="protein")

    def test_dna_sequence_read_as_protein_is_valid_protein(self,
                                                           tmp_path):
        # ACGT are all residues, so cross-reading parses — but the
        # codes differ from DNA codes, which is what .codes pins.
        p = tmp_path / "x.fa"
        p.write_text(">a\nACGT\n")
        rec = read_fasta(p, alphabet="protein")[0]
        assert rec.alphabet is PROTEIN_X
        np.testing.assert_array_equal(rec.codes,
                                      PROTEIN_X.encode("ACGT"))


class TestCodesAndAliases:
    def test_aliases_encode_to_stand_ins(self, protein_file):
        recs = read_fasta(protein_file, ambiguous="mask",
                          alphabet="protein")
        np.testing.assert_array_equal(recs[2].codes,
                                      PROTEIN_X.encode("MCKK"))

    def test_lowercase_folds(self, tmp_path):
        p = tmp_path / "lc.fa"
        p.write_text(">a\nmvlspadk\n")
        rec = read_fasta(p, alphabet="protein")[0]
        assert rec.sequence == "MVLSPADK"

    def test_record_alphabet_default_is_dna(self):
        rec = FastaRecord(id="a", description="", sequence="ACGT")
        assert rec.alphabet is DNA
        assert rec.codes.max() <= 3


class TestRoundTrip:
    def test_write_read_round_trip(self, protein_file, tmp_path):
        recs = read_fasta(protein_file, ambiguous="mask",
                          alphabet="protein")
        out = tmp_path / "out.fa"
        write_fasta(out, recs, width=7)
        back = read_fasta(out, alphabet="protein")
        assert [(r.id, r.sequence) for r in back] == \
            [(r.id, r.sequence) for r in recs]
        for r in back:
            assert r.alphabet is PROTEIN_X

    def test_streaming_matches_batch(self, protein_file):
        streamed = list(iter_fasta(protein_file, ambiguous="mask",
                                   alphabet="protein"))
        batched = read_fasta(protein_file, ambiguous="mask",
                             alphabet="protein")
        assert streamed == batched
