"""Straightforward and BPBC string matching (paper §II).

The paper introduces the BPBC technique on a deliberately naive
exact-matching algorithm: slide the pattern ``X`` (length ``m``) along
the text ``Y`` (length ``n``) and set ``d[j] = 0`` iff ``X`` matches at
offset ``j``.  The BPBC version runs the identical loop over
bit-transposed inputs, deciding 32 (or 64, or ``word_bits x lanes``)
pattern/text pairs per machine word in the same O(mn) operations.
"""

from __future__ import annotations

import numpy as np

from .bitops import BitOpsError, OpCounter, word_dtype
from .encoding import encode_batch, encode_batch_bit_transposed

__all__ = [
    "straightforward_string_matching",
    "bpbc_string_matching",
    "bpbc_string_matching_strings",
    "match_offsets",
]


def straightforward_string_matching(X: np.ndarray,
                                    Y: np.ndarray) -> np.ndarray:
    """The paper's wordwise reference: ``d[j] = 0`` iff match at ``j``.

    ``X`` (length ``m``) and ``Y`` (length ``n >= m``) are code arrays.
    Returns ``d`` of length ``n - m + 1`` with entries in {0, 1}.
    """
    X = np.asarray(X)
    Y = np.asarray(Y)
    m, n = len(X), len(Y)
    if m == 0:
        raise BitOpsError("empty pattern")
    if m > n:
        raise BitOpsError(f"pattern length {m} exceeds text length {n}")
    d = np.empty(n - m + 1, dtype=np.uint8)
    for j in range(n - m + 1):
        d[j] = 0
        for i in range(m):
            if X[i] != Y[i + j]:
                d[j] = 1
    return d


def bpbc_string_matching(
    XH: np.ndarray, XL: np.ndarray, YH: np.ndarray, YL: np.ndarray,
    word_bits: int, counter: OpCounter | None = None,
) -> np.ndarray:
    """BPBC straightforward string matching over bit-transposed inputs.

    ``XH``/``XL`` have shape ``(m, lanes)`` and ``YH``/``YL`` shape
    ``(n, lanes)`` — the high/low code-bit planes of every instance.
    Returns ``d`` of shape ``(n - m + 1, lanes)``: bit ``k`` of
    ``d[j, l]`` is 0 iff instance ``l * word_bits + k`` matches at
    offset ``j``.  Three bitwise operations per (i, j) pair decide the
    position for every lane at once::

        d[j] |= (x_i^H ^ y_{i+j}^H) | (x_i^L ^ y_{i+j}^L)
    """
    XH = np.asarray(XH)
    XL = np.asarray(XL)
    YH = np.asarray(YH)
    YL = np.asarray(YL)
    if XH.shape != XL.shape or YH.shape != YL.shape:
        raise BitOpsError("H/L plane shapes must match")
    if XH.shape[1:] != YH.shape[1:]:
        raise BitOpsError(
            f"lane shape mismatch: {XH.shape[1:]} vs {YH.shape[1:]}"
        )
    m, n = XH.shape[0], YH.shape[0]
    if m == 0:
        raise BitOpsError("empty pattern")
    if m > n:
        raise BitOpsError(f"pattern length {m} exceeds text length {n}")
    dt = word_dtype(word_bits)
    d = np.zeros((n - m + 1,) + XH.shape[1:], dtype=dt)
    for j in range(n - m + 1):
        acc = d[j]
        for i in range(m):
            acc = acc | (XH[i] ^ YH[i + j]) | (XL[i] ^ YL[i + j])
            if counter is not None:
                counter.add(4, kind="strmatch")
        d[j] = acc
    return d


def bpbc_string_matching_strings(
    patterns: list[str], texts: list[str], word_bits: int = 32,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Convenience wrapper: match ``patterns[k]`` against ``texts[k]``.

    Returns a ``(P, n - m + 1)`` 0/1 matrix (0 = match at that offset),
    one row per pair, computed through the full BPBC path: encode,
    bit-transpose, bulk match, un-transpose.
    """
    if len(patterns) != len(texts):
        raise BitOpsError("need one text per pattern")
    P = len(patterns)
    Xc = encode_batch(patterns)
    Yc = encode_batch(texts)
    XH, XL = encode_batch_bit_transposed(Xc, word_bits)
    YH, YL = encode_batch_bit_transposed(Yc, word_bits)
    d = bpbc_string_matching(XH, XL, YH, YL, word_bits, counter=counter)
    # Un-transpose the 1-bit results: lane k of word l -> instance row.
    from .bitops import unpack_lanes

    bits = unpack_lanes(d, word_bits, count=P)  # (offsets, P)
    return bits.T.copy()


def match_offsets(pattern: str, text: str, word_bits: int = 32) -> list[int]:
    """Offsets where ``pattern`` occurs in ``text`` (single-pair helper)."""
    d = bpbc_string_matching_strings([pattern], [text], word_bits)[0]
    return [int(j) for j in np.flatnonzero(d == 0)]
