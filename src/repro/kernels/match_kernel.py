"""A §II BPBC string-matching kernel for the SIMT simulator.

One block per lane group, one thread per text offset ``j``: each
thread accumulates the mismatch word ``d[j]`` over the ``m`` pattern
positions with the three-operation §II update and writes it to global
memory.  The per-thread program is embarrassingly parallel (no
shared-memory hand-off), which makes it a useful contrast to the
wavefront SW kernel in the simulator's statistics: no barriers beyond
the launch, perfectly independent rows.
"""

from __future__ import annotations

import numpy as np

from ..core.bitops import word_dtype
from ..gpusim.device import DeviceSpec, GTX_TITAN_X
from ..gpusim.kernel import Barrier, KernelStats, ThreadCtx, launch_kernel
from ..gpusim.memory import GlobalMemory

__all__ = ["string_match_kernel", "run_match_kernel"]


def string_match_kernel(ctx: ThreadCtx, xh: str, xl: str, yh: str,
                        yl: str, out: str, m: int, n: int,
                        word_bits: int):
    """Kernel body: thread ``j`` of block ``g`` computes ``d[g][j]``."""
    g = ctx.block_idx
    j = ctx.thread_idx
    dt = word_dtype(word_bits)
    if j <= n - m:
        acc = dt.type(0)
        for i in range(m):
            xhi = dt.type(ctx.gmem.load(xh, (g, i)))
            xlo = dt.type(ctx.gmem.load(xl, (g, i)))
            yhi = dt.type(ctx.gmem.load(yh, (g, i + j)))
            ylo = dt.type(ctx.gmem.load(yl, (g, i + j)))
            acc = acc | (xhi ^ yhi) | (xlo ^ ylo)
            ctx.count_ops(4)
        ctx.gmem.store(out, (g, j), acc)
    yield Barrier()


def run_match_kernel(XH, XL, YH, YL, word_bits: int,
                     device: DeviceSpec = GTX_TITAN_X,
                     ) -> tuple[np.ndarray, KernelStats]:
    """Launch the matcher over ``(positions, groups)`` planes.

    Returns ``(d, stats)`` where ``d`` has shape
    ``(groups, n - m + 1)`` — bit ``k`` of ``d[g][j]`` is 0 iff lane
    ``k`` of group ``g`` matches at offset ``j``.
    """
    XH = np.asarray(XH)
    XL = np.asarray(XL)
    YH = np.asarray(YH)
    YL = np.asarray(YL)
    m, n = XH.shape[0], YH.shape[0]
    if m == 0 or m > n:
        raise ValueError(f"invalid pattern/text lengths {m}/{n}")
    groups = XH.shape[1]
    dt = word_dtype(word_bits)
    gmem = GlobalMemory(capacity_bytes=device.global_mem_bytes)
    gmem.from_host("xh", np.ascontiguousarray(XH.T))
    gmem.from_host("xl", np.ascontiguousarray(XL.T))
    gmem.from_host("yh", np.ascontiguousarray(YH.T))
    gmem.from_host("yl", np.ascontiguousarray(YL.T))
    gmem.alloc("d", (groups, n - m + 1), dt)
    if n - m + 1 > device.max_threads_per_block:
        raise ValueError(
            f"{n - m + 1} offsets exceed the {device.max_threads_per_block}"
            "-thread block limit; split the text"
        )
    stats = launch_kernel(string_match_kernel, groups, n - m + 1, gmem,
                          "xh", "xl", "yh", "yl", "d", m, n, word_bits,
                          device=device)
    return gmem.buffer("d").copy(), stats
