"""Tests for length binning and lane packing (exactness included)."""

from __future__ import annotations

import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.serve.engine_pool import ENGINES
from repro.serve.packer import (QUERY_PAD, SUBJECT_PAD, bin_key,
                                bin_requests, pack_requests)
from repro.serve.queue import AlignmentRequest
from repro.swa.scoring import DEFAULT_SCHEME, ScoringScheme
from repro.swa.sequential import sw_max_score


def make_request(rng, m, n, scheme=DEFAULT_SCHEME):
    return AlignmentRequest(
        query=rng.integers(0, 4, m, dtype=np.uint8),
        subject=rng.integers(0, 4, n, dtype=np.uint8),
        scheme=scheme, threshold=None, deadline=None,
        future=Future(), enqueued_at=time.monotonic(),
    )


class TestBinning:
    def test_exact_bins_by_default(self, rng):
        reqs = [make_request(rng, 8, 16), make_request(rng, 8, 16),
                make_request(rng, 9, 16)]
        bins = bin_requests(reqs, granularity=1)
        assert len(bins) == 2

    def test_granularity_merges_nearby_lengths(self, rng):
        reqs = [make_request(rng, 8, 16), make_request(rng, 7, 13),
                make_request(rng, 2, 10)]
        bins = bin_requests(reqs, granularity=8)
        assert set(bins) == {(8, 16, DEFAULT_SCHEME)}

    def test_schemes_never_share_a_bin(self, rng):
        other = ScoringScheme(3, 2, 2)
        reqs = [make_request(rng, 8, 8),
                make_request(rng, 8, 8, scheme=other)]
        assert len(bin_requests(reqs, granularity=8)) == 2

    def test_bad_granularity(self, rng):
        with pytest.raises(ValueError):
            bin_requests([make_request(rng, 4, 4)], granularity=0)


class TestBinKey:
    def test_granularity_one_is_identity(self, rng):
        req = make_request(rng, 7, 13)
        assert bin_key(req, 1) == (7, 13, DEFAULT_SCHEME)

    def test_exact_multiple_stays_in_its_own_bin(self, rng):
        # A length sitting exactly on the boundary must not round up
        # to the next bin (ceil(16/16)*16 == 16, not 32).
        req = make_request(rng, 16, 32)
        assert bin_key(req, 16) == (16, 32, DEFAULT_SCHEME)

    def test_one_past_the_boundary_rounds_up(self, rng):
        req = make_request(rng, 17, 33)
        assert bin_key(req, 16) == (32, 48, DEFAULT_SCHEME)

    def test_length_one_lands_in_first_bin(self, rng):
        req = make_request(rng, 1, 1)
        assert bin_key(req, 16) == (16, 16, DEFAULT_SCHEME)

    def test_granularity_larger_than_sequences(self, rng):
        # One giant bin: every request shares it (per scheme).
        keys = {bin_key(make_request(rng, m, n), 1024)
                for m, n in [(1, 1), (5, 900), (1000, 3)]}
        assert keys == {(1024, 1024, DEFAULT_SCHEME)}

    def test_scheme_is_part_of_the_key(self, rng):
        a = bin_key(make_request(rng, 8, 8), 8)
        b = bin_key(make_request(rng, 8, 8, scheme=ScoringScheme(3, 2, 2)),
                    8)
        assert a != b


class TestPacking:
    def test_uniform_batch_is_unpadded(self, rng):
        reqs = [make_request(rng, 8, 12) for _ in range(5)]
        (batch,) = pack_requests(reqs, granularity=4)
        assert not batch.padded
        assert batch.X.shape == (5, 8) and batch.Y.shape == (5, 12)
        XH, XL, YH, YL = batch.bit_planes(64)
        assert XH.shape == (8, 1) and YH.shape == (12, 1)

    def test_mixed_batch_uses_sentinels(self, rng):
        reqs = [make_request(rng, 8, 12), make_request(rng, 6, 10)]
        (batch,) = pack_requests(reqs, granularity=4)
        assert batch.padded
        assert (batch.X[1, 6:] == QUERY_PAD).all()
        assert (batch.Y[1, 10:] == SUBJECT_PAD).all()
        with pytest.raises(ValueError):
            batch.bit_planes(64)  # 3-bit codes: the 2-bit path must balk
        Xp, Yp = batch.char_planes(64)
        assert Xp.shape == (3, 8, 1) and Yp.shape == (3, 12, 1)

    def test_lane_occupancy_accounting(self, rng):
        reqs = [make_request(rng, 8, 8) for _ in range(3)]
        (batch,) = pack_requests(reqs)
        assert batch.lane_slots(64) == 64
        assert batch.lane_occupancy(64) == pytest.approx(3 / 64)
        reqs = [make_request(rng, 8, 8) for _ in range(65)]
        (batch,) = pack_requests(reqs)
        assert batch.lane_slots(64) == 128
        assert batch.lane_occupancy(64) == pytest.approx(65 / 128)

    @pytest.mark.parametrize("engine", ["bpbc", "bpbc-jit", "numpy"])
    def test_sentinel_padding_is_exact(self, rng, engine):
        """Padded scores must equal each pair's own-length DP exactly:
        the sentinels match nothing, so the padded maximum cannot move."""
        reqs = [make_request(rng, int(rng.integers(5, 17)),
                             int(rng.integers(5, 17)))
                for _ in range(20)]
        for batch in pack_requests(reqs, granularity=16):
            scores = ENGINES[engine](batch, 64)
            for req, got in zip(batch.requests, scores):
                want = sw_max_score(req.query, req.subject, req.scheme)
                assert int(got) == want
