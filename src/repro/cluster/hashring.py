"""Consistent-hash ring: cache-key-local routing that survives churn.

Each serve node keeps its own LRU result cache keyed by the *content*
of a pair plus its scoring scheme (:func:`repro.serve.cache.cache_key`).
Routing by the same key means a repeated pair lands on the node that
already holds its score — the cluster-wide hit rate approaches the
single-node hit rate instead of being divided by N.

The ring is the classic construction: every node owns ``vnodes``
points on a 2^64 circle, placed by SHA-256 of ``"{node}#{replica}"``
— **not** Python's salted ``hash``, so the layout is identical on
every machine and interpreter, and a key's owner is a pure function of
the topology.  A key routes to the first node point at or after its
digest; replication walks on to the next *distinct* nodes.  Adding or
removing one node only remaps the keys adjacent to its points (~1/N of
the space), so a node death does not shuffle every cache.
"""

from __future__ import annotations

import bisect
import hashlib
import json

import numpy as np

__all__ = ["HashRing", "route_digest"]


def _point(label: str) -> int:
    """Deterministic 64-bit ring position for a label."""
    digest = hashlib.sha256(label.encode()).digest()
    return int.from_bytes(digest[:8], "big")


def route_digest(query, subject, scheme_fields: dict) -> int:
    """64-bit routing digest of one pair under a scheme.

    Mirrors the server's result-cache key: the two sequences are kept
    separate (length-prefixed, so ``("AT","G")`` and ``("A","TG")``
    cannot collide) and the scheme rides along as its canonical wire
    fields (:func:`repro.serve.wire.scheme_wire_fields`) — the same
    scheme always hashes the same way, whatever object represents it.
    """
    q = (query.encode("ascii") if isinstance(query, str)
         else np.ascontiguousarray(query, dtype=np.uint8).tobytes())
    s = (subject.encode("ascii") if isinstance(subject, str)
         else np.ascontiguousarray(subject, dtype=np.uint8).tobytes())
    h = hashlib.sha256()
    h.update(len(q).to_bytes(8, "big"))
    h.update(q)
    h.update(s)
    h.update(json.dumps(scheme_fields, sort_keys=True).encode())
    return int.from_bytes(h.digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over named nodes with virtual points."""

    def __init__(self, nodes=(), vnodes: int = 64) -> None:
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        self._points: list[int] = []      # sorted ring positions
        self._owners: list[str] = []      # node name per position
        self._nodes: set[str] = set()
        for name in nodes:
            self.add(name)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> tuple[str, ...]:
        """Member node names, sorted."""
        return tuple(sorted(self._nodes))

    def add(self, name: str) -> None:
        """Add a node's virtual points (idempotent)."""
        if name in self._nodes:
            return
        self._nodes.add(name)
        for r in range(self.vnodes):
            point = _point(f"{name}#{r}")
            at = bisect.bisect_left(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, name)

    def remove(self, name: str) -> None:
        """Remove a node's virtual points (idempotent)."""
        if name not in self._nodes:
            return
        self._nodes.remove(name)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != name]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def nodes_for(self, digest: int, count: int = 1) -> list[str]:
        """The ``count`` distinct owners of ``digest``, owner first.

        Walks clockwise from the key's position; the first node point
        met is the owner, subsequent *distinct* nodes are its replicas.
        Returns fewer than ``count`` names if the ring is smaller.
        """
        if not self._points:
            return []
        out: list[str] = []
        start = bisect.bisect_right(self._points, digest % (1 << 64))
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in out:
                out.append(owner)
                if len(out) >= count:
                    break
        return out

    def preference(self, digest: int) -> list[str]:
        """Every node, ordered owner → replicas → the rest.

        The coordinator's full reroute order for one key: it tries
        these left to right until one answers.
        """
        return self.nodes_for(digest, count=len(self._nodes))
