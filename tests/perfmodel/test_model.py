"""Tests for repro.perfmodel.model: the Table IV/V analytic model.

These tests pin the *reproduction claims*: which shapes of the paper's
evaluation the calibrated model recovers and how tightly.
"""

from __future__ import annotations

import pytest

from repro.perfmodel.model import Table4Model
from repro.perfmodel.paper_data import (N_VALUES, PAPER_TABLE4,
                                        PAPER_TABLE5)


@pytest.fixture(scope="module")
def model() -> Table4Model:
    return Table4Model()


class TestCalibration:
    def test_score_width_is_papers(self, model):
        assert model.s == 8

    def test_calibration_rows_exact(self, model):
        """The high calibration point (n = 65536) is always exact; the
        low one (n = 1024) is exact unless the paper's own data is
        super-linear there (negative fitted overhead, clamped to a
        pure rate), in which case the model may only undershoot."""
        for block in ("bitwise32", "bitwise64", "wordwise32"):
            for device in ("cpu", "gpu"):
                i_hi = N_VALUES.index(65536)
                got = model.predict_row(block, device, 65536)["swa"]
                want = PAPER_TABLE4[block][device]["swa"][i_hi]
                assert got == pytest.approx(want, rel=1e-9)
                i_lo = N_VALUES.index(1024)
                got_lo = model.predict_row(block, device, 1024)["swa"]
                want_lo = PAPER_TABLE4[block][device]["swa"][i_lo]
                fam = f"{block}/{device}/swa"
                if model.rates[fam].overhead_ms > 0:
                    assert got_lo == pytest.approx(want_lo, rel=1e-9)
                else:
                    # Clamped pure rate through the high point; the
                    # paper's mild super-linearity leaves <3% slack.
                    assert got_lo == pytest.approx(want_lo, rel=0.03)

    def test_cpu_rate_physically_plausible(self, model):
        """The fitted CPU bitwise rate must land near the i7-6700's
        scalar capability (~1-2 simple ops per 3.6 GHz cycle)."""
        rate = model.rates["bitwise32/cpu/swa"].value
        assert 2e9 < rate < 1e10

    def test_h2g_bandwidth_is_pcie(self, model):
        """Fitted H2G bandwidth ~ PCIe gen3 effective (5-8 GB/s)."""
        bw = model.rates["bitwise32/gpu/h2g"].value
        assert 5e9 < bw < 8.5e9

    def test_gpu_64bit_w2b_emulation_gap(self, model):
        """The paper's 64-bit GPU W2B is ~20x slower per op than the
        32-bit one (64-bit integer emulation): the fitted rates must
        show that gap."""
        r32 = model.rates["bitwise32/gpu/w2b"].value
        r64 = model.rates["bitwise64/gpu/w2b"].value
        assert r32 / r64 > 5


class TestPredictions:
    def test_swa_columns_within_5_percent(self, model):
        errs = model.relative_errors()
        for fam, e in errs.items():
            if fam.endswith("/swa") and "wordwise" not in fam:
                assert e < 0.05, (fam, e)

    def test_h2g_columns_within_10_percent(self, model):
        errs = model.relative_errors()
        for fam, e in errs.items():
            if fam.endswith("/h2g"):
                assert e < 0.10, (fam, e)

    def test_totals_monotone_in_n(self, model):
        t4 = model.table4()
        for block in t4:
            for device in t4[block]:
                totals = t4[block][device]["total"]
                assert all(a < b for a, b in zip(totals, totals[1:]))

    def test_cpu_bitwise64_halves_bitwise32(self, model):
        """Same op rate, twice the lanes: 64-bit CPU SWA ~ half the
        32-bit time (the paper's measured ratio is 1.98-2.07)."""
        for n in N_VALUES:
            t32 = model.predict_row("bitwise32", "cpu", n)["swa"]
            t64 = model.predict_row("bitwise64", "cpu", n)["swa"]
            assert t32 / t64 == pytest.approx(2.0, rel=0.05)

    def test_gpu_beats_cpu_by_hundreds(self, model):
        for n in N_VALUES:
            cpu = model.predict_row("bitwise32", "cpu", n)["total"]
            gpu = model.predict_row("bitwise32", "gpu", n)["total"]
            assert cpu / gpu > 300

    def test_bitwise_gpu_beats_wordwise_gpu(self, model):
        for n in N_VALUES:
            bit = model.predict_row("bitwise32", "gpu", n)["total"]
            word = model.predict_row("wordwise32", "gpu", n)["total"]
            assert word / bit > 2


class TestTable5:
    def test_speedups_match_paper_within_6_percent(self, model):
        t5 = model.table5()
        for n in N_VALUES:
            got = t5[n]["speedup"]
            want = PAPER_TABLE5[n]["speedup"]
            assert got == pytest.approx(want, rel=0.06), n

    def test_speedup_grows_with_n(self, model):
        t5 = model.table5()
        sp = [t5[n]["speedup"] for n in N_VALUES]
        assert all(a < b for a, b in zip(sp, sp[1:]))
        assert 440 < sp[0] < 460     # paper: 447.6
        assert 505 < sp[-1] < 525    # paper: 514.6

    def test_cpu_gcups_match_paper(self, model):
        t5 = model.table5()
        for n in N_VALUES:
            assert t5[n]["cpu_gcups"] == pytest.approx(
                PAPER_TABLE5[n]["cpu_gcups"], rel=0.05
            )

    def test_paper_gpu_gcups_inconsistency_documented(self):
        """The paper's printed GPU GCUPS are ~5.5x cells/total-time
        computed from its own Table IV — the inconsistency our model
        documents.  Pin the factor so the discrepancy stays visible."""
        n = 1024
        i = N_VALUES.index(n)
        cells = 32768 * 128 * n
        total_ms = PAPER_TABLE4["bitwise32"]["gpu"]["total"][i]
        consistent = cells / (total_ms * 1e-3) / 1e9
        printed = PAPER_TABLE5[n]["gpu_gcups"]
        assert printed / consistent == pytest.approx(5.5, abs=0.2)
