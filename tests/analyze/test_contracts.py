"""Tests for the cross-layer contract lints."""

from __future__ import annotations

import textwrap

from repro.analyze import Severity
from repro.analyze.contracts import (RegistrySnapshot, analyze_contracts,
                                     check_engine_registries,
                                     check_fault_sites,
                                     collect_fault_site_uses,
                                     registry_snapshot)


def _rules(rep, severity=None):
    return [d.rule for d in rep.diagnostics
            if severity is None or d.severity is severity]


def _snap(**overrides) -> RegistrySnapshot:
    """A self-consistent snapshot; overrides introduce drift."""
    base = dict(
        shard_engines=("a", "b"),
        shardable_engines=("a", "b"),
        serve_engines=("a", "b", "c"),
        cli_engine_choices=("a", "b", "c", "resilient"),
        chain=("a", "b"),
        resilience_engines=("a", "b"),
        engine_fault_sites=("a", "b"),
    )
    base.update(overrides)
    return RegistrySnapshot(**base)


class TestLiveRepo:
    def test_contracts_clean(self):
        rep = analyze_contracts()
        assert rep.exit_code == 0, rep.render()
        assert not rep.warnings, rep.render()

    def test_fault_sites_bijective(self):
        rep = check_fault_sites()
        assert rep.ok, rep.render()
        msgs = [d.message for d in rep.diagnostics]
        assert any("agree in both directions" in m for m in msgs)

    def test_snapshot_reflects_the_cli(self):
        snap = registry_snapshot()
        assert "resilient" in snap.cli_engine_choices
        assert set(snap.shard_engines) == set(snap.shardable_engines)
        assert snap.chain == snap.resilience_engines


class TestRegistryDrift:
    def test_consistent_snapshot_is_all_notes(self):
        rep = check_engine_registries(_snap())
        assert rep.ok, rep.render()
        assert len(rep.diagnostics) == 5

    def test_shard_serve_drift(self):
        rep = check_engine_registries(_snap(shard_engines=("a",)))
        assert "contract.shard-engines" in _rules(rep, Severity.ERROR)

    def test_shardable_outside_pool(self):
        rep = check_engine_registries(
            _snap(shardable_engines=("a", "b", "ghost"),
                  shard_engines=("a", "b", "ghost")))
        assert "contract.shardable-subset" in _rules(rep, Severity.ERROR)

    def test_cli_missing_engine(self):
        rep = check_engine_registries(
            _snap(cli_engine_choices=("a", "b", "resilient")))
        assert "contract.cli-engines" in _rules(rep, Severity.ERROR)

    def test_chain_order_drift(self):
        rep = check_engine_registries(_snap(chain=("b", "a")))
        assert "contract.fallback-chain" in _rules(rep, Severity.ERROR)

    def test_missing_engine_fault_site(self):
        rep = check_engine_registries(_snap(engine_fault_sites=("a",)))
        assert "contract.engine-fault-sites" in _rules(rep,
                                                       Severity.ERROR)


class TestFaultSiteLint:
    def _write(self, tmp_path, body):
        p = tmp_path / "mod.py"
        p.write_text(textwrap.dedent(body))
        return [p]

    def test_unknown_literal_is_an_error(self, tmp_path):
        paths = self._write(tmp_path, """
            from repro.resilience.faults import fault_point

            def f():
                fault_point("engine.typo.fail")
        """)
        rep = check_fault_sites(paths, sites={"real.site": "doc"})
        rules = _rules(rep, Severity.ERROR)
        assert "contract.fault-site-unknown" in rules
        assert "contract.fault-site-unused" in rules

    def test_dynamic_site_is_a_warning(self, tmp_path):
        paths = self._write(tmp_path, """
            def f(faults, name):
                faults.should_inject("known.site")
                faults.should_inject(name)
        """)
        rep = check_fault_sites(paths, sites={"known.site": "doc"})
        assert rep.ok
        assert "contract.fault-site-dynamic" in _rules(rep,
                                                       Severity.WARNING)

    def test_collect_records_position(self, tmp_path):
        paths = self._write(tmp_path, """
            from repro.resilience.faults import fault_point

            fault_point("x.y")
        """)
        uses = collect_fault_site_uses(paths)
        assert len(uses) == 1
        assert uses[0].site == "x.y"
        assert uses[0].call == "fault_point"
        assert uses[0].lineno == 4
