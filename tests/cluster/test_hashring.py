"""HashRing and route_digest: the routing layer's determinism."""

from __future__ import annotations

import pytest

from repro.cluster.hashring import HashRing, route_digest
from repro.core.matrices import BLOSUM62
from repro.core.protein import ProteinScheme
from repro.serve.wire import scheme_wire_fields
from repro.swa.scoring import DEFAULT_SCHEME

FIELDS = scheme_wire_fields(DEFAULT_SCHEME)


def test_ring_is_deterministic_across_instances():
    a = HashRing(["x", "y", "z"])
    b = HashRing(["z", "x", "y"])  # insertion order must not matter
    for key in range(200):
        digest = route_digest(f"Q{key}", "ACGT", FIELDS)
        assert a.nodes_for(digest, 2) == b.nodes_for(digest, 2)


def test_every_node_owns_a_share():
    ring = HashRing(["a", "b", "c"])
    owners = {ring.nodes_for(route_digest(f"Q{i}", "ACGT", FIELDS))[0]
              for i in range(500)}
    assert owners == {"a", "b", "c"}


def test_remove_remaps_only_the_dead_nodes_keys():
    ring = HashRing(["a", "b", "c", "d"])
    digests = [route_digest(f"Q{i}", "ACGT", FIELDS)
               for i in range(500)]
    before = [ring.nodes_for(d)[0] for d in digests]
    ring.remove("c")
    after = [ring.nodes_for(d)[0] for d in digests]
    moved = sum(1 for x, y in zip(before, after) if x != y)
    lost = sum(1 for x in before if x == "c")
    # Consistent hashing: exactly the dead node's keys remap.
    assert moved == lost
    assert "c" not in after


def test_nodes_for_returns_distinct_owners_owner_first():
    ring = HashRing(["a", "b", "c"])
    digest = route_digest("ACGTACGT", "TTTT", FIELDS)
    two = ring.nodes_for(digest, 2)
    three = ring.nodes_for(digest, 3)
    assert len(set(two)) == 2
    assert three[:2] == two          # replicas extend, never reorder
    assert sorted(three) == ["a", "b", "c"]
    # Asking past the ring size returns every node once.
    assert ring.nodes_for(digest, 99) == three


def test_preference_covers_all_nodes():
    ring = HashRing(["a", "b", "c"])
    digest = route_digest("AC", "GT", FIELDS)
    assert sorted(ring.preference(digest)) == ["a", "b", "c"]


def test_add_remove_idempotent():
    ring = HashRing(["a"])
    ring.add("a")
    assert len(ring) == 1
    ring.remove("missing")
    assert ring.nodes == ("a",)


def test_empty_ring_routes_nowhere():
    assert HashRing().nodes_for(123, 2) == []


def test_vnodes_must_be_positive():
    with pytest.raises(ValueError, match="vnodes"):
        HashRing(vnodes=0)


def test_digest_separates_pair_boundaries():
    # ("AT","G") vs ("A","TG"): same concatenation, different keys.
    assert route_digest("AT", "G", FIELDS) != \
        route_digest("A", "TG", FIELDS)


def test_digest_depends_on_scheme():
    protein = scheme_wire_fields(
        ProteinScheme(BLOSUM62, gap_open=11, gap_extend=1))
    assert route_digest("ACGT", "ACGT", FIELDS) != \
        route_digest("ACGT", "ACGT", protein)


def test_digest_same_for_equal_inputs():
    assert route_digest("ACGT", "TTAA", FIELDS) == \
        route_digest("ACGT", "TTAA", dict(FIELDS))
