"""Exception taxonomy for the alignment service.

Every failure a caller can observe through a request future or a
client round-trip is one of these, so both the in-process API and the
wire protocol can map errors to stable kinds.
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServiceStoppedError",
    "EngineFailedError",
    "error_kind",
]


class ServeError(RuntimeError):
    """Base class for alignment-service failures."""


class QueueFullError(ServeError):
    """Backpressure: the request queue is at capacity (submit rejected)."""


class DeadlineExceededError(ServeError):
    """The request's deadline expired before an engine picked it up."""


class ServiceStoppedError(ServeError):
    """The service is not running (or stopped while requests waited)."""


class EngineFailedError(ServeError):
    """The backend engine raised while scoring a batch."""


#: Exception class -> stable protocol ``kind`` string.
_KINDS = {
    QueueFullError: "queue_full",
    DeadlineExceededError: "deadline",
    ServiceStoppedError: "stopped",
    EngineFailedError: "engine",
}


def error_kind(exc: BaseException) -> str:
    """Stable ``kind`` string for an exception (wire-protocol field)."""
    for cls, kind in _KINDS.items():
        if isinstance(exc, cls):
            return kind
    return "error"
