"""Tests for repro.core.oblivious: the bulk-executable IR."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitops import BitOpsError, OpCounter
from repro.core.circuits import sw_cell_ops_exact
from repro.core.oblivious import ObliviousProgram, sw_cell_program


def _simple_prog():
    prog = ObliviousProgram(s_bits=6)
    a = prog.inp("a")
    b = prog.inp("b")
    prog.output("m", prog.max(prog.ssub(a, b), prog.add(b, prog.const(3))))
    return prog


class TestBuilder:
    def test_duplicate_input_rejected(self):
        prog = ObliviousProgram(4)
        prog.inp("a")
        with pytest.raises(BitOpsError):
            prog.inp("a")

    def test_kind_mismatch_rejected(self):
        prog = ObliviousProgram(4)
        a = prog.inp("a")
        x = prog.inp("x", kind="char")
        with pytest.raises(BitOpsError):
            prog.max(a, x)
        with pytest.raises(BitOpsError):
            prog.char_ne(a, a)

    def test_const_overflow_rejected(self):
        with pytest.raises(BitOpsError):
            ObliviousProgram(3).const(8)

    def test_output_required(self):
        prog = ObliviousProgram(4)
        prog.inp("a")
        with pytest.raises(BitOpsError):
            prog.run_wordwise({"a": np.array([1])})

    def test_missing_input_rejected(self):
        prog = _simple_prog()
        with pytest.raises(BitOpsError):
            prog.run_wordwise({"a": np.array([1])})

    def test_select_needs_flag(self):
        prog = ObliviousProgram(4)
        a = prog.inp("a")
        with pytest.raises(BitOpsError):
            prog.select(a, a, a)


class TestExecutorsAgree:
    def test_simple_program(self, rng):
        prog = _simple_prog()
        inputs = {"a": rng.integers(0, 60, 100),
                  "b": rng.integers(0, 60, 100)}
        word = prog.run_wordwise(inputs)["m"]
        sliced = prog.run_bitsliced(inputs, word_bits=32)["m"]
        np.testing.assert_array_equal(word, sliced)
        want = np.maximum(np.maximum(inputs["a"] - inputs["b"], 0),
                          (inputs["b"] + 3) % 64)
        np.testing.assert_array_equal(word, want)

    def test_sw_cell_program_matches_recurrence(self, rng):
        s, P = 9, 200
        prog = sw_cell_program(s, gap=1, c1=2, c2=1)
        inputs = {
            "up": rng.integers(0, 500, P),
            "left": rng.integers(0, 500, P),
            "diag": rng.integers(0, 500, P),
            "x": rng.integers(0, 4, P),
            "y": rng.integers(0, 4, P),
        }
        word = prog.run_wordwise(inputs)["d"]
        sliced = prog.run_bitsliced(inputs)["d"]
        np.testing.assert_array_equal(word, sliced)
        w = np.where(inputs["x"] == inputs["y"], 2, -1)
        want = np.maximum.reduce([
            np.zeros(P, dtype=np.int64), inputs["up"] - 1,
            inputs["left"] - 1, inputs["diag"] + w,
        ])
        np.testing.assert_array_equal(word, want)

    def test_instance_count_mismatch_rejected(self, rng):
        prog = _simple_prog()
        with pytest.raises(BitOpsError):
            prog.run_bitsliced({"a": np.zeros(3), "b": np.zeros(4)})


class TestOpCounts:
    def test_static_count_matches_measured(self, rng):
        prog = sw_cell_program(8, 1, 2, 1)
        c = OpCounter()
        prog.run_bitsliced({
            "up": rng.integers(0, 200, 10),
            "left": rng.integers(0, 200, 10),
            "diag": rng.integers(0, 200, 10),
            "x": rng.integers(0, 4, 10),
            "y": rng.integers(0, 4, 10),
        }, counter=c)
        assert c.ops == prog.op_count()

    def test_sw_program_count_equals_circuit_formula(self):
        for s in (4, 8, 9):
            assert sw_cell_program(s, 1, 2, 1).op_count() == \
                sw_cell_ops_exact(s, 2)

    def test_instruction_count(self):
        prog = sw_cell_program(8, 1, 2, 1)
        # 5 inputs + 3 consts + 7 compute instructions.
        assert prog.n_instructions == 15


@settings(max_examples=25, deadline=None)
@given(s=st.integers(2, 10), seed=st.integers(0, 2**31),
       n_ops=st.integers(1, 15))
def test_random_programs_property(s, seed, n_ops):
    """Random straight-line programs: the wordwise and bit-sliced
    executors agree on every instance — the bulk-execution theorem in
    miniature."""
    rng = np.random.default_rng(seed)
    prog = ObliviousProgram(s)
    vals = [prog.inp("a"), prog.inp("b")]
    x = prog.inp("x", kind="char")
    y = prog.inp("y", kind="char")
    flag = prog.char_ne(x, y)
    for _ in range(n_ops):
        op = rng.integers(0, 4)
        a = vals[rng.integers(0, len(vals))]
        b = vals[rng.integers(0, len(vals))]
        if op == 0:
            vals.append(prog.max(a, b))
        elif op == 1:
            vals.append(prog.ssub(a, b))
        elif op == 2:
            vals.append(prog.select(flag, a, b))
        else:
            vals.append(prog.ssub(a, prog.const(
                int(rng.integers(0, 1 << s))
            )))
    prog.output("out", vals[-1])
    P = 60
    inputs = {
        "a": rng.integers(0, 1 << s, P),
        "b": rng.integers(0, 1 << s, P),
        "x": rng.integers(0, 4, P),
        "y": rng.integers(0, 4, P),
    }
    word = prog.run_wordwise(inputs)["out"]
    for w in (32, 64):
        sliced = prog.run_bitsliced(inputs, word_bits=w)["out"]
        np.testing.assert_array_equal(word, sliced)
