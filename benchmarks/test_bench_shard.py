"""Sharded throughput: the multi-core acceptance claim, measured.

The sharding subsystem's bar: on the 2048-pair x 256 nt screening
workload, four worker processes must deliver **>= 2x the throughput**
of the single-process engine — while returning **bit-identical**
scores (sharding re-partitions work; it must never change answers).

The identity assertion always runs.  The speedup assertion needs four
real cores to be physically possible, so it skips (not passes) on
smaller machines — same policy as GPU tests without a GPU.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.filter.screening import bulk_max_scores
from repro.shard import ShardExecutor, default_workers
from repro.workloads.datasets import paper_workload

from .conftest import SCHEME

#: The acceptance workload: 2048 pairs of m=128 queries vs 256 nt
#: subjects (the screening shape, scaled from the paper's 32K pairs).
SHARD_PAIRS = 2048
SHARD_M = 128
SHARD_N = 256

SPEEDUP_WORKERS = 4
SPEEDUP_BAR = 2.0


@pytest.fixture(scope="module")
def shard_batch():
    return paper_workload(SHARD_N, pairs=SHARD_PAIRS, m=SHARD_M, seed=29)


def test_sharded_scores_bit_identical(shard_batch):
    X, Y = shard_batch.X, shard_batch.Y
    base = bulk_max_scores(X, Y, SCHEME)
    with ShardExecutor(workers=SPEEDUP_WORKERS) as ex:
        result = ex.run(X, Y, SCHEME)
    assert np.array_equal(result.scores, base)
    assert sum(t.pairs for t in result.timings) == SHARD_PAIRS


@pytest.mark.skipif(
    default_workers() < SPEEDUP_WORKERS,
    reason=f"needs >= {SPEEDUP_WORKERS} usable cores for a real speedup",
)
def test_shard_speedup_4_workers(shard_batch):
    X, Y = shard_batch.X, shard_batch.Y

    t0 = time.perf_counter()
    base = bulk_max_scores(X, Y, SCHEME)
    single_s = time.perf_counter() - t0

    with ShardExecutor(workers=SPEEDUP_WORKERS) as ex:
        ex.run(X[:64], Y[:64], SCHEME)  # warm the pool out of the timing
        t0 = time.perf_counter()
        result = ex.run(X, Y, SCHEME)
        sharded_s = time.perf_counter() - t0

    assert np.array_equal(result.scores, base)
    speedup = single_s / sharded_s
    loads = sorted(t.cost for t in result.timings)
    print(f"\nsingle:  {single_s:6.2f}s  "
          f"({SHARD_PAIRS / single_s:8.1f} pairs/s)")
    print(f"sharded: {sharded_s:6.2f}s  "
          f"({SHARD_PAIRS / sharded_s:8.1f} pairs/s, "
          f"{len(loads)} shards, load spread "
          f"{loads[0]}..{loads[-1]}) -> {speedup:.2f}x")
    assert speedup >= SPEEDUP_BAR, (
        f"sharded speedup {speedup:.2f}x below the {SPEEDUP_BAR}x bar "
        f"at {SPEEDUP_WORKERS} workers"
    )


@pytest.mark.benchmark(group="shard")
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bench_sharded_screen(benchmark, shard_batch, workers):
    """pytest-benchmark view of the screening workload per worker
    count (pool held open; per-run sharding + scoring timed)."""
    X, Y = shard_batch.X, shard_batch.Y
    with ShardExecutor(workers=workers) as ex:
        benchmark(lambda: ex.run(X, Y, SCHEME))
