"""Wire-level chaos: a live server + client under socket faults.

The site sweep proves each serve fault surfaces as a typed client
error; these tests drive the *recovery* story over real sockets — a
client that reconnects after a mid-pipeline connection loss gets
scores bit-identical to a fault-free run, and responses delivered
before the fault are already correct.
"""

from __future__ import annotations

import pytest

from repro.core.encoding import decode
from repro.resilience.faults import FaultPlan
from repro.serve import AlignmentServer, AlignmentService
from repro.serve.client import ClientError, ServeClient
from repro.serve.errors import ServeProtocolError
from repro.workloads.dna import random_strand

PAIRS = 6


@pytest.fixture
def served():
    service = AlignmentService(workers=2, max_wait_ms=1.0)
    try:
        service.start()
        server = AlignmentServer(service, host="127.0.0.1", port=0)
    except OSError as exc:  # pragma: no cover - sandboxed environments
        service.stop()
        pytest.skip(f"cannot bind localhost sockets here: {exc}")
    with server:
        yield server.address
    service.stop()


@pytest.fixture
def pairs(rng):
    return [(decode(random_strand(rng, 20)),
             decode(random_strand(rng, 24))) for _ in range(PAIRS)]


def _scores(host, port, pairs):
    with ServeClient(host, port) as client:
        return [r["score"] for r in client.align_many(pairs)]


class TestReconnectRecovery:
    def test_truncated_pipeline_recovers_on_reconnect(self, served,
                                                      pairs):
        host, port = served
        baseline = _scores(host, port, pairs)  # fault-free reference
        with FaultPlan.single("serve.sock.truncate", times=1):
            client = ServeClient(host, port)
            with pytest.raises(ServeProtocolError) as excinfo:
                client.align_many(pairs)
            assert excinfo.value.bytes_read > 0  # typed, mid-frame
            # The connection is gone; the recovery move is a fresh
            # connection and a full resend — bit-identical scores.
            assert _scores(host, port, pairs) == baseline

    def test_dropped_connection_recovers_on_reconnect(self, served,
                                                      pairs):
        host, port = served
        baseline = _scores(host, port, pairs)
        with FaultPlan.single("serve.sock.drop", times=1):
            client = ServeClient(host, port)
            with pytest.raises(ClientError) as excinfo:
                client.align_many(pairs)
            assert excinfo.value.kind == "closed"
            assert _scores(host, port, pairs) == baseline

    def test_server_survives_faulted_connections(self, served, pairs):
        # Neither fault may take down the *server*: after both, a new
        # client still gets service on the same listener.
        host, port = served
        for site in ("serve.sock.drop", "serve.sock.truncate"):
            with FaultPlan.single(site, times=1):
                with pytest.raises((ClientError, ServeProtocolError)):
                    ServeClient(host, port).align_many(pairs)
        with ServeClient(host, port) as client:
            assert client.ping()


class TestPartialDelivery:
    def test_responses_before_the_fault_are_correct(self, served,
                                                    pairs):
        """``after=2`` lets two response frames through before the
        drop: both must already be correct — a wire fault never
        retroactively corrupts delivered results."""
        host, port = served
        baseline = _scores(host, port, pairs)
        with FaultPlan.single("serve.sock.drop", after=2):
            client = ServeClient(host, port)
            for q, s in pairs:
                client._send({"op": "align", "query": q, "subject": s})
            client._flush()
            got = []
            with pytest.raises(ClientError) as excinfo:
                for _ in pairs:
                    got.append(client._check(client._recv())["score"])
        assert excinfo.value.kind == "closed"
        assert got == baseline[:2]
