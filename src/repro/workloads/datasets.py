"""Experiment batch builders.

Thin, seeded wrappers that assemble the exact workloads the paper's
evaluation uses (32K random pairs, m = 128, n swept over powers of
two) at configurable scale, since a Python reproduction measures
scaled-down pair counts and extrapolates with the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dna import random_strands

__all__ = ["PairBatch", "paper_workload", "sweep_workloads"]


@dataclass(frozen=True)
class PairBatch:
    """A batch of pattern/text pairs in wordwise code format."""

    X: np.ndarray  # (P, m)
    Y: np.ndarray  # (P, n)
    seed: int

    @property
    def pairs(self) -> int:
        """Number of pairs."""
        return self.X.shape[0]

    @property
    def m(self) -> int:
        """Pattern length."""
        return self.X.shape[1]

    @property
    def n(self) -> int:
        """Text length."""
        return self.Y.shape[1]

    @property
    def cells(self) -> int:
        """Total DP cell updates."""
        return self.pairs * self.m * self.n


def paper_workload(n: int, pairs: int = 32768, m: int = 128,
                   seed: int = 0) -> PairBatch:
    """The paper's §VI workload (random pairs) at the given scale."""
    rng = np.random.default_rng(seed)
    return PairBatch(
        X=random_strands(rng, pairs, m),
        Y=random_strands(rng, pairs, n),
        seed=seed,
    )


def sweep_workloads(n_values, pairs: int = 32768, m: int = 128,
                    seed: int = 0) -> dict[int, PairBatch]:
    """One :func:`paper_workload` per ``n`` (Table IV's sweep)."""
    return {n: paper_workload(n, pairs=pairs, m=m, seed=seed + i)
            for i, n in enumerate(n_values)}
