"""Worker pool fanning packed batches out to pluggable engines.

An *engine* is any callable ``(PackedBatch, word_bits) -> (P,) scores``
returning exact per-lane maximum scores.  Four are built in:

* ``"bpbc"`` — the paper's bitwise wavefront engine
  (:func:`repro.core.sw_bpbc.bpbc_sw_wavefront`); mixed-length batches
  take the sentinel-padded 3-plane path, which stays exact (see
  :mod:`repro.serve.packer`).  Protein schemes route to the
  substitution-matrix cells over ``pad_bits`` character planes and
  affine-gap schemes to the Gotoh engine — the same dispatch the shard
  workers use.
* ``"bpbc-jit"`` — the same engine pinned to the :mod:`repro.jit`
  compiled cell evaluator (``cell="compiled"``): the circuit is
  lowered to a generated straight-line kernel instead of interpreted,
  bit-identical and several times faster.
* ``"numpy"`` — the wordwise baseline
  (:func:`repro.swa.numpy_batch.sw_batch_max_scores`); sentinel codes
  simply never compare equal, so padding is exact here too.
* ``"gpusim"`` — the five-step §V pipeline on the SIMT simulator;
  sentinel-padded batches are split into uniform-shape sub-runs since
  the simulated kernels encode 2-bit DNA only.

The pool owns N worker threads over a *bounded* internal queue, so a
slow engine backs pressure up into the request queue (whose ``put``
rejects) instead of buffering unboundedly.  Workers demultiplex scores
back onto request futures, feed the result cache and record batch
stats; an engine exception fails every future in the batch with
:class:`~repro.serve.errors.EngineFailedError` — nothing hangs.

For multi-core machines, :class:`ShardedEngine` wraps the ``bpbc`` or
``numpy`` engine in a :class:`repro.shard.ShardExecutor`: each packed
batch is split into cost-balanced shards and scored across a process
pool, with per-shard timings fed into ``serve.stats``.  Construct it
via ``EnginePool(engine="bpbc", shard_workers=N)`` or pass an instance
as the engine.
"""

from __future__ import annotations

import queue as _stdqueue
import random
import threading
import time

import numpy as np

from ..core.sw_bpbc import bpbc_sw_wavefront, bpbc_sw_wavefront_planes
from ..resilience.errors import FallbackExhaustedError
from ..resilience.retry import RetryPolicy
from ..swa.affine import AffineScheme
from ..swa.numpy_batch import sw_batch_max_scores
from .cache import ResultCache, cache_key
from .errors import DeadlineExceededError, EngineFailedError
from .packer import PackedBatch
from .stats import ServiceStats

__all__ = ["ENGINES", "SHARDABLE_ENGINES", "EnginePool", "ShardedEngine",
           "ResilientEngine", "resolve_engine"]


def _engine_bpbc(batch: PackedBatch, word_bits: int,
                 cell: str | None = None) -> np.ndarray:
    scheme = batch.scheme
    protein = callable(getattr(scheme, "weights_key", None))
    if protein or isinstance(scheme, AffineScheme):
        # Protein / affine: always the character-plane path (protein
        # codes exceed 2 bits even unpadded); the Gotoh engine handles
        # gap_open != gap_extend, the linear substitution cell the rest.
        Xp, Yp = batch.char_planes(word_bits)
        if not protein or scheme.is_affine:
            from ..core.affine_bpbc import bpbc_gotoh_wavefront_planes

            result = bpbc_gotoh_wavefront_planes(Xp, Yp, scheme,
                                                 word_bits, cell=cell)
        else:
            result = bpbc_sw_wavefront_planes(Xp, Yp, scheme,
                                              word_bits, cell=cell)
    elif batch.padded:
        Xp, Yp = batch.char_planes(word_bits)
        result = bpbc_sw_wavefront_planes(Xp, Yp, scheme,
                                          word_bits, cell=cell)
    else:
        XH, XL, YH, YL = batch.bit_planes(word_bits)
        result = bpbc_sw_wavefront(XH, XL, YH, YL, scheme,
                                   word_bits, cell=cell)
    return result.max_scores[:batch.pairs]


def _engine_bpbc_jit(batch: PackedBatch, word_bits: int) -> np.ndarray:
    return _engine_bpbc(batch, word_bits, cell="compiled")


def _engine_numpy(batch: PackedBatch, word_bits: int) -> np.ndarray:
    scheme = batch.scheme
    if callable(getattr(scheme, "weights_key", None)):
        from ..core.protein import subst_gotoh_batch_max_scores

        return subst_gotoh_batch_max_scores(batch.X, batch.Y, scheme)
    if isinstance(scheme, AffineScheme):
        from ..swa.affine import gotoh_batch_max_scores

        return gotoh_batch_max_scores(batch.X, batch.Y, scheme)
    return sw_batch_max_scores(batch.X, batch.Y, batch.scheme)


def _engine_gpusim(batch: PackedBatch, word_bits: int) -> np.ndarray:
    from ..kernels.pipeline import run_gpu_pipeline

    if not batch.padded:
        scores, _ = run_gpu_pipeline(batch.X, batch.Y, batch.scheme,
                                     word_bits)
        return scores[:batch.pairs]
    # Uniform-shape sub-runs: the simulated kernels take no sentinel
    # codes (the affine pipeline's eps = 2 cannot represent them), and
    # slicing each shape back to its real lengths strips the pads.
    out = np.zeros(batch.pairs, dtype=np.int64)
    shapes: dict[tuple[int, int], list[int]] = {}
    for p, req in enumerate(batch.requests):
        shapes.setdefault((req.m, req.n), []).append(p)
    for (m, n), rows in shapes.items():
        idx = np.asarray(rows)
        scores, _ = run_gpu_pipeline(batch.X[idx, :m], batch.Y[idx, :n],
                                     batch.scheme, word_bits)
        out[idx] = scores[:len(rows)]
    return out


#: Built-in engine registry (extend freely; values are engine callables).
ENGINES = {
    "bpbc": _engine_bpbc,
    "bpbc-jit": _engine_bpbc_jit,
    "numpy": _engine_numpy,
    "gpusim": _engine_gpusim,
}

#: Engines a :class:`ShardedEngine` can spread across processes.
SHARDABLE_ENGINES = ("bpbc", "bpbc-jit", "numpy")


def resolve_engine(engine):
    """Engine name or callable -> engine callable."""
    if callable(engine):
        return engine
    try:
        return ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of "
            f"{sorted(ENGINES)} or a callable"
        ) from None


class ShardedEngine:
    """Engine wrapper scoring each batch across a shard process pool.

    Wraps a *shardable* engine (one of :data:`SHARDABLE_ENGINES`; the
    gpusim engine is simulation-bound and not shardable) in a persistent
    :class:`repro.shard.ShardExecutor`.  Satisfies the engine protocol
    ``(PackedBatch, word_bits) -> scores``, so it plugs straight into
    :class:`EnginePool` / :class:`~repro.serve.service.AlignmentService`.
    Sentinel-padded batches shard exactly: the shard workers detect pad
    codes and take the 3-plane path, same as :func:`_engine_bpbc`.

    Per-shard timings are recorded through ``stats.record_shard`` when
    a :class:`~repro.serve.stats.ServiceStats` is attached (the pool
    attaches its own automatically when it builds the wrapper from
    ``shard_workers=``).
    """

    def __init__(self, engine="bpbc", workers: int | None = None,
                 word_bits: int = 64,
                 stats: ServiceStats | None = None,
                 timeout_s: float | None = None,
                 transport: str = "auto") -> None:
        from ..shard import ShardExecutor

        self._executor = ShardExecutor(workers=workers, engine=engine,
                                       word_bits=word_bits,
                                       timeout_s=timeout_s,
                                       transport=transport)
        self.workers = self._executor.workers
        self.stats = stats

    def __call__(self, batch: PackedBatch, word_bits: int) -> np.ndarray:
        # The scheduler's width hint caps this batch's fan-out: a
        # batch already inside its latency budget on one worker skips
        # the shard dispatch overhead entirely.
        result = self._executor.run(batch.X, batch.Y, batch.scheme,
                                    width=batch.shard_width_hint)
        if self.stats is not None:
            for t in result.timings:
                self.stats.record_shard(t.pairs, t.elapsed_s)
        return result.scores

    def close(self) -> None:
        """Tear down the underlying process pool (idempotent)."""
        self._executor.close()


class ResilientEngine:
    """Engine adapter scoring every batch through a fallback chain.

    Satisfies the engine protocol ``(PackedBatch, word_bits) ->
    scores`` but dispatches to an
    :class:`~repro.resilience.fallback.EngineFallbackChain`: the batch
    lands on the fastest engine whose circuit breaker admits traffic,
    demoting native -> generated NumPy -> interpreted -> wordwise on
    failure.  Select it with ``engine="resilient"`` on
    :class:`EnginePool` / :class:`~repro.serve.service.AlignmentService`.
    """

    def __init__(self, chain=None, word_bits: int = 64) -> None:
        if chain is None:
            from ..resilience.fallback import EngineFallbackChain

            chain = EngineFallbackChain(word_bits=word_bits)
        self.chain = chain

    def __call__(self, batch: PackedBatch, word_bits: int) -> np.ndarray:
        scores, _engine = self.chain.score(batch.X, batch.Y,
                                           batch.scheme, word_bits)
        return scores


class EnginePool:
    """N worker threads draining a bounded queue of packed batches.

    ``shard_workers > 1`` wraps a named ``"bpbc"``/``"numpy"`` engine
    in a :class:`ShardedEngine`, so every batch is additionally spread
    across that many processes; the pool owns the wrapper and closes
    it in :meth:`stop`.

    ``fallback`` attaches an
    :class:`~repro.resilience.fallback.EngineFallbackChain` (pass
    ``True`` to build the default chain) used to *rescue* batches the
    primary engine fails: lanes whose deadline already expired are
    failed with ``DeadlineExceededError``, the live lanes are rescored
    on the chain under ``retry`` (deadline-aware, so a rescue never
    sleeps past the earliest lane deadline), and only when the chain
    itself is exhausted do the futures see ``EngineFailedError``.
    """

    def __init__(self, engine="bpbc", workers: int = 2,
                 word_bits: int = 64,
                 cache: ResultCache | None = None,
                 stats: ServiceStats | None = None,
                 queue_depth: int | None = None,
                 shard_workers: int | None = None,
                 fallback=None,
                 retry: RetryPolicy | None = None,
                 transport: str = "auto",
                 observer=None) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if shard_workers is not None and shard_workers <= 0:
            raise ValueError(
                f"shard_workers must be positive, got {shard_workers}"
            )
        if fallback is True or (fallback is None and engine == "resilient"):
            from ..resilience.fallback import EngineFallbackChain

            fallback = EngineFallbackChain(word_bits=word_bits)
        self.fallback_chain = fallback if fallback is not False else None
        self._retry = retry if retry is not None \
            else RetryPolicy(max_retries=1)
        if engine == "resilient":
            engine = ResilientEngine(self.fallback_chain,
                                     word_bits=word_bits)
        self._owned_sharded: ShardedEngine | None = None
        if shard_workers is not None and shard_workers > 1:
            if (not isinstance(engine, str)
                    or engine not in SHARDABLE_ENGINES):
                raise ValueError(
                    "shard_workers requires one of the "
                    f"{SHARDABLE_ENGINES} engines, got {engine!r}"
                )
            self._owned_sharded = ShardedEngine(
                engine, workers=shard_workers, word_bits=word_bits,
                stats=stats, transport=transport)
            engine = self._owned_sharded
        # A plain named engine can honour per-batch engine hints from
        # the scheduler (all registry engines are bit-identical);
        # wrapped/custom engines ignore hints.
        self._engine_name = engine if isinstance(engine, str) else None
        self._engine = resolve_engine(engine)
        self._observer = observer
        self.workers = workers
        self.word_bits = word_bits
        self._cache = cache
        self._stats = stats
        self._q: _stdqueue.Queue = _stdqueue.Queue(
            maxsize=queue_depth if queue_depth is not None
            else workers * 4)
        self._threads: list[threading.Thread] = []

    def start(self) -> None:
        if self._threads:
            return
        for i in range(self.workers):
            t = threading.Thread(target=self._run,
                                 name=f"repro-serve-engine-{i}",
                                 daemon=True)
            t.start()
            self._threads.append(t)

    def stop(self) -> None:
        """Finish queued batches, then join the workers."""
        for _ in self._threads:
            self._q.put(None)
        for t in self._threads:
            t.join()
        self._threads.clear()
        if self._owned_sharded is not None:
            self._owned_sharded.close()

    def submit(self, batch: PackedBatch) -> None:
        """Hand a batch to the workers (blocks when the pool is saturated
        — that is the backpressure path into the request queue)."""
        self._q.put(batch)

    def _run(self) -> None:
        while True:
            batch = self._q.get()
            if batch is None:
                return
            engine_fn, label = self._engine, self._engine_name
            if (batch.engine_hint is not None
                    and self._engine_name is not None
                    and batch.engine_hint in ENGINES):
                engine_fn = ENGINES[batch.engine_hint]
                label = batch.engine_hint
            t0 = time.perf_counter()
            try:
                scores = engine_fn(batch, self.word_bits)
            except Exception as exc:  # noqa: BLE001 - must not kill worker
                if self.fallback_chain is not None:
                    self._rescue(batch, exc)
                    continue
                err = EngineFailedError(
                    f"engine failed on {batch.pairs}-pair batch: {exc!r}"
                )
                for req in batch.requests:
                    req.fail(err)
                if self._stats is not None:
                    self._stats.record_failed(batch.pairs)
                continue
            elapsed = time.perf_counter() - t0
            if self._stats is not None:
                self._stats.record_batch(batch.pairs, self.word_bits,
                                         elapsed)
            if self._observer is not None:
                try:
                    self._observer(batch, label, elapsed)
                except Exception:  # noqa: BLE001 - observer is advisory
                    pass
            self._deliver(batch.requests, scores)

    def _deliver(self, requests, scores) -> None:
        """Demultiplex scores onto futures; feed cache and stats."""
        for req, score in zip(requests, scores):
            if self._cache is not None:
                self._cache.put(
                    cache_key(req.query, req.subject, req.scheme),
                    int(score),
                )
            latency = req.resolve(int(score), cached=False)
            if self._stats is not None:
                self._stats.record_completed(latency)

    def _rescue(self, batch: PackedBatch, exc: BaseException) -> None:
        """Re-dispatch a failed batch onto the fallback chain.

        Expired lanes are failed immediately with a typed
        ``DeadlineExceededError`` — retrying on their behalf would only
        deliver an answer nobody is waiting for.  Live lanes are
        rescored on the chain under the retry policy, bounded by the
        earliest remaining lane deadline; scores recovered this way are
        bit-identical to what the primary engine would have returned
        (the chain engines are pinned identical by the fuzz suite), so
        they feed the cache and futures exactly like a normal batch.
        """
        now = time.monotonic()
        live: list[int] = []
        for p, req in enumerate(batch.requests):
            if req.expired(now):
                req.fail(DeadlineExceededError(
                    "deadline expired before the engine failure on this "
                    f"batch could be retried ({exc!r})"
                ))
                if self._stats is not None:
                    self._stats.record_expired()
            else:
                live.append(p)
        if not live:
            return
        idx = np.asarray(live)
        known = [batch.requests[p].deadline for p in live
                 if batch.requests[p].deadline is not None]
        deadline = min(known) if known else None
        try:
            scores, engine = self._retry.call(
                lambda: self.fallback_chain.score(
                    batch.X[idx], batch.Y[idx], batch.scheme,
                    self.word_bits),
                retry_on=(FallbackExhaustedError,),
                deadline=deadline,
                rng=random.Random(batch.pairs),
            )
        except Exception as rexc:  # noqa: BLE001 - RetriesExhausted etc.
            err = EngineFailedError(
                f"engine failed on {batch.pairs}-pair batch ({exc!r}) "
                f"and the fallback chain could not rescue the "
                f"{len(live)} live lane(s): {rexc!r}"
            )
            for p in live:
                batch.requests[p].fail(err)
            if self._stats is not None:
                self._stats.record_failed(len(live))
            return
        if self._stats is not None:
            self._stats.record_batch(len(live), self.word_bits)
            self._stats.record_recovered(len(live), engine)
        self._deliver([batch.requests[p] for p in live], scores)
