"""Exhaustive netlist proving: the BPBC trick turned on itself.

The differential suites sample the cell circuits on random planes;
this module *proves* them, three ways:

**Equivalence** — every shipped cell netlist is checked bit-for-bit
against the scalar reference recurrences on **all** input
combinations at small score widths.  The enumeration is the paper's
own bulk-computation trick pointed at verification: input bit ``k``
of the truth table over ``2**n`` combinations is itself a periodic
bit pattern, so 64 combinations pack into each lane word and one
netlist evaluation per gate covers a whole chunk of the cube.
Circuits too wide to enumerate directly (the affine Gotoh cells, the
fused protein ``best`` variants) are decomposed assume-guarantee
style: prove the E/F cones exhaustively over their own inputs, cut
them out (:func:`repro.core.netlist.cut_netlist`), and prove the
residual over all cut values — sound because the cut sweep covers a
superset of what the cones can produce, and because a structural
support check first proves no signal bypasses the cut.

**Widths** — :meth:`repro.core.netlist.Netlist.prove_widths` interval
analysis applied to every shipped ``(scheme, score_bits)`` pairing,
plus a self-test that a deliberately undersized ``s`` is rejected
with the offending gate named.

**Uniformity** — exhaustive-at-small-``s`` pins all ``s`` only if
gate structure is width-uniform.  All width dependence of the cells
flows through the four ripple primitives (``add``/``ssub``/``max``/
``ge``; the substitution mux tree is pure width-independent
selection), so the check asserts their literal gate counts and
depths are affine in the bus width — the structural-induction
witness that each added plane adds the same per-bit stage.

Run it with ``python -m repro analyze --prove`` (its own CI job —
the full pass enumerates a few hundred million cube points).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - jit imports stay lazy at runtime
    from ..jit.compiler import CompiledNetlist

from ..core.affine_bpbc import gotoh_cell_reference
from ..core.circuits import clamp_penalty, sw_cell_reference
from ..core.matrices import matrix_by_name
from ..core.netlist import (Netlist, NetlistError,
                            build_gotoh_cell_best_netlist,
                            build_gotoh_cell_netlist,
                            build_subst_matching_netlist,
                            build_subst_sw_cell_best_netlist,
                            build_subst_sw_cell_netlist,
                            build_sw_cell_best_netlist,
                            build_sw_cell_netlist, cut_netlist,
                            synth_add, synth_greater_equal, synth_max,
                            synth_ssub)
from ..core.protein import ProteinScheme
from ..core.subst import WeightsKey, subst_matching_reference
from ..swa.scoring import ScoringScheme
from .report import Diagnostic, Report, Severity

__all__ = [
    "MAX_EXHAUSTIVE_BITS",
    "prove_equivalence",
    "input_support",
    "mutate_netlist",
    "prove_linear_cell",
    "prove_gotoh_cell",
    "check_score_widths",
    "check_width_uniformity",
    "analyze_prove",
]

#: Largest swept-input width a single exhaustive proof may take on.
#: 2**24 combinations x a ~2k-gate netlist is a few seconds of NumPy;
#: anything wider must be decomposed (and the prover says so rather
#: than silently sampling).
MAX_EXHAUSTIVE_BITS = 24

#: Combinations per evaluation chunk (2**18 = 4096 lane words, 32 KiB
#: per bit plane — every gate of the netlist holds one plane live, so
#: chunking bounds peak memory at ~a hundred MiB for the big cells).
_CHUNK_BITS = 18

#: Truth-table patterns of input bits 0..5 within one 64-bit word:
#: bit j of word holds combination j's value of swept input bit k.
_LOW_PATTERNS = (
    np.uint64(0xAAAAAAAAAAAAAAAA),
    np.uint64(0xCCCCCCCCCCCCCCCC),
    np.uint64(0xF0F0F0F0F0F0F0F0),
    np.uint64(0xFF00FF00FF00FF00),
    np.uint64(0xFFFF0000FFFF0000),
    np.uint64(0xFFFFFFFF00000000),
)

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

Evaluator = Callable[[dict[str, list[np.ndarray]]], Sequence[np.ndarray]]
Reference = Callable[[dict[str, np.ndarray]], np.ndarray]


def _plane_chunk(bit: int, w0: int, w1: int) -> np.ndarray:
    """The packed plane of swept input ``bit`` over words [w0, w1)."""
    if bit < 6:
        return np.full(w1 - w0, _LOW_PATTERNS[bit], dtype=np.uint64)
    sel = ((np.arange(w0, w1, dtype=np.uint64)
            >> np.uint64(bit - 6)) & np.uint64(1)).astype(bool)
    return np.where(sel, _ONES, np.uint64(0))


def prove_equivalence(evaluate: Evaluator, name: str,
                      sweep: Sequence[tuple[str, int]],
                      reference: Reference, *,
                      fixed: Mapping[str, tuple[int, int]] | None = None,
                      out_slice: slice | None = None,
                      max_bits: int = MAX_EXHAUSTIVE_BITS,
                      rule: str = "prove.equivalence",
                      detail: str = "") -> list[Diagnostic]:
    """Exhaustively check a circuit against a reference recurrence.

    ``sweep`` lists the input buses to enumerate as ``(bus, width)``
    (bit offsets assigned in order, LSB first); ``fixed`` pins any
    remaining buses to ``(value, width)`` constants.  ``reference``
    receives the integer value array of every bus (swept buses as
    per-combination arrays, fixed buses as scalars) and must return
    the expected integer of the compared output planes —
    ``out_slice`` selects which planes those are (default: all).

    Returns one ERROR diagnostic with a decoded counterexample on the
    first disagreement, an ERROR ``prove.infeasible`` when the swept
    width exceeds ``max_bits`` (an exhaustive claim must never
    silently degrade to sampling), or a NOTE stating exactly what was
    proven.
    """
    n = sum(w for _, w in sweep)
    if n > max_bits:
        return [Diagnostic(
            rule="prove.infeasible", severity=Severity.ERROR,
            subject=name,
            message=f"{n} swept input bits exceed the exhaustive "
                    f"budget of {max_bits}; decompose the proof "
                    f"instead of sampling")]
    offsets: dict[str, int] = {}
    off = 0
    for bus, w in sweep:
        offsets[bus] = off
        off += w
    fixed = dict(fixed or {})
    fixed_planes = {
        bus: [_ONES if (value >> h) & 1 else np.uint64(0)
              for h in range(width)]
        for bus, (value, width) in fixed.items()
    }
    total = 1 << n
    n_bad = 0
    first: tuple[dict[str, int], int, int] | None = None
    for c0 in range(0, total, 1 << _CHUNK_BITS):
        cend = min(c0 + (1 << _CHUNK_BITS), total)
        w0, w1 = c0 >> 6, (cend + 63) >> 6
        inputs: dict[str, list[np.ndarray]] = dict(fixed_planes)
        for bus, w in sweep:
            base = offsets[bus]
            inputs[bus] = [_plane_chunk(base + h, w0, w1)
                           for h in range(w)]
        try:
            outs = list(evaluate(inputs))
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            return [Diagnostic(
                rule="prove.eval-failed", severity=Severity.ERROR,
                subject=name,
                message=f"netlist evaluation raised {exc!r}")]
        if out_slice is not None:
            outs = outs[out_slice]
        idx = np.arange(c0, cend, dtype=np.int64)
        vals: dict[str, np.ndarray] = {
            bus: (idx >> offsets[bus]) & ((1 << w) - 1)
            for bus, w in sweep
        }
        for bus, (value, _width) in fixed.items():
            vals[bus] = np.int64(value)
        want = np.asarray(reference(vals), dtype=np.int64)
        word_local = (idx >> 6) - w0
        bit_in_word = (idx & 63).astype(np.uint64)
        got = np.zeros(len(idx), dtype=np.int64)
        for h, plane in enumerate(outs):
            plane = np.asarray(plane, dtype=np.uint64)
            if plane.ndim == 0:
                plane = np.full(w1 - w0, plane, dtype=np.uint64)
            bits = (plane[word_local] >> bit_in_word) & np.uint64(1)
            got |= bits.astype(np.int64) << h
        bad = np.nonzero(got != want)[0]
        if bad.size:
            n_bad += int(bad.size)
            if first is None:
                j = int(bad[0])
                combo = int(idx[j])
                assign = {bus: (combo >> offsets[bus]) & ((1 << w) - 1)
                          for bus, w in sweep}
                first = (assign, int(got[j]), int(want[j]))
    if first is not None:
        assign, got_v, want_v = first
        return [Diagnostic(
            rule=rule, severity=Severity.ERROR, subject=name,
            message=f"circuit disagrees with the reference on "
                    f"{n_bad} of {total} input combinations; "
                    f"counterexample {assign}: circuit={got_v}, "
                    f"reference={want_v}")]
    note = f"bit-exact on all {total} combinations ({n} swept bits"
    if fixed:
        note += f", {len(fixed)} bus(es) pinned"
    if detail:
        note += f"; {detail}"
    return [Diagnostic(rule=rule, severity=Severity.NOTE, subject=name,
                       message=note + ")")]


def input_support(net: Netlist, out_ids: Sequence[int]) -> set[str]:
    """Names of the input buses in the fan-in cone of ``out_ids``."""
    gates = net.gates
    seen: set[int] = set()
    stack = list(out_ids)
    while stack:
        gid = stack.pop()
        if gid in seen:
            continue
        seen.add(gid)
        stack.extend(gates[gid].inputs)
    id_to_bus = {gid: bus for bus, _w in net.input_buses
                 for gid in net.input_ids(bus)}
    return {id_to_bus[g] for g in seen if g in id_to_bus}


def _check_support(net: Netlist, name: str, group: str,
                   out_ids: Sequence[int],
                   allowed: set[str]) -> list[Diagnostic]:
    """ERROR when a cone reads buses outside its allowed support —
    the structural premise of every decomposed proof below."""
    extra = input_support(net, out_ids) - allowed
    if extra:
        return [Diagnostic(
            rule="prove.cut-support", severity=Severity.ERROR,
            subject=name,
            message=f"{group} cone reads input bus(es) "
                    f"{sorted(extra)} outside its recurrence support "
                    f"{sorted(allowed)}; the decomposed proof would "
                    f"be unsound")]
    return []


def _zero_fixed(net: Netlist,
                skip: Sequence[str]) -> dict[str, tuple[int, int]]:
    """Pin every input bus not in ``skip`` to zero."""
    return {bus: (0, w) for bus, w in net.input_buses
            if bus not in skip}


def _net_eval(net: Netlist) -> Evaluator:
    return lambda ins: net.evaluate(ins, word_bits=64)


# ---------------------------------------------------------------------------
# Whole-cell proof drivers.
# ---------------------------------------------------------------------------

def prove_linear_cell(net: Netlist | None, name: str, s: int, eps: int,
                      gap: int, c1: int | None = None,
                      c2: int | None = None,
                      weights: WeightsKey | None = None,
                      has_best: bool = False,
                      evaluate: Evaluator | None = None,
                      ) -> list[Diagnostic]:
    """Prove a linear SW cell netlist (DNA or substitution, optionally
    fused with the running-max group) against the scalar references.

    The cell group is swept directly over ``up``/``left``/``diag``/
    ``x``/``y`` (``best``, if present, pinned to zero after a support
    check).  The fused ``best`` group is then proven over all
    ``(best, cell)`` pairs by cutting the cell output bus — a direct
    sweep would need ``4s + 2*eps`` bits, which the protein cells
    cannot afford.
    """

    def cell_ref(vals: dict[str, np.ndarray]) -> np.ndarray:
        if weights is not None:
            from ..core.subst import subst_sw_cell_reference

            return subst_sw_cell_reference(
                vals["up"], vals["left"], vals["diag"], vals["x"],
                vals["y"], gap, weights, eps, s)
        return sw_cell_reference(vals["up"], vals["left"], vals["diag"],
                                 vals["x"], vals["y"], gap, c1, c2, s)

    if evaluate is None:
        if net is None:
            raise NetlistError(
                "prove_linear_cell needs a netlist or an evaluator")
        evaluate = _net_eval(net)
    diags: list[Diagnostic] = []
    sweep = [("up", s), ("left", s), ("diag", s), ("x", eps), ("y", eps)]
    fixed: dict[str, tuple[int, int]] = {}
    if has_best:
        if net is None:
            raise NetlistError(
                "fused-best proofs cut the netlist; pass it explicitly")
        diags += _check_support(net, name, "cell", net.outputs[:s],
                                {"up", "left", "diag", "x", "y"})
        if diags:
            return diags
        fixed = {"best": (0, s)}
    diags += prove_equivalence(
        evaluate, name, sweep, cell_ref,
        fixed=fixed, out_slice=slice(0, s))
    if not has_best or net is None:
        return diags
    cell_ids = net.outputs[:s]
    try:
        residual = cut_netlist(net, {"cell": cell_ids})
    except NetlistError as exc:
        diags.append(Diagnostic(
            rule="prove.cut-aliased", severity=Severity.ERROR,
            subject=name, message=f"cell-group cut failed: {exc}"))
        return diags
    best_ids = residual.outputs[s:2 * s]
    diags += _check_support(residual, name, "best", best_ids,
                            {"best", "cell"})
    if diags and diags[-1].severity is Severity.ERROR:
        return diags
    diags += prove_equivalence(
        _net_eval(residual), f"{name}:best",
        [("best", s), ("cell", s)],
        lambda vals: np.maximum(vals["best"], vals["cell"]),
        fixed=_zero_fixed(residual, ("best", "cell")),
        out_slice=slice(s, 2 * s),
        detail="running-max group over the cell cut")
    return diags


def prove_gotoh_cell(net: Netlist, name: str, s: int, eps: int,
                     gap_open: int, gap_extend: int,
                     c1: int | None = None, c2: int | None = None,
                     weights: WeightsKey | None = None,
                     has_best: bool = False,
                     ) -> list[Diagnostic]:
    """Prove an affine (Gotoh) cell netlist by assume-guarantee
    decomposition.

    A direct sweep needs ``5s + 2*eps`` (+``s`` fused) bits — 30+ for
    the protein cells.  Instead: (1) prove the E and F cones
    exhaustively over their own two score buses (after proving,
    structurally, that they read nothing else); (2) cut E and F out
    and prove the residual H group equals
    ``max(max(E, F), diag(h_diag, x, y))`` over *all* cut values —
    a superset of what the verified cones can produce; (3) for fused
    netlists, cut H and prove the running-max group.  When the direct
    sweep fits the budget the caller can cross-check it via
    :func:`prove_linear_cell`-style full enumeration (see
    ``analyze_prove``).
    """
    go = clamp_penalty(gap_open, s)
    ge = clamp_penalty(gap_extend, s)
    outs = net.outputs
    groups = {
        "E": (outs[s:2 * s], "h_left", "e_left"),
        "F": (outs[2 * s:3 * s], "h_up", "f_up"),
    }
    diags: list[Diagnostic] = []
    for label, (ids, hbus, ebus) in groups.items():
        bad = _check_support(net, name, label, ids, {hbus, ebus})
        if bad:
            diags += bad
            continue

        def ef_ref(vals: dict[str, np.ndarray], hb: str = hbus,
                   eb: str = ebus) -> np.ndarray:
            return np.maximum(np.maximum(vals[hb] - go, 0),
                              np.maximum(vals[eb] - ge, 0))

        lo = s * (1 if label == "E" else 2)
        diags += prove_equivalence(
            _net_eval(net), f"{name}:{label}",
            [(hbus, s), (ebus, s)], ef_ref,
            fixed=_zero_fixed(net, (hbus, ebus)),
            out_slice=slice(lo, lo + s),
            detail=f"{label} cone over its own support")
    if any(d.severity is Severity.ERROR for d in diags):
        return diags
    try:
        residual = cut_netlist(net, {"cutE": groups["E"][0],
                                     "cutF": groups["F"][0]})
    except NetlistError as exc:
        diags.append(Diagnostic(
            rule="prove.cut-aliased", severity=Severity.ERROR,
            subject=name, message=f"E/F cut failed: {exc}"))
        return diags
    h_ids = residual.outputs[:s]
    bad = _check_support(residual, name, "H", h_ids,
                         {"cutE", "cutF", "h_diag", "x", "y"})
    if bad:
        return diags + bad

    def h_ref(vals: dict[str, np.ndarray]) -> np.ndarray:
        if weights is not None:
            diag = subst_matching_reference(vals["h_diag"], vals["x"],
                                            vals["y"], weights, eps, s)
        else:
            from ..core.circuits import matching_reference

            diag = matching_reference(vals["h_diag"], vals["x"],
                                      vals["y"], c1, c2, s)
        return np.maximum(np.maximum(vals["cutE"], vals["cutF"]), diag)

    diags += prove_equivalence(
        _net_eval(residual), f"{name}:H",
        [("h_diag", s), ("x", eps), ("y", eps),
         ("cutE", s), ("cutF", s)],
        h_ref,
        fixed=_zero_fixed(residual,
                          ("h_diag", "x", "y", "cutE", "cutF")),
        out_slice=slice(0, s),
        detail="H residual over all E/F cut values")
    if not has_best:
        return diags
    try:
        residual2 = cut_netlist(net, {"cutH": outs[:s]})
    except NetlistError as exc:
        diags.append(Diagnostic(
            rule="prove.cut-aliased", severity=Severity.ERROR,
            subject=name, message=f"H cut failed: {exc}"))
        return diags
    best_ids = residual2.outputs[3 * s:4 * s]
    bad = _check_support(residual2, name, "best", best_ids,
                         {"best", "cutH"})
    if bad:
        return diags + bad
    diags += prove_equivalence(
        _net_eval(residual2), f"{name}:best",
        [("best", s), ("cutH", s)],
        lambda vals: np.maximum(vals["best"], vals["cutH"]),
        fixed=_zero_fixed(residual2, ("best", "cutH")),
        out_slice=slice(3 * s, 4 * s),
        detail="running-max group over the H cut")
    return diags


def prove_gotoh_cell_direct(net: Netlist, name: str, s: int, eps: int,
                            gap_open: int, gap_extend: int,
                            c1: int | None = None,
                            c2: int | None = None,
                            weights: WeightsKey | None = None,
                            ) -> list[Diagnostic]:
    """Direct full-cube sweep of a (non-fused) Gotoh cell — feasible
    only at the smallest widths, where it cross-checks the
    decomposition machinery of :func:`prove_gotoh_cell`."""

    def ref(vals: dict[str, np.ndarray]) -> np.ndarray:
        H, E, F = gotoh_cell_reference(
            vals["h_left"], vals["e_left"], vals["h_up"], vals["f_up"],
            vals["h_diag"], vals["x"], vals["y"], gap_open, gap_extend,
            s, c1=c1, c2=c2, weights=weights, eps=eps)
        return H | (E << s) | (F << (2 * s))

    return prove_equivalence(
        _net_eval(net), f"{name}:direct",
        [("h_left", s), ("e_left", s), ("h_up", s), ("f_up", s),
         ("h_diag", s), ("x", eps), ("y", eps)],
        ref, rule="prove.equivalence",
        detail="direct sweep cross-checking the decomposition")


# ---------------------------------------------------------------------------
# Mutation (prover-sensitivity) support.
# ---------------------------------------------------------------------------

def mutate_netlist(net: Netlist, seed: int) -> tuple[Netlist, str]:
    """A copy of ``net`` with one live logic gate's kind flipped.

    Netlists from the builders are memoised and shared — they must
    never be mutated in place.  The copy replays every gate in id
    order into a fresh ``Netlist(simplify=False)`` (ids are preserved
    exactly: input buses re-declare at the same positions, CSE stays
    off), then swaps the kind of one seeded-random live AND/OR/XOR
    gate.  Returns the mutant and a description of the flip.
    """
    gates = net.gates
    rng = random.Random(seed)
    live = net.used_gates()
    candidates = sorted(g for g in live
                        if gates[g].kind in ("AND", "OR", "XOR"))
    if not candidates:
        raise NetlistError("no live logic gate to mutate")
    target = rng.choice(candidates)
    new_kind = rng.choice([k for k in ("AND", "OR", "XOR")
                           if k != gates[target].kind])
    desc = (f"gate {target}: {gates[target].kind} -> {new_kind} "
            f"(seed {seed})")
    starts = {net.input_ids(bus)[0]: (bus, w)
              for bus, w in net.input_buses}
    out = Netlist(simplify=False)
    gid = 0
    while gid < len(gates):
        if gid in starts:
            bus, w = starts[gid]
            ids = out.input_bus(bus, w)
            if ids[0] != gid:
                raise NetlistError("replay lost id alignment")
            gid += w
            continue
        g = gates[gid]
        kind = new_kind if gid == target else g.kind
        if out._add(kind, g.inputs, g.name) != gid:
            raise NetlistError("replay lost id alignment")
        gid += 1
    out.set_outputs(net.outputs)
    return out, desc


# ---------------------------------------------------------------------------
# Width soundness and width uniformity.
# ---------------------------------------------------------------------------

def _width_case(net: Netlist, name: str, s: int, v_max: int,
                ranges: dict[str, tuple[int, int]],
                out_groups: Sequence[tuple[str, slice]],
                ) -> list[Diagnostic]:
    """Run interval analysis on one shipped pairing: no hazards may
    fire and every score output group's hull must stay in
    ``[0, v_max]`` (the inductive step of the positional bound)."""
    rep = net.prove_widths(ranges)
    diags: list[Diagnostic] = []
    for issue in rep.issues:
        diags.append(Diagnostic(
            rule="prove.widths", severity=Severity.ERROR, subject=name,
            message=issue.render()))
    outs = net.outputs
    for label, sl in out_groups:
        hull = rep.interval_of(outs[sl])
        if hull is None:
            diags.append(Diagnostic(
                rule="prove.widths", severity=Severity.ERROR,
                subject=name,
                message=f"no interval derived for output group "
                        f"{label} — the arithmetic log is incomplete"))
        elif hull[1] > v_max:
            diags.append(Diagnostic(
                rule="prove.widths", severity=Severity.ERROR,
                subject=name,
                message=f"output group {label} hull {list(hull)} "
                        f"escapes the inductive bound [0, {v_max}]"))
    if not diags:
        diags.append(Diagnostic(
            rule="prove.widths", severity=Severity.NOTE, subject=name,
            message=f"statically sound at s={s}: no overflow, no "
                    f"unsound truncation, outputs within "
                    f"[0, {v_max}]"))
    return diags


def check_score_widths(sizes: Sequence[int] = (8, 64, 4096),
                       matrix_names: Sequence[str] = ("blosum62",
                                                      "blosum50",
                                                      "pam250"),
                       gap: int = 1, c1: int = 2, c2: int = 1,
                       gap_open: int = 2, gap_extend: int = 1,
                       protein_gap_open: int = 11,
                       protein_gap_extend: int = 1) -> Report:
    """Statically prove ``score_bits(m, n)`` sufficient for every
    shipped (scheme, cell) pairing, and self-test that an undersized
    width is rejected.

    The input ranges encode the positional invariant the engines
    maintain: every score entering a cell at position ``(i, j)`` is at
    most ``max_step * min(i, j) <= V = scheme.max_score(m, n)``, and
    the diagonal operand — one position earlier — is at most
    ``V - max_step``.  The analysis then *proves* the binding case:
    cell outputs stay within ``[0, V]``, no adder carries out, no
    truncated plane can be nonzero.
    """
    rep = Report()
    dna = ScoringScheme(match_score=c1, mismatch_penalty=c2,
                        gap_penalty=gap)
    for m in sizes:
        s = dna.score_bits(m, m)
        v = dna.max_score(m, m)
        score = (0, v)
        diag = (0, max(0, v - c1))
        net = build_sw_cell_best_netlist(s, gap, c1, c2)
        rep.extend(_width_case(
            net, f"sw_cell_best[s={s},m={m}]", s, v,
            {"up": score, "left": score, "diag": diag, "best": score},
            [("cell", slice(0, s)), ("best", slice(s, 2 * s))]))
        gnet = build_gotoh_cell_best_netlist(s, gap_open, gap_extend,
                                             c1=c1, c2=c2)
        rep.extend(_width_case(
            gnet, f"gotoh_cell_best[s={s},m={m}]", s, v,
            {"h_left": score, "e_left": score, "h_up": score,
             "f_up": score, "h_diag": diag, "best": score},
            [("H", slice(0, s)), ("E", slice(s, 2 * s)),
             ("F", slice(2 * s, 3 * s)),
             ("best", slice(3 * s, 4 * s))]))
    for mname in matrix_names:
        scheme = ProteinScheme(matrix=matrix_by_name(mname),
                               gap_open=protein_gap_open,
                               gap_extend=protein_gap_extend)
        wk = scheme.weights_key()
        eps = scheme.alphabet.pad_bits
        maxw = max(0, scheme.max_weight)
        for m in sizes:
            s = scheme.score_bits(m, m)
            v = scheme.max_score(m, m)
            score = (0, v)
            diag = (0, max(0, v - maxw))
            net = build_subst_sw_cell_best_netlist(
                s, protein_gap_extend, wk, eps=eps)
            rep.extend(_width_case(
                net, f"subst_sw_cell_best[{mname},s={s},m={m}]", s, v,
                {"up": score, "left": score, "diag": diag,
                 "best": score},
                [("cell", slice(0, s)), ("best", slice(s, 2 * s))]))
            gnet = build_gotoh_cell_best_netlist(
                s, protein_gap_open, protein_gap_extend, weights=wk,
                eps=eps)
            rep.extend(_width_case(
                gnet, f"subst_gotoh_cell_best[{mname},s={s},m={m}]",
                s, v,
                {"h_left": score, "e_left": score, "h_up": score,
                 "f_up": score, "h_diag": diag, "best": score},
                [("H", slice(0, s)), ("E", slice(s, 2 * s)),
                 ("F", slice(2 * s, 3 * s)),
                 ("best", slice(3 * s, 4 * s))]))

    # Self-test: the analyzer must *reject* a deliberately undersized
    # width, naming the overflowing gate.  An analyzer that accepts
    # everything proves nothing.
    m = 16
    s_ok = dna.score_bits(m, m)
    v = dna.max_score(m, m)
    for s_bad in (s_ok - 1, s_ok - 2):
        mask = (1 << s_bad) - 1
        net = build_sw_cell_netlist(s_bad, gap, c1, c2)
        bad_rep = net.prove_widths({
            "up": (0, min(v, mask)), "left": (0, min(v, mask)),
            "diag": (0, min(max(0, v - c1), mask))})
        if bad_rep.issues:
            issue = bad_rep.issues[0]
            rep.add(Diagnostic(
                rule="prove.width-selftest", severity=Severity.NOTE,
                subject=f"sw_cell[s={s_bad},m={m}]",
                message=f"undersized width correctly rejected: "
                        f"{issue.render()}"))
        else:
            rep.add(Diagnostic(
                rule="prove.width-selftest", severity=Severity.ERROR,
                subject=f"sw_cell[s={s_bad},m={m}]",
                message=f"analyzer accepted s={s_bad} although "
                        f"max_score({m},{m})={v} needs {s_ok} bits — "
                        f"the width proof is vacuous"))
    return rep


def check_width_uniformity(widths: Sequence[int] = (2, 3, 4, 5, 6, 7),
                           ) -> Report:
    """Assert the arithmetic primitives are width-uniform: literal
    gate count and depth affine in the bus width.

    This is the structural-induction half of the small-``s``
    exhaustive argument: every cell is a fixed composition of
    ``add``/``ssub``/``max``/``ge`` ripples (at ``s``, ``2s`` or
    ``s_ext``) plus width-*independent* selection logic, so if each
    primitive grows by an identical per-bit stage, a cell proven
    bit-exact at s∈{2,3,4} computes the same recurrence at every
    ``s`` (nothing structurally new appears at larger widths).
    """

    def literal(kind: str, w: int) -> Netlist:
        net = Netlist(simplify=False)
        a = net.input_bus("a", w)
        b = net.input_bus("b", w)
        if kind == "add":
            net.set_outputs(synth_add(net, a, b))
        elif kind == "ssub":
            net.set_outputs(synth_ssub(net, a, b))
        elif kind == "max":
            net.set_outputs(synth_max(net, a, b))
        else:
            net.set_outputs([synth_greater_equal(net, a, b)])
        return net

    rep = Report()
    for kind in ("add", "ssub", "max", "ge"):
        counts = []
        depths = []
        for w in widths:
            net = literal(kind, w)
            counts.append(net.logic_gate_count())
            depths.append(net.depth())
        d2c = {counts[i + 1] - counts[i] for i in range(len(counts) - 1)}
        d2d = {depths[i + 1] - depths[i] for i in range(len(depths) - 1)}
        name = f"synth_{kind}"
        if len(d2c) > 1 or len(d2d) > 1:
            rep.add(Diagnostic(
                rule="prove.uniformity", severity=Severity.ERROR,
                subject=name,
                message=f"gate structure is not width-uniform over "
                        f"widths {list(widths)}: counts {counts}, "
                        f"depths {depths} — exhaustive small-s proofs "
                        f"no longer pin larger widths"))
        else:
            rep.add(Diagnostic(
                rule="prove.uniformity", severity=Severity.NOTE,
                subject=name,
                message=f"width-uniform: +{d2c.pop()} gates and "
                        f"+{d2d.pop()} depth per added plane over "
                        f"widths {list(widths)}"))
    return rep


# ---------------------------------------------------------------------------
# The shipped-netlist catalogue and the top-level driver.
# ---------------------------------------------------------------------------

def _reingest(compiled: "CompiledNetlist", name: str,
              ) -> tuple[Netlist | None, list[Diagnostic]]:
    """Re-ingest a compiled evaluator and differentially pin the
    re-ingestion itself against the executing function on random
    planes — a wrong re-ingestion would make its proofs vacuous."""
    from ..jit.compiler import JitError, netlist_from_source

    try:
        net = netlist_from_source(compiled)
    except JitError as exc:
        return None, [Diagnostic(
            rule="prove.reingest", severity=Severity.ERROR,
            subject=name,
            message=f"source re-ingestion failed: {exc}")]
    rng = np.random.default_rng(20260808)
    ins = {
        bus: [rng.integers(0, 1 << 63, 32, dtype=np.uint64) * 2
              + rng.integers(0, 2, 32, dtype=np.uint64)
              for _ in range(w)]
        for bus, w in compiled._bus_widths
    }
    got = net.evaluate(ins, word_bits=64)
    want = compiled.evaluate(ins)
    bad = [h for h in range(len(want))
           if not np.array_equal(np.asarray(got[h]),
                                 np.asarray(want[h]))]
    if bad:
        return None, [Diagnostic(
            rule="prove.reingest", severity=Severity.ERROR,
            subject=name,
            message=f"re-ingested netlist disagrees with the "
                    f"executing compiled function on output "
                    f"plane(s) {bad}")]
    return net, [Diagnostic(
        rule="prove.reingest", severity=Severity.NOTE, subject=name,
        message=f"re-ingested {net.logic_gate_count()} gates from "
                f"generated source; matches the executing function "
                f"on 32 random lane words")]


def analyze_prove(s_values: Sequence[int] = (2, 3, 4),
                  matrix_names: Sequence[str] = ("blosum62",
                                                 "blosum50", "pam250"),
                  gap: int = 1, c1: int = 2, c2: int = 1,
                  gap_open: int = 2, gap_extend: int = 1,
                  protein_gap_open: int = 11,
                  protein_gap_extend: int = 1,
                  include_compiled: bool = True) -> Report:
    """The full proving pass over every shipped cell netlist.

    For each ``s`` in ``s_values``: the DNA linear cell (literal and
    folded), the fused running-max variant, the DNA Gotoh cell
    (decomposed, with a direct full-cube cross-check where it fits),
    the substitution matching/cell/Gotoh netlists for every shipped
    matrix, and — via source re-ingestion — the jit-compiled
    evaluators the engines actually execute.  Follows with the width
    soundness pass, the width-uniformity pass, and a prover
    sensitivity self-test (a known-bad mutant must be caught).
    """
    rep = Report()
    eps = 2
    for s in s_values:
        lit = build_sw_cell_netlist(s, gap, c1, c2, simplify=False)
        rep.extend(prove_linear_cell(
            lit, f"sw_cell[s={s},literal]", s, eps, gap, c1, c2))
        net = build_sw_cell_netlist(s, gap, c1, c2)
        rep.extend(prove_linear_cell(
            net, f"sw_cell[s={s}]", s, eps, gap, c1, c2))
        best = build_sw_cell_best_netlist(s, gap, c1, c2)
        rep.extend(prove_linear_cell(
            best, f"sw_cell_best[s={s}]", s, eps, gap, c1, c2,
            has_best=True))
        gnet = build_gotoh_cell_netlist(s, gap_open, gap_extend,
                                        c1=c1, c2=c2)
        gname = f"gotoh_cell[s={s}]"
        rep.extend(prove_gotoh_cell(gnet, gname, s, eps, gap_open,
                                    gap_extend, c1=c1, c2=c2))
        if 5 * s + 2 * eps <= 20:
            rep.extend(prove_gotoh_cell_direct(
                gnet, gname, s, eps, gap_open, gap_extend, c1=c1,
                c2=c2))
        gbest = build_gotoh_cell_best_netlist(s, gap_open, gap_extend,
                                              c1=c1, c2=c2)
        rep.extend(prove_gotoh_cell(
            gbest, f"gotoh_cell_best[s={s}]", s, eps, gap_open,
            gap_extend, c1=c1, c2=c2, has_best=True))
    for mname in matrix_names:
        scheme = ProteinScheme(matrix=matrix_by_name(mname),
                               gap_open=protein_gap_open,
                               gap_extend=protein_gap_extend)
        wk = scheme.weights_key()
        peps = scheme.alphabet.pad_bits
        for s in s_values:
            mnet = build_subst_matching_netlist(s, wk, eps=peps)
            rep.extend(prove_equivalence(
                _net_eval(mnet), f"subst_matching[{mname},s={s}]",
                [("diag", s), ("x", peps), ("y", peps)],
                lambda vals, _wk=wk, _e=peps, _s=s:
                    subst_matching_reference(
                        vals["diag"], vals["x"], vals["y"], _wk, _e,
                        _s)))
            cnet = build_subst_sw_cell_netlist(
                s, protein_gap_extend, wk, eps=peps)
            rep.extend(prove_linear_cell(
                cnet, f"subst_sw_cell[{mname},s={s}]", s, peps,
                protein_gap_extend, weights=wk))
            cbest = build_subst_sw_cell_best_netlist(
                s, protein_gap_extend, wk, eps=peps)
            rep.extend(prove_linear_cell(
                cbest, f"subst_sw_cell_best[{mname},s={s}]", s, peps,
                protein_gap_extend, weights=wk, has_best=True))
            gnet = build_gotoh_cell_netlist(
                s, protein_gap_open, protein_gap_extend, weights=wk,
                eps=peps)
            rep.extend(prove_gotoh_cell(
                gnet, f"subst_gotoh_cell[{mname},s={s}]", s, peps,
                protein_gap_open, protein_gap_extend, weights=wk))
            gbest = build_gotoh_cell_best_netlist(
                s, protein_gap_open, protein_gap_extend, weights=wk,
                eps=peps)
            rep.extend(prove_gotoh_cell(
                gbest, f"subst_gotoh_cell_best[{mname},s={s}]", s,
                peps, protein_gap_open, protein_gap_extend,
                weights=wk, has_best=True))
    if include_compiled:
        from ..jit.cells import compiled_sw_cell

        for s in s_values:
            compiled = compiled_sw_cell(s, gap, c1, c2, word_bits=64)
            name = f"compiled_sw_cell[s={s}]"
            net, diags = _reingest(compiled, name)
            rep.extend(diags)
            if net is not None:
                rep.extend(prove_linear_cell(
                    net, name, s, eps, gap, c1, c2))
            # Also prove the executing function itself directly — the
            # cube fits, so no re-ingestion trust is needed at all.
            rep.extend(prove_linear_cell(
                None, f"{name}:executing", s, eps, gap, c1, c2,
                evaluate=lambda ins, _c=compiled: _c.evaluate(ins)))
        from ..jit.compiler import CompiledNetlist

        for s in s_values:
            step = CompiledNetlist(
                build_sw_cell_best_netlist(s, gap, c1, c2), 64,
                name=f"sw_step[s={s}]")
            name = f"compiled_sw_step[s={s}]"
            net, diags = _reingest(step, name)
            rep.extend(diags)
            if net is not None:
                rep.extend(prove_linear_cell(
                    net, name, s, eps, gap, c1, c2, has_best=True))
            gstep = CompiledNetlist(
                build_gotoh_cell_best_netlist(s, gap_open, gap_extend,
                                              c1=c1, c2=c2), 64,
                name=f"gotoh_step[s={s}]")
            name = f"compiled_gotoh_step[s={s}]"
            net, diags = _reingest(gstep, name)
            rep.extend(diags)
            if net is not None:
                rep.extend(prove_gotoh_cell(
                    net, name, s, eps, gap_open, gap_extend, c1=c1,
                    c2=c2, has_best=True))
        scheme = ProteinScheme(matrix=matrix_by_name(matrix_names[0]),
                               gap_open=protein_gap_open,
                               gap_extend=protein_gap_extend)
        wk = scheme.weights_key()
        peps = scheme.alphabet.pad_bits
        for s in s_values:
            pstep = CompiledNetlist(
                build_subst_sw_cell_best_netlist(
                    s, protein_gap_extend, wk, eps=peps), 64,
                name=f"subst_step[s={s}]")
            name = f"compiled_subst_step[{matrix_names[0]},s={s}]"
            net, diags = _reingest(pstep, name)
            rep.extend(diags)
            if net is not None:
                rep.extend(prove_linear_cell(
                    net, name, s, peps, protein_gap_extend,
                    weights=wk, has_best=True))
            pgstep = CompiledNetlist(
                build_gotoh_cell_best_netlist(
                    s, protein_gap_open, protein_gap_extend,
                    weights=wk, eps=peps), 64,
                name=f"subst_gotoh_step[s={s}]")
            name = (f"compiled_subst_gotoh_step"
                    f"[{matrix_names[0]},s={s}]")
            net, diags = _reingest(pgstep, name)
            rep.extend(diags)
            if net is not None:
                rep.extend(prove_gotoh_cell(
                    net, name, s, peps, protein_gap_open,
                    protein_gap_extend, weights=wk, has_best=True))
    rep.extend(check_score_widths(matrix_names=matrix_names, gap=gap,
                                  c1=c1, c2=c2, gap_open=gap_open,
                                  gap_extend=gap_extend,
                                  protein_gap_open=protein_gap_open,
                                  protein_gap_extend=protein_gap_extend))
    rep.extend(check_width_uniformity())
    # Prover sensitivity: a single flipped gate must be caught.
    target = build_sw_cell_netlist(3, gap, c1, c2)
    caught = False
    for attempt in range(5):
        mutant, desc = mutate_netlist(target, 20260808 + attempt)
        diags = prove_linear_cell(mutant, "sensitivity", 3, eps, gap,
                                  c1, c2)
        if any(d.severity is Severity.ERROR for d in diags):
            caught = True
            rep.add(Diagnostic(
                rule="prove.sensitivity", severity=Severity.NOTE,
                subject="sw_cell[s=3]",
                message=f"mutation {desc} correctly refuted by the "
                        f"exhaustive sweep"))
            break
    if not caught:
        rep.add(Diagnostic(
            rule="prove.sensitivity", severity=Severity.ERROR,
            subject="sw_cell[s=3]",
            message="five seeded single-gate mutations all passed the "
                    "equivalence sweep — the prover is not sensitive"))
    return rep
