"""Greedy-LPT partitioning: coverage, balance, capacity, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.shard.partition import pair_costs, partition_lpt, shard_loads


def _flatten(plan) -> np.ndarray:
    return np.sort(np.concatenate(plan)) if plan else \
        np.empty(0, dtype=np.int64)


class TestPairCosts:
    def test_rectangular(self):
        X = np.zeros((5, 7), dtype=np.uint8)
        Y = np.zeros((5, 11), dtype=np.uint8)
        assert np.array_equal(pair_costs(X, Y), np.full(5, 77))

    def test_ragged(self):
        xs = [np.zeros(3, np.uint8), np.zeros(10, np.uint8)]
        ys = [np.zeros(4, np.uint8), np.zeros(2, np.uint8)]
        assert np.array_equal(pair_costs(xs, ys), [12, 20])

    def test_mismatched_counts(self):
        with pytest.raises(ValueError, match="pair count mismatch"):
            pair_costs([np.zeros(3, np.uint8)], [])


class TestPartitionLPT:
    def test_exact_coverage(self, rng):
        costs = rng.integers(1, 1000, size=97)
        plan = partition_lpt(costs, 4)
        assert np.array_equal(_flatten(plan), np.arange(97))

    def test_indices_sorted_within_shard(self, rng):
        costs = rng.integers(1, 1000, size=50)
        for idx in partition_lpt(costs, 3):
            assert np.array_equal(idx, np.sort(idx))

    def test_balance_uniform(self):
        # 64 equal pairs over 4 shards: perfectly even split.
        plan = partition_lpt(np.full(64, 100), 4)
        loads = shard_loads(np.full(64, 100), plan)
        assert len(plan) == 4
        assert np.all(loads == 1600)

    def test_balance_skewed(self, rng):
        # Zipf-ish skew: LPT keeps makespan within 4/3 of the mean
        # lower bound (theory bound, loose in practice).
        costs = (rng.zipf(1.5, size=512) * 10).astype(np.int64)
        costs = np.minimum(costs, 10_000)
        plan = partition_lpt(costs, 4)
        loads = shard_loads(costs, plan)
        lower_bound = max(costs.sum() / 4, costs.max())
        assert loads.max() <= lower_bound * 4 / 3 + 1

    def test_beats_contiguous_chunking_on_sorted_input(self):
        # Costs sorted ascending — the adversarial case for contiguous
        # chunking, which dumps all the big pairs into the last shard.
        costs = np.arange(1, 129, dtype=np.int64) ** 2
        lpt = shard_loads(costs, partition_lpt(costs, 4)).max()
        chunks = [np.arange(i, i + 32, dtype=np.int64)
                  for i in range(0, 128, 32)]
        contiguous = shard_loads(costs, chunks).max()
        assert lpt < contiguous

    def test_max_pairs_respected_and_grows_shards(self):
        costs = np.full(100, 5)
        plan = partition_lpt(costs, 2, max_pairs=10)
        assert len(plan) == 10
        assert all(len(idx) <= 10 for idx in plan)
        assert np.array_equal(_flatten(plan), np.arange(100))

    def test_shards_clipped_to_pair_count(self):
        plan = partition_lpt([7, 7], 16)
        assert len(plan) == 2
        assert np.array_equal(_flatten(plan), np.arange(2))

    def test_empty(self):
        assert partition_lpt(np.empty(0, np.int64), 4) == []

    def test_deterministic(self, rng):
        costs = rng.integers(1, 100, size=200)
        a = partition_lpt(costs, 5, max_pairs=50)
        b = partition_lpt(costs, 5, max_pairs=50)
        assert len(a) == len(b)
        for ia, ib in zip(a, b):
            assert np.array_equal(ia, ib)

    @pytest.mark.parametrize("shards", [0, -1])
    def test_bad_shards(self, shards):
        with pytest.raises(ValueError, match="shards must be positive"):
            partition_lpt([1, 2], shards)

    @pytest.mark.parametrize("max_pairs", [0, -3])
    def test_bad_max_pairs(self, max_pairs):
        with pytest.raises(ValueError, match="max_pairs must be positive"):
            partition_lpt([1, 2], 2, max_pairs=max_pairs)

    def test_bad_cost_shape(self):
        with pytest.raises(ValueError, match="1-D"):
            partition_lpt(np.ones((2, 2)), 2)
