"""Scoring scheme for the Smith-Waterman recurrence.

The paper's recurrence (§III) is::

    d[i][j] = max(0,
                  d[i-1][j]   - gap,
                  d[i][j-1]   - gap,
                  d[i-1][j-1] + w(x_i, y_j))

    w(x, y) = c1 if x == y else -c2

with the worked example (Table II) using ``c1 = 2``, mismatch ``-1``
and gap ``-1``.  The paper's prose writes the penalties with
inconsistent signs ("c1 = 2 and c1 = -1 and gap = -1"); we normalise:
``match_score`` (c1), ``mismatch_penalty`` (c2) and ``gap_penalty``
(gap) are all **non-negative magnitudes**, subtracted where the
recurrence subtracts.  This matches both Table II and the bitwise
circuits, whose saturating subtraction requires non-negative operands.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ScoringScheme", "DEFAULT_SCHEME"]


@dataclass(frozen=True)
class ScoringScheme:
    """Smith-Waterman scoring parameters (non-negative magnitudes).

    Attributes
    ----------
    match_score:
        ``c1`` — added when characters match; must be positive.
    mismatch_penalty:
        ``c2`` — subtracted (saturating at 0) on mismatch.
    gap_penalty:
        ``gap`` — subtracted (saturating at 0) when opening/extending
        a gap (the paper uses linear gap costs).
    """

    match_score: int = 2
    mismatch_penalty: int = 1
    gap_penalty: int = 1

    def __post_init__(self) -> None:
        if self.match_score <= 0:
            raise ValueError(
                f"match_score must be positive, got {self.match_score}"
            )
        if self.mismatch_penalty < 0:
            raise ValueError(
                "mismatch_penalty is a non-negative magnitude, got "
                f"{self.mismatch_penalty}"
            )
        if self.gap_penalty < 0:
            raise ValueError(
                "gap_penalty is a non-negative magnitude, got "
                f"{self.gap_penalty}"
            )

    def w(self, x, y) -> int:
        """The paper's ``w(x, y)``: ``c1`` on match, ``-c2`` otherwise."""
        return self.match_score if x == y else -self.mismatch_penalty

    def max_score(self, m: int, n: int | None = None) -> int:
        """Largest possible cell value: a full-length match of the
        shorter sequence."""
        shorter = m if n is None else min(m, n)
        return self.match_score * shorter

    def score_bits(self, m: int, n: int | None = None) -> int:
        """Bits needed to hold any score (the paper's ``s``).

        The paper states ``s <= ceil(log2(c1 * m))``, which is one bit
        short when ``c1 * m`` is a power of two (e.g. ``c1=2, m=128``
        gives 256, needing 9 bits, not 8); we use the exact
        ``bit_length``.
        """
        return max(1, self.max_score(m, n).bit_length())


#: The paper's Table II parameters: match +2, mismatch -1, gap -1.
DEFAULT_SCHEME = ScoringScheme(match_score=2, mismatch_penalty=1,
                               gap_penalty=1)
