"""Database screening: the paper's threshold-filter application (§III).

    python examples/database_screening.py

Simulates the workflow the paper motivates: a query set is screened
against a synthetic sequence database with the bulk BPBC engine; only
pairs whose maximum score beats the threshold τ get the expensive CPU
treatment (full matrix + traceback).  Prints a screening report with
precision/recall against the planted ground truth and the alignments
of the top hits.
"""

from __future__ import annotations

import time

import numpy as np

from repro import ScoringScheme, format_alignment, screen_pairs
from repro.workloads.dna import MutationModel, homologous_pairs


def main() -> None:
    rng = np.random.default_rng(7)
    scheme = ScoringScheme(match_score=2, mismatch_penalty=1,
                           gap_penalty=1)
    count, m, n = 512, 32, 256
    tau = 40  # scores above this are "interesting"

    X, Y, truth = homologous_pairs(
        rng, count=count, m=m, n=n, related_fraction=0.25,
        model=MutationModel(sub_rate=0.03),
    )

    t0 = time.perf_counter()
    result = screen_pairs(X, Y, tau, scheme, word_bits=64)
    elapsed = time.perf_counter() - t0

    passed = result.scores > tau
    tp = int((passed & truth).sum())
    fp = int((passed & ~truth).sum())
    fn = int((~passed & truth).sum())
    cells = count * m * n
    print(f"screened {count} pairs ({cells / 1e6:.1f}M DP cells) in "
          f"{elapsed * 1e3:.0f} ms "
          f"({cells / elapsed / 1e9:.3f} GCUPS incl. traceback)")
    print(f"threshold tau={tau}: {len(result.hits)} survivors "
          f"({result.pass_rate:.1%} of the database)")
    precision = tp / max(1, tp + fp)
    recall = tp / max(1, tp + fn)
    print(f"vs planted ground truth: precision {precision:.2f}, "
          f"recall {recall:.2f}")

    print("\ntop 3 alignments (CPU traceback of survivors only):")
    for hit in sorted(result.hits, key=lambda h: -h.score)[:3]:
        print(f"\npair #{hit.pair_index}")
        print(format_alignment(hit.alignment))


if __name__ == "__main__":
    main()
