"""Tests for repro.core.bitsliced: the bit-sliced integer container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitops import BitOpsError
from repro.core.bitsliced import (
    BitSlicedUInt,
    ints_from_slices,
    slices_from_ints,
)

from ..conftest import ALL_WIDTHS


class TestSlices:
    @pytest.mark.parametrize("w", ALL_WIDTHS)
    def test_roundtrip(self, rng, w):
        vals = rng.integers(0, 512, size=100)
        sl = slices_from_ints(vals, 9, w)
        assert sl.shape == (9, -(-100 // w))
        back = ints_from_slices(sl, w, count=100)
        np.testing.assert_array_equal(back, vals)

    def test_bit_plane_layout(self):
        vals = np.array([0b101, 0b010, 0b111])
        sl = slices_from_ints(vals, 3, 32)
        # Plane h, bit k = bit h of instance k.
        assert sl[0, 0] == 0b101  # low bits of instances 2,1,0
        assert sl[1, 0] == 0b110
        assert sl[2, 0] == 0b101

    def test_overflow_rejected(self):
        with pytest.raises(BitOpsError):
            slices_from_ints(np.array([8]), 3, 32)

    def test_negative_rejected(self):
        with pytest.raises(BitOpsError):
            slices_from_ints(np.array([-1]), 3, 32)

    def test_2d_input_rejected(self):
        with pytest.raises(BitOpsError):
            slices_from_ints(np.zeros((2, 2)), 3, 32)

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=99),
           st.sampled_from(ALL_WIDTHS))
    def test_roundtrip_property(self, vals, w):
        arr = np.array(vals, dtype=np.uint64)
        back = ints_from_slices(slices_from_ints(arr, 16, w), w,
                                count=len(vals))
        np.testing.assert_array_equal(back, arr)


class TestBitSlicedUInt:
    def test_from_ints_and_back(self, rng):
        vals = rng.integers(0, 2**7, size=40)
        bs = BitSlicedUInt.from_ints(vals, 7, 32)
        assert bs.s == 7
        assert bs.word_bits == 32
        assert bs.n_instances >= 40
        np.testing.assert_array_equal(bs.to_ints(40), vals)

    def test_zeros_and_constant(self):
        z = BitSlicedUInt.zeros(5, 3, 32)
        np.testing.assert_array_equal(z.to_ints(), 0)
        c = BitSlicedUInt.constant(19, 5, 3, 32)
        np.testing.assert_array_equal(c.to_ints(), 19)

    def test_constant_overflow_rejected(self):
        with pytest.raises(BitOpsError):
            BitSlicedUInt.constant(32, 5, 2, 32)

    def test_widen(self, rng):
        vals = rng.integers(0, 16, size=10)
        bs = BitSlicedUInt.from_ints(vals, 4, 32)
        wide = bs.widen(9)
        assert wide.s == 9
        np.testing.assert_array_equal(wide.to_ints(10), vals)

    def test_widen_narrowing_rejected(self):
        bs = BitSlicedUInt.zeros(4, 1, 32)
        with pytest.raises(BitOpsError):
            bs.widen(3)

    def test_copy_is_deep(self):
        bs = BitSlicedUInt.zeros(2, 1, 32)
        cp = bs.copy()
        cp.data[0, 0] = 7
        assert bs.data[0, 0] == 0

    def test_requires_two_dims(self):
        with pytest.raises(BitOpsError):
            BitSlicedUInt(np.zeros(4, dtype=np.uint32), 32)

    def test_to_ints_requires_1d_lanes(self):
        bs = BitSlicedUInt.zeros(2, (2, 2), 32)
        with pytest.raises(BitOpsError):
            bs.to_ints()

    def test_lane_shape_multi_dim(self):
        bs = BitSlicedUInt.zeros(3, (4, 5), 64)
        assert bs.lane_shape == (4, 5)
        assert bs.n_instances == 4 * 5 * 64
