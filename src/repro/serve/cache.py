"""Keyed LRU result cache: repeat queries skip the engine entirely.

Screening workloads are heavily repetitive — the same read is checked
against the same reference window by many callers — so the service
memoises exact maximum scores keyed by the *content* of the pair plus
the scoring scheme.  Keys are the raw code bytes (not a hash digest),
so a hit is exact by construction: a cached score is bit-identical to
what a cold engine run would return, because it *is* a previous engine
run's output for the identical inputs.

The cache is a plain ``OrderedDict`` LRU under one lock with hit/miss
counters; ``capacity=0`` disables it (every lookup is a miss, inserts
are dropped).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from ..swa.scoring import ScoringScheme

__all__ = ["ResultCache", "cache_key"]

#: A cache key: (query bytes, subject bytes, scheme).
CacheKey = tuple[bytes, bytes, ScoringScheme]


def cache_key(query: np.ndarray, subject: np.ndarray,
              scheme: ScoringScheme) -> CacheKey:
    """Exact content key for a pair under a scheme.

    The two byte strings are kept separate (not concatenated), so
    pairs like ``("AT", "G")`` and ``("A", "TG")`` cannot collide.
    """
    return (np.ascontiguousarray(query, dtype=np.uint8).tobytes(),
            np.ascontiguousarray(subject, dtype=np.uint8).tobytes(),
            scheme)


class ResultCache:
    """Thread-safe LRU of ``cache_key -> exact max score``."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[CacheKey, int] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: CacheKey) -> int | None:
        """Score for ``key`` (refreshing recency) or ``None`` on miss."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key: CacheKey, score: int) -> None:
        """Insert/refresh; evicts the least recently used past capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._data[key] = int(score)
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before any lookup)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._data.clear()
