"""Tests for repro.jit.compiler: netlist lowering and codegen."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitsliced import BitSlicedUInt
from repro.core.netlist import Netlist, build_sw_cell_netlist
from repro.jit import CompiledNetlist, JitError, compile_netlist, plan_netlist


def _planes(vals, s, w=32):
    return list(BitSlicedUInt.from_ints(np.asarray(vals), s, w).data)


def _ints(planes, w, count):
    return BitSlicedUInt(np.stack(planes), w).to_ints(count)


class TestPlanNetlist:
    def test_no_outputs_rejected(self):
        net = Netlist()
        net.input_bus("a", 1)
        with pytest.raises(JitError):
            plan_netlist(net)

    def test_operands_are_never_constants(self):
        net = build_sw_cell_netlist(8, 1, 2, 1, simplify=False)
        plan = plan_netlist(net)
        for _kind, a, b in plan.ops:
            assert a[0] != "const"
            assert b is None or b[0] != "const"

    def test_resimplifies_literal_netlist(self):
        """Compiling the paper-literal (simplify=False) netlist must
        re-run the peepholes: the plan lands at the folded size, not
        the literal one."""
        literal = build_sw_cell_netlist(8, 1, 2, 1, simplify=False)
        folded = build_sw_cell_netlist(8, 1, 2, 1, simplify=True)
        plan = plan_netlist(literal)
        assert plan.n_ops <= folded.logic_gate_count()
        assert plan.n_ops < literal.logic_gate_count()

    @pytest.mark.parametrize("s", [4, 8, 16])
    def test_never_grows_folded_netlist(self, s):
        net = build_sw_cell_netlist(s, 1, 2, 1)
        assert plan_netlist(net).n_ops <= net.logic_gate_count()

    def test_cse_merges_commuted_gates(self):
        net = Netlist()
        a = net.input_bus("a", 1)
        b = net.input_bus("b", 1)
        c = net.input_bus("c", 1)
        # Two structurally distinct gates computing the same function
        # after commutative normalisation.
        g1 = net.OR(net.AND(a[0], b[0]), c[0])
        g2 = net.OR(c[0], net.AND(b[0], a[0]))
        net.set_outputs([g1, g2])
        plan = plan_netlist(net)
        assert plan.outputs[0] == plan.outputs[1]
        assert plan.n_ops == 2  # one AND, one OR


class TestCompiledEvaluation:
    @pytest.mark.parametrize("w", [32, 64])
    @pytest.mark.parametrize("simplify", [False, True])
    def test_matches_interpreter_on_sw_cell(self, rng, w, simplify):
        s, P = 9, 200
        net = build_sw_cell_netlist(s, 1, 2, 1, simplify=simplify)
        compiled = compile_netlist(net, w)
        hi = (1 << s) - 2
        ins = {
            "up": _planes(rng.integers(0, hi, P), s, w),
            "left": _planes(rng.integers(0, hi, P), s, w),
            "diag": _planes(rng.integers(0, hi, P), s, w),
            "x": _planes(rng.integers(0, 4, P), 2, w),
            "y": _planes(rng.integers(0, 4, P), 2, w),
        }
        want = net.evaluate(ins, word_bits=w)
        got = compiled.evaluate(ins)
        np.testing.assert_array_equal(np.stack(got), np.stack(want))

    def test_constant_outputs(self):
        """Outputs that fold to constants come back as all-zero /
        all-one planes of the right dtype."""
        net = Netlist()
        a = net.input_bus("a", 1)
        net.set_outputs([net.XOR(a[0], a[0]),
                         net.OR(a[0], net.NOT(a[0])), a[0]])
        compiled = compile_netlist(net, 32)
        vals = np.asarray([0b1010], dtype=np.uint32)
        zero, one, thru = compiled.evaluate({"a": [vals]})
        assert zero.dtype == np.uint32
        np.testing.assert_array_equal(zero, 0)
        np.testing.assert_array_equal(one, np.uint32(0xFFFFFFFF))
        np.testing.assert_array_equal(thru, vals)

    def test_output_may_alias_input(self):
        """Input-passthrough outputs are materialised before the
        trailing copies, so outs may alias ins (the wavefront engine
        relies on this)."""
        net = Netlist()
        a = net.input_bus("a", 2)
        net.set_outputs([a[1], a[0]])  # swap
        compiled = compile_netlist(net, 32)
        buf0 = np.asarray([1], dtype=np.uint32)
        buf1 = np.asarray([2], dtype=np.uint32)
        compiled.run([buf0, buf1], [buf0, buf1])
        assert buf0[0] == 2 and buf1[0] == 1

    def test_zero_alloc_after_warmup(self):
        net = build_sw_cell_netlist(6, 1, 2, 1)
        compiled = compile_netlist(net, 64)
        shape = (17,)
        ins = [np.zeros(shape, np.uint64)
               for _ in range(compiled.plan.n_inputs)]
        outs = [np.zeros(shape, np.uint64) for _ in range(6)]
        compiled.run(ins, outs)
        pools_before = {k: id(v[1]) for k, v in compiled._pools.items()}
        views_before = {k: [id(b) for b in v]
                        for k, v in compiled._views.items()}
        compiled.run(ins, outs)
        assert {k: id(v[1]) for k, v in compiled._pools.items()} \
            == pools_before
        assert {k: [id(b) for b in v]
                for k, v in compiled._views.items()} == views_before

    def test_pool_grows_for_larger_leading_dim(self):
        net = build_sw_cell_netlist(4, 1, 2, 1)
        compiled = compile_netlist(net, 32)
        small = [np.zeros((4,), np.uint32)
                 for _ in range(compiled.plan.n_inputs)]
        big = [np.zeros((9,), np.uint32)
               for _ in range(compiled.plan.n_inputs)]
        outs4 = [np.zeros((4,), np.uint32) for _ in range(4)]
        outs9 = [np.zeros((9,), np.uint32) for _ in range(4)]
        compiled.run(small, outs4)
        compiled.run(big, outs9)
        compiled.run(small, outs4)  # shrunk view of the grown pool
        (cap, _bufs), = compiled._pools.values()
        assert cap == 9

    def test_generated_source_is_inspectable(self):
        compiled = compile_netlist(build_sw_cell_netlist(4, 1, 2, 1), 32)
        assert compiled.source.startswith("def _compiled_cell(")
        assert compiled.n_ops > 0
        assert compiled.n_slots > 0

    def test_word_bits_mismatch_rejected(self):
        compiled = compile_netlist(build_sw_cell_netlist(4, 1, 2, 1), 32)
        with pytest.raises(JitError):
            compiled.evaluate({"up": [], "left": [], "diag": [],
                               "x": [], "y": []}, word_bits=64)

    def test_missing_bus_rejected(self):
        compiled = compile_netlist(build_sw_cell_netlist(4, 1, 2, 1), 32)
        with pytest.raises(JitError):
            compiled.evaluate({"up": [np.uint32(0)] * 4})

    def test_wrong_plane_count_rejected(self):
        compiled = compile_netlist(build_sw_cell_netlist(4, 1, 2, 1), 32)
        ins = {"up": [np.uint32(0)] * 3, "left": [np.uint32(0)] * 4,
               "diag": [np.uint32(0)] * 4, "x": [np.uint32(0)] * 2,
               "y": [np.uint32(0)] * 2}
        with pytest.raises(JitError):
            compiled.evaluate(ins)

    def test_scalar_inputs_unwrap(self, rng):
        """Scalar (0-d) inputs evaluate fine and come back unwrapped,
        matching Netlist.evaluate's broadcasting contract."""
        net = Netlist()
        a = net.input_bus("a", 1)
        b = net.input_bus("b", 1)
        net.set_outputs([net.AND(a[0], b[0])])
        compiled = compile_netlist(net, 32)
        out, = compiled.evaluate({"a": [np.uint32(0b110)],
                                  "b": [np.uint32(0b011)]})
        assert out.shape == ()
        assert int(out) == 0b010

    def test_compile_netlist_returns_compiled(self):
        c = compile_netlist(build_sw_cell_netlist(4, 1, 2, 1), 64,
                            name="t")
        assert isinstance(c, CompiledNetlist)
        assert c.word_bits == 64
