"""Shared-memory shard transport: arena mechanics, bit-identity with
the pickle transport, auto selection, and lifecycle semantics.

The correctness bar is the repo-wide one: every transport must return
scores bit-identical to the single-process engines; shm may only ever
change *where bytes live*, never what they are.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.filter.screening import bulk_max_scores
from repro.shard import (MIN_SHM_BYTES, ShardExecutor, ShmArena,
                         shard_bulk_max_scores, shm_available)
from repro.shard.shm import read_scores, read_side, write_scores
from repro.shard.worker import as_contiguous_u8
from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_max_score

SCHEME = ScoringScheme(2, 1, 1)

pytestmark = pytest.mark.skipif(
    not shm_available(),
    reason="multiprocessing.shared_memory unavailable")


def _ragged(rng, pairs=24, max_m=60, max_n=80):
    xs = [rng.integers(0, 4, size=rng.integers(1, max_m),
                       dtype=np.uint8) for _ in range(pairs)]
    ys = [rng.integers(0, 4, size=rng.integers(1, max_n),
                       dtype=np.uint8) for _ in range(pairs)]
    return xs, ys


def _gold(xs, ys):
    return np.asarray([sw_max_score(x, y, SCHEME)
                       for x, y in zip(xs, ys)], dtype=np.int64)


def _pool_executor(**kw):
    ex = ShardExecutor(workers=2, **kw)
    if ex.in_process:
        ex.close()
        pytest.skip("requires a multiprocessing pool")
    return ex


# -- arena mechanics (no pool involved) --------------------------------

class TestArena:
    def test_roundtrip_preserves_sequences_and_scores(self, rng):
        xs, ys = _ragged(rng, pairs=7)
        with ShmArena(capacity=1 << 12) as arena:
            (ref,) = arena.begin_run([(0, xs, ys)])
            buf = arena._seg.buf
            got_xs = read_side(buf, ref.xlens_off, ref.pairs,
                               ref.xbuf_off, ref.xbuf_bytes)
            got_ys = read_side(buf, ref.ylens_off, ref.pairs,
                               ref.ybuf_off, ref.ybuf_bytes)
            # Compare via copies so no zero-copy view survives the
            # arena (an exported pointer would block the final unmap).
            roundtripped = [v.copy() for v in got_xs + got_ys]
            del got_xs, got_ys
            for orig, view in zip(xs + ys, roundtripped):
                assert np.array_equal(view, orig)
            scores = np.arange(7, dtype=np.int64) - 3
            write_scores(buf, ref, scores)
            assert np.array_equal(read_scores(buf, ref), scores)
            assert np.array_equal(arena.scores(ref), scores)
            del buf

    def test_multi_shard_refs_do_not_overlap(self, rng):
        shards = [(sid, *_ragged(rng, pairs=5)) for sid in range(3)]
        with ShmArena(capacity=1 << 12) as arena:
            refs = arena.begin_run(shards)
            buf = arena._seg.buf
            # Write each shard's scores, then check none clobbered
            # another (distinct fill values per shard).
            for ref in refs:
                write_scores(buf, ref, np.full(ref.pairs, ref.shard_id,
                                               dtype=np.int64))
            for ref in refs:
                assert np.array_equal(
                    arena.scores(ref),
                    np.full(ref.pairs, ref.shard_id, dtype=np.int64))
            del buf

    def test_grows_geometrically_across_generations(self, rng):
        xs = [np.zeros(4096, np.uint8)] * 4
        with ShmArena(capacity=1 << 10) as arena:
            arena.begin_run([(0, xs[:1], xs[:1])])
            first = arena.generations
            arena.begin_run([(0, xs, xs)])  # needs > first capacity
            assert arena.generations == first + 1
            assert arena.unlink_failures == 0

    def test_stale_ref_is_rejected(self, rng):
        xs, ys = _ragged(rng, pairs=3)
        with ShmArena(capacity=1 << 12) as arena:
            (ref,) = arena.begin_run([(0, xs, ys)])
            arena.retire()
            with pytest.raises(ValueError, match="segment"):
                arena.scores(ref)

    def test_close_unlinks_segment(self, rng):
        from multiprocessing import shared_memory

        xs, ys = _ragged(rng, pairs=3)
        arena = ShmArena(capacity=1 << 12)
        arena.begin_run([(0, xs, ys)])
        name = arena.segment_name
        arena.close()
        assert arena.segment_name is None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            ShmArena(capacity=0)


# -- transport bit-identity --------------------------------------------

class TestTransportIdentity:
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_rectangular_matches_single_process(self, rng, transport):
        X = rng.integers(0, 4, size=(96, 40), dtype=np.uint8)
        Y = rng.integers(0, 4, size=(96, 56), dtype=np.uint8)
        base = bulk_max_scores(X, Y, SCHEME)
        got = shard_bulk_max_scores(X, Y, SCHEME, workers=2,
                                    transport=transport)
        assert np.array_equal(got, base)

    @pytest.mark.parametrize("transport", ["shm", "pickle", "auto"])
    def test_ragged_matches_gold(self, rng, transport):
        xs, ys = _ragged(rng)
        with _pool_executor(transport=transport) as ex:
            got = ex.run(xs, ys, SCHEME).scores
        assert np.array_equal(got, _gold(xs, ys))

    def test_arena_is_reused_across_runs(self, rng):
        xs, ys = _ragged(rng)
        with _pool_executor(transport="shm") as ex:
            first = ex.run(xs, ys, SCHEME).scores
            second = ex.run(xs, ys, SCHEME).scores
            assert ex.shm_runs == 2
            assert ex.pickle_runs == 0
        assert np.array_equal(first, second)

    def test_width_caps_fanout_bit_identically(self, rng):
        xs, ys = _ragged(rng)
        with _pool_executor(transport="shm") as ex:
            result = ex.run(xs, ys, SCHEME, width=1)
        assert len(result.timings) == 1
        assert np.array_equal(result.scores, _gold(xs, ys))

    def test_rejects_bad_width(self, rng):
        xs, ys = _ragged(rng, pairs=4)
        with ShardExecutor(workers=2) as ex:
            with pytest.raises(ValueError, match="width"):
                ex.run(xs, ys, SCHEME, width=0)


# -- auto selection -----------------------------------------------------

class TestAutoTransport:
    def test_tiny_payload_stays_on_pickle(self, rng):
        xs, ys = _ragged(rng, pairs=8, max_m=16, max_n=16)
        with _pool_executor(transport="auto") as ex:
            ex.run(xs, ys, SCHEME)
            assert ex.pickle_runs == 1
            assert ex.shm_runs == 0

    def test_large_payload_promotes_to_shm(self, rng):
        pairs = 2 * (MIN_SHM_BYTES // 500) + 2
        xs = [rng.integers(0, 4, size=500, dtype=np.uint8)
              for _ in range(pairs)]
        with _pool_executor(transport="auto") as ex:
            got = ex.run(xs, xs, SCHEME).scores
            assert ex.shm_runs == 1
            assert ex.pickle_runs == 0
        assert np.array_equal(got, _gold(xs, xs))

    def test_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            ShardExecutor(workers=2, transport="carrier-pigeon")

    def test_in_process_executor_ignores_transport(self, rng):
        # workers=1 never touches a pool, so any transport is fine and
        # the scores still match gold.
        xs, ys = _ragged(rng, pairs=6)
        with ShardExecutor(workers=1, transport="shm") as ex:
            assert ex.in_process
            got = ex.run(xs, ys, SCHEME).scores
        assert np.array_equal(got, _gold(xs, ys))


# -- satellite: the redundant-copy fix ----------------------------------

class TestAsContiguous:
    def test_contiguous_u8_is_returned_unchanged(self):
        a = np.arange(16, dtype=np.uint8)
        assert as_contiguous_u8(a) is a

    def test_noncontiguous_and_foreign_dtypes_are_converted(self):
        strided = np.arange(32, dtype=np.uint8)[::2]
        out = strided if strided.flags.c_contiguous else None
        assert out is None  # the slice really is non-contiguous
        conv = as_contiguous_u8(strided)
        assert conv.flags.c_contiguous
        assert np.array_equal(conv, strided)
        ints = [0, 1, 2, 3]
        conv = as_contiguous_u8(ints)
        assert conv.dtype == np.uint8
        assert np.array_equal(conv, ints)
