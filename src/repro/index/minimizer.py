"""Seeded k-mer / minimizer extraction over character-code arrays
(2-bit DNA by default; any code width up to ``max_k`` packing).

Tier 0 of the search pipeline needs a cheap, alignment-free way to ask
"could this query possibly align here?".  The standard answer (used by
minimap2-class mappers and the seeded prefilters of SWAPHI-class
database search) is *minimizers*: hash every k-mer, and in every
window of ``w`` consecutive k-mers keep only the smallest hash.  Two
sequences sharing an exact k-mer that is a minimizer in both will
produce the same (value) entry, so an index of database minimizers
answers the question with a posting-list lookup while storing only
``~2/(w+1)`` of all k-mer positions.

Everything here is vectorized NumPy over ``uint8`` code arrays (the
wordwise format of :mod:`repro.core.encoding`); the hash is an
invertible 64-bit mixer (splitmix64 finalizer), so poly-A runs do not
collapse onto minimizer value 0 and window minima are effectively
random k-mer samples.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MAX_K", "max_k", "kmer_values", "hash_kmers", "minimizers"]

#: Largest supported k for 2-bit codes: a k-mer must fit in a uint64.
#: For wider alphabets the bound is ``max_k(bits) = 64 // bits``.
MAX_K = 32


def max_k(bits: int = 2) -> int:
    """Largest k whose packed k-mer of ``bits``-bit codes fits uint64."""
    if not 1 <= bits <= 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    return 64 // bits


def _check_k(k: int, bits: int) -> None:
    if not 1 <= k <= max_k(bits):
        raise ValueError(
            f"k must be in [1, {max_k(bits)}] for {bits}-bit codes, "
            f"got {k}")


def kmer_values(codes: np.ndarray, k: int, bits: int = 2) -> np.ndarray:
    """Packed values of every k-mer of a code array.

    ``codes`` is a 1-D ``uint8`` array of ``bits``-bit character codes
    (2 for DNA, 5 for the protein alphabet); returns a ``uint64``
    array of length ``len(codes) - k + 1`` where entry ``i`` packs
    ``codes[i:i+k]`` big-endian (first character in the high bits).
    Empty when the sequence is shorter than ``k``.
    """
    _check_k(k, bits)
    codes = np.asarray(codes, dtype=np.uint64)
    if codes.ndim != 1:
        raise ValueError(f"expected a 1-D code array, got {codes.shape}")
    if codes.size and int(codes.max()) >> bits:
        raise ValueError(
            f"code {int(codes.max())} does not fit {bits} bits")
    n = codes.shape[0]
    if n < k:
        return np.empty(0, dtype=np.uint64)
    out = np.zeros(n - k + 1, dtype=np.uint64)
    for i in range(k):
        out <<= np.uint64(bits)
        out |= codes[i:n - k + 1 + i]
    return out


def hash_kmers(values: np.ndarray) -> np.ndarray:
    """Mix packed k-mer values through the splitmix64 finalizer.

    Invertible (no two k-mers collide) and avalanche-complete, so the
    window-minimum below samples k-mers near-uniformly instead of
    preferring lexicographically small (poly-A) ones.
    """
    x = np.asarray(values, dtype=np.uint64).copy()
    with np.errstate(over="ignore"):
        # Full splitmix64 step: the golden-gamma add matters — the
        # bare finalizer fixes 0, which would hash poly-A runs to the
        # global minimum and make them permanent minimizers.
        x += np.uint64(0x9E3779B97F4A7C15)
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return x


def minimizers(codes: np.ndarray, k: int, w: int,
               bits: int = 2) -> tuple[np.ndarray, np.ndarray]:
    """Minimizer ``(positions, hashed values)`` of one code array.

    For every window of ``w`` consecutive k-mers the position of the
    smallest *hashed* k-mer is selected; duplicate selections from
    overlapping windows are collapsed.  Returns ``(positions, values)``
    — ``int64`` k-mer start positions (sorted, unique) and the
    ``uint64`` hashed value at each.  ``bits`` is the character code
    width (2 for DNA, 5 for protein).  A sequence shorter than ``k``
    has no minimizers; one shorter than ``k + w - 1`` is treated as a
    single window.
    """
    if w < 1:
        raise ValueError(f"w must be positive, got {w}")
    hashes = hash_kmers(kmer_values(codes, k, bits))
    n_kmers = hashes.shape[0]
    if n_kmers == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint64))
    if n_kmers <= w:
        pos = np.array([int(np.argmin(hashes))], dtype=np.int64)
        return pos, hashes[pos]
    windows = np.lib.stride_tricks.sliding_window_view(hashes, w)
    pos = windows.argmin(axis=1) + np.arange(windows.shape[0],
                                             dtype=np.int64)
    pos = np.unique(pos)
    return pos, hashes[pos]
