"""Bulk exact string matching: the paper's §II warm-up, end to end.

    python examples/bulk_string_matching.py

Reproduces the paper's 4-pair worked example, then runs a larger bulk
search — thousands of pattern/text pairs matched with three bitwise
operations per (i, j) position for ALL pairs at once — and compares
wall-clock against the scalar straightforward matcher.
"""

from __future__ import annotations

import time

import numpy as np

from repro import match_offsets
from repro.core.encoding import decode, encode_batch_bit_transposed
from repro.core.string_matching import (
    bpbc_string_matching,
    straightforward_string_matching,
)
from repro.core.bitops import unpack_lanes
from repro.workloads.dna import plant_homology, MutationModel, random_strands


def worked_example() -> None:
    print("paper §II worked example (4 pairs, 8-bit words):")
    pairs = [("ATCGA", "AATCGACA"), ("TCGAC", "AATCGACA"),
             ("AAAAA", "AAAAAAAA"), ("TTTTT", "AATTTTTT")]
    for pattern, text in pairs:
        offs = match_offsets(pattern, text, word_bits=8)
        print(f"  {pattern} in {text}: offsets {offs}")


def bulk_search() -> None:
    rng = np.random.default_rng(99)
    P, m, n = 4096, 12, 512
    patterns = random_strands(rng, P, m)
    texts = random_strands(rng, P, n)
    # Plant each pattern verbatim somewhere in its text.
    positions = []
    for p in range(P):
        text, pos = plant_homology(rng, patterns[p], n,
                                   MutationModel(0, 0, 0))
        texts[p] = text
        positions.append(pos)

    XH, XL = encode_batch_bit_transposed(patterns, 64)
    YH, YL = encode_batch_bit_transposed(texts, 64)
    t0 = time.perf_counter()
    d = bpbc_string_matching(XH, XL, YH, YL, 64)
    bulk_time = time.perf_counter() - t0

    bits = unpack_lanes(d, 64, count=P)  # (offsets, P)
    found = bits.T == 0
    hit_rate = np.mean([found[p, positions[p]] for p in range(P)])
    print(f"\nbulk search: {P} pairs (m={m}, n={n}) in "
          f"{bulk_time * 1e3:.0f} ms; planted occurrence found in "
          f"{hit_rate:.0%} of pairs")

    # Scalar baseline on a sample, to estimate the bulk advantage.
    sample = 32
    t0 = time.perf_counter()
    for p in range(sample):
        ref = straightforward_string_matching(patterns[p], texts[p])
        np.testing.assert_array_equal(ref, bits[:, p])
    scalar_time = (time.perf_counter() - t0) * (P / sample)
    print(f"scalar straightforward matcher (extrapolated to {P} "
          f"pairs): {scalar_time * 1e3:.0f} ms "
          f"-> bulk speedup ~{scalar_time / bulk_time:.0f}x "
          f"(and the sampled results agree exactly)")


def main() -> None:
    worked_example()
    bulk_search()


if __name__ == "__main__":
    main()
