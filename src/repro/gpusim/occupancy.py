"""CUDA-style occupancy calculation.

The paper states "We use CUDA blocks of 1024 threads each to maximize
occupancy" (§V).  This module implements the standard occupancy
arithmetic — how many blocks fit one streaming multiprocessor given
the thread, register, and shared-memory budgets — so that launch
configurations can be *checked* rather than asserted, and the SW
kernel's register estimate from the paper ("each thread uses 4s + 4
32-bit registers") can be fed through it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec
from .errors import LaunchConfigError

__all__ = ["SmLimits", "MAXWELL_LIMITS", "Occupancy",
           "occupancy_for", "sw_kernel_registers"]


@dataclass(frozen=True)
class SmLimits:
    """Per-SM resource budgets (Maxwell-generation defaults)."""

    max_threads: int = 2048
    max_blocks: int = 32
    max_warps: int = 64
    registers: int = 65536
    shared_mem_bytes: int = 96 * 1024


#: The paper's GTX TITAN X is Maxwell (SM 5.2).
MAXWELL_LIMITS = SmLimits()


@dataclass(frozen=True)
class Occupancy:
    """Result of an occupancy calculation."""

    blocks_per_sm: int
    active_threads: int
    active_warps: int
    occupancy: float          # active warps / max warps
    limiter: str              # which budget binds


def occupancy_for(threads_per_block: int, registers_per_thread: int,
                  shared_bytes_per_block: int, device: DeviceSpec,
                  limits: SmLimits = MAXWELL_LIMITS) -> Occupancy:
    """Blocks per SM under every budget; the minimum binds.

    Raises :class:`LaunchConfigError` if a single block already
    exceeds a budget (the launch would fail on real hardware).
    """
    if threads_per_block <= 0:
        raise LaunchConfigError("threads per block must be positive")
    if threads_per_block > device.max_threads_per_block:
        raise LaunchConfigError(
            f"{threads_per_block} threads exceed the device's "
            f"{device.max_threads_per_block}-thread block limit"
        )
    warps_per_block = -(-threads_per_block // device.warp_size)
    candidates = {
        "threads": limits.max_threads // threads_per_block,
        "blocks": limits.max_blocks,
        "warps": limits.max_warps // warps_per_block,
    }
    if registers_per_thread > 0:
        per_block = registers_per_thread * threads_per_block
        if per_block > limits.registers:
            raise LaunchConfigError(
                f"one block needs {per_block} registers; the SM has "
                f"{limits.registers}"
            )
        candidates["registers"] = limits.registers // per_block
    if shared_bytes_per_block > 0:
        if shared_bytes_per_block > limits.shared_mem_bytes:
            raise LaunchConfigError(
                f"one block needs {shared_bytes_per_block} shared "
                f"bytes; the SM has {limits.shared_mem_bytes}"
            )
        candidates["shared"] = (limits.shared_mem_bytes
                                // shared_bytes_per_block)
    limiter, blocks = min(candidates.items(), key=lambda kv: kv[1])
    if blocks == 0:
        raise LaunchConfigError(
            f"no block fits an SM (limited by {limiter})"
        )
    threads = blocks * threads_per_block
    warps = blocks * warps_per_block
    return Occupancy(
        blocks_per_sm=blocks,
        active_threads=threads,
        active_warps=warps,
        occupancy=warps / limits.max_warps,
        limiter=limiter,
    )


def sw_kernel_registers(s: int) -> int:
    """The paper's register estimate for the SW kernel's per-thread
    state: "each thread uses 4s + 4 32-bit registers" (the four
    bit-sliced cell values plus x and y)."""
    return 4 * s + 4
