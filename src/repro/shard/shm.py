"""Zero-copy shared-memory shard transport.

The pickle transport of :mod:`repro.shard.worker` ships every shard's
packed ``uint8`` buffers through the ``multiprocessing`` pipe: the
parent serialises them, the kernel copies them through a socketpair,
and the worker deserialises them again — three copies whose cost
scales with payload size, exactly the data-movement tax SWAPHI and
SALoBa show dominating alignment throughput at scale.

:class:`ShmArena` removes those copies.  The executor owns one
``multiprocessing.shared_memory`` segment per *generation* and, per
run, bump-allocates every shard's length tables, sequence buffers and
score reply slots inside it.  Workers receive only a tiny
:class:`ShmShardRef` descriptor (segment name + offsets — a few
hundred bytes regardless of payload), map the segment once per
process, build ``np.frombuffer`` views straight into it, and write
their ``int64`` scores into the reply region.  Nothing crosses the
pipe but the descriptor and a ``(shard_id, pairs, elapsed)`` tuple, so
fan-out cost is ~flat in payload size.

Lifecycle is owned entirely by the executor side: the arena creates
segments, retires them (close + unlink) when a run needs more space or
the pool is rebuilt after a worker death, and unlinks everything at
:meth:`ShmArena.close` / interpreter exit (``atexit``).  Workers only
ever *attach*; they deliberately unregister their attachment from the
``resource_tracker`` so a dying worker can never unlink a segment the
parent still owns.  Runs are synchronous (the executor waits for every
shard before reusing the arena), so a single bump allocator per run is
race-free by construction.

Failure model: an attach failure in a worker (site
``shard.shm.attach``) surfaces as that shard's exception, and the
executor retries the shard through the pickle transport —
bit-identical recovery, one transport down.  An unlink failure at
retirement (site ``shard.shm.unlink``) is absorbed: the segment leaks
until process exit, the run's scores are unaffected, and
:attr:`ShmArena.unlink_failures` counts the leak.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass

import numpy as np

from ..resilience.faults import fault_point

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - exotic platforms
    _shm = None  # type: ignore[assignment]

__all__ = ["MIN_SHM_BYTES", "ShmShardRef", "ShmArena", "shm_available",
           "attach_segment", "detach_all", "read_side", "read_scores",
           "write_scores"]

#: Below this many payload bytes the pickle pipe is cheaper than
#: touching a shared segment (``transport="auto"`` threshold).
MIN_SHM_BYTES = 1 << 16

#: Bump-allocator alignment: the widest element written is ``int64``.
_ALIGN = 8


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` exists on this build."""
    return _shm is not None


def _aligned(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


@dataclass(frozen=True)
class ShmShardRef:
    """A shard's address inside a shared segment — all a worker needs.

    Pickles in O(1) regardless of payload size: the sequences and the
    score reply slots stay in the segment, only these offsets travel.
    """

    segment: str
    shard_id: int
    pairs: int
    xlens_off: int
    ylens_off: int
    xbuf_off: int
    xbuf_bytes: int
    ybuf_off: int
    ybuf_bytes: int
    reply_off: int


def read_side(buf, lens_off: int, pairs: int, data_off: int,
              data_bytes: int) -> list[np.ndarray]:
    """Zero-copy per-pair views of one side of a shard.

    ``buf`` is the mapped segment's buffer; the returned arrays are
    views into it (the engine pads them into fresh bins anyway, see
    :func:`repro.shard.worker.score_codes`).
    """
    lens = np.frombuffer(buf, dtype=np.int32, count=pairs,
                         offset=lens_off)
    flat = np.frombuffer(buf, dtype=np.uint8, count=data_bytes,
                         offset=data_off)
    bounds = np.cumsum(lens, dtype=np.int64)
    if data_bytes != (int(bounds[-1]) if pairs else 0):
        raise ValueError(
            f"corrupt shard ref: {data_bytes} buffer bytes vs "
            f"{int(bounds[-1]) if pairs else 0} expected from lengths"
        )
    return np.split(flat, bounds[:-1])


def write_scores(buf, ref: ShmShardRef, scores: np.ndarray) -> None:
    """Write a shard's ``int64`` scores into its reply slots."""
    out = np.frombuffer(buf, dtype=np.int64, count=ref.pairs,
                        offset=ref.reply_off)
    out[:] = scores


def read_scores(buf, ref: ShmShardRef) -> np.ndarray:
    """Copy a shard's scores back out of its reply slots."""
    return np.frombuffer(buf, dtype=np.int64, count=ref.pairs,
                         offset=ref.reply_off).copy()


# -- worker-side attachment --------------------------------------------
# One mapping per segment per worker process.  The executor uses one
# live generation at a time, so stale mappings are closed as soon as a
# newer generation shows up (a terminated pool never reaches this; a
# rebuilt one must not accumulate maps of unlinked segments).

_ATTACHED: dict[str, "_shm.SharedMemory"] = {}


def _untrack(seg) -> None:
    """Drop a worker-side attachment from the ``resource_tracker``.

    CPython registers *every* ``SharedMemory`` — attach included —
    with the per-process resource tracker, which unlinks leftovers at
    process exit.  Only the executor owns unlink; a worker exiting (or
    crashing) must not tear the segment out from under its siblings,
    so the attachment is explicitly unregistered.
    """
    try:  # pragma: no cover - tracker layout is stdlib-internal
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass


def attach_segment(name: str):
    """Map a shared segment by name (cached per process).

    Fault site ``shard.shm.attach`` fires here: the worker's mapping
    of the segment fails, the shard raises, and the executor retries
    it over the pickle transport.
    """
    fault_point("shard.shm.attach")
    seg = _ATTACHED.get(name)
    if seg is None:
        if _shm is None:
            raise RuntimeError("shared_memory unavailable in worker")
        for stale in list(_ATTACHED):
            try:
                _ATTACHED.pop(stale).close()
            except (OSError, BufferError):  # pragma: no cover
                pass
        seg = _shm.SharedMemory(name=name)
        _untrack(seg)
        _ATTACHED[name] = seg
    return seg


def detach_all() -> None:
    """Close every cached worker-side mapping (test hygiene)."""
    for name in list(_ATTACHED):
        try:
            _ATTACHED.pop(name).close()
        except (OSError, BufferError):  # pragma: no cover
            pass


# -- executor-side arena -----------------------------------------------

class ShmArena:
    """Executor-owned shared segment with a per-run bump allocator.

    Runs are synchronous, so :meth:`begin_run` may reuse the whole
    segment every time; it grows the segment geometrically (new
    generation, old one unlinked) when a run needs more room.
    """

    def __init__(self, capacity: int = 1 << 20) -> None:
        if _shm is None:
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable; "
                "use the pickle transport"
            )
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._seg = None
        #: Generations created over this arena's lifetime.
        self.generations = 0
        #: Segments whose unlink failed (leaked until process exit).
        self.unlink_failures = 0
        self._atexit = self.close
        atexit.register(self._atexit)

    # -- segment lifecycle ---------------------------------------------
    @property
    def segment_name(self) -> str | None:
        """Name of the live segment (``None`` before the first run)."""
        return self._seg.name if self._seg is not None else None

    def _ensure(self, nbytes: int) -> None:
        if self._seg is not None and self._seg.size >= nbytes:
            return
        while self._capacity < nbytes:
            self._capacity *= 2
        self.retire()
        self._seg = _shm.SharedMemory(create=True, size=self._capacity)
        self.generations += 1

    def retire(self) -> None:
        """Unlink the live segment (next run starts a new generation).

        Called when the segment must grow, when the executor rebuilds
        its pool after a worker death (a wedged worker may still hold
        a mapping — unlink is safe, the pages survive until every map
        closes), and from :meth:`close`.  Fault site
        ``shard.shm.unlink`` fires here; an unlink failure only leaks
        the segment, it never fails a run.
        """
        seg, self._seg = self._seg, None
        if seg is None:
            return
        try:
            seg.close()
        except (OSError, BufferError):  # pragma: no cover - map races
            pass
        try:
            fault_point("shard.shm.unlink")
            seg.unlink()
        except Exception:
            # Injected or organic (already-unlinked, permissions):
            # degrade by leaking the segment until process exit.
            self.unlink_failures += 1

    def close(self) -> None:
        """Retire the live segment and drop the atexit hook."""
        self.retire()
        if self._atexit is not None:
            try:
                atexit.unregister(self._atexit)
            except Exception:  # pragma: no cover - interpreter teardown
                pass
            self._atexit = None

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- per-run packing ------------------------------------------------
    @staticmethod
    def run_bytes(shards) -> int:
        """Segment bytes one run of ``(shard_id, xs, ys)`` shards needs."""
        total = 0
        for _sid, xs, ys in shards:
            pairs = len(xs)
            total = _aligned(total) + 4 * pairs          # xlens
            total = _aligned(total) + 4 * pairs          # ylens
            total += sum(len(x) for x in xs)             # xbuf
            total += sum(len(y) for y in ys)             # ybuf
            total = _aligned(total) + 8 * pairs          # replies
        return _aligned(total)

    def begin_run(self, shards) -> list[ShmShardRef]:
        """Pack one run's shards into the segment; return their refs.

        ``shards`` is a list of ``(shard_id, xs, ys)`` with ``xs`` /
        ``ys`` ragged lists of contiguous ``uint8`` code arrays.
        Overwrites whatever the previous run left behind.
        """
        self._ensure(self.run_bytes(shards))
        buf = self._seg.buf
        name = self._seg.name
        refs: list[ShmShardRef] = []
        cursor = 0
        for sid, xs, ys in shards:
            pairs = len(xs)
            xlens_off = _aligned(cursor)
            ylens_off = _aligned(xlens_off + 4 * pairs)
            xbuf_off = ylens_off + 4 * pairs
            xbuf_bytes = sum(len(x) for x in xs)
            ybuf_off = xbuf_off + xbuf_bytes
            ybuf_bytes = sum(len(y) for y in ys)
            reply_off = _aligned(ybuf_off + ybuf_bytes)
            cursor = reply_off + 8 * pairs

            np.frombuffer(buf, np.int32, count=pairs,
                          offset=xlens_off)[:] = [len(x) for x in xs]
            np.frombuffer(buf, np.int32, count=pairs,
                          offset=ylens_off)[:] = [len(y) for y in ys]
            xview = np.frombuffer(buf, np.uint8, count=xbuf_bytes,
                                  offset=xbuf_off)
            pos = 0
            for x in xs:
                xview[pos:pos + len(x)] = x
                pos += len(x)
            yview = np.frombuffer(buf, np.uint8, count=ybuf_bytes,
                                  offset=ybuf_off)
            pos = 0
            for y in ys:
                yview[pos:pos + len(y)] = y
                pos += len(y)
            refs.append(ShmShardRef(
                segment=name, shard_id=int(sid), pairs=pairs,
                xlens_off=xlens_off, ylens_off=ylens_off,
                xbuf_off=xbuf_off, xbuf_bytes=xbuf_bytes,
                ybuf_off=ybuf_off, ybuf_bytes=ybuf_bytes,
                reply_off=reply_off))
        return refs

    def scores(self, ref: ShmShardRef) -> np.ndarray:
        """A completed shard's scores, copied out of the reply region."""
        if self._seg is None or ref.segment != self._seg.name:
            raise ValueError(
                f"ref targets segment {ref.segment!r} but the live "
                f"segment is {self.segment_name!r}"
            )
        return read_scores(self._seg.buf, ref)
