"""repro.cluster — multi-node serving with node-level failover.

A :class:`ClusterCoordinator` fronts N ``repro.serve`` TCP nodes:
consistent-hash routing on the result-cache key (LRU hits stay
node-local) with configurable replication, per-node circuit breakers
and health probes, deadline-capped retry-with-reroute deduplicated by
idempotent request IDs, and graceful degradation to the in-process
engine fallback chain when every remote is down.  The resilience
contract holds end to end: bit-identical scores or a typed
:class:`ClusterDegradedError` — never a silent wrong score.

:class:`LocalCluster` (see :mod:`repro.cluster.harness`) spawns real
serve processes on ephemeral ports for tests, chaos runs, and the
``python -m repro cluster`` CLI.
"""

from .coordinator import ClusterCoordinator
from .errors import (ClusterDegradedError, ClusterError, NodeUnavailable,
                     TopologyError)
from .harness import LocalCluster, NodeSpec, load_topology
from .hashring import HashRing, route_digest
from .node import RemoteNode

__all__ = [
    "ClusterCoordinator",
    "ClusterDegradedError",
    "ClusterError",
    "NodeUnavailable",
    "TopologyError",
    "LocalCluster",
    "NodeSpec",
    "load_topology",
    "HashRing",
    "route_digest",
    "RemoteNode",
]
