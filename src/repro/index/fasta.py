"""Streaming FASTA reading/writing for the index subsystem.

This is the canonical FASTA implementation of the repo
(:mod:`repro.workloads.fasta` re-exports it for compatibility).  It
covers what a billion-character index build needs and what the old
parser lacked:

* **streaming**: :func:`iter_fasta` yields records one at a time, so
  building an index over a database far larger than RAM never holds
  more than one record's sequence in memory,
* **ambiguous-base policy**: real FASTA carries IUPAC ambiguity codes
  (``N``, ``R``, ``Y``, ...) that the 2-bit BPBC alphabet cannot
  encode.  ``ambiguous="strict"`` rejects them (the old behaviour),
  ``"replace"`` substitutes a *deterministically seeded* concrete base
  drawn from the code's possibility set (so an ``R`` becomes the same
  ``A`` or ``G`` on every run, and a replaced region scores like a
  random region instead of a poly-A magnet), ``"skip"`` drops records
  containing any ambiguity code,
* multi-line records folded at arbitrary widths, lowercase input, and
  ``U`` (RNA) read as ``T``.

Characters outside the IUPAC nucleotide set are rejected under every
policy — they indicate a corrupt or non-nucleotide file, not an
ambiguity.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..core.encoding import ALPHABET, encode

__all__ = [
    "AMBIGUITY",
    "FastaError",
    "FastaRecord",
    "iter_fasta",
    "read_fasta",
    "write_fasta",
    "records_to_batch",
]

#: IUPAC nucleotide ambiguity codes -> the concrete bases they denote.
AMBIGUITY: dict[str, str] = {
    "N": "ACGT", "R": "AG", "Y": "CT", "S": "GC", "W": "AT",
    "K": "GT", "M": "AC", "B": "CGT", "D": "AGT", "H": "ACT",
    "V": "ACG",
}

_POLICIES = ("strict", "replace", "skip")


class FastaError(ValueError):
    """Raised for malformed FASTA input."""


class _SkipRecord(Exception):
    """Internal: a record was dropped by ``ambiguous="skip"``."""


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: id, optional description, DNA sequence."""

    id: str
    description: str
    sequence: str

    @property
    def codes(self) -> np.ndarray:
        """The sequence as 2-bit codes."""
        return encode(self.sequence)

    def __len__(self) -> int:
        return len(self.sequence)


def _resolve_ambiguous(seq: str, header: str, source: str,
                       policy: str, seed: int) -> str:
    """Apply the ambiguous-base policy to one raw (uppercased) sequence."""
    cleaned = seq.replace("U", "T")
    bad = set(cleaned) - set(ALPHABET)
    if not bad:
        return cleaned
    unknown = bad - set(AMBIGUITY)
    if unknown:
        raise FastaError(
            f"{source}: record {header!r} contains non-nucleotide "
            f"characters {sorted(unknown)}"
        )
    if policy == "strict":
        raise FastaError(
            f"{source}: record {header!r} contains non-DNA characters "
            f"{sorted(bad)} (IUPAC ambiguity codes; pass "
            "ambiguous='replace' or 'skip' to accept them)"
        )
    if policy == "skip":
        raise _SkipRecord()
    # "replace": seeded per record, so the substitution is stable
    # across runs and independent of record order in the file.
    rng = random.Random(zlib.crc32(header.encode()) ^ seed)
    out = []
    for ch in cleaned:
        out.append(rng.choice(AMBIGUITY[ch]) if ch in AMBIGUITY else ch)
    return "".join(out)


def _make_record(header: str, chunks: list[str], source: str,
                 policy: str, seed: int) -> FastaRecord:
    seq = "".join(chunks).upper()
    if not seq:
        raise FastaError(f"{source}: record {header!r} has no sequence")
    seq = _resolve_ambiguous(seq, header, source, policy, seed)
    parts = header.split(None, 1)
    return FastaRecord(id=parts[0],
                       description=parts[1] if len(parts) > 1 else "",
                       sequence=seq)


def _parse(lines: Iterable[str], source: str, policy: str,
           seed: int) -> Iterator[FastaRecord]:
    header: str | None = None
    chunks: list[str] = []
    lineno = 0
    for raw in lines:
        lineno += 1
        line = raw.rstrip("\n\r")
        if not line.strip():
            continue
        if line.startswith(">"):
            if header is not None:
                try:
                    yield _make_record(header, chunks, source, policy,
                                       seed)
                except _SkipRecord:
                    pass
            header = line[1:].strip()
            if not header:
                raise FastaError(f"{source}:{lineno}: empty FASTA header")
            chunks = []
        else:
            if header is None:
                raise FastaError(
                    f"{source}:{lineno}: sequence data before any "
                    "'>' header"
                )
            chunks.append(line.strip())
    if header is not None:
        try:
            yield _make_record(header, chunks, source, policy, seed)
        except _SkipRecord:
            pass
    elif lineno == 0:
        raise FastaError(f"{source}: empty FASTA input")


def iter_fasta(path: str | Path, ambiguous: str = "strict",
               seed: int = 0) -> Iterator[FastaRecord]:
    """Stream records from a FASTA file, one at a time.

    ``ambiguous`` is the IUPAC-code policy: ``"strict"`` (raise,
    default), ``"replace"`` (seeded deterministic substitution) or
    ``"skip"`` (drop affected records).  Memory use is bounded by the
    largest single record, not the file.
    """
    if ambiguous not in _POLICIES:
        raise FastaError(
            f"unknown ambiguous-base policy {ambiguous!r}; expected "
            f"one of {_POLICIES}"
        )
    path = Path(path)
    with path.open() as fh:
        yield from _parse(fh, str(path), ambiguous, seed)


def read_fasta(path: str | Path, ambiguous: str = "strict",
               seed: int = 0) -> list[FastaRecord]:
    """Parse a whole FASTA file into records (see :func:`iter_fasta`)."""
    records = list(iter_fasta(path, ambiguous=ambiguous, seed=seed))
    if not records:
        raise FastaError(f"{path}: no FASTA records found")
    return records


def write_fasta(path: str | Path, records: Iterable[FastaRecord],
                width: int = 70) -> None:
    """Write records, folding sequence lines at ``width`` columns."""
    if width <= 0:
        raise FastaError(f"fold width must be positive, got {width}")
    path = Path(path)
    with path.open("w") as fh:
        for rec in records:
            header = rec.id if not rec.description else (
                f"{rec.id} {rec.description}"
            )
            fh.write(f">{header}\n")
            for i in range(0, len(rec.sequence), width):
                fh.write(rec.sequence[i:i + width] + "\n")


def records_to_batch(records: list[FastaRecord]) -> np.ndarray:
    """Stack equal-length records into a ``(P, n)`` code matrix."""
    if not records:
        raise FastaError("empty record list")
    n = len(records[0])
    for rec in records:
        if len(rec) != n:
            raise FastaError(
                f"record {rec.id!r} has length {len(rec)}; the batch "
                f"engines need equal lengths ({n} expected). Pad or "
                "split the input."
            )
    return np.stack([rec.codes for rec in records])
