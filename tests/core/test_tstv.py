"""Tests for repro.core.tstv: transition/transversion scoring."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitops import BitOpsError
from repro.core.encoding import CODE_OF, encode
from repro.core.sw_bpbc import bpbc_sw_wavefront_planes
from repro.core.alphabet import DNA
from repro.core.tstv import (
    TsTvScheme,
    classify_substitution,
    sw_tstv_matrix,
    sw_tstv_max_score,
    tstv_cell,
)
from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_matrix

SCHEME = TsTvScheme(match_score=2, transition_penalty=1,
                    transversion_penalty=2, gap_penalty=1)


class TestClassification:
    def test_transitions(self):
        # Purine <-> purine and pyrimidine <-> pyrimidine.
        assert classify_substitution(CODE_OF["A"], CODE_OF["G"]) == \
            "transition"
        assert classify_substitution(CODE_OF["C"], CODE_OF["T"]) == \
            "transition"

    def test_transversions(self):
        for a, b in (("A", "T"), ("A", "C"), ("G", "T"), ("G", "C")):
            assert classify_substitution(CODE_OF[a], CODE_OF[b]) == \
                "transversion", (a, b)

    def test_matches(self):
        for b in "ATGC":
            assert classify_substitution(CODE_OF[b], CODE_OF[b]) == \
                "match"

    def test_symmetric(self):
        for a in range(4):
            for b in range(4):
                assert classify_substitution(a, b) == \
                    classify_substitution(b, a)

    def test_range_check(self):
        with pytest.raises(BitOpsError):
            classify_substitution(4, 0)


class TestScheme:
    def test_w_values(self):
        assert SCHEME.w(CODE_OF["A"], CODE_OF["A"]) == 2
        assert SCHEME.w(CODE_OF["A"], CODE_OF["G"]) == -1
        assert SCHEME.w(CODE_OF["A"], CODE_OF["T"]) == -2

    def test_validation(self):
        with pytest.raises(ValueError):
            TsTvScheme(match_score=0)
        with pytest.raises(ValueError):
            TsTvScheme(transition_penalty=-1)


class TestGold:
    def test_equal_penalties_reduce_to_linear(self, rng):
        """ts == tv makes the model the paper's match/mismatch SW."""
        tstv = TsTvScheme(2, 1, 1, 1)
        lin = ScoringScheme(2, 1, 1)
        for _ in range(5):
            m, n = rng.integers(1, 10, 2)
            x = rng.integers(0, 4, m)
            y = rng.integers(0, 4, n)
            np.testing.assert_array_equal(
                sw_tstv_matrix(x, y, tstv), sw_matrix(x, y, lin)
            )

    def test_transition_rich_pair_scores_higher(self):
        """AG repeats vs GA repeats differ only by transitions; AT vs
        TA only by transversions — the model must separate them."""
        x_ts = encode("AGAGAGAG")
        y_ts = encode("GAGAGAGA")
        x_tv = encode("ATATATAT")
        y_tv = encode("TATATATA")
        assert sw_tstv_max_score(x_ts, y_ts, SCHEME) >= \
            sw_tstv_max_score(x_tv, y_tv, SCHEME)

    def test_hand_example(self):
        # x=AGAG vs y=AAAA: A matches interleaved with G->A
        # transitions.  At ts penalty 1 the best local path is A,G,A
        # = 2-1+2 = 3; with free transitions the full diagonal scores
        # 4.
        assert sw_tstv_max_score(encode("AGAG"), encode("AAAA"),
                                 SCHEME) == 3
        free_ts = TsTvScheme(2, 0, 2, 1)
        assert sw_tstv_max_score(encode("AGAG"), encode("AAAA"),
                                 free_ts) == 4


class TestBPBCTsTv:
    @pytest.mark.parametrize("w", [8, 32, 64])
    def test_matches_gold(self, rng, w):
        P, m, n = w + 3, 6, 13
        X = rng.integers(0, 4, (P, m), dtype=np.uint8)
        Y = rng.integers(0, 4, (P, n), dtype=np.uint8)
        s = SCHEME.score_bits(m, n)
        cell = tstv_cell(SCHEME, s, w)
        r = bpbc_sw_wavefront_planes(
            DNA.batch_planes(X, w), DNA.batch_planes(Y, w),
            ScoringScheme(SCHEME.match_score, 1, SCHEME.gap_penalty),
            w, s=s, cell=cell,
        )
        gold = [sw_tstv_max_score(X[p], Y[p], SCHEME) for p in range(P)]
        np.testing.assert_array_equal(r.max_scores[:P], gold)

    def test_rejects_non_dna_planes(self, rng):
        s = 4
        cell = tstv_cell(SCHEME, s, 32)
        bad_x = [np.uint32(0)] * 3  # 3-bit characters
        with pytest.raises(BitOpsError):
            cell([np.uint32(0)] * s, [np.uint32(0)] * s,
                 [np.uint32(0)] * s, bad_x, bad_x)

    @settings(max_examples=10, deadline=None)
    @given(m=st.integers(1, 7), n=st.integers(1, 10),
           P=st.integers(1, 40), seed=st.integers(0, 2**31),
           ts=st.integers(0, 3), tv_delta=st.integers(0, 3))
    def test_bpbc_tstv_property(self, m, n, P, seed, ts, tv_delta):
        rng = np.random.default_rng(seed)
        scheme = TsTvScheme(2, ts, ts + tv_delta, 1)
        X = rng.integers(0, 4, (P, m), dtype=np.uint8)
        Y = rng.integers(0, 4, (P, n), dtype=np.uint8)
        s = scheme.score_bits(m, n)
        r = bpbc_sw_wavefront_planes(
            DNA.batch_planes(X, 64), DNA.batch_planes(Y, 64),
            ScoringScheme(2, 1, 1), 64, s=s,
            cell=tstv_cell(scheme, s, 64),
        )
        gold = [sw_tstv_max_score(X[p], Y[p], scheme) for p in range(P)]
        np.testing.assert_array_equal(r.max_scores[:P], gold)
