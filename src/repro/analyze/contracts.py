"""Cross-layer contract lints: registries that must agree, checked.

Two families of implicit contract span this codebase's layers:

* **Fault sites** — the chaos machinery addresses injection points by
  string (``fault_point("shard.worker.crash")``), and
  :data:`repro.resilience.faults.SITES` is the catalogue a
  :class:`FaultRule` validates against.  But the *call sites* are
  plain literals that nothing validates: a typo'd site silently never
  fires, and a deleted call site leaves a catalogue entry the chaos
  suite thinks it is exercising.  :func:`check_fault_sites` walks the
  package's ASTs and holds every literal against the catalogue in
  both directions.

* **Engine names** — the shard workers, the serve engine pool, the
  CLI ``--engine`` choices, and the resilience fallback chain each
  keep their own name registry.  The PR 7 fallback mis-scoring bug
  was exactly this drift class; :func:`check_engine_registries` makes
  it a CI failure.

Both run in ``python -m repro analyze --contracts`` (and as part of
``--all``); they are pure-Python fast, no netlists involved.
"""

from __future__ import annotations

import argparse
import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from .report import Diagnostic, Report, Severity

__all__ = [
    "FaultSiteUse",
    "collect_fault_site_uses",
    "check_fault_sites",
    "RegistrySnapshot",
    "registry_snapshot",
    "check_engine_registries",
    "analyze_contracts",
]

#: The call names that address a fault site with their first argument.
_FAULT_CALLS = frozenset({"fault_point", "should_inject"})


@dataclass(frozen=True)
class FaultSiteUse:
    """One ``fault_point``/``should_inject`` call found in source."""

    site: str | None  #: the literal site, or None for a dynamic arg
    path: str
    lineno: int
    call: str


def collect_fault_site_uses(paths: Sequence[Path] | None = None,
                            ) -> list[FaultSiteUse]:
    """Every fault-site call in ``paths`` (default: all of
    ``src/repro`` except the defining module itself)."""
    if paths is None:
        root = Path(__file__).resolve().parents[1]
        paths = [p for p in sorted(root.rglob("*.py"))
                 if p.name != "faults.py"]
    uses: list[FaultSiteUse] = []
    for path in paths:
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            name = (fn.id if isinstance(fn, ast.Name)
                    else fn.attr if isinstance(fn, ast.Attribute)
                    else None)
            if name not in _FAULT_CALLS:
                continue
            arg = node.args[0] if node.args else None
            site = (arg.value if isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str) else None)
            uses.append(FaultSiteUse(site, str(path), node.lineno,
                                     name))
    return uses


def check_fault_sites(paths: Sequence[Path] | None = None,
                      sites: Mapping[str, str] | None = None) -> Report:
    """Every fault-site literal must be catalogued, and every
    catalogue entry must have a live call site."""
    if sites is None:
        from ..resilience.faults import SITES

        sites = SITES
    rep = Report()
    uses = collect_fault_site_uses(paths)
    used: set[str] = set()
    for use in uses:
        if use.site is None:
            rep.add(Diagnostic(
                rule="contract.fault-site-dynamic",
                severity=Severity.WARNING,
                subject=f"{use.path}:{use.lineno}",
                message=f"{use.call}() called with a non-literal "
                        f"site; the lint cannot validate it against "
                        f"the catalogue"))
            continue
        used.add(use.site)
        if use.site not in sites:
            rep.add(Diagnostic(
                rule="contract.fault-site-unknown",
                severity=Severity.ERROR,
                subject=use.site,
                message=f"{use.call}({use.site!r}) at "
                        f"{use.path}:{use.lineno} is not in "
                        f"resilience.faults.SITES — this site can "
                        f"never be scheduled and silently never "
                        f"fires"))
    for site in sorted(set(sites) - used):
        rep.add(Diagnostic(
            rule="contract.fault-site-unused", severity=Severity.ERROR,
            subject=site,
            message="catalogued in resilience.faults.SITES but no "
                    "fault_point/should_inject literal references it "
                    "— the chaos suite believes it exercises a site "
                    "that no longer exists"))
    if rep.ok and not rep.warnings:
        rep.add(Diagnostic(
            rule="contract.fault-sites", severity=Severity.NOTE,
            subject="resilience.faults.SITES",
            message=f"{len(sites)} catalogued sites and "
                    f"{len(uses)} literal call sites agree in both "
                    f"directions"))
    return rep


@dataclass(frozen=True)
class RegistrySnapshot:
    """The engine-name registries of every layer, side by side."""

    shard_engines: tuple[str, ...]       #: shard.worker.SHARD_ENGINES
    shardable_engines: tuple[str, ...]   #: serve SHARDABLE_ENGINES
    serve_engines: tuple[str, ...]       #: serve engine_pool.ENGINES
    cli_engine_choices: tuple[str, ...]  #: serve --engine choices
    chain: tuple[str, ...]               #: fallback.DEFAULT_CHAIN
    resilience_engines: tuple[str, ...]  #: fallback.RESILIENCE_ENGINES
    engine_fault_sites: tuple[str, ...]  #: faults engine.<n>.fail names


def registry_snapshot() -> RegistrySnapshot:
    """Collect the live registries (imports the real modules)."""
    from ..cli import build_parser
    from ..resilience.fallback import DEFAULT_CHAIN, RESILIENCE_ENGINES
    from ..resilience.faults import engine_fault_sites
    from ..serve.engine_pool import ENGINES, SHARDABLE_ENGINES
    from ..shard.worker import SHARD_ENGINES

    parser = build_parser()
    sub = next(a for a in parser._actions
               if isinstance(a, argparse._SubParsersAction))
    serve = sub.choices["serve"]
    engine_arg = next(a for a in serve._actions
                      if "--engine" in a.option_strings)
    return RegistrySnapshot(
        shard_engines=tuple(sorted(SHARD_ENGINES)),
        shardable_engines=tuple(SHARDABLE_ENGINES),
        serve_engines=tuple(ENGINES),
        cli_engine_choices=tuple(engine_arg.choices or ()),
        chain=tuple(DEFAULT_CHAIN),
        resilience_engines=tuple(RESILIENCE_ENGINES),
        engine_fault_sites=tuple(sorted(engine_fault_sites())),
    )


def check_engine_registries(snap: RegistrySnapshot | None = None,
                            ) -> Report:
    """Hold every engine-name registry against its neighbours."""
    if snap is None:
        snap = registry_snapshot()
    rep = Report()

    def verdict(rule: str, ok: bool, subject: str, bad: str,
                good: str) -> None:
        rep.add(Diagnostic(
            rule=rule,
            severity=Severity.NOTE if ok else Severity.ERROR,
            subject=subject, message=good if ok else bad))

    verdict(
        "contract.shard-engines",
        set(snap.shard_engines) == set(snap.shardable_engines),
        "shard.worker.SHARD_ENGINES",
        f"shard workers accept {sorted(snap.shard_engines)} but serve "
        f"marks {sorted(snap.shardable_engines)} shardable — a "
        f"--shard-workers deployment would dispatch an engine the "
        f"worker rejects",
        f"matches serve.SHARDABLE_ENGINES "
        f"({sorted(snap.shardable_engines)})")
    verdict(
        "contract.shardable-subset",
        set(snap.shardable_engines) <= set(snap.serve_engines),
        "serve.engine_pool.SHARDABLE_ENGINES",
        f"shardable engines {sorted(snap.shardable_engines)} are not "
        f"all in the serve pool {sorted(snap.serve_engines)}",
        f"subset of the serve pool ({sorted(snap.serve_engines)})")
    expected_cli = set(snap.serve_engines) | {"resilient"}
    verdict(
        "contract.cli-engines",
        set(snap.cli_engine_choices) == expected_cli,
        "cli serve --engine",
        f"CLI offers {sorted(snap.cli_engine_choices)} but the pool "
        f"plus the fallback pseudo-engine is {sorted(expected_cli)} — "
        f"an engine is unreachable or the CLI promises one that "
        f"cannot be built",
        f"offers exactly the pool plus 'resilient' "
        f"({sorted(expected_cli)})")
    verdict(
        "contract.fallback-chain",
        snap.chain == snap.resilience_engines,
        "resilience.fallback.DEFAULT_CHAIN",
        f"DEFAULT_CHAIN {list(snap.chain)} is not "
        f"RESILIENCE_ENGINES in declaration order "
        f"{list(snap.resilience_engines)} — the demotion order no "
        f"longer matches the documented fastest-first registry",
        f"equals RESILIENCE_ENGINES in declaration order "
        f"({list(snap.chain)})")
    chain_sites = {f"engine.{name}.fail"
                   for name in snap.resilience_engines}
    catalogued = {f"engine.{name}.fail"
                  for name in snap.engine_fault_sites}
    verdict(
        "contract.engine-fault-sites",
        chain_sites == catalogued,
        "resilience.faults engine.*.fail",
        f"chain engines imply fault sites {sorted(chain_sites)} but "
        f"the catalogue has {sorted(catalogued)} — the chaos suite "
        f"cannot fail every chain engine (or names one that left the "
        f"chain)",
        f"one engine.<name>.fail site per chain engine "
        f"({sorted(snap.engine_fault_sites)})")
    return rep


def analyze_contracts() -> Report:
    """Both contract lints over the live package."""
    rep = check_fault_sites()
    rep.extend(check_engine_registries())
    return rep
