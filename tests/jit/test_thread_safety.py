"""Concurrency guarantees of the shared compiled evaluators.

:func:`repro.jit.cells.sw_wavefront_step` and
:func:`repro.jit.cells.compiled_sw_cell` are ``lru_cache``-memoised
process-wide, so every thread in the process shares one
:class:`~repro.jit.compiler.CompiledNetlist` instance — serve's
``EnginePool`` (default ``workers=2``) does exactly that on its hot
path.  The instance keeps its temporary-buffer pool in thread-local
storage; these differential tests pin that concurrent evaluations
cannot clobber each other's temporaries (they did before the pool was
made thread-local: concurrent runs returned silently wrong scores).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.encoding import encode_batch_bit_transposed
from repro.core.sw_bpbc import bpbc_sw_wavefront
from repro.jit import compiled_sw_cell
from repro.serve import AlignmentService
from repro.serve.engine_pool import _engine_bpbc
from repro.swa.scoring import DEFAULT_SCHEME, ScoringScheme
from repro.swa.sequential import sw_max_score
from repro.workloads.datasets import paper_workload

SCHEME = ScoringScheme(match_score=2, mismatch_penalty=1, gap_penalty=1)
WORD_BITS = 64
THREADS = 8
RUNS = 32


class TestSharedEvaluatorConcurrency:
    def _planes(self):
        batch = paper_workload(48, pairs=64, m=24, seed=7)
        XH, XL = encode_batch_bit_transposed(batch.X, WORD_BITS)
        YH, YL = encode_batch_bit_transposed(batch.Y, WORD_BITS)
        return XH, XL, YH, YL

    def test_concurrent_wavefront_matches_single_threaded(self):
        """Many threads hammering one memoised compiled-numpy step must
        agree bit-for-bit with the single-threaded reference."""
        XH, XL, YH, YL = self._planes()
        ref = bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, WORD_BITS,
                                cell="generic").max_scores

        def run(_):
            return bpbc_sw_wavefront(XH, XL, YH, YL, SCHEME, WORD_BITS,
                                     cell="compiled-numpy").max_scores

        run(0)  # warm the process-wide memoised evaluator first
        barrier = threading.Barrier(THREADS)

        def contended(k):
            barrier.wait(timeout=60)  # maximise overlap
            return run(k)

        with ThreadPoolExecutor(max_workers=THREADS) as ex:
            first_wave = list(ex.map(contended, range(THREADS)))
            rest = list(ex.map(run, range(RUNS)))
        for got in first_wave + rest:
            np.testing.assert_array_equal(got, ref)

    def test_compiled_cell_pools_are_per_thread(self):
        """Each thread warms its own scratch pool on the shared
        instance — no thread ever sees another's buffers.  The worker
        threads are held alive until every pool has been collected, so
        the id() comparison cannot be confused by address reuse."""
        compiled = compiled_sw_cell(4, 1, 2, 1, word_bits=32)
        shape = (5,)
        ins = [np.zeros(shape, np.uint32)
               for _ in range(compiled.plan.n_inputs)]

        def pool_ids():
            outs = [np.zeros(shape, np.uint32)
                    for _ in range(compiled.n_outputs)]
            compiled.run(ins, outs)
            return {id(b) for _cap, bufs in compiled._pools.values()
                    for b in bufs}

        main_ids = pool_ids()
        id_sets: list[set[int]] = []
        lock = threading.Lock()
        hold = threading.Event()

        def worker():
            ids = pool_ids()
            with lock:
                id_sets.append(ids)
            hold.wait(timeout=60)  # keep this thread's pool alive

        threads = [threading.Thread(target=worker) for _ in range(4)]
        try:
            for t in threads:
                t.start()
            deadline = 60.0
            while True:
                with lock:
                    if len(id_sets) == len(threads):
                        break
                deadline -= 0.01
                assert deadline > 0, "workers never reported their pools"
                threading.Event().wait(0.01)
            with lock:
                sets = [main_ids] + list(id_sets)
            for i, a in enumerate(sets):
                assert len(a) == compiled.n_slots
                for b in sets[i + 1:]:
                    assert not a & b, "threads shared pool buffers"
        finally:
            hold.set()
            for t in threads:
                t.join(timeout=60)


class TestEnginePoolConcurrency:
    def test_service_compiled_numpy_engine_exact(self, rng):
        """EnginePool workers calling the compiled-numpy evaluator
        concurrently resolve every future to the exact DP score."""
        def engine(batch, word_bits):
            return _engine_bpbc(batch, word_bits, cell="compiled-numpy")

        svc = AlignmentService(engine=engine, workers=4, max_wait_ms=2,
                               cache_size=0)
        results = []
        errors = []
        seeds = rng.integers(0, 2**31, size=THREADS)

        def client(seed):
            local = np.random.default_rng(seed)
            try:
                pairs = [(local.integers(0, 4, 16, dtype=np.uint8),
                          local.integers(0, 4, 16, dtype=np.uint8))
                         for _ in range(12)]
                futures = [svc.submit(q, s) for q, s in pairs]
                for (q, s), fut in zip(pairs, futures):
                    results.append((q, s, fut.result(timeout=60).score))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        with svc:
            threads = [threading.Thread(target=client, args=(s,))
                       for s in seeds]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive()
        assert not errors
        assert len(results) == THREADS * 12
        for q, s, score in results:
            assert score == sw_max_score(q, s, DEFAULT_SCHEME)
