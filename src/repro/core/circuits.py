"""Bitwise arithmetic circuits for the BPBC Smith-Waterman (paper §IV-A).

Every function here evaluates a combinational circuit over *bit planes*:
``A`` is a sequence of ``s`` lane arrays, ``A[h]`` holding bit ``h`` of
every instance.  One call computes the operation for *all* instances at
once — ``word_bits`` instances per lane word — using only bitwise
AND / OR / XOR / NOT, exactly as in the paper:

========================  ==========================  =================
function                  computes (per instance)     ops (measured)
========================  ==========================  =================
:func:`greater_than`      ``A >= B`` (1-bit flag)     ``5s - 2``
:func:`max_b`             ``max(A, B)``               ``9s - 2``
:func:`add_b`             ``(A + B) mod 2**s``        ``6s - 4``
:func:`ssub_b`            ``max(A - B, 0)``           ``9s - 4``
:func:`matching_b`        ``A+c1`` / ``max(A-c2,0)``  ``19s - 8 + 2e``
:func:`sw_cell`           SW recurrence cell          ``46s - 16 + 2e``
========================  ==========================  =================

(``e`` = bits per character; 2 for DNA.)

Divergences from the paper, all verified by tests:

* **Lemma 3 (add):** the paper's listing initialises the carry as
  ``p <- a0 XOR b0``; the correct carry out of bit 0 is ``a0 AND b0``.
  We fix this (one extra operation: ``6s - 4`` instead of ``6s - 5``).
* **Lemma 5 (matching):** states the *bound* ``21s - 9``; the exact
  count of the listed circuit (with the add fix) is ``19s - 8 + 2e``,
  within the bound for ``s >= e + 1``.
* **Theorem 6 (SW cell):** states ``48s - 18``, but summing the paper's
  own Lemmas 2–5 gives ``48s - 17``; our exact count is
  ``46s - 16 + 2e``.

A note on :func:`greater_than`: as in the paper, the flag is computed
as the complement of the borrow of ``A - B``, so it is 1 iff
``A >= B``.  The paper specifies the output only for ``A != B``
("p can take any value if neither A < B nor A > B"); returning 1 on
ties makes :func:`max_b` pick ``A``, which is correct for a maximum.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .bitops import BitOpsError, OpCounter, full_mask, word_dtype

__all__ = [
    "splat_constant",
    "clamp_penalty",
    "greater_than",
    "max_b",
    "add_b",
    "ssub_b",
    "matching_b",
    "sw_cell",
    "greater_than_ops",
    "max_b_ops",
    "add_b_ops",
    "ssub_b_ops",
    "matching_b_ops_exact",
    "matching_b_ops_bound",
    "sw_cell_ops_exact",
    "sw_cell_ops_paper",
    "matching_reference",
    "sw_cell_reference",
]

Planes = Sequence[np.ndarray]


def splat_constant(value: int, s: int, word_bits: int) -> list[np.ndarray]:
    """Broadcast an ``s``-bit constant across all lanes.

    Bit ``h`` of the constant becomes an all-ones (or all-zeros) scalar
    word; NumPy broadcasting extends it to any lane shape for free.
    """
    if value < 0 or value >> s:
        raise BitOpsError(f"constant {value} does not fit in {s} bits")
    dt = word_dtype(word_bits)
    ones = dt.type(full_mask(word_bits))
    zero = dt.type(0)
    return [ones if (value >> h) & 1 else zero for h in range(s)]


def clamp_penalty(value: int, s: int) -> int:
    """Clamp a penalty constant to the largest ``s``-bit value.

    Penalties are only ever used through saturating subtraction, and
    every DP value fits in ``s`` bits, so any penalty ``>= 2**s - 1``
    drives the result to zero exactly like the clamped one does.
    """
    if value < 0:
        raise BitOpsError(f"penalty must be non-negative, got {value}")
    return min(value, (1 << s) - 1)


def _check_widths(name: str, A: Planes, B: Planes) -> int:
    s = len(A)
    if s == 0:
        raise BitOpsError(f"{name}: empty plane sequence")
    if len(B) != s:
        raise BitOpsError(f"{name}: width mismatch, {s} vs {len(B)} planes")
    return s


def _count(counter: OpCounter | None, n: int, kind: str) -> None:
    if counter is not None:
        counter.add(n, kind=kind)


def greater_than(A: Planes, B: Planes,
                 counter: OpCounter | None = None) -> np.ndarray:
    """Per-lane flag, 1 iff ``A >= B`` (paper's ``greaterthan``).

    Ripple-borrow comparator: ``p`` accumulates the borrow of ``A - B``
    from the least significant bit; the returned flag is ``~p``.
    Exactly ``5s - 2`` operations.
    """
    s = _check_widths("greater_than", A, B)
    p = ~A[0] & B[0]
    _count(counter, 2, "compare")
    for i in range(1, s):
        p = (B[i] & p) | (~A[i] & (B[i] ^ p))
        _count(counter, 5, "compare")
    _count(counter, 1, "compare")
    return ~p


def max_b(A: Planes, B: Planes,
          counter: OpCounter | None = None) -> list[np.ndarray]:
    """Per-lane maximum of two ``s``-bit values (Lemma 2: ``9s - 2`` ops)."""
    s = _check_widths("max_b", A, B)
    p = greater_than(A, B, counter)
    out = []
    for i in range(s):
        out.append((A[i] & p) | (B[i] & ~p))
        _count(counter, 4, "select")
    return out


def add_b(A: Planes, B: Planes,
          counter: OpCounter | None = None) -> list[np.ndarray]:
    """Per-lane sum ``(A + B) mod 2**s``: ``6s - 4`` operations.

    Ripple-carry adder.  The caller must size ``s`` so that no instance
    overflows (the SW engine uses ``s = bit_length(c1 * m)``).  The
    paper's listing initialises the carry as ``a0 XOR b0``; the correct
    half-adder carry is ``a0 AND b0`` — the one-operation fix is why
    this counts ``6s - 4`` instead of Lemma 3's ``6s - 5``.
    """
    s = _check_widths("add_b", A, B)
    q0 = A[0] ^ B[0]
    _count(counter, 1, "add")
    out = [q0]
    if s == 1:
        return out
    p = A[0] & B[0]
    _count(counter, 1, "add")
    for i in range(1, s):
        out.append(A[i] ^ B[i] ^ p)
        p = (A[i] & (B[i] ^ p)) | (B[i] & p)
        _count(counter, 6, "add")
    return out


def ssub_b(A: Planes, B: Planes,
           counter: OpCounter | None = None) -> list[np.ndarray]:
    """Per-lane saturating difference ``max(A - B, 0)`` (Lemma 4: ``9s-4``).

    Ripple-borrow subtractor followed by masking the result to zero in
    every lane where a final borrow remains (i.e. where ``A < B``).
    """
    s = _check_widths("ssub_b", A, B)
    out = [A[0] ^ B[0]]
    p = ~A[0] & B[0]
    _count(counter, 3, "ssub")
    for i in range(1, s):
        out.append(A[i] ^ B[i] ^ p)
        p = (~A[i] & (B[i] ^ p)) | (B[i] & p)
        _count(counter, 7, "ssub")
    for i in range(s):
        out[i] = out[i] & ~p
        _count(counter, 2, "ssub")
    return out


def matching_b(C: Planes, x: Planes, y: Planes, c1: int, c2: int,
               word_bits: int,
               counter: OpCounter | None = None) -> list[np.ndarray]:
    """Per-lane ``C + w(x, y)``: ``C + c1`` on match, ``max(C - c2, 0)``
    on mismatch (paper's ``matching_B``).

    ``x`` and ``y`` are character bit planes (``e`` planes each; 2 for
    DNA).  Exact cost ``(6s-4) + (9s-4) + 2e + 4s = 19s - 8 + 2e``
    operations, within Lemma 5's ``21s - 9`` bound for ``s >= e + 1``.
    """
    s = len(C)
    eps = len(x)
    if eps == 0 or len(y) != eps:
        raise BitOpsError(
            f"character width mismatch: {eps} vs {len(y)} planes"
        )
    R = add_b(C, splat_constant(c1, s, word_bits), counter)
    T = ssub_b(C, splat_constant(clamp_penalty(c2, s), s, word_bits),
               counter)
    dt = word_dtype(word_bits)
    e = dt.type(0)
    for i in range(eps):
        e = e | (x[i] ^ y[i])
        _count(counter, 2, "matchflag")
    out = []
    for i in range(s):
        out.append((R[i] & ~e) | (T[i] & e))
        _count(counter, 4, "select")
    return out


def sw_cell(A: Planes, B: Planes, C: Planes, x: Planes, y: Planes,
            gap: int, c1: int, c2: int, word_bits: int,
            counter: OpCounter | None = None) -> list[np.ndarray]:
    """One Smith-Waterman DP cell for every lane (paper's ``SW``).

    Computes ``max(0, A - gap, B - gap, C + w(x, y))`` where ``A`` is
    the up neighbour ``d[i-1][j]``, ``B`` the left neighbour
    ``d[i][j-1]`` and ``C`` the diagonal ``d[i-1][j-1]``.  All
    intermediate values are non-negative by construction (saturating
    subtraction), so the outer ``max`` with 0 is implicit — the paper's
    §IV-A argument.

    Exact cost ``46s - 16 + 2e`` operations (Theorem 6 states
    ``48s - 18``; see the module docstring).
    """
    T = max_b(A, B, counter)
    s = len(T)
    U = ssub_b(T, splat_constant(clamp_penalty(gap, s), s, word_bits),
               counter)
    T2 = matching_b(C, x, y, c1, c2, word_bits, counter)
    return max_b(T2, U, counter)


# ---------------------------------------------------------------------------
# Operation-count formulas (asserted by tests; repro.perfmodel exposes the
# paper's stated counts separately for the Table IV/V analytic model).
# ---------------------------------------------------------------------------

def greater_than_ops(s: int) -> int:
    """Exact op count of :func:`greater_than` (matches paper: ``5s - 2``)."""
    return 5 * s - 2


def max_b_ops(s: int) -> int:
    """Exact op count of :func:`max_b` (matches Lemma 2: ``9s - 2``)."""
    return 9 * s - 2


def add_b_ops(s: int) -> int:
    """Exact op count of :func:`add_b`: ``6s - 4`` (Lemma 3 says ``6s-5``;
    we pay one extra AND to fix the listing's carry initialisation)."""
    return 6 * s - 4 if s > 1 else 1


def ssub_b_ops(s: int) -> int:
    """Exact op count of :func:`ssub_b` (matches Lemma 4: ``9s - 4``)."""
    return 9 * s - 4


def matching_b_ops_exact(s: int, eps: int = 2) -> int:
    """Exact op count of :func:`matching_b`: ``19s - 8 + 2e``."""
    return add_b_ops(s) + ssub_b_ops(s) + 2 * eps + 4 * s


def matching_b_ops_bound(s: int) -> int:
    """Lemma 5's stated bound for ``matching_b``: ``21s - 9``."""
    return 21 * s - 9


def sw_cell_ops_exact(s: int, eps: int = 2) -> int:
    """Exact op count of :func:`sw_cell`: ``46s - 16 + 2e``."""
    return 2 * max_b_ops(s) + ssub_b_ops(s) + matching_b_ops_exact(s, eps)


def sw_cell_ops_paper(s: int) -> int:
    """Theorem 6's stated count for the SW cell: ``48s - 18``."""
    return 48 * s - 18


# ---------------------------------------------------------------------------
# Word-level reference semantics for the equivalence prover.
#
# These are *not* alternative engines: they state, in plain integer
# arithmetic, what the circuits above compute on ARBITRARY s-bit
# inputs — including inputs no Smith-Waterman run would ever produce.
# repro.analyze.prove exhaustively checks every netlist against them
# over the full input cube, so the semantics must model the hardware
# honestly: the adder wraps modulo 2**s, the subtractor saturates at
# zero, penalties are clamped to the bus width (clamp_penalty) exactly
# as the synthesisers clamp their constant buses.
# ---------------------------------------------------------------------------

def matching_reference(C, x, y, c1: int, c2: int, s: int) -> np.ndarray:
    """Value semantics of :func:`matching_b` / ``synth_matching`` on
    arbitrary ``s``-bit inputs: ``(C + c1) mod 2**s`` on character
    match, ``max(C - clamp_penalty(c2, s), 0)`` otherwise."""
    mask = (1 << s) - 1
    C = np.asarray(C, dtype=np.int64)
    match = np.asarray(x, dtype=np.int64) == np.asarray(y, dtype=np.int64)
    return np.where(match, (C + c1) & mask,
                    np.maximum(C - clamp_penalty(c2, s), 0))


def sw_cell_reference(A, B, C, x, y, gap: int, c1: int, c2: int,
                      s: int) -> np.ndarray:
    """Value semantics of :func:`sw_cell` / ``synth_sw_cell``:
    ``max(matching(C, x, y), max(max(A, B) - gap, 0))``."""
    A = np.asarray(A, dtype=np.int64)
    B = np.asarray(B, dtype=np.int64)
    gapped = np.maximum(np.maximum(A, B) - clamp_penalty(gap, s), 0)
    return np.maximum(matching_reference(C, x, y, c1, c2, s), gapped)
