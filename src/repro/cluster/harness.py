"""Local cluster harness: real serve *processes* on ephemeral ports.

Failover code tested only against in-process mocks has never met a
dying process, so the chaos suite (and ``python -m repro cluster``)
boots the real thing: :class:`LocalCluster` spawns one
``python -m repro serve`` subprocess per topology entry, waits for
each to announce ``serving on host:port`` on stderr, and hands back
:class:`~repro.cluster.node.RemoteNode` handles whose ``drop_hook``
SIGKILLs the actual process — so the ``cluster.node.drop`` fault site
kills a genuine node mid-batch, not a simulation of one.

Topologies come from TOML or JSON files (or plain dicts)::

    [[nodes]]
    name = "a"            # required, unique
    host = "127.0.0.1"    # default
    port = 0              # default 0 = ephemeral
    engine = "bpbc"       # default; any serve engine name
    workers = 2           # default

``{"nodes": [{"name": "a"}, ...]}`` is the JSON equivalent.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from .errors import TopologyError
from .node import RemoteNode

__all__ = ["NodeSpec", "load_topology", "LocalCluster"]

_ANNOUNCE = re.compile(r"serving on ([\d.]+):(\d+)")


@dataclass(frozen=True)
class NodeSpec:
    """One node of a cluster topology."""

    name: str
    host: str = "127.0.0.1"
    port: int = 0
    engine: str = "bpbc"
    workers: int = 2
    word_bits: int = 64

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("node name must be non-empty")
        if self.port < 0:
            raise TopologyError(
                f"node {self.name!r}: port must be >= 0, "
                f"got {self.port}")


def _specs_from_obj(obj) -> list[NodeSpec]:
    if not isinstance(obj, dict) or "nodes" not in obj:
        raise TopologyError(
            "topology must be an object with a 'nodes' list")
    nodes = obj["nodes"]
    if not isinstance(nodes, list) or not nodes:
        raise TopologyError("topology 'nodes' must be a non-empty list")
    specs = []
    for entry in nodes:
        if not isinstance(entry, dict):
            raise TopologyError(
                f"topology node entries must be objects, got "
                f"{type(entry).__name__}")
        unknown = set(entry) - {"name", "host", "port", "engine",
                                "workers", "word_bits"}
        if unknown:
            raise TopologyError(
                f"unknown topology keys: {sorted(unknown)}")
        try:
            specs.append(NodeSpec(**entry))
        except TypeError as exc:
            raise TopologyError(f"bad topology node entry: {exc}") \
                from exc
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise TopologyError(f"duplicate node names: {names}")
    return specs


def load_topology(path) -> list[NodeSpec]:
    """Parse a TOML or JSON topology file into node specs.

    ``.toml`` parses as TOML, everything else as JSON — the two
    formats describe the identical ``nodes`` table.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".toml":
        import tomllib

        try:
            obj = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise TopologyError(f"{path}: invalid TOML: {exc}") from exc
    else:
        try:
            obj = json.loads(text)
        except ValueError as exc:
            raise TopologyError(f"{path}: invalid JSON: {exc}") from exc
    return _specs_from_obj(obj)


def _src_path() -> str:
    """The ``src`` directory the spawned servers must import from."""
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


class LocalCluster:
    """Spawn and manage N real serve processes on ephemeral ports.

    Use as a context manager; :meth:`nodes` / :meth:`coordinator` are
    available once :meth:`start` returns.  :meth:`kill` is the chaos
    hook — SIGKILL, no shutdown grace, exactly like a node losing
    power mid-batch.
    """

    def __init__(self, specs=None, *, n: int = 3,
                 startup_timeout_s: float = 60.0) -> None:
        if specs is None:
            specs = [NodeSpec(name=f"node{i}") for i in range(n)]
        else:
            specs = [s if isinstance(s, NodeSpec) else NodeSpec(**s)
                     for s in specs]
        if not specs:
            raise TopologyError("cluster needs at least one node spec")
        self.specs = list(specs)
        self.startup_timeout_s = startup_timeout_s
        self._procs: dict[str, subprocess.Popen] = {}
        self._addrs: dict[str, tuple[str, int]] = {}
        self._logdir: tempfile.TemporaryDirectory | None = None
        self._logs: dict[str, Path] = {}

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "LocalCluster":
        """Spawn every node and block until all announce their port."""
        import os

        self._logdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        env = dict(os.environ)
        src = _src_path()
        prior = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not prior else \
            src + os.pathsep + prior
        try:
            for spec in self.specs:
                log = Path(self._logdir.name) / f"{spec.name}.log"
                self._logs[spec.name] = log
                cmd = [sys.executable, "-m", "repro", "serve",
                       "--host", spec.host, "--port", str(spec.port),
                       "--engine", spec.engine,
                       "--workers", str(spec.workers),
                       "--word-bits", str(spec.word_bits)]
                with open(log, "wb") as fh:
                    self._procs[spec.name] = subprocess.Popen(
                        cmd, env=env, stdout=subprocess.DEVNULL,
                        stderr=fh, stdin=subprocess.DEVNULL)
            deadline = time.monotonic() + self.startup_timeout_s
            for spec in self.specs:
                self._addrs[spec.name] = self._await_announce(
                    spec.name, deadline)
        except BaseException:
            self.stop()
            raise
        return self

    def _await_announce(self, name: str,
                        deadline: float) -> tuple[str, int]:
        """Poll a node's stderr log until it prints its bound address."""
        log = self._logs[name]
        proc = self._procs[name]
        while True:
            text = log.read_text(errors="replace") if log.exists() \
                else ""
            hit = _ANNOUNCE.search(text)
            if hit:
                return hit.group(1), int(hit.group(2))
            if proc.poll() is not None:
                raise TopologyError(
                    f"node {name!r} exited with status "
                    f"{proc.returncode} before serving; log:\n{text}")
            if time.monotonic() >= deadline:
                raise TopologyError(
                    f"node {name!r} did not announce its port within "
                    f"{self.startup_timeout_s:.0f}s; log:\n{text}")
            time.sleep(0.05)

    def kill(self, name: str) -> None:
        """SIGKILL one node (the chaos path; idempotent)."""
        proc = self._procs.get(name)
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)

    def alive(self, name: str) -> bool:
        proc = self._procs.get(name)
        return proc is not None and proc.poll() is None

    def stop(self) -> None:
        """Kill every node and clean up (idempotent)."""
        for name in list(self._procs):
            self.kill(name)
        self._procs.clear()
        self._addrs.clear()
        if self._logdir is not None:
            self._logdir.cleanup()
            self._logdir = None
        self._logs.clear()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- handles --------------------------------------------------------
    def address(self, name: str) -> tuple[str, int]:
        return self._addrs[name]

    def nodes(self, **node_kwargs) -> list[RemoteNode]:
        """Coordinator-side handles, drop hooks wired to real kills."""
        out = []
        for spec in self.specs:
            host, port = self._addrs[spec.name]
            out.append(RemoteNode(
                spec.name, host, port,
                drop_hook=lambda name=spec.name: self.kill(name),
                **node_kwargs))
        return out

    def coordinator(self, **coord_kwargs):
        """A :class:`~repro.cluster.coordinator.ClusterCoordinator`
        over this cluster's nodes."""
        from .coordinator import ClusterCoordinator

        node_kwargs = coord_kwargs.pop("node_kwargs", {})
        return ClusterCoordinator(self.nodes(**node_kwargs),
                                  **coord_kwargs)
