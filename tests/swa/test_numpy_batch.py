"""Tests for repro.swa.numpy_batch: the wordwise baseline engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.swa.numpy_batch import sw_batch_max_scores, sw_batch_score_matrix
from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_matrix, sw_max_score

SCHEME = ScoringScheme(2, 1, 1)


class TestBatchMaxScores:
    def test_matches_gold(self, rng):
        P, m, n = 60, 7, 15
        X = rng.integers(0, 4, (P, m), dtype=np.uint8)
        Y = rng.integers(0, 4, (P, n), dtype=np.uint8)
        gold = [sw_max_score(X[p], Y[p], SCHEME) for p in range(P)]
        np.testing.assert_array_equal(
            sw_batch_max_scores(X, Y, SCHEME), gold
        )

    @pytest.mark.parametrize("m,n", [(1, 1), (1, 9), (9, 1), (6, 6),
                                     (9, 4)])
    def test_shapes(self, rng, m, n):
        X = rng.integers(0, 4, (5, m), dtype=np.uint8)
        Y = rng.integers(0, 4, (5, n), dtype=np.uint8)
        gold = [sw_max_score(X[p], Y[p], SCHEME) for p in range(5)]
        np.testing.assert_array_equal(
            sw_batch_max_scores(X, Y, SCHEME), gold
        )

    def test_single_pair(self, rng):
        X = rng.integers(0, 4, (1, 6), dtype=np.uint8)
        Y = rng.integers(0, 4, (1, 11), dtype=np.uint8)
        assert sw_batch_max_scores(X, Y, SCHEME)[0] == \
            sw_max_score(X[0], Y[0], SCHEME)

    def test_shape_validation(self, rng):
        X = rng.integers(0, 4, (3, 4))
        Y = rng.integers(0, 4, (4, 4))
        with pytest.raises(ValueError):
            sw_batch_max_scores(X, Y, SCHEME)
        with pytest.raises(ValueError):
            sw_batch_max_scores(X[0], Y, SCHEME)

    def test_alternative_scheme(self, rng):
        scheme = ScoringScheme(3, 2, 1)
        X = rng.integers(0, 4, (20, 5), dtype=np.uint8)
        Y = rng.integers(0, 4, (20, 9), dtype=np.uint8)
        gold = [sw_max_score(X[p], Y[p], scheme) for p in range(20)]
        np.testing.assert_array_equal(
            sw_batch_max_scores(X, Y, scheme), gold
        )

    @settings(max_examples=20, deadline=None)
    @given(P=st.integers(1, 30), m=st.integers(1, 8),
           n=st.integers(1, 12), seed=st.integers(0, 2**31))
    def test_matches_gold_property(self, P, m, n, seed):
        rng = np.random.default_rng(seed)
        X = rng.integers(0, 4, (P, m), dtype=np.uint8)
        Y = rng.integers(0, 4, (P, n), dtype=np.uint8)
        gold = [sw_max_score(X[p], Y[p], SCHEME) for p in range(P)]
        np.testing.assert_array_equal(
            sw_batch_max_scores(X, Y, SCHEME), gold
        )


class TestBatchScoreMatrix:
    def test_matches_gold_matrices(self, rng):
        P, m, n = 6, 5, 8
        X = rng.integers(0, 4, (P, m), dtype=np.uint8)
        Y = rng.integers(0, 4, (P, n), dtype=np.uint8)
        d = sw_batch_score_matrix(X, Y, SCHEME)
        assert d.shape == (P, m + 1, n + 1)
        for p in range(P):
            np.testing.assert_array_equal(d[p],
                                          sw_matrix(X[p], Y[p], SCHEME))

    def test_max_agrees_with_batch_scores(self, rng):
        P = 10
        X = rng.integers(0, 4, (P, 4), dtype=np.uint8)
        Y = rng.integers(0, 4, (P, 9), dtype=np.uint8)
        d = sw_batch_score_matrix(X, Y, SCHEME)
        np.testing.assert_array_equal(
            d.reshape(P, -1).max(axis=1),
            sw_batch_max_scores(X, Y, SCHEME),
        )
