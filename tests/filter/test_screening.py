"""Tests for repro.filter.screening: the threshold application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.filter.screening import bulk_max_scores, screen_pairs
from repro.swa.scoring import ScoringScheme
from repro.swa.sequential import sw_max_score
from repro.workloads.dna import MutationModel, homologous_pairs

SCHEME = ScoringScheme(2, 1, 1)


class TestBulkMaxScores:
    @pytest.mark.parametrize("word_bits", [32, 64])
    def test_matches_gold(self, rng, word_bits):
        X = rng.integers(0, 4, (37, 6), dtype=np.uint8)
        Y = rng.integers(0, 4, (37, 14), dtype=np.uint8)
        got = bulk_max_scores(X, Y, SCHEME, word_bits=word_bits)
        want = [sw_max_score(X[p], Y[p], SCHEME) for p in range(37)]
        np.testing.assert_array_equal(got, want)

    def test_trims_lane_padding(self, rng):
        X = rng.integers(0, 4, (3, 5), dtype=np.uint8)
        Y = rng.integers(0, 4, (3, 9), dtype=np.uint8)
        assert len(bulk_max_scores(X, Y, SCHEME)) == 3

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            bulk_max_scores(np.zeros((2, 3)), np.zeros((3, 5)), SCHEME)

    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 1000])
    def test_chunked_equals_one_shot(self, rng, chunk_size):
        X = rng.integers(0, 4, (41, 6), dtype=np.uint8)
        Y = rng.integers(0, 4, (41, 14), dtype=np.uint8)
        np.testing.assert_array_equal(
            bulk_max_scores(X, Y, SCHEME, chunk_size=chunk_size),
            bulk_max_scores(X, Y, SCHEME),
        )

    @pytest.mark.parametrize("chunk_size", [0, -1, -64])
    def test_bad_chunk_size(self, rng, chunk_size):
        X = rng.integers(0, 4, (4, 6), dtype=np.uint8)
        with pytest.raises(ValueError, match="chunk_size must be positive"):
            bulk_max_scores(X, X, SCHEME, chunk_size=chunk_size)

    @pytest.mark.parametrize("workers", [0, -1])
    def test_bad_workers(self, rng, workers):
        X = rng.integers(0, 4, (4, 6), dtype=np.uint8)
        with pytest.raises(ValueError, match="workers must be positive"):
            bulk_max_scores(X, X, SCHEME, workers=workers)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_workers_equal_one_shot(self, rng, workers):
        X = rng.integers(0, 4, (41, 6), dtype=np.uint8)
        Y = rng.integers(0, 4, (41, 14), dtype=np.uint8)
        np.testing.assert_array_equal(
            bulk_max_scores(X, Y, SCHEME, workers=workers),
            bulk_max_scores(X, Y, SCHEME),
        )

    def test_workers_with_chunk_size_caps_shards(self, rng):
        # chunk_size doubles as the per-shard pair cap on the sharded
        # path; results must stay identical.
        X = rng.integers(0, 4, (30, 6), dtype=np.uint8)
        Y = rng.integers(0, 4, (30, 10), dtype=np.uint8)
        np.testing.assert_array_equal(
            bulk_max_scores(X, Y, SCHEME, chunk_size=7, workers=2),
            bulk_max_scores(X, Y, SCHEME),
        )


class TestScreenPairs:
    def test_survivors_have_alignments(self, rng):
        X, Y, labels = homologous_pairs(
            rng, 30, 16, 64, related_fraction=0.5,
            model=MutationModel(sub_rate=0.02),
        )
        tau = 20
        result = screen_pairs(X, Y, tau, SCHEME)
        assert result.threshold == tau
        surv = set(result.survivor_indices.tolist())
        assert {h.pair_index for h in result.hits} == surv
        for h in result.hits:
            assert h.score > tau
            assert h.alignment.score == h.score

    def test_screening_separates_planted_pairs(self, rng):
        """With a reasonable tau, most planted-homology pairs pass and
        most random pairs do not — the application the paper pitches."""
        X, Y, labels = homologous_pairs(
            rng, 60, 24, 96, related_fraction=0.5,
            model=MutationModel(sub_rate=0.02),
        )
        tau = 30  # well above random-pair background for m=24
        result = screen_pairs(X, Y, tau, SCHEME, align_survivors=False)
        passed = result.scores > tau
        # Every passer should be a planted pair; most planted pairs pass.
        assert (~passed[~labels]).all()
        assert passed[labels].mean() > 0.8

    def test_no_survivors(self, rng):
        X = rng.integers(0, 4, (10, 4), dtype=np.uint8)
        Y = rng.integers(0, 4, (10, 8), dtype=np.uint8)
        result = screen_pairs(X, Y, 8, SCHEME)  # max possible score
        assert result.hits == []
        assert result.pass_rate == 0.0

    def test_all_survive_threshold_zero_on_identical(self, rng):
        X = rng.integers(0, 4, (5, 6), dtype=np.uint8)
        result = screen_pairs(X, X.copy(), 0, SCHEME)
        assert len(result.hits) == 5
        for h in result.hits:
            assert h.score == 12  # full match 6 * c1
            assert h.alignment.identity == 1.0

    def test_align_survivors_flag(self, rng):
        X = rng.integers(0, 4, (5, 6), dtype=np.uint8)
        result = screen_pairs(X, X.copy(), 0, SCHEME,
                              align_survivors=False)
        assert result.hits == []
        assert len(result.survivor_indices) == 5

    def test_negative_threshold_rejected(self, rng):
        X = rng.integers(0, 4, (2, 4), dtype=np.uint8)
        with pytest.raises(ValueError):
            screen_pairs(X, X, -1, SCHEME)

    @pytest.mark.parametrize("chunk_size", [0, -5])
    def test_bad_chunk_size(self, rng, chunk_size):
        X = rng.integers(0, 4, (4, 6), dtype=np.uint8)
        with pytest.raises(ValueError, match="chunk_size must be positive"):
            screen_pairs(X, X, 5, SCHEME, chunk_size=chunk_size)

    @pytest.mark.parametrize("workers", [0, -2])
    def test_bad_workers(self, rng, workers):
        X = rng.integers(0, 4, (4, 6), dtype=np.uint8)
        with pytest.raises(ValueError, match="workers must be positive"):
            screen_pairs(X, X, 5, SCHEME, workers=workers)

    def test_sharded_screen_matches_one_shot(self, rng):
        X, Y, _ = homologous_pairs(rng, 20, 12, 48,
                                   related_fraction=0.5)
        whole = screen_pairs(X, Y, 15, SCHEME)
        sharded = screen_pairs(X, Y, 15, SCHEME, workers=2)
        np.testing.assert_array_equal(whole.scores, sharded.scores)
        assert [h.pair_index for h in whole.hits] == \
            [h.pair_index for h in sharded.hits]

    def test_chunked_screen_matches_one_shot(self, rng):
        X, Y, _ = homologous_pairs(rng, 20, 12, 48,
                                   related_fraction=0.5)
        whole = screen_pairs(X, Y, 15, SCHEME)
        chunked = screen_pairs(X, Y, 15, SCHEME, chunk_size=7)
        np.testing.assert_array_equal(whole.scores, chunked.scores)
        assert [h.pair_index for h in whole.hits] == \
            [h.pair_index for h in chunked.hits]

    def test_threshold_is_strictly_greater_everywhere(self, rng):
        """hits, survivor_indices and pass_rate must all use the same
        strictly-greater-than-tau rule (the paper's 'larger than a
        given threshold'), with or without survivor alignment."""
        X = rng.integers(0, 4, (6, 5), dtype=np.uint8)
        result = screen_pairs(X, X.copy(), 10, SCHEME)  # max score = 10
        assert len(result.hits) == 0
        assert len(result.survivor_indices) == 0
        assert result.pass_rate == 0.0
        result = screen_pairs(X, X.copy(), 9, SCHEME)
        assert {h.pair_index for h in result.hits} == set(range(6))
        assert set(result.survivor_indices.tolist()) == set(range(6))
        assert result.pass_rate == 1.0
        # pass_rate must agree with survivors even when hits are not
        # materialised (the historical asymmetry risk).
        unaligned = screen_pairs(X, X.copy(), 9, SCHEME,
                                 align_survivors=False)
        assert unaligned.hits == []
        assert unaligned.pass_rate == 1.0
