"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

__all__ = ["render_table", "fmt"]


def fmt(value, nd: int = 2) -> str:
    """Format a cell: floats with ``nd`` decimals, everything else str."""
    if isinstance(value, float):
        return f"{value:.{nd}f}"
    return str(value)


def render_table(headers: list[str], rows: list[list], title: str = "",
                 nd: int = 2) -> str:
    """Right-aligned monospace table, like the paper's."""
    cells = [[fmt(c, nd) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
