"""Exceptions raised by the SIMT GPU simulator."""

from __future__ import annotations

__all__ = [
    "GpuSimError",
    "KernelDeadlock",
    "MemoryFault",
    "LaunchConfigError",
]


class GpuSimError(RuntimeError):
    """Base class for simulator failures."""


class KernelDeadlock(GpuSimError):
    """Some threads of a block reached a barrier others never will.

    Raised when, at a synchronisation round, part of a block waits at
    ``barrier()`` while the rest have already terminated — the classic
    divergent-``__syncthreads`` bug, which real hardware turns into a
    hang and the simulator turns into a diagnosable error.
    """


class MemoryFault(GpuSimError):
    """Out-of-bounds or type-mismatched access to a simulated memory."""


class LaunchConfigError(GpuSimError):
    """Invalid grid/block dimensions or resource over-subscription."""
