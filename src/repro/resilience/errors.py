"""Typed failures of the resilience layer.

The contract the chaos suite enforces is "bit-identical recovery or a
typed error naming what failed — never a silent wrong score"; these
are the typed errors.
"""

from __future__ import annotations

__all__ = ["ResilienceError", "SelfTestError", "FallbackExhaustedError",
           "BulkRecoveryError"]


class ResilienceError(RuntimeError):
    """Base class for resilience-layer failures."""


class SelfTestError(ResilienceError):
    """An engine produced wrong scores on the known-answer self-test.

    This is the one failure that must never be retried or fallen back
    over silently: an engine that is *up but wrong* is worse than one
    that is down.
    """

    def __init__(self, engine: str, expected, got) -> None:
        super().__init__(
            f"engine {engine!r} failed its known-answer self-test: "
            f"expected {list(expected)}, got {list(got)}"
        )
        self.engine = engine
        self.expected = tuple(int(v) for v in expected)
        self.got = tuple(int(v) for v in got)


class FallbackExhaustedError(ResilienceError):
    """Every engine in a fallback chain refused or failed the batch.

    ``attempts`` maps engine name -> the exception it raised (or the
    string ``"breaker-open"`` when the breaker refused the call).
    """

    def __init__(self, message: str, attempts: dict) -> None:
        super().__init__(message)
        self.attempts = dict(attempts)


class BulkRecoveryError(ResilienceError):
    """A sharded bulk run lost pairs that recovery could not rescore.

    ``pair_indices`` are the submission-order indices whose scores are
    missing — exactly the pairs a caller may retry or must report as
    unscored.  Nothing about the *other* pairs is in doubt: their
    scores were computed normally.
    """

    def __init__(self, message: str, pair_indices,
                 cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.pair_indices = tuple(int(i) for i in pair_indices)
        self.cause = cause
