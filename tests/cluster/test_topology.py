"""Topology parsing: TOML and JSON describe the same nodes table."""

from __future__ import annotations

import pytest

from repro.cluster import NodeSpec, TopologyError, load_topology

TOML = """
[[nodes]]
name = "a"
port = 7001

[[nodes]]
name = "b"
host = "10.0.0.2"
port = 7002
engine = "numpy"
workers = 4
"""

JSON = """
{"nodes": [
  {"name": "a", "port": 7001},
  {"name": "b", "host": "10.0.0.2", "port": 7002,
   "engine": "numpy", "workers": 4}
]}
"""


def test_toml_and_json_parse_identically(tmp_path):
    toml_path = tmp_path / "topo.toml"
    toml_path.write_text(TOML)
    json_path = tmp_path / "topo.json"
    json_path.write_text(JSON)
    assert load_topology(toml_path) == load_topology(json_path)


def test_defaults_fill_in(tmp_path):
    path = tmp_path / "t.json"
    path.write_text('{"nodes": [{"name": "solo"}]}')
    (spec,) = load_topology(path)
    assert spec == NodeSpec(name="solo")
    assert (spec.host, spec.port, spec.engine) == \
        ("127.0.0.1", 0, "bpbc")


@pytest.mark.parametrize("text,match", [
    ("[]", "object with a 'nodes' list"),
    ('{"nodes": []}', "non-empty"),
    ('{"nodes": ["a"]}', "must be objects"),
    ('{"nodes": [{"name": "a", "color": "red"}]}', "unknown topology"),
    ('{"nodes": [{"name": "a"}, {"name": "a"}]}', "duplicate"),
    ('{"nodes": [{"name": ""}]}', "non-empty"),
    ('{"nodes": [{"name": "a", "port": -1}]}', "port"),
    ('not json', "invalid JSON"),
])
def test_bad_topologies_raise_typed(tmp_path, text, match):
    path = tmp_path / "bad.json"
    path.write_text(text)
    with pytest.raises(TopologyError, match=match):
        load_topology(path)


def test_bad_toml_raises_typed(tmp_path):
    path = tmp_path / "bad.toml"
    path.write_text("nodes = [[[")
    with pytest.raises(TopologyError, match="invalid TOML"):
        load_topology(path)
